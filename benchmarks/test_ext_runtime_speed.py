"""Extension: hot-path execution-engine speedup (dequant weight cache).

Compares steady-state decode throughput of the thread-pipelined runtime
with the budget-aware dequantized-weight cache enabled (auto budget)
against the naive recompute-every-call baseline (``--dequant-cache-mb
0``) on the tiny-8l model.  The speedup must come purely from avoided
unpack/dequantize work: the generated token streams are asserted
byte-identical, and the cache counters must be consistent with what the
schedule implies (one build per resident layer when head-room exists,
one build per layer per message when disabled).

Absolute tokens/s is machine-dependent, so the committed baseline
(``benchmarks/results/ext_runtime_speed.json``) records the *ratio* of
cached to uncached decode throughput; the CI smoke test guards that
ratio against >20% regression.
"""

import json

import numpy as np
import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, make_corpus
from repro.runtime import PipelineRuntime
from repro.workload import Workload

GEN_LEN = 48
WORKLOAD = Workload(prompt_len=16, gen_len=GEN_LEN, global_batch=8)


def _plan(bits_per_stage, workload):
    stages = tuple(
        StagePlan(Device(get_gpu("T4-16G"), node_id=0, local_rank=i), tuple(bits))
        for i, bits in enumerate(bits_per_stage)
    )
    gb = workload.global_batch
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=min(4, gb), decode_microbatch=min(8, gb),
        workload=workload,
    )


def _serve(reference, plan, prompts, gen_len, cache_mb):
    with PipelineRuntime(reference, plan, dequant_cache_mb=cache_mb) as rt:
        tokens = rt.generate(prompts, gen_len)
        stats = rt.stats
    return tokens, stats


def _compare(gen_len=GEN_LEN, workload=WORKLOAD):
    from repro.models import get_model

    reference = TinyDecoderLM(get_model("tiny-8l"), seed=3)
    prompts = make_corpus(
        reference.cfg.vocab_size, num_seqs=workload.global_batch,
        seq_len=workload.prompt_len, seed=5,
    ).tokens
    plan = _plan([(4,) * 4, (3,) * 4], workload)
    cold_tokens, cold = _serve(reference, plan, prompts, gen_len, 0.0)
    warm_tokens, warm = _serve(reference, plan, prompts, gen_len, None)
    np.testing.assert_array_equal(warm_tokens, cold_tokens)
    return cold, warm


def _rows(cold, warm):
    speedup = warm.decode_tokens_per_s / max(cold.decode_tokens_per_s, 1e-9)
    def row(name, st, spd):
        return {
            "cache": name,
            "decode_tok_s": round(st.decode_tokens_per_s, 1),
            "prefill_tok_s": round(st.prefill_tokens_per_s, 1),
            "hits": st.dequant_cache_hits,
            "misses": st.dequant_cache_misses,
            "build_s": round(st.dequant_build_seconds, 3),
            "budget_mb": round(st.dequant_cache_budget_bytes / 2**20, 2),
            "decode_speedup": round(spd, 2),
        }
    return [row("disabled (0 MiB)", cold, 1.0), row("auto budget", warm, speedup)]


def test_ext_runtime_speed_headline():
    """Headline number: >= 3x steady-state decode tokens/s with the cache
    on, byte-identical tokens, and schedule-consistent counters."""
    cold, warm = _compare()

    # counter consistency: disabled -> one rebuild per layer per message,
    # zero hits; auto -> one rebuild per resident layer, the rest hits
    assert cold.dequant_cache_hits == 0
    assert cold.dequant_cache_misses >= 8 * GEN_LEN  # every decode message
    assert warm.dequant_cache_misses == 8
    assert warm.dequant_cache_hits > 0
    assert warm.dequant_build_seconds < cold.dequant_build_seconds

    rows = _rows(cold, warm)
    print_table(rows, title="Ext — hot-path dequant-cache speedup (tiny-8l)")
    save_results(
        "ext_runtime_speed",
        {"scenario": "tiny-8l 2-stage 4/3-bit, batch 8, gen 48",
         "rows": rows, "decode_speedup": rows[1]["decode_speedup"]},
    )
    assert rows[1]["decode_speedup"] >= 3.0


def test_ext_runtime_speed_smoke():
    """CI guard: the cached/uncached decode-throughput ratio must not
    regress more than 20% below the committed baseline."""
    wl = Workload(prompt_len=8, gen_len=24, global_batch=4)
    cold, warm = _compare(gen_len=24, workload=wl)
    assert cold.dequant_cache_hits == 0
    assert warm.dequant_cache_hits > 0

    ratio = warm.decode_tokens_per_s / max(cold.decode_tokens_per_s, 1e-9)
    baseline_path = RESULTS_DIR / "ext_runtime_speed.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())["decode_speedup"]
    # the smoke workload is smaller than the headline one, so guard
    # against the committed ratio with 20% slack rather than equality
    assert ratio >= 0.8 * committed, (
        f"decode speedup {ratio:.2f}x regressed >20% below committed "
        f"baseline {committed:.2f}x"
    )
