"""Fig. 7: fidelity of the memory and latency cost models.

The paper's protocol: models from 560m to 66b, random workloads the
models were *not* fitted on (batch sizes 3/5/7, past lengths 384/768,
random precisions), compare predictions against the real system — here,
the ground-truth simulator with measurement noise.  Paper numbers:
memory error "almost negligible", latency error < 6% on average.
"""

import numpy as np

from repro.bench.tables import print_table, save_results
from repro.cost.latency import LatencyModel
from repro.cost.memory import stage_memory
from repro.cost.profiler import build_latency_model
from repro.hardware import get_gpu
from repro.models import get_model
from repro.sim.kernels import layer_exec_time

MODELS = ("bloom-560m", "bloom-1b7", "opt-13b", "opt-30b", "opt-66b")
GPUS = ("T4-16G", "V100-32G", "A100-40G")
BITS = (3, 4, 8, 16)


def _latency_errors(model_name: str, lat: LatencyModel, rng) -> list[float]:
    cfg = get_model(model_name)
    errs = []
    for _ in range(50):
        gpu = get_gpu(str(rng.choice(GPUS)))
        bits = int(rng.choice(BITS))
        batch = int(rng.choice([3, 5, 7]))
        past = int(rng.choice([384, 768]))
        phase = str(rng.choice(["prefill", "decode"]))
        q = past if phase == "prefill" else 1
        pred = lat.predict_layer(gpu, bits, phase, batch, q, past)
        true = layer_exec_time(gpu, cfg, bits, batch, q, past, rng=rng, noise=0.02)
        errs.append(abs(pred - true) / true)
    return errs


def _memory_errors(model_name: str, rng) -> list[float]:
    """Predicted vs 'measured' stage memory; the real system rounds every
    tensor up to the allocator's 512-byte granularity."""
    cfg = get_model(model_name)
    errs = []
    for _ in range(20):
        batch = int(rng.choice([2, 4, 8]))
        s = int(rng.integers(128, 513))
        n = int(rng.integers(100, 201))
        n_layers = int(rng.integers(2, min(cfg.num_layers, 12)))
        bits = [int(b) for b in rng.choice(BITS, size=n_layers)]
        mem = stage_memory(
            cfg, bits, global_batch=batch, prompt_len=s, gen_len=n,
            prefill_microbatch=batch, decode_microbatch=batch,
            is_first=True, is_last=False,
        )
        n_tensors = 16 * n_layers + 4
        measured = mem.total + n_tensors * rng.integers(0, 512)
        errs.append(abs(mem.total - measured) / measured)
    return errs


def test_fig7_cost_model_fidelity(benchmark, latency_models):
    def run():
        rng = np.random.default_rng(42)
        rows = []
        for model_name in MODELS:
            lat = latency_models(model_name)
            lat_errs = _latency_errors(model_name, lat, rng)
            mem_errs = _memory_errors(model_name, rng)
            rows.append(
                {
                    "model": model_name,
                    "latency_err_avg_%": 100 * float(np.mean(lat_errs)),
                    "latency_err_max_%": 100 * float(np.max(lat_errs)),
                    "memory_err_avg_%": 100 * float(np.mean(mem_errs)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(rows, title="Fig. 7 — cost-model fidelity on unseen workloads")
    save_results("fig7_cost_model_fidelity", rows)

    for r in rows:
        # paper: average latency error < 6%
        assert r["latency_err_avg_%"] < 6.0, r["model"]
        # paper: memory error almost negligible
        assert r["memory_err_avg_%"] < 1.0, r["model"]
