"""Fig. 3: phase time decomposition across precisions and devices.

One OPT-30b decoder layer, prompt length 512, batch 8 — prefill and
decode time per precision on P100 vs V100 (plus T4/A100 for context).
The paper's point: the P100/V100 ratio differs wildly between phases, so
single-phase partitioners misjudge heterogeneous placements.
"""

from repro.bench.tables import print_table, save_results
from repro.hardware import get_gpu
from repro.models import get_model
from repro.sim.kernels import layer_exec_time

DEVICES = ("P100-12G", "T4-16G", "V100-32G", "A100-40G")
BITS = (16, 8, 4, 3)


def _collect():
    cfg = get_model("opt-30b")
    rows = []
    for name in DEVICES:
        gpu = get_gpu(name)
        row = {"gpu": name}
        for bits in BITS:
            row[f"prefill_{bits}b_ms"] = 1e3 * layer_exec_time(gpu, cfg, bits, 8, 512, 512)
            row[f"decode_{bits}b_ms"] = 1e3 * layer_exec_time(gpu, cfg, bits, 8, 1, 512)
        rows.append(row)
    return rows


def test_fig3_phase_decomposition(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print_table(rows, title="Fig. 3 — single-layer phase times, OPT-30b s=512 b=8")
    save_results("fig3_phase_decomposition", rows)

    by = {r["gpu"]: r for r in rows}
    # cross-device ratios differ substantially between phases
    pre_ratio = by["P100-12G"]["prefill_16b_ms"] / by["V100-32G"]["prefill_16b_ms"]
    dec_ratio = by["P100-12G"]["decode_16b_ms"] / by["V100-32G"]["decode_16b_ms"]
    assert pre_ratio > 2 * dec_ratio

    # FP16 fastest prefill on V100; INT8 == FP16 on T4 (tensor cores)
    v = by["V100-32G"]
    assert v["prefill_16b_ms"] < min(v[f"prefill_{b}b_ms"] for b in (8, 4, 3))
    t = by["T4-16G"]
    assert t["prefill_8b_ms"] <= t["prefill_16b_ms"] * 1.01

    # decode (memory-bound) rewards quantization everywhere
    for r in rows:
        assert r["decode_4b_ms"] < r["decode_16b_ms"]
