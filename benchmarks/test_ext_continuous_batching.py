"""Extension: continuous batching vs the wave (gang) baseline.

Measures the tentpole effect of the iteration-level scheduler twice:

* **Simulator** — an opt-30b 4-bit plan on the 3-GPU paper cluster
  replaying a Poisson mixed-length trace through ``simulate_online``
  under both policies.
* **Real runtime** — the thread-pipelined NumPy runtime serving a
  skewed-generation-length trace on tiny-8l through
  ``ContinuousScheduler``, with every continuous-policy token stream
  asserted byte-identical to the single-process reference.

Continuous batching must win on BOTH axes in BOTH harnesses: >= 1.5x
request throughput and strictly lower p95 latency.  The win comes
purely from scheduling — no inter-wave drain and no padding to the
wave's max generation length — so both policies are pinned to
identical per-request batch-1 kernels (``decode_batching=
"per-request"``); the orthogonal fused-execution win is measured in
``test_ext_fused_decode.py``.

Absolute numbers are machine-dependent, so the committed baseline
(``benchmarks/results/ext_continuous_batching.json``) records the
throughput *ratios*; the CI smoke test guards them against regression.
"""

import json

import numpy as np
import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu, paper_cluster
from repro.models import TinyDecoderLM, generate, get_model
from repro.runtime import ContinuousScheduler, PipelineRuntime, ServeRequest
from repro.sim.online import simulate_online
from repro.workload import Workload, sample_poisson_arrivals


# ---------------------------------------------------------------------------
# simulator side (opt-30b on the paper cluster)
# ---------------------------------------------------------------------------


def _sim_compare(rate, duration, seed):
    cluster = paper_cluster(3)
    w = Workload(prompt_len=512, gen_len=100, global_batch=16)
    plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    trace = sample_poisson_arrivals(
        rate, duration, seed=seed, max_prompt=256, max_gen=64
    )
    wave = simulate_online(plan, cluster, trace, policy="wave")
    cont = simulate_online(plan, cluster, trace, policy="continuous")
    assert cont.completed == wave.completed == len(trace)
    return wave, cont


# ---------------------------------------------------------------------------
# real-runtime side (tiny-8l on the thread-pipelined engine)
# ---------------------------------------------------------------------------


def _tiny_plan(workload):
    stages = tuple(
        StagePlan(Device(get_gpu("T4-16G"), node_id=0, local_rank=i), (16,) * 4)
        for i in range(2)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


def _skewed_requests(cfg, n=10, seed=13):
    """Mostly-short generations with a long tail: the workload shape
    where wave padding hurts most (every member decodes to the max)."""
    rng = np.random.default_rng(seed)
    gens = [24 if i % 5 == 0 else int(rng.integers(2, 6)) for i in range(n)]
    return [
        ServeRequest(
            request_id=i,
            prompt=rng.integers(
                0, cfg.vocab_size, size=int(rng.integers(6, 13)), dtype=np.int64
            ),
            gen_len=gens[i],
        )
        for i in range(n)
    ]


def _runtime_compare(n=10):
    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=3)
    plan = _tiny_plan(Workload(prompt_len=12, gen_len=8, global_batch=8))
    requests = _skewed_requests(cfg, n=n)
    reports = {}
    for policy in ("wave", "continuous"):
        with PipelineRuntime(reference, plan) as rt:
            # per-request decode in BOTH policies: this benchmark isolates
            # the *scheduling* effect, so the execution mode is pinned to
            # identical batch-1 kernels.  Fused ragged batching (the
            # runtime default) amortizes wave's padded decodes too and is
            # measured separately in test_ext_fused_decode.py.
            reports[policy] = ContinuousScheduler(
                rt, policy=policy, time_scale=0.0,
                decode_batching="per-request",
            ).serve(requests)
        assert len(reports[policy].completed) == n
    # byte-identity: co-batching must not perturb any stream
    for rec in reports["continuous"].completed:
        req = requests[rec.request_id]
        expected = generate(reference, req.prompt[None, :], req.gen_len).tokens[0]
        np.testing.assert_array_equal(rec.tokens, expected)
    return reports["wave"], reports["continuous"]


def _row(name, policy, throughput, p95, ttft, ratio):
    return {
        "harness": name,
        "policy": policy,
        "tok_s": round(throughput, 2),
        "p95_latency_s": round(p95, 3),
        "ttft_mean_s": round(ttft, 3),
        "throughput_ratio": round(ratio, 2),
    }


def test_ext_continuous_batching_headline():
    """Headline: continuous >= 1.5x throughput AND strictly lower p95
    than the wave baseline, in the simulator and on the real runtime."""
    sim_wave, sim_cont = _sim_compare(rate=3.0, duration=60.0, seed=7)
    sim_ratio = sim_cont.throughput / sim_wave.throughput
    assert sim_ratio >= 1.5
    assert sim_cont.p95_latency < sim_wave.p95_latency
    assert sim_cont.mean_ttft < sim_wave.mean_ttft

    rt_wave, rt_cont = _runtime_compare()
    rt_ratio = (
        rt_cont.throughput_tokens_per_s / rt_wave.throughput_tokens_per_s
    )
    assert rt_ratio >= 1.5
    assert rt_cont.latency_p95 < rt_wave.latency_p95

    rows = [
        _row("sim opt-30b", "wave", sim_wave.throughput,
             sim_wave.p95_latency, sim_wave.mean_ttft, 1.0),
        _row("sim opt-30b", "continuous", sim_cont.throughput,
             sim_cont.p95_latency, sim_cont.mean_ttft, sim_ratio),
        _row("runtime tiny-8l", "wave", rt_wave.throughput_tokens_per_s,
             rt_wave.latency_p95, rt_wave.ttft_mean, 1.0),
        _row("runtime tiny-8l", "continuous",
             rt_cont.throughput_tokens_per_s, rt_cont.latency_p95,
             rt_cont.ttft_mean, rt_ratio),
    ]
    print_table(rows, title="Ext — continuous batching vs wave baseline")
    save_results(
        "ext_continuous_batching",
        {
            "sim_scenario": "opt-30b 4-bit, paper cluster 3, "
                            "Poisson rate 3/s x 60s",
            "runtime_scenario": "tiny-8l 2-stage fp16, 10 skewed requests",
            "rows": rows,
            "sim_throughput_ratio": round(sim_ratio, 2),
            "runtime_throughput_ratio": round(rt_ratio, 2),
        },
    )


def test_ext_continuous_batching_smoke():
    """CI guard: the deterministic simulator ratio must not regress more
    than 20% below the committed baseline, and the real runtime must
    hold the >= 1.5x acceptance floor with strictly lower p95."""
    baseline_path = RESULTS_DIR / "ext_continuous_batching.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())

    sim_wave, sim_cont = _sim_compare(rate=2.0, duration=30.0, seed=11)
    sim_ratio = sim_cont.throughput / sim_wave.throughput
    assert sim_cont.p95_latency < sim_wave.p95_latency
    assert sim_ratio >= 0.8 * committed["sim_throughput_ratio"], (
        f"sim continuous/wave ratio {sim_ratio:.2f}x regressed >20% below "
        f"committed {committed['sim_throughput_ratio']:.2f}x"
    )

    # the runtime ratio is wall-clock and noisy run-to-run, so guard the
    # structural acceptance floor rather than the committed timing
    rt_wave, rt_cont = _runtime_compare()
    rt_ratio = (
        rt_cont.throughput_tokens_per_s / rt_wave.throughput_tokens_per_s
    )
    assert rt_cont.latency_p95 < rt_wave.latency_p95
    assert rt_ratio >= 1.5, (
        f"runtime continuous/wave ratio {rt_ratio:.2f}x fell below the "
        f"1.5x floor (committed {committed['runtime_throughput_ratio']:.2f}x)"
    )
