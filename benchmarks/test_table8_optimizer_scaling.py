"""Table 8: grouping and heuristic under a solver time limit.

For clusters 3, 4, 6 and 10 we run the planner with group=1, group=2 and
the bitwidth-transfer heuristic (60-second ILP limit, as in the paper)
and report achieved throughput plus solve overhead.  Expected shapes:
group=1 explores the full space (best or tied objective when it finishes
in time) but costs the most; group=2 is close at a fraction of the
overhead; the heuristic is competitive with the smallest overhead on the
bigger instances.
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import evaluate_plan, plan_llmpq
from repro.hardware import PAPER_CLUSTERS, paper_cluster

CLUSTERS = (3, 4, 6, 10)
THETA = {3: 1.0, 4: 10.0, 6: 10.0, 10: 1.0}


def _run(cid, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    cluster = paper_cluster(cid)
    lat = latency_models(model)
    rows = []
    for label, kwargs in (
        ("group=1", dict(group_size=1)),
        ("group=2", dict(group_size=2)),
        ("heuristic", dict(group_size=2, use_heuristic=True)),
    ):
        res = plan_llmpq(
            model, cluster, workload, theta=THETA[cid],
            latency_model=lat, ilp_time_limit=60.0,
            prefill_mb_cap=8, decode_mb_candidates=(8, 32), **kwargs
        )
        if res.plan is None:
            rows.append({"cluster": cid, "method": label, "throughput": 0.0,
                         "overhead_s": res.total_seconds})
            continue
        rep = evaluate_plan(res.plan, cluster)
        rows.append(
            {
                "cluster": cid,
                "method": label,
                "throughput": rep.throughput,
                "overhead_s": res.total_seconds,
            }
        )
    return rows


@pytest.mark.parametrize("cid", CLUSTERS)
def test_table8_cluster(cid, benchmark, latency_models, default_workload):
    rows = benchmark.pedantic(
        _run, args=(cid, latency_models, default_workload), rounds=1, iterations=1
    )
    print_table(rows, title=f"Table 8 — optimizer scaling, cluster {cid}")
    save_results(f"table8_cluster{cid}", rows)

    by = {r["method"]: r for r in rows}
    # everything must produce a feasible plan
    assert all(r["throughput"] > 0 for r in rows)
    # grouping trades at most a modest throughput loss for less solve time
    assert by["group=2"]["throughput"] >= 0.7 * by["group=1"]["throughput"]
    assert by["group=2"]["overhead_s"] <= by["group=1"]["overhead_s"] * 1.2
    # heuristic competitive (Table 8: sometimes best, sometimes ~10% off)
    assert by["heuristic"]["throughput"] >= 0.55 * by["group=1"]["throughput"]
