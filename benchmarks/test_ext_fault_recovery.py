"""Extension analysis: serving throughput vs injected crash rate.

The fault-tolerant runtime recovers from stage crashes by rebuilding
workers from *cached* quantized shards and replaying the batch.  This
sweep injects 0..3 deterministic crashes into a tiny-model pipeline and
measures the wall-clock throughput hit, verifying along the way that
every recovered run stays token-for-token identical to the
single-process reference (the runtime's correctness invariant survives
arbitrarily many restarts)."""

import numpy as np

from repro.bench.tables import print_table, save_results
from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate, get_model, make_corpus
from repro.runtime import FaultInjector, PipelineRuntime, StageCrash
from repro.workload import Workload

GEN = 8
BATCH = 8
PROMPT = 12


def _plan(workload):
    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    stages = tuple(
        StagePlan(dev(i), bits) for i, bits in enumerate(
            [(16,) * 3, (16,) * 3, (16,) * 2]
        )
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


def _crash_policies(num_crashes):
    """num_crashes one-shot mid-decode kills of the middle stage.

    With mb_p=2 (4 prefill activations/stage) and mb_d=4 (2 decode
    groups/step), message 6 at a stage is decode step 1.  All policies
    target the same stage at increasing message counts, so exactly one
    fires per serving attempt (the crash pre-empts the later triggers,
    and restarts reset the stage's message counter) — the retry count
    is deterministic, one per injected crash."""
    return [StageCrash(stage=1, at=6 + k) for k in range(num_crashes)]


def _serve(reference, plan, prompts, num_crashes):
    inj = FaultInjector(_crash_policies(num_crashes), seed=0)
    with PipelineRuntime(reference, plan, fault_injector=inj) as rt:
        tokens = rt.generate(prompts, GEN)
    st = rt.stats
    return tokens, {
        "injected_crashes": num_crashes,
        "retries": st.retries,
        "stage_restarts": st.stage_restarts,
        "replayed_microbatches": st.replayed_microbatches,
        "recovery_seconds": round(st.recovery_seconds, 4),
        "wall_seconds": round(st.total_seconds, 4),
        "throughput_tok_s": round(st.tokens_generated / st.total_seconds, 2),
    }


def test_ext_fault_recovery(benchmark):
    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=3)
    prompts = make_corpus(cfg.vocab_size, num_seqs=BATCH, seq_len=PROMPT, seed=5).tokens
    workload = Workload(prompt_len=PROMPT, gen_len=GEN, global_batch=BATCH)
    plan = _plan(workload)
    expected = generate(reference, prompts, GEN).tokens

    def run():
        rows = []
        for num_crashes in (0, 1, 2, 3):
            tokens, row = _serve(reference, plan, prompts, num_crashes)
            # the headline invariant: recovery never changes the output
            np.testing.assert_array_equal(tokens, expected)
            rows.append(row)
        base = rows[0]["throughput_tok_s"]
        for row in rows:
            row["overhead_pct"] = round(
                100.0 * (base / row["throughput_tok_s"] - 1.0), 1
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        rows, title="Extension — throughput vs injected crash rate (tiny-8l)"
    )
    save_results("ext_fault_recovery", rows)

    by = {r["injected_crashes"]: r for r in rows}
    assert by[0]["retries"] == 0 and by[0]["overhead_pct"] == 0.0
    # every injected crash was seen and recovered within the retry bound
    for k in (1, 2, 3):
        assert by[k]["retries"] == k
        assert by[k]["stage_restarts"] >= k
        assert by[k]["recovery_seconds"] > 0
        assert by[k]["overhead_pct"] >= 0.0
    # more crashes never make recovery cheaper
    assert by[3]["recovery_seconds"] >= by[1]["recovery_seconds"]
