"""Ablation: hybrid (phase-specific) vs single micro-batch sizing.

The paper lets prefill and decode use different micro-batch sizes
(small prefill micro-batches shrink pipeline bubbles; large decode
groups amortize weight streaming).  We compare the planner constrained
to ``mb_p == mb_d`` against the unconstrained hybrid on clusters 1 and
3.  Expected: hybrid >= single, with a real gain where the phases pull
in opposite directions.
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import evaluate_plan
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import PAPER_CLUSTERS, paper_cluster

CLUSTERS = (1, 3)


def _run(cid, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    cluster = paper_cluster(cid)
    lat = latency_models(model)

    hybrid = LLMPQOptimizer(
        model, cluster, workload,
        config=PlannerConfig(group_size=2, theta=1.0),
        latency_model=lat,
    ).optimize()

    # single: force decode candidates to equal each prefill candidate by
    # evaluating only equal pairs
    single_best = None
    opt = LLMPQOptimizer(
        model, cluster, workload,
        config=PlannerConfig(group_size=2, theta=1.0),
        latency_model=lat,
    )
    for mb in (1, 2, 4, 8, 16, 32):
        if mb > workload.global_batch:
            break
        for ordering in opt.orderings():
            sol, ilp = opt._solve_candidate(ordering, mb, mb)
            if not sol.feasible:
                continue
            plan = opt.plan_from_solution(ordering, sol, ilp, mb, mb)
            rep = evaluate_plan(plan, cluster)
            if rep.feasible and (single_best is None or rep.throughput > single_best.throughput):
                single_best = rep

    hybrid_rep = evaluate_plan(hybrid.plan, cluster)
    return {
        "cluster": cid,
        "hybrid_tput": hybrid_rep.throughput,
        "hybrid_mb": f"{hybrid.plan.prefill_microbatch}/{hybrid.plan.decode_microbatch}",
        "single_tput": single_best.throughput if single_best else 0.0,
        "gain": hybrid_rep.throughput / single_best.throughput if single_best else float("inf"),
    }


@pytest.mark.parametrize("cid", CLUSTERS)
def test_ablation_hybrid_microbatch(cid, benchmark, latency_models, default_workload):
    row = benchmark.pedantic(
        _run, args=(cid, latency_models, default_workload), rounds=1, iterations=1
    )
    print_table([row], title=f"Ablation — hybrid micro-batch sizing, cluster {cid}")
    save_results(f"ablation_microbatch_cluster{cid}", row)
    assert row["hybrid_tput"] > 0
    assert row["gain"] >= 0.999  # hybrid can only widen the search space
