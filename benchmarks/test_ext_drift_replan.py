"""Extension: drift-aware live replanning vs a static plan, regret-vs-oracle.

A plan chosen offline for a light workload is replayed against a trace
whose rate AND length mix drift mid-stream (1 req/s of short prompts for
40s, then 5 req/s of long prompts).  Three runs over the same trace:

* **static** — the light-phase plan (16-bit) serves the whole trace;
* **oracle** — a plan solved for the heavy phase (4-bit) serves the
  whole trace, as if the operator had known the future;
* **drift-aware** — starts on the static plan; the
  :class:`~repro.runtime.replan.DriftDetector` notices the regime
  change and live-migrates through the warm planner
  (:func:`~repro.runtime.replan.make_search_replanner`), paying the
  mirrored shard-rebuild + KV-replay pause.

Regret = p95 latency above the oracle's.  The drift-aware run must hold
its regret strictly (and structurally: >= 10x) below the static plan's,
complete every request (zero drops through the quiesce), and execute at
least one migration.  The real-runtime side replays a drifting tiny-8l
trace through :class:`~repro.runtime.scheduler.ContinuousScheduler`
with a workload-refit replanner and asserts the migration preserved
byte-identical streams.

The committed baseline (``benchmarks/results/ext_drift_replan.json``)
records the regret ratio; the CI smoke test guards it.
"""

import json

import numpy as np
import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu, paper_cluster
from repro.models import TinyDecoderLM, generate, get_model
from repro.runtime import (
    ContinuousScheduler,
    DriftConfig,
    PipelineRuntime,
    ServeRequest,
    workload_refit_replanner,
)
from repro.runtime.replan import make_search_replanner
from repro.sim.online import simulate_online
from repro.workload import (
    Workload,
    concat_arrival_phases,
    sample_poisson_arrivals,
)


# ---------------------------------------------------------------------------
# simulator side (opt-30b on the paper cluster)
# ---------------------------------------------------------------------------


def _drift_trace(calm_s, heavy_s, seed):
    """Rate + length drift: light/short phase, then heavy/long phase."""
    calm = sample_poisson_arrivals(
        1.0, calm_s, seed=seed, max_prompt=128, max_gen=32
    )
    heavy = sample_poisson_arrivals(
        5.0, heavy_s, seed=seed + 1, max_prompt=512, max_gen=64
    )
    return concat_arrival_phases([calm, heavy])


def _sim_regret(calm_s, heavy_s, seed):
    cluster = paper_cluster(3)
    w = Workload(prompt_len=512, gen_len=100, global_batch=16)
    trace = _drift_trace(calm_s, heavy_s, seed)
    static_plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=16)
    oracle_plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    drift = DriftConfig(
        window=8.0, threshold=0.6, hysteresis=2, cooldown=60.0,
        rebuild_seconds=0.5,
    )
    static = simulate_online(static_plan, cluster, trace, policy="continuous")
    oracle = simulate_online(oracle_plan, cluster, trace, policy="continuous")
    adaptive = simulate_online(
        static_plan, cluster, trace, policy="continuous", drift=drift,
        replanner=make_search_replanner(
            cluster, use_heuristic=True, ilp_time_limit=5.0
        ),
    )
    # zero drops anywhere — including through the migration quiesce
    for res in (static, oracle, adaptive):
        assert res.completed == len(trace)
        assert res.rejected == 0
    return trace, static, oracle, adaptive


def _row(name, res, oracle):
    return {
        "run": name,
        "p95_latency_s": round(res.p95_latency, 2),
        "p95_regret_s": round(res.p95_latency - oracle.p95_latency, 2),
        "tok_s": round(res.throughput, 1),
        "migrations": res.migrations,
        "pause_s": round(res.migration_seconds, 2),
    }


# ---------------------------------------------------------------------------
# real-runtime side (tiny-8l, workload-refit migration)
# ---------------------------------------------------------------------------


def _tiny_plan(workload):
    stages = tuple(
        StagePlan(Device(get_gpu("T4-16G"), node_id=0, local_rank=i), (16,) * 4)
        for i in range(2)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


def _runtime_drift_replay():
    """Drifting tiny trace through the real scheduler: the refit must
    land mid-serve with zero drops and byte-identical streams."""
    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=3)
    rng = np.random.default_rng(41)
    mk = lambda i, s, t: ServeRequest(
        request_id=i,
        prompt=rng.integers(0, cfg.vocab_size, size=s, dtype=np.int64),
        gen_len=3, arrival=t,
    )
    calm = [mk(i, 4, i * 0.5) for i in range(12)]
    drifted = [mk(12 + i, 12, 6.0 + i * 0.5) for i in range(12)]
    requests = calm + drifted
    plan = _tiny_plan(Workload(prompt_len=12, gen_len=8, global_batch=8))
    drift = DriftConfig(
        window=2.0, threshold=0.6, hysteresis=1, cooldown=0.0, min_requests=3
    )
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(
            rt, drift=drift, replanner=workload_refit_replanner
        ).serve(requests)
    assert len(report.completed) == len(requests)
    assert report.rejected == []
    assert report.migrations >= 1
    for rec in report.completed:
        req = requests[rec.request_id]
        expected = generate(reference, req.prompt[None, :], req.gen_len).tokens[0]
        np.testing.assert_array_equal(rec.tokens, expected)
    return report


def test_ext_drift_replan_headline():
    """Headline: drift-aware regret vs the oracle strictly (and >= 10x)
    below the static plan's, zero drops, and a live migration on the
    real runtime that keeps every stream byte-identical."""
    trace, static, oracle, adaptive = _sim_regret(40.0, 40.0, seed=3)
    static_regret = static.p95_latency - oracle.p95_latency
    adaptive_regret = adaptive.p95_latency - oracle.p95_latency
    assert adaptive.drift_triggers >= 1 and adaptive.migrations >= 1
    assert adaptive_regret < static_regret  # the acceptance bar
    assert adaptive_regret < static_regret / 10  # and not by a whisker
    assert adaptive.throughput > static.throughput

    report = _runtime_drift_replay()

    rows = [
        _row("static 16-bit", static, oracle),
        _row("drift-aware", adaptive, oracle),
        _row("oracle 4-bit", oracle, oracle),
    ]
    print_table(rows, title="Ext — drift replanning, regret vs oracle")
    save_results(
        "ext_drift_replan",
        {
            "sim_scenario": "opt-30b, paper cluster 3, 1/s short x 40s "
                            "then 5/s long x 40s",
            "runtime_scenario": "tiny-8l 2-stage fp16, 24 drifting "
                                "requests, workload-refit migration",
            "rows": rows,
            "trace_len": len(trace),
            "p95_regret_static_s": round(static_regret, 2),
            "p95_regret_adaptive_s": round(adaptive_regret, 2),
            "regret_ratio": round(static_regret / max(adaptive_regret, 1e-9), 1),
            "runtime_migrations": report.migrations,
            "runtime_quiesce_s": round(report.quiesce_seconds, 4),
        },
    )


def test_ext_drift_replan_smoke():
    """CI regret guard: on a shorter drifted trace the migrated run must
    still beat the static plan outright, with every request served."""
    baseline_path = RESULTS_DIR / "ext_drift_replan.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["p95_regret_adaptive_s"] < committed["p95_regret_static_s"]

    _trace, static, oracle, adaptive = _sim_regret(24.0, 24.0, seed=9)
    static_regret = static.p95_latency - oracle.p95_latency
    adaptive_regret = adaptive.p95_latency - oracle.p95_latency
    assert adaptive.migrations >= 1
    assert adaptive_regret < static_regret, (
        f"drift-aware p95 regret {adaptive_regret:.1f}s no longer beats "
        f"the static plan's {static_regret:.1f}s "
        f"(committed ratio {committed['regret_ratio']}x)"
    )
    assert adaptive.p95_latency < static.p95_latency
