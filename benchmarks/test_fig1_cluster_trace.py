"""Fig. 1: GPU proportions and utilization in a production AI cluster.

Regenerates both panels from the synthetic fleet trace: (a) the share of
each GPU type in the fleet, (b) month-average utilization per type.  The
motivating shape: high-calibre GPUs are scarce *and* saturated, while the
plentiful inference cards idle — the capacity LLM-PQ wants to harvest.
"""

from repro.bench.tables import print_table, save_results
from repro.hardware import generate_fleet_trace


def test_fig1_fleet_portions_and_utilization(benchmark):
    trace = benchmark.pedantic(
        lambda: generate_fleet_trace(seed=0), rounds=1, iterations=1
    )
    means = trace.mean_utilization()
    idle = trace.idle_capacity_fraction()
    rows = [
        {
            "gpu": gpu,
            "fleet_share_%": 100 * float(trace.portions[i]),
            "avg_util_%": 100 * means[gpu],
            "idle_fleet_capacity_%": 100 * idle[gpu],
        }
        for i, gpu in enumerate(trace.gpu_types)
    ]
    print_table(rows, title="Fig. 1 — fleet composition and utilization (1 month)")
    save_results("fig1_cluster_trace", rows)

    by = {r["gpu"]: r for r in rows}
    # (a) inference cards dominate the fleet
    assert by["T4-16G"]["fleet_share_%"] > by["A100-40G"]["fleet_share_%"]
    # (b) A100 runs hot; T4/P100 sit idle
    assert by["A100-40G"]["avg_util_%"] > 80
    assert by["T4-16G"]["avg_util_%"] < 50
    # the harvestable capacity is concentrated in low-calibre GPUs
    assert by["T4-16G"]["idle_fleet_capacity_%"] == max(
        r["idle_fleet_capacity_%"] for r in rows
    )
