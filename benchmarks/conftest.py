"""Shared benchmark fixtures.

Latency cost models are expensive to fit, so one per model architecture
is cached for the whole benchmark session (the GPU set covers every type
in Table 3).
"""

from __future__ import annotations

import pytest

from repro.cost.profiler import build_latency_model
from repro.hardware.gpu import list_gpus
from repro.models import get_model
from repro.workload import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD

ALL_GPUS = tuple(list_gpus())


@pytest.fixture(scope="session")
def latency_models():
    """model_name -> fitted LatencyModel over every GPU type."""
    cache: dict[str, object] = {}

    def get(model_name: str):
        if model_name not in cache:
            cache[model_name] = build_latency_model(
                ALL_GPUS, get_model(model_name)
            )
        return cache[model_name]

    return get


@pytest.fixture(scope="session")
def default_workload():
    return DEFAULT_WORKLOAD


@pytest.fixture(scope="session")
def short_workload():
    return SHORT_PROMPT_WORKLOAD
