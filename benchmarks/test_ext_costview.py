"""Extension: the unified StageCostModel's pricing dividend.

The iteration-level online simulator prices every iteration — the fused
decode group plus each newly admitted prefill unit — through
:class:`repro.cost.stagecosts.StageCostModel`.  With caching enabled the
decode unit resolves through a precomputed per-(stage, bits) roofline
constant table and prefill units memoize per prompt length, so pricing an
iteration becomes a vectorized evaluation plus lookups; ``cache=False``
recomputes every layer from scratch per call, reproducing the pre-refactor
per-consumer cost.

The headline measures the continuous-policy online simulation of a 120+
request Poisson trace both ways and requires:

* **byte-identical results** — the cached fast path must not change one
  float of the ``OnlineResult``;
* **>= 2x speedup** — the shared/memoized pricing must at least halve the
  end-to-end simulation wall time.

Wall time is machine-dependent, so the committed baseline records the
speedup ratio; the CI smoke guards the 2x acceptance floor directly.
"""

import json
import time

import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan
from repro.cost.stagecosts import StageCostModel
from repro.hardware import paper_cluster
from repro.sim.online import simulate_online
from repro.workload import Workload, sample_poisson_arrivals


def _scenario():
    cluster = paper_cluster(3)
    w = Workload(prompt_len=512, gen_len=100, global_batch=16)
    plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    trace = sample_poisson_arrivals(
        2.0, 60.0, seed=9, max_prompt=256, max_gen=64
    )
    return plan, cluster, trace


def _run(plan, cluster, trace, *, cache):
    t0 = time.perf_counter()
    res = simulate_online(
        plan, cluster, trace, policy="continuous",
        cost_model=StageCostModel(plan, cluster, cache=cache),
    )
    return res, time.perf_counter() - t0


def _compare(repeats=3):
    plan, cluster, trace = _scenario()
    cold_s, warm_s = [], []
    cold = warm = None
    for _ in range(repeats):
        cold, t = _run(plan, cluster, trace, cache=False)
        cold_s.append(t)
        warm, t = _run(plan, cluster, trace, cache=True)
        warm_s.append(t)
    return cold, warm, min(cold_s), min(warm_s), len(trace)


def test_ext_costview_headline():
    cold, warm, cold_t, warm_t, n_req = _compare()
    assert warm == cold, "cached pricing changed the simulation result"
    speedup = cold_t / warm_t
    rows = [
        {"pricing": "per-call (cache=False)", "wall_s": round(cold_t, 4),
         "iterations": cold.iterations, "speedup": 1.0},
        {"pricing": "shared tables (default)", "wall_s": round(warm_t, 4),
         "iterations": warm.iterations, "speedup": round(speedup, 2)},
    ]
    print_table(rows, title="Ext — unified cost view: online iteration pricing")
    assert speedup >= 2.0, (
        f"shared-table pricing only {speedup:.2f}x faster (needs >= 2x)"
    )
    save_results(
        "ext_costview",
        {
            "scenario": "opt-30b 4-bit, paper cluster 3, continuous policy, "
                        f"Poisson 2/s x 60s ({n_req} requests)",
            "rows": rows,
            "speedup": round(speedup, 2),
            "results_identical": True,
        },
    )


def test_ext_costview_smoke():
    """CI guard: results stay byte-identical and the speedup holds the
    2x acceptance floor (the committed ratio is informational — wall
    clock is machine-dependent)."""
    baseline_path = RESULTS_DIR / "ext_costview.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["results_identical"] is True
    cold, warm, cold_t, warm_t, _ = _compare(repeats=2)
    assert warm == cold
    speedup = cold_t / warm_t
    assert speedup >= 2.0, (
        f"speedup {speedup:.2f}x fell below the 2x floor "
        f"(committed {committed['speedup']:.2f}x)"
    )
