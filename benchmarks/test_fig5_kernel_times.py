"""Fig. 5: prefill/decode kernel time vs precision and batch size.

One OPT-30b layer, prompt 512, batch sizes 1..32, on V100 and T4.  The
paper's observation: uniform low-precision does *not* always speed up
inference — FP16 often wins prefill (dequant overhead), while weight-only
quantization consistently wins decode.
"""

from repro.bench.tables import print_table, save_results
from repro.hardware import get_gpu
from repro.models import get_model
from repro.sim.kernels import layer_exec_time

BATCHES = (1, 2, 4, 8, 16, 32)
BITS = (16, 8, 4, 3)


def _collect():
    cfg = get_model("opt-30b")
    rows = []
    for gpu_name in ("V100-32G", "T4-16G"):
        gpu = get_gpu(gpu_name)
        for b in BATCHES:
            row = {"gpu": gpu_name, "batch": b}
            for bits in BITS:
                row[f"prefill_{bits}b_ms"] = 1e3 * layer_exec_time(gpu, cfg, bits, b, 512, 512)
                row[f"decode_{bits}b_ms"] = 1e3 * layer_exec_time(gpu, cfg, bits, b, 1, 512)
            rows.append(row)
    return rows


def test_fig5_kernel_times(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print_table(rows, title="Fig. 5 — kernel time vs precision and batch (OPT-30b layer)")
    save_results("fig5_kernel_times", rows)

    v100 = [r for r in rows if r["gpu"] == "V100-32G"]
    # prefill: FP16 fastest at every batch size on V100
    for r in v100:
        assert r["prefill_16b_ms"] <= min(r[f"prefill_{b}b_ms"] for b in (8, 4, 3))
    # decode: 3/4-bit fastest at every batch size (weight streaming)
    for r in rows:
        assert min(r["decode_3b_ms"], r["decode_4b_ms"]) < r["decode_16b_ms"]
    # decode time sub-linear in batch until compute-bound: batch 32 is
    # far less than 32x batch 1 (weights amortize)
    small = v100[0]["decode_16b_ms"]
    big = v100[-1]["decode_16b_ms"]
    assert big < 8 * small
