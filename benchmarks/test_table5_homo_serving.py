"""Table 5: serving performance on homogeneous clusters 9-11.

Expected shape, per the paper: LLM-PQ still wins, but by less than on
the heterogeneous clusters (Table 4) — with uniform devices the
partition trick loses its edge and only micro-batch sizing + adaptive
precision remain.  On cluster 9 (4xT4, memory-starved) FlexGen-int8 is
genuinely competitive.
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import compare_schemes
from repro.hardware import PAPER_CLUSTERS, paper_cluster

HOMO_CLUSTERS = (9, 10, 11)
SETTINGS = {9: (2, False, 1.0), 10: (4, True, 1.0), 11: (4, True, 10.0)}


def _run_cluster(cid, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    cluster = paper_cluster(cid)
    group, heur, theta = SETTINGS[cid]
    schemes = ("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ")
    if model.startswith("bloom"):
        schemes = ("PipeEdge", "Uniform", "LLM-PQ")
    reports = compare_schemes(
        model, cluster, workload,
        schemes=schemes, group_size=group, use_heuristic=heur, theta=theta,
        latency_model=latency_models(model),
    )
    ref = next(r for r in reports if r.scheme == "PipeEdge")
    return [
        {
            "cluster": cid,
            "model": model,
            "scheme": r.scheme,
            "ppl": r.perplexity if r.feasible else None,
            "latency_s": r.latency if r.feasible else None,
            "throughput": r.throughput,
            "x_vs_pipeedge": r.speedup_over(ref) if r.feasible else None,
        }
        for r in reports
    ]


@pytest.mark.parametrize("cid", HOMO_CLUSTERS)
def test_table5_cluster(cid, benchmark, latency_models, default_workload):
    rows = benchmark.pedantic(
        _run_cluster, args=(cid, latency_models, default_workload),
        rounds=1, iterations=1,
    )
    print_table(rows, title=f"Table 5 — cluster {cid} ({PAPER_CLUSTERS[cid]})")
    save_results(f"table5_cluster{cid}", rows)

    by = {r["scheme"]: r for r in rows}
    llmpq = by["LLM-PQ"]
    assert llmpq["throughput"] > 0
    # LLM-PQ matches or beats the pipeline baselines (PipeEdge/Uniform);
    # FlexGen-int8 may tie on the memory-starved T4 cluster (paper: it
    # actually wins cluster 9)
    assert llmpq["throughput"] >= 0.98 * by["PipeEdge"]["throughput"]
    assert llmpq["throughput"] >= 0.98 * by["Uniform"]["throughput"]
    if "FlexGen-int8" in by and by["FlexGen-int8"]["throughput"] > 0:
        assert llmpq["throughput"] >= 0.7 * by["FlexGen-int8"]["throughput"]


def test_table5_gains_smaller_than_hetero(benchmark, latency_models, default_workload):
    """Sec. 6.4's headline: homogeneous gains < heterogeneous gains."""

    def run():
        hetero = _run_cluster_pair(3, latency_models, default_workload)
        homo = _run_cluster_pair(9, latency_models, default_workload)
        return hetero, homo

    def _run_cluster_pair(cid, latency_models, workload):
        model = PAPER_CLUSTERS[cid]
        cluster = paper_cluster(cid)
        group, heur, theta = (2, False, 1.0)
        reports = compare_schemes(
            model, cluster, workload,
            schemes=("PipeEdge", "LLM-PQ"), group_size=group, theta=theta,
            use_heuristic=heur, latency_model=latency_models(model),
        )
        by = {r.scheme: r for r in reports}
        return by["LLM-PQ"].speedup_over(by["PipeEdge"])

    hetero_gain, homo_gain = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nspeedup over PipeEdge: hetero(c3)={hetero_gain:.2f}x homo(c9)={homo_gain:.2f}x")
    save_results("table5_gain_comparison", {"hetero": hetero_gain, "homo": homo_gain})
    assert hetero_gain > homo_gain
