"""Ablation: the memory model's embedding + workspace terms matter.

DESIGN.md calls out the paper's Sec.-2.2 point: the embedding table and
peak temporary workspace must be budgeted per stage, *especially* on
low-memory GPUs.  We re-plan cluster 4 (P100-12G head stages) with a
naive capacity model that ignores those terms, then check the resulting
plan against the full memory accounting: it should OOM (or be forced
into a strictly worse configuration), while the full model's plan is
feasible by construction.
"""

from repro.bench.tables import print_table, save_results
from repro.core.ilp import BitAssignmentILP
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import paper_cluster
from repro.sim.pipeline import simulate_pipeline


class _NaiveILP(BitAssignmentILP):
    """Capacity model without embedding / workspace / logits terms."""

    def _device_capacity(self, j: int) -> float:
        from repro.cost.memory import FRAMEWORK_OVERHEAD_BYTES

        return self.devices[j].spec.memory_bytes - FRAMEWORK_OVERHEAD_BYTES


def _plan_with(ilp_cls, optimizer, mb_p, mb_d):
    ordering = list(optimizer.cluster.devices)
    ilp = ilp_cls(
        cfg=optimizer.cfg,
        workload=optimizer.workload,
        devices=ordering,
        latency_model=optimizer.latency_model,
        indicator=optimizer.indicator.grouped(optimizer.config.group_size),
        prefill_microbatch=mb_p,
        decode_microbatch=mb_d,
        group_size=optimizer.config.group_size,
        theta=optimizer.config.theta,
    )
    sol = ilp.solve()
    if not sol.feasible:
        return None
    return optimizer.plan_from_solution(ordering, sol, ilp, mb_p, mb_d)


def test_ablation_memory_terms(benchmark, latency_models, default_workload):
    def run():
        optimizer = LLMPQOptimizer(
            "opt-30b", paper_cluster(4), default_workload,
            config=PlannerConfig(group_size=4, theta=1.0),
            latency_model=latency_models("opt-30b"),
        )
        # large prefill micro-batch => large workspace: where the naive
        # model goes wrong
        full = _plan_with(BitAssignmentILP, optimizer, 32, 32)
        naive = _plan_with(_NaiveILP, optimizer, 32, 32)
        rows = []
        for label, plan in (("full memory model", full), ("naive (no extras)", naive)):
            if plan is None:
                rows.append({"model": label, "planner": "infeasible", "ground_truth": "-"})
                continue
            res = simulate_pipeline(plan, optimizer.cluster)
            rows.append(
                {
                    "model": label,
                    "planner": "feasible",
                    "ground_truth": "OK" if res.feasible else f"OOM stages {list(res.oom_stages)}",
                }
            )
        return rows, full, naive, optimizer

    rows, full, naive, optimizer = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(rows, title="Ablation — memory-model terms (cluster 4, mb=32)")
    save_results("ablation_memory_terms", rows)

    # the complete model never produces an OOM plan
    if full is not None:
        assert simulate_pipeline(full, optimizer.cluster).feasible
    # the naive model claims feasibility but its plan OOMs on real memory
    assert naive is not None, "naive model should happily produce a plan"
    naive_res = simulate_pipeline(naive, optimizer.cluster)
    assert not naive_res.feasible, "dropping embedding/workspace terms must backfire"
