"""Fig. 9: LLM-PQ vs pure adaptive quantization (adabits).

adabits solves the quality-only ILP — best bitwidths that fit memory,
with no latency-aware partition or micro-batch choice.  The comparison
isolates the value of *jointly* deciding precision, partition and
micro-batches: LLM-PQ should win throughput on every cluster (clusters
3, 5, 6, 9 at s=512; cluster 4 at s=128, as in the paper).
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import compare_schemes
from repro.hardware import PAPER_CLUSTERS, paper_cluster
from repro.workload import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD

CASES = {
    3: (DEFAULT_WORKLOAD, 2, False),
    4: (SHORT_PROMPT_WORKLOAD, 2, False),
    5: (DEFAULT_WORKLOAD, 4, True),
    6: (DEFAULT_WORKLOAD, 2, False),
    9: (DEFAULT_WORKLOAD, 2, False),
}


def _run(cid, latency_models):
    workload, group, heur = CASES[cid]
    model = PAPER_CLUSTERS[cid]
    reports = compare_schemes(
        model, paper_cluster(cid), workload,
        schemes=("adabits", "LLM-PQ"), group_size=group, use_heuristic=heur,
        theta=1.0, latency_model=latency_models(model),
    )
    by = {r.scheme: r for r in reports}
    return {
        "cluster": cid,
        "model": model,
        "adabits_tput": by["adabits"].throughput,
        "llmpq_tput": by["LLM-PQ"].throughput,
        "speedup": by["LLM-PQ"].speedup_over(by["adabits"]),
    }


@pytest.mark.parametrize("cid", sorted(CASES))
def test_fig9_vs_adabits(cid, benchmark, latency_models):
    row = benchmark.pedantic(_run, args=(cid, latency_models), rounds=1, iterations=1)
    print_table([row], title=f"Fig. 9 — LLM-PQ vs adabits, cluster {cid}")
    save_results(f"fig9_cluster{cid}", row)
    assert row["llmpq_tput"] > 0
    # joint optimization beats pure adaptive quantization everywhere
    assert row["speedup"] >= 1.0
