"""Extension: quantized KV cache (KV4/KV8) as an admission multiplier.

Per-stage KV bitwidth is now a plan dimension: the planner's memory
model charges packed KV bytes per request, the decode roofline streams
the KV at each stage's own bitwidth, and the continuous-batching
admission ledger hands out the freed headroom as extra in-flight
requests.  This benchmark pins the Sec.-7 trade-off end to end on a
memory-tight serving scenario — opt-30b at 4-bit weights on four
T4-16Gs, short prompts with 1024-token generations, arrivals saturating
the decode capacity:

* **max in-flight** — the worst-case concurrent batch the plan's KV
  headroom admits quadruples from KV16 to KV4 (charge is 4x smaller);
* **throughput** — the deeper decode batch plus the 4x-lighter KV
  stream roughly doubles sustained tokens/s in the online simulator;
* **byte-identity** — every ``OnlineResult`` must match the scalar
  reference oracle exactly at every KV bitwidth.

The committed headline records the measured ratios; the CI smoke
replays a short cut of the same scenario and guards the ISSUE floor —
KV4 at the same memory budget admits >= 1.5x the in-flight requests of
KV16 and sustains measurably higher throughput.
"""

import json
import time

import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan
from repro.hardware import make_cluster
from repro.sim.online import OnlineRequest, max_admissible_batch, simulate_online
from repro.workload import Workload

PROMPT, GEN = 32, 1024
KV_LEVELS = (16, 8, 4)

#: ISSUE acceptance floors: KV4 vs KV16 at the same memory budget.
MAX_INFLIGHT_FLOOR = 1.5
THROUGHPUT_FLOOR = 1.1


def _scenario():
    cluster = make_cluster([("T4-16G", 4)], name="bench-t4x4")
    w = Workload(prompt_len=PROMPT, gen_len=GEN, global_batch=16)
    plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    return plan, cluster


def _saturating_trace(n_requests, rate=2.0):
    """Uniform long-decode arrivals faster than the KV16 plan drains."""
    return [
        OnlineRequest(arrival=i / rate, prompt_len=PROMPT, gen_len=GEN)
        for i in range(n_requests)
    ]


def _measure(plan, cluster, trace, kv_bits):
    """(max_inflight, vectorized result, wall_s) with oracle identity."""
    p = plan.with_kv_bits(kv_bits)
    inflight = max_admissible_batch(
        p, prompt_len=PROMPT, gen_len=GEN, cap=4096
    )
    t0 = time.perf_counter()
    vec = simulate_online(p, cluster, trace, policy="continuous")
    wall = time.perf_counter() - t0
    oracle = simulate_online(
        p, cluster, trace, policy="continuous", engine="reference"
    )
    assert vec == oracle, (
        f"kv{kv_bits}: vectorized engine diverged from the scalar oracle"
    )
    return inflight, vec, wall


def test_ext_kv_quant_headline():
    plan, cluster = _scenario()
    trace = _saturating_trace(1600)
    rows = []
    stats = {}
    for kv in KV_LEVELS:
        inflight, res, wall = _measure(plan, cluster, trace, kv)
        stats[kv] = (inflight, res)
        rows.append(
            {
                "kv_bits": kv,
                "max_inflight": inflight,
                "throughput_tok_s": round(res.throughput, 1),
                "mean_inflight": round(res.mean_inflight, 1),
                "completed": res.completed,
                "p95_latency_s": round(res.p95_latency, 1),
                "wall_s": round(wall, 3),
            }
        )
    print_table(rows, title="Ext — quantized KV cache (opt-30b, T4-16G x4)")

    mi16, r16 = stats[16]
    mi4, r4 = stats[4]
    inflight_gain = mi4 / mi16
    throughput_gain = r4.throughput / r16.throughput
    assert inflight_gain >= MAX_INFLIGHT_FLOOR, (
        f"KV4 admits only {inflight_gain:.2f}x the in-flight of KV16 "
        f"(needs >= {MAX_INFLIGHT_FLOOR}x)"
    )
    assert throughput_gain >= THROUGHPUT_FLOOR, (
        f"KV4 throughput only {throughput_gain:.2f}x KV16 "
        f"(needs >= {THROUGHPUT_FLOOR}x)"
    )
    save_results(
        "ext_kv_quant",
        {
            "scenario": "opt-30b 4-bit weights, T4-16G x4, continuous "
                        f"policy, {len(trace)} saturating requests "
                        f"(prompt {PROMPT}, gen {GEN})",
            "rows": rows,
            "max_inflight_gain_kv4_vs_kv16": round(inflight_gain, 2),
            "throughput_gain_kv4_vs_kv16": round(throughput_gain, 2),
            "results_identical": True,
        },
    )


def test_ext_kv_quant_smoke():
    """CI guard: the committed headline holds the ISSUE floors, and a
    short cut of the scenario reproduces them — >= 1.5x max in-flight
    and measurably higher throughput for KV4 vs KV16 at the same memory
    budget, byte-identical to the reference oracle."""
    baseline_path = RESULTS_DIR / "ext_kv_quant.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["results_identical"] is True
    assert committed["max_inflight_gain_kv4_vs_kv16"] >= MAX_INFLIGHT_FLOOR
    assert committed["throughput_gain_kv4_vs_kv16"] >= THROUGHPUT_FLOOR

    plan, cluster = _scenario()
    trace = _saturating_trace(400)
    mi16, r16, _ = _measure(plan, cluster, trace, 16)
    mi4, r4, _ = _measure(plan, cluster, trace, 4)
    assert mi4 >= MAX_INFLIGHT_FLOOR * mi16
    assert r4.throughput >= THROUGHPUT_FLOOR * r16.throughput
