"""Table 7: serving with shorter prompts (s=128, n=200).

Expected shapes: LLM-PQ still wins clusters 1, 4 and 6 without quality
loss, but the cluster-4 gain shrinks relative to the s=512 workload —
small prompts with long generation make serving look single-phase,
which is PipeEdge's home turf (the paper's own explanation).
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import compare_schemes
from repro.hardware import PAPER_CLUSTERS, paper_cluster
from repro.workload import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD

CLUSTERS = (1, 4, 6)
#: (group, theta).  The decode-heavy workload makes aggressive
#: quantization very profitable, so theta is raised on cluster 1 to hold
#: quality at the paper's level (it reports no PPL regression there).
SETTINGS = {1: (2, 5.0), 4: (2, 10.0), 6: (2, 10.0)}


def _run(cid, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    group, theta = SETTINGS[cid]
    reports = compare_schemes(
        model, paper_cluster(cid), workload,
        schemes=("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ"),
        group_size=group, theta=theta, latency_model=latency_models(model),
    )
    ref = next(r for r in reports if r.scheme == "PipeEdge")
    return [
        {
            "cluster": cid,
            "scheme": r.scheme,
            "ppl": r.perplexity if r.feasible else None,
            "latency_s": r.latency if r.feasible else None,
            "throughput": r.throughput,
            "x_vs_pipeedge": r.speedup_over(ref) if r.feasible else None,
        }
        for r in reports
    ]


@pytest.mark.parametrize("cid", CLUSTERS)
def test_table7_short_prompt_cluster(cid, benchmark, latency_models, short_workload):
    rows = benchmark.pedantic(
        _run, args=(cid, latency_models, short_workload), rounds=1, iterations=1
    )
    print_table(rows, title=f"Table 7 — cluster {cid}, s=128 n=200")
    save_results(f"table7_cluster{cid}", rows)

    by = {r["scheme"]: r for r in rows}
    assert by["LLM-PQ"]["throughput"] >= 0.98 * by["PipeEdge"]["throughput"]
    assert by["LLM-PQ"]["throughput"] >= 0.98 * by["Uniform"]["throughput"]
    # no quality degradation (paper: even improvements)
    ppls = [r["ppl"] for n, r in by.items() if n != "LLM-PQ" and r["ppl"] is not None]
    assert by["LLM-PQ"]["ppl"] <= min(ppls) + 0.3


def test_table7_cluster4_gain_shrinks_vs_long_prompts(benchmark, latency_models):
    """The paper's Sec.-6.6 note: cluster 4's speedup with s=128 is much
    lower than with s=512 (the system approaches one-phase behaviour)."""

    def gain(workload):
        rows = _run(4, latency_models, workload)
        by = {r["scheme"]: r for r in rows}
        return by["LLM-PQ"]["x_vs_pipeedge"]

    def run():
        return gain(SHORT_PROMPT_WORKLOAD), gain(DEFAULT_WORKLOAD)

    short_gain, long_gain = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncluster 4 speedup: s=128 -> {short_gain:.2f}x, s=512 -> {long_gain:.2f}x")
    save_results("table7_cluster4_gain", {"short": short_gain, "long": long_gain})
    assert short_gain <= long_gain
