"""Extension analysis: how the LLM-PQ gain scales with heterogeneity.

Tables 4/5 suggest the gain over PipeEdge grows with how *mixed* the
cluster is.  This sweep makes the claim a curve: fix four devices, vary
the T4:V100 split from homogeneous (4:0) to maximally mixed, and measure
the LLM-PQ / PipeEdge throughput ratio at each point.
"""

from repro.bench.tables import print_table, save_results
from repro.core.api import compare_schemes
from repro.hardware import make_cluster

SPLITS = [(4, 0), (3, 1), (2, 2), (0, 4)]


def _gain(n_t4, n_v100, latency_models, workload):
    spec = []
    if n_t4:
        spec.append(("T4-16G", n_t4))
    if n_v100:
        spec.append(("V100-32G", n_v100))
    cluster = make_cluster(spec, name=f"sweep-{n_t4}t4-{n_v100}v100")
    reports = compare_schemes(
        "opt-30b", cluster, workload,
        schemes=("PipeEdge", "LLM-PQ"), group_size=4, theta=1.0,
        latency_model=latency_models("opt-30b"),
    )
    by = {r.scheme: r for r in reports}
    return {
        "t4": n_t4,
        "v100": n_v100,
        "pipeedge_tput": by["PipeEdge"].throughput,
        "llmpq_tput": by["LLM-PQ"].throughput,
        "gain": by["LLM-PQ"].speedup_over(by["PipeEdge"]),
    }


def test_ext_heterogeneity_sweep(benchmark, latency_models, default_workload):
    def run():
        return [_gain(t, v, latency_models, default_workload) for t, v in SPLITS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(rows, title="Extension — gain vs T4:V100 mix (OPT-30b, 4 devices)")
    save_results("ext_heterogeneity_sweep", rows)

    by = {(r["t4"], r["v100"]): r for r in rows}
    # LLM-PQ never loses anywhere on the sweep
    assert all(r["gain"] >= 0.98 for r in rows)
    # the most heterogeneous mixes gain at least as much as the pure-V100
    # cluster (where PipeEdge's single-phase balancing is already optimal)
    hetero_best = max(by[(3, 1)]["gain"], by[(2, 2)]["gain"])
    assert hetero_best >= by[(0, 4)]["gain"] * 0.95
    assert hetero_best > 1.1
