"""Extension: planner search-engine speedup (dedup + cache + prune + jobs).

Compares the legacy serial Algorithm-1 loop (one scalar-assembled MILP
per candidate, no sharing) against the :mod:`repro.core.search` engine
on the appendix's three-node scenario (2x P100 + 2x V100 + 2x A100
serving OPT-66b).  The engine must return the *same* best objective and
an equivalent plan — the speedup comes purely from avoided work:
memoized cost-model queries, vectorized MILP assembly, LP-bound
incumbent pruning, and parallel candidate solves.
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import make_cluster

THREE_NODE = [("P100-12G", 2), ("V100-32G", 2), ("A100-40G", 2)]
SMALL = [("T4-16G", 2), ("V100-32G", 1)]


def _optimizer(model_name, cluster_spec, latency_models, workload, *, n_jobs):
    return LLMPQOptimizer(
        model_name,
        make_cluster(cluster_spec, name="bench"),
        workload,
        config=PlannerConfig(
            theta=10.0, group_size=4, prefill_mb_cap=8,
            decode_mb_candidates=(8, 32), n_jobs=n_jobs,
        ),
        latency_model=latency_models(model_name),
    )


def _plan_signature(plan):
    return (
        plan.layer_bits,
        tuple(st.device.type_name for st in plan.stages),
        tuple(len(st.layer_bits) for st in plan.stages),
        plan.prefill_microbatch,
        plan.decode_microbatch,
    )


def _compare(model_name, cluster_spec, latency_models, workload, *, n_jobs):
    legacy = _optimizer(
        model_name, cluster_spec, latency_models, workload, n_jobs=1
    ).optimize_legacy()
    engine = _optimizer(
        model_name, cluster_spec, latency_models, workload, n_jobs=n_jobs
    ).optimize()
    return legacy, engine


def _rows(legacy, engine):
    st = engine.stats
    speedup = legacy.total_seconds / max(engine.total_seconds, 1e-9)
    return [
        {"search": "legacy serial", "wall_s": round(legacy.total_seconds, 3),
         "objective": round(legacy.objective, 6), "solved": len(legacy.candidates),
         "pruned": 0, "cache_hits": 0, "speedup": 1.0},
        {"search": f"engine (jobs={st.n_jobs})",
         "wall_s": round(engine.total_seconds, 3),
         "objective": round(engine.objective, 6), "solved": st.solved,
         "pruned": st.pruned, "cache_hits": st.cache_hits,
         "speedup": round(speedup, 2)},
    ]


def test_ext_planner_speed_three_node(benchmark, latency_models, default_workload):
    """Headline number: >= 2x wall-clock on the three-node OPT-66b grid
    at ``n_jobs=4``, with the identical-result guarantee asserted."""
    legacy, engine = benchmark.pedantic(
        _compare,
        args=("opt-66b", THREE_NODE, latency_models, default_workload),
        kwargs={"n_jobs": 4},
        rounds=1, iterations=1,
    )
    assert legacy.feasible and engine.feasible
    assert engine.objective == pytest.approx(legacy.objective, abs=1e-6)
    assert _plan_signature(engine.plan) == _plan_signature(legacy.plan)

    rows = _rows(legacy, engine)
    print_table(rows, title="Ext — planner search-engine speedup (three-node)")
    save_results(
        "ext_planner_speed",
        {"scenario": "three-node OPT-66b", "rows": rows,
         "stats": engine.stats.row(),
         "speedup": rows[1]["speedup"]},
    )
    assert rows[1]["speedup"] >= 2.0


def test_ext_planner_speed_smoke(latency_models):
    """CI smoke guard on a small cluster: identical result, and the
    engine never regresses below the legacy loop."""
    from repro.workload import Workload

    wl = Workload(prompt_len=128, gen_len=16, global_batch=8)
    legacy, engine = _compare(
        "opt-13b", SMALL, latency_models, wl, n_jobs=2
    )
    assert legacy.feasible and engine.feasible
    assert engine.objective == pytest.approx(legacy.objective, abs=1e-6)
    assert _plan_signature(engine.plan) == _plan_signature(legacy.plan)
    assert engine.stats.cache_hits > 0
    assert engine.total_seconds < legacy.total_seconds * 0.9
