"""Extension: the replica fleet vs. one static big pipeline.

The serving core now scales *out*, not just up: ``repro.fleet`` routes
an arrival stream across N independently planned pipeline replicas
(TTFT-aware greedy routing over per-replica load estimates) and a
coordinated autoscaler grows/shrinks the replica pool from windowed
utilization — scale-up activates an idle pre-planned slot (or plans a
new one through the search engine), scale-down quiesces-and-drains.

The headline replays a **100k-request diurnal trace** whose peak rate
is ~2x (and trough ~0.1x) the capacity of the best static
single-replica plan on the same silicon budget:

* **static baseline** — one 4xA100 pipeline, always on, provisioned
  for the whole run;
* **fleet** — four 2xA100 replicas behind the TTFT router, autoscaled
  with one replica active at trough.

At **no more provisioned GPU-hours than the static baseline** the fleet
must hold a **>= 1.5x p99-TTFT SLO-attainment ratio**: the static
pipeline drowns in its peak-hours queue (TTFT p99 explodes for half the
cycle) while the fleet adds capacity for exactly those hours and gives
it back at the trough.  Per-pool scale events land in the results JSON.

The CI smoke replays a 20k-request cut of the same scenario and guards
a conservative 1.3x attainment-ratio floor plus the GPU-hours parity.
"""

import json

import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan
from repro.fleet import AutoscaleConfig, FleetAutoscaler, SimReplica, serve_fleet
from repro.hardware import make_cluster
from repro.workload import Workload
from repro.workload.traces import sample_diurnal_arrivals

#: decode tokens/s the 4xA100 4-bit opt-30b plan sustains at full batch
#: (same constant the trace-engine benchmark pins its overload to)
_STATIC_CAPACITY_TOK_S = 1739.0

#: TTFT SLO (virtual seconds): generous against an unloaded pipeline,
#: hopeless once a static pipeline queues a peak hour of arrivals
_SLO_TTFT = 5.0

_N_REPLICAS = 4


def _plans():
    w = Workload(prompt_len=24, gen_len=64, global_batch=16)
    static_cluster = make_cluster([("A100-80G", 4)], name="fleet-static")
    static_plan = ExecutionPlan.uniform(
        "opt-30b", static_cluster.devices, w, bits=4
    )
    replica_cluster = make_cluster([("A100-80G", 2)], name="fleet-replica")
    replica_plan = ExecutionPlan.uniform(
        "opt-30b", replica_cluster.devices, w, bits=4
    )
    return static_plan, static_cluster, replica_plan, replica_cluster


def _scenario(n_requests):
    """Diurnal trace around the static plan's capacity: peak ~2x, trough
    ~0.1x, two full cycles over the run."""
    probe = sample_diurnal_arrivals(
        35.0, 200.0, amplitude=0.9, period=6000.0,
        seed=13, max_prompt=48, max_gen=96,
    )
    rate = 1.05 * _STATIC_CAPACITY_TOK_S / float(probe.gen_lens.mean())
    duration = n_requests / rate
    trace = sample_diurnal_arrivals(
        rate, duration, amplitude=0.9, period=duration / 2.0,
        seed=13, max_prompt=48, max_gen=96,
    )
    return trace, duration


def _run(n_requests):
    static_plan, static_cluster, replica_plan, replica_cluster = _plans()
    trace, duration = _scenario(n_requests)

    static = serve_fleet(
        [SimReplica(0, static_plan, static_cluster)],
        trace, slo_ttft=_SLO_TTFT,
    )

    reps = [
        SimReplica(i, replica_plan, replica_cluster)
        for i in range(_N_REPLICAS)
    ]
    window = duration / 64.0
    # thresholds are in units of the router's *conservative* batch-8
    # service estimate, which overstates fused large-batch cost ~2x —
    # high=2.0 therefore targets near-full real utilization, which is
    # what GPU-hours parity with an always-saturated static pipeline
    # demands
    autoscaler = FleetAutoscaler(AutoscaleConfig(
        window=window, high=2.0, low=1.5, hysteresis=2,
        cooldown=window, min_active=1,
    ))
    fleet = serve_fleet(
        reps, trace, router="ttft", autoscaler=autoscaler,
        active=[0], slo_ttft=_SLO_TTFT,
    )
    return static, fleet, len(trace)


def _rows(static, fleet):
    return [
        {
            "config": "static 4xA100 (always on)",
            "gpu_hours": round(static.gpu_hours, 2),
            "ttft_p99_s": round(static.ttft_p99, 2),
            "slo_attainment": round(static.ttft_attainment, 4),
            "completed": static.completed,
            "rejected": static.rejected,
        },
        {
            "config": f"fleet {_N_REPLICAS}x2xA100 (ttft router, autoscaled)",
            "gpu_hours": round(fleet.gpu_hours, 2),
            "ttft_p99_s": round(fleet.ttft_p99, 2),
            "slo_attainment": round(fleet.ttft_attainment, 4),
            "completed": fleet.completed,
            "rejected": fleet.rejected,
        },
    ]


def test_ext_fleet_headline():
    static, fleet, n_req = _run(100_000)
    rows = _rows(static, fleet)
    print_table(rows, title="Ext — fleet vs static at equal GPU-hours")
    ratio = fleet.ttft_attainment / max(static.ttft_attainment, 1e-9)

    assert fleet.gpu_hours <= 1.02 * static.gpu_hours, (
        f"fleet used {fleet.gpu_hours:.2f} GPU-h vs static "
        f"{static.gpu_hours:.2f} — not an equal-cost comparison"
    )
    assert ratio >= 1.5, (
        f"fleet SLO attainment only {ratio:.2f}x the static baseline "
        f"({fleet.ttft_attainment:.3f} vs {static.ttft_attainment:.3f})"
    )
    ups = [e for e in fleet.scale_events if e.action == "scale-up"]
    downs = [e for e in fleet.scale_events if e.action == "scale-down"]
    assert ups and downs, "the diurnal cycle must drive scaling both ways"

    save_results(
        "ext_fleet",
        {
            "scenario": "opt-30b 4-bit, diurnal trace (peak ~2x / trough "
                        f"~0.1x static capacity, {n_req} requests), TTFT "
                        f"SLO {_SLO_TTFT:g}s; static 4xA100 always-on vs "
                        f"{_N_REPLICAS}x2xA100 fleet, ttft router, "
                        "autoscaled min_active=1",
            "rows": rows,
            "requests": n_req,
            "slo_ttft_s": _SLO_TTFT,
            "attainment_ratio": round(ratio, 2),
            "ttft_p99_ratio": round(
                static.ttft_p99 / max(fleet.ttft_p99, 1e-9), 2
            ),
            "gpu_hours_static": round(static.gpu_hours, 2),
            "gpu_hours_fleet": round(fleet.gpu_hours, 2),
            "scale_ups": len(ups),
            "scale_downs": len(downs),
            "pools": fleet.to_json()["pools"],
        },
    )


def test_ext_fleet_smoke():
    """CI guard: a 20k-request cut of the headline scenario must keep
    the fleet at GPU-hours parity and >= 1.3x SLO attainment (the
    committed 1.5x+ headline ratio is informational — the shorter trace
    gives the autoscaler fewer windows to amortize its scale-up lag)."""
    baseline_path = RESULTS_DIR / "ext_fleet.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["attainment_ratio"] >= 1.5
    assert committed["gpu_hours_fleet"] <= 1.02 * committed["gpu_hours_static"]

    static, fleet, _ = _run(20_000)
    assert fleet.gpu_hours <= 1.05 * static.gpu_hours
    ratio = fleet.ttft_attainment / max(static.ttft_attainment, 1e-9)
    assert ratio >= 1.3, (
        f"smoke attainment ratio {ratio:.2f}x fell below the 1.3x floor "
        f"(committed headline {committed['attainment_ratio']:.2f}x at 100k)"
    )
    assert any(e.action == "scale-up" for e in fleet.scale_events)
