"""Fig. 8: sensitivity to the user quality scalar theta.

Sweeping theta on cluster 9 (OPT-30b) and cluster 5 (OPT-66b): larger
theta puts more objective weight on model quality, so throughput should
fall (weakly) and perplexity improve (weakly) — the knob the paper hands
to the user.
"""

import numpy as np
import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import evaluate_plan, plan_llmpq
from repro.hardware import PAPER_CLUSTERS, paper_cluster

THETAS = (0.1, 1.0, 10.0, 100.0)
CASES = {9: "opt-30b", 5: "opt-66b"}


def _sweep(cid, latency_models, workload):
    model = CASES[cid]
    cluster = paper_cluster(cid)
    lat = latency_models(model)
    rows = []
    for theta in THETAS:
        res = plan_llmpq(
            model, cluster, workload, theta=theta, group_size=4,
            use_heuristic=(cid == 5), latency_model=lat,
            prefill_mb_cap=8, decode_mb_candidates=(8, 32),
        )
        rep = evaluate_plan(res.plan, cluster)
        rows.append(
            {
                "cluster": cid,
                "theta": theta,
                "throughput": rep.throughput,
                "ppl": rep.perplexity,
                "avg_bits": rep.average_bits,
            }
        )
    return rows


@pytest.mark.parametrize("cid", sorted(CASES))
def test_fig8_theta_sensitivity(cid, benchmark, latency_models, default_workload):
    rows = benchmark.pedantic(
        _sweep, args=(cid, latency_models, default_workload), rounds=1, iterations=1
    )
    print_table(rows, title=f"Fig. 8 — theta sweep, cluster {cid} ({CASES[cid]})")
    save_results(f"fig8_theta_cluster{cid}", rows)

    ppls = [r["ppl"] for r in rows]
    tputs = [r["throughput"] for r in rows]
    bits = [r["avg_bits"] for r in rows]
    # quality weakly improves with theta; precision weakly rises
    assert all(a >= b - 1e-9 for a, b in zip(ppls, ppls[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(bits, bits[1:]))
    # throughput weakly falls (allow plateaus from discrete bit menus)
    assert all(a >= b - 1e-6 for a, b in zip(tputs, tputs[1:]))
    # the knob actually moves something across the sweep
    assert ppls[0] > ppls[-1] or bits[-1] > bits[0]
