"""Extension: the vectorized event-batch trace engine at million scale.

``simulate_online(engine="analytic")`` now runs the continuous-batching
online simulation through :mod:`repro.sim.trace_engine` — column-major
request state, vectorized admission scans, closed-form decode-run
pricing through memoized per-(stage, bits) decode constants, and a
boundary-stretch mode that schedules whole runs of token boundaries per
Python-level step.  The displaced scalar loop survives as the equality
oracle behind ``engine="reference"``.

The headline replays a **one-million-request** drifting diurnal trace
(3x overloaded against the plan's decode capacity, live replanning
enabled) through both engines and requires:

* **byte-identical results** — every ``OnlineResult`` field, including
  the drift/replan counters, must match the scalar oracle exactly;
* **>= 50x speedup** — the vectorized engine must finish the million
  requests in single-digit seconds where the oracle takes minutes.

Wall time is machine-dependent, so the committed baseline records the
speedup ratio; the CI smoke replays a 100k-request cut of the same
scenario and guards a conservative 8x floor plus byte-identity.
"""

import json
import time
from dataclasses import replace

import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan
from repro.hardware import make_cluster
from repro.runtime.replan import DriftConfig, workload_refit_replanner
from repro.sim.online import simulate_online
from repro.workload import Workload
from repro.workload.traces import sample_diurnal_arrivals

#: decode tokens/s the A100x4 4-bit opt-30b plan sustains at full batch —
#: measured once from the analytic engine; the trace rate is pinned at 3x
#: this capacity so admission control and drift replanning stay loaded.
_CAPACITY_TOK_S = 1739.0
_OVERLOAD = 3.0


def _scenario(n_requests):
    cluster = make_cluster([("A100-80G", 4)], name="bench-a100x4")
    w = Workload(prompt_len=24, gen_len=64, global_batch=16)
    plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    plan = replace(plan, meta={**plan.meta, "kv_bits": 4})
    probe = sample_diurnal_arrivals(
        35.0, 200.0, amplitude=0.35, period=6000.0,
        seed=11, max_prompt=48, max_gen=96,
    )
    rate = _OVERLOAD * (_CAPACITY_TOK_S / float(probe.gen_lens.mean()))
    duration = n_requests / rate
    trace = sample_diurnal_arrivals(
        rate, duration, amplitude=0.35, period=duration / 4.0,
        seed=11, max_prompt=48, max_gen=96,
    )
    drift = DriftConfig(
        window=duration / 16.0, threshold=0.4, hysteresis=2,
        cooldown=duration / 8.0, rebuild_seconds=1.0,
    )
    return plan, cluster, trace, drift


def _run(plan, cluster, trace, drift, *, engine):
    t0 = time.perf_counter()
    res = simulate_online(
        plan, cluster, trace, policy="continuous", engine=engine,
        drift=drift, replanner=workload_refit_replanner,
    )
    return res, time.perf_counter() - t0


def _compare(n_requests, repeats=1):
    plan, cluster, trace, drift = _scenario(n_requests)
    vec_s, ref_s = [], []
    vec = ref = None
    for _ in range(repeats):
        vec, t = _run(plan, cluster, trace, drift, engine="analytic")
        vec_s.append(t)
        ref, t = _run(plan, cluster, trace, drift, engine="reference")
        ref_s.append(t)
    return vec, ref, min(vec_s), min(ref_s), len(trace)


def _check_identical(vec, ref):
    assert vec == ref, "vectorized engine diverged from the scalar oracle"
    assert vec.drift_triggers == ref.drift_triggers
    assert vec.migrations == ref.migrations
    assert vec.replans == ref.replans


def test_ext_trace_engine_headline():
    vec, ref, vec_t, ref_t, n_req = _compare(1_000_000)
    _check_identical(vec, ref)
    speedup = ref_t / vec_t
    rows = [
        {"engine": "reference (scalar oracle)", "wall_s": round(ref_t, 3),
         "iterations": ref.iterations, "speedup": 1.0},
        {"engine": "event-batch (vectorized)", "wall_s": round(vec_t, 3),
         "iterations": vec.iterations, "speedup": round(speedup, 1)},
    ]
    print_table(rows, title="Ext — million-request trace engine")
    assert speedup >= 50.0, (
        f"vectorized engine only {speedup:.1f}x faster (needs >= 50x)"
    )
    save_results(
        "ext_trace_engine",
        {
            "scenario": "opt-30b 4-bit (kv 4-bit), A100-80G x4, continuous "
                        "policy, diurnal 3x-overload drift trace "
                        f"({n_req} requests), live replanning on",
            "rows": rows,
            "requests": n_req,
            "speedup": round(speedup, 1),
            "vectorized_wall_s": round(vec_t, 3),
            "reference_wall_s": round(ref_t, 3),
            "iterations": vec.iterations,
            "mean_inflight": round(vec.mean_inflight, 1),
            "drift_triggers": vec.drift_triggers,
            "migrations": vec.migrations,
            "results_identical": True,
        },
    )


def test_ext_trace_engine_smoke():
    """CI guard: byte-identity on a 100k-request cut of the headline
    scenario, and the speedup holds a conservative 8x floor (the
    committed 50x+ ratio is informational — wall clock and the fixed
    per-run overheads are machine-dependent, and the engine's advantage
    grows with trace length)."""
    baseline_path = RESULTS_DIR / "ext_trace_engine.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["results_identical"] is True
    assert committed["speedup"] >= 50.0
    vec, ref, vec_t, ref_t, _ = _compare(100_000, repeats=2)
    _check_identical(vec, ref)
    speedup = ref_t / vec_t
    assert speedup >= 8.0, (
        f"speedup {speedup:.1f}x fell below the 8x smoke floor "
        f"(committed headline {committed['speedup']:.1f}x at 1M requests)"
    )
