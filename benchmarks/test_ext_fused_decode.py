"""Extension: fused ragged-batch decode vs the per-request oracle.

Measures the tentpole effect of making fused batched decode the default
execution mode, on two axes:

* **Real runtime** — tiny-8l on the thread-pipelined NumPy engine
  serving 8 / 16 / 32 co-resident requests under
  ``decode_batching="fused"`` vs ``"per-request"``.  Fused runs one
  stacked ``(B, d)`` GEMM per stage per token boundary against the
  shared dequant-cached weights; per-request replays the same iteration
  as ``B`` sequential batch-1 messages.  Token streams are asserted
  identical between the modes (the fused path's correctness contract).
* **Simulated cluster** — an opt-30b 4-bit plan on the 3-GPU paper
  cluster, pricing one decode iteration through ``StageCostModel``
  under both modes across the same batch sweep: the predicted
  iteration-time drop from sharing each layer's weight stream.

The cost model's fused pricing is validated against measured fused
iteration times on the tiny runtime: per-token time must fall with
batch size in both, and the measured batch-scaling profile must agree
with the predicted one within a loose factor (absolute times are
machine-dependent; the *shape* is the model's claim).

The committed baseline (``benchmarks/results/ext_fused_decode.json``)
records the speedup ratios; the smoke test guards a >= 2x floor at
batch 8 in CI.
"""

import json
import time

import numpy as np
import pytest

from repro.bench.tables import RESULTS_DIR, print_table, save_results
from repro.core.plan import ExecutionPlan, StagePlan
from repro.cost.stagecosts import StageCostModel
from repro.hardware import Device, get_gpu, paper_cluster
from repro.models import TinyDecoderLM, get_model
from repro.runtime import ContinuousScheduler, PipelineRuntime, ServeRequest
from repro.workload import Workload

GEN_LEN = 24


def _tiny_plan():
    stages = tuple(
        StagePlan(Device(get_gpu("T4-16G"), node_id=0, local_rank=i), (16,) * 4)
        for i in range(2)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4,
        workload=Workload(prompt_len=12, gen_len=GEN_LEN, global_batch=8),
    )


def _requests(cfg, n, seed=13):
    """n simultaneous arrivals, short prompts, long generations: the
    decode-dominated shape where weight-stream sharing pays."""
    rng = np.random.default_rng(seed)
    return [
        ServeRequest(
            request_id=i,
            prompt=rng.integers(
                0, cfg.vocab_size, size=int(rng.integers(6, 11)), dtype=np.int64
            ),
            gen_len=GEN_LEN,
        )
        for i in range(n)
    ]


def _measure(mode, n, *, cfg, reference, repeats=2):
    """Best-of-``repeats`` serve wall time (fresh runtime per repeat —
    thread spin-up and first-touch allocation noise dominate a single
    cold run on tiny matrices)."""
    requests = _requests(cfg, n)
    wall = float("inf")
    for _ in range(repeats):
        with PipelineRuntime(reference, _tiny_plan()) as rt:
            sched = ContinuousScheduler(
                rt, policy="continuous", time_scale=0.0, decode_batching=mode
            )
            t0 = time.perf_counter()
            report = sched.serve(requests)
            wall = min(wall, time.perf_counter() - t0)
            stats = rt.stats
        assert len(report.completed) == n
    streams = {r.request_id: np.asarray(r.tokens) for r in report.completed}
    return wall, streams, stats


def _compare(n, *, cfg, reference):
    """(fused wall, per-request wall, fused stats) with streams asserted
    identical — decode tokens/s ratio is wall_per / wall_fused since
    both runs emit the same token count."""
    wall_f, streams_f, stats_f = _measure("fused", n, cfg=cfg, reference=reference)
    wall_p, streams_p, _ = _measure("per-request", n, cfg=cfg, reference=reference)
    assert streams_f.keys() == streams_p.keys()
    for rid in streams_f:
        np.testing.assert_array_equal(streams_f[rid], streams_p[rid])
    return wall_f, wall_p, stats_f


def _predicted_sweep(scm_fused, scm_per, batches, ctx):
    """Predicted per-iteration pipeline time (sum of stage busy times)
    for one decode iteration at each batch size, both modes."""
    rows = []
    for b in batches:
        t_f = float(scm_fused.unit_decode_times(b, ctx).sum())
        t_p = float(scm_per.unit_decode_times(b, ctx).sum())
        rows.append((b, t_f, t_p))
    return rows


def test_ext_fused_decode_headline():
    """Headline: fused >= 3x decode tokens/s over per-request at 16
    in-flight on the tiny runtime, with identical token streams; the
    opt-30b cost-model sweep shows a monotone predicted iteration-time
    drop; fused pricing agrees with measured iteration-time scaling."""
    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=3)

    rows = []
    measured_iter = {}
    speedups = {}
    for n in (8, 16, 32):
        wall_f, wall_p, stats_f = _compare(n, cfg=cfg, reference=reference)
        tokens = n * GEN_LEN
        speedup = wall_p / wall_f
        speedups[n] = speedup
        assert stats_f.fused_iterations > 0
        assert stats_f.fused_batch_max == n
        measured_iter[n] = wall_f / stats_f.fused_iterations
        rows.append({
            "inflight": n,
            "fused_tok_s": round(tokens / wall_f, 1),
            "per_request_tok_s": round(tokens / wall_p, 1),
            "speedup": round(speedup, 2),
            "fused_batch_mean": round(stats_f.fused_batch_mean, 2),
            "weight_stream_saved_mib": round(
                stats_f.fused_weight_bytes_saved / 2**20, 1
            ),
        })
    assert speedups[16] >= 3.0, (
        f"fused decode only {speedups[16]:.2f}x over per-request at 16 "
        f"in-flight (acceptance floor is 3x)"
    )

    # simulated opt-30b cluster: predicted iteration-time drop
    cluster = paper_cluster(3)
    w = Workload(prompt_len=512, gen_len=100, global_batch=32)
    plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=4)
    scm_f = StageCostModel(plan, cluster)
    scm_p = StageCostModel(plan, cluster, decode_batching="per-request")
    sim_rows = []
    prev_ratio = 1.0
    for b, t_f, t_p in _predicted_sweep(scm_f, scm_p, (1, 2, 4, 8, 16, 32), 512.0):
        ratio = t_p / t_f
        sim_rows.append({
            "batch": b,
            "fused_iter_ms": round(t_f * 1e3, 3),
            "per_request_iter_ms": round(t_p * 1e3, 3),
            "predicted_speedup": round(ratio, 2),
        })
        assert ratio >= prev_ratio - 1e-12  # sharing pays more as b grows
        prev_ratio = ratio
    assert sim_rows[0]["predicted_speedup"] == 1.0  # batch 1: identical
    assert sim_rows[-1]["predicted_speedup"] > 2.0

    # pricing vs measurement: the cost model's batched-decode claims must
    # hold in the measured iteration times — fused amortizes fixed cost,
    # so per-token time falls as batch grows, and the fused-over-
    # per-request speedup never shrinks with batch.  (Absolute scaling
    # differs by construction: predictions price a T4 roofline where the
    # weight stream dominates, measurements are CPU NumPy where Python
    # dispatch dominates — both profiles go into the results JSON.)
    tiny_scm = StageCostModel(_tiny_plan(), paper_cluster(3))
    ctx = 12.0 + GEN_LEN / 2.0
    pred_iter = {
        n: float(tiny_scm.unit_decode_times(n, ctx).sum()) for n in (8, 16, 32)
    }
    for big in (16, 32):
        assert pred_iter[big] / big < pred_iter[8] / 8
        assert measured_iter[big] / big < measured_iter[8] / 8
    assert speedups[16] >= 0.9 * speedups[8]
    assert speedups[32] >= 0.9 * speedups[8]

    print_table(rows, title="Ext — fused decode vs per-request (tiny-8l runtime)")
    print_table(sim_rows, title="Ext — predicted iteration time (opt-30b, cluster 3)")
    save_results(
        "ext_fused_decode",
        {
            "runtime_scenario": (
                f"tiny-8l 2-stage fp16, {GEN_LEN}-token generations, "
                "simultaneous arrivals, decode tokens/s fused vs per-request"
            ),
            "sim_scenario": "opt-30b 4-bit, paper cluster 3, one decode "
                            "iteration at context 512",
            "runtime_rows": rows,
            "sim_rows": sim_rows,
            "speedup_at_16": round(speedups[16], 2),
            "fused_iter_time_profile": {
                "batches": [8, 16, 32],
                "measured_s": [round(measured_iter[n], 5) for n in (8, 16, 32)],
                "predicted_s": [round(pred_iter[n], 7) for n in (8, 16, 32)],
            },
        },
    )


def test_ext_fused_decode_smoke():
    """CI guard: fused must hold a >= 2x decode tokens/s floor over
    per-request at 8 in-flight on the tiny model (wall-clock is noisy in
    CI, so the floor sits below the 16-in-flight headline's 3x)."""
    baseline_path = RESULTS_DIR / "ext_fused_decode.json"
    if not baseline_path.exists():
        pytest.skip("no committed baseline to compare against")
    committed = json.loads(baseline_path.read_text())
    assert committed["speedup_at_16"] >= 3.0

    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=3)
    wall_f, wall_p, stats_f = _compare(8, cfg=cfg, reference=reference)
    speedup = wall_p / wall_f
    assert stats_f.fused_iterations > 0
    assert speedup >= 2.0, (
        f"fused decode only {speedup:.2f}x over per-request at 8 in-flight "
        f"(CI floor is 2x)"
    )
