"""Tables 9/10: per-cluster solver setups and plan-generation overhead.

Reproduces the appendix accounting: for every Table-3 cluster, run the
assigner with its per-cluster configuration and record how long plan
generation takes.  Expected shape: single-node clusters solve in
(sub)seconds, the 6-8 GPU clusters take the longest, and the average
stays within interactive bounds (the paper's average is ~18s with a
116s worst case on GUROBI; HiGHS + our pruning land in the same
regime).  Also reproduces the three-node data point (2x P100 + 2x V100
+ 2x A100 serving OPT-66b with the heuristic).
"""

import numpy as np
import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import plan_llmpq
from repro.hardware import PAPER_CLUSTERS, make_cluster, paper_cluster

#: cluster -> (group, heuristic, theta) — the Table-9 analogue on this
#: repo's omega scale.
SETUPS = {
    1: (2, False, 1.0),
    2: (2, False, 1.0),
    3: (2, False, 1.0),
    4: (2, False, 10.0),
    5: (4, True, 10.0),
    6: (2, False, 10.0),
    7: (4, False, 10.0),
    8: (4, False, 10.0),
    9: (2, False, 1.0),
    10: (4, True, 1.0),
    11: (4, True, 10.0),
}


def _run_all(latency_models, workload):
    rows = []
    for cid, (group, heur, theta) in SETUPS.items():
        model = PAPER_CLUSTERS[cid]
        res = plan_llmpq(
            model, paper_cluster(cid), workload,
            theta=theta, group_size=group, use_heuristic=heur,
            latency_model=latency_models(model),
            prefill_mb_cap=8, decode_mb_candidates=(8, 32),
        )
        rows.append(
            {
                "cluster": cid,
                "model": model,
                "group": group,
                "heuristic": "Y" if heur else "N",
                "theta": theta,
                "overhead_s": res.total_seconds,
                "feasible": res.feasible,
            }
        )
    return rows


def test_table10_solver_overhead(benchmark, latency_models, default_workload):
    rows = benchmark.pedantic(
        _run_all, args=(latency_models, default_workload), rounds=1, iterations=1
    )
    overheads = [r["overhead_s"] for r in rows]
    rows.append(
        {"cluster": "AVG", "model": "-", "group": "-", "heuristic": "-",
         "theta": "-", "overhead_s": float(np.mean(overheads)), "feasible": "-"}
    )
    print_table(rows, title="Table 10 — plan-generation overhead per cluster")
    save_results("table10_solver_overhead", rows)

    assert all(r["feasible"] for r in rows[:-1])
    # interactive regime: average below 2 minutes, worst below the
    # paper's GUROBI worst case x3
    assert float(np.mean(overheads)) < 120
    assert max(overheads) < 350


def test_table10_three_node_data_point(benchmark, latency_models, default_workload):
    """The appendix's extra point: 2xP100 + 2xV100 + 2xA100 serving
    OPT-66b with the heuristic solves in tens of seconds."""
    cluster = make_cluster(
        [("P100-12G", 2), ("V100-32G", 2), ("A100-40G", 2)], name="three-node"
    )

    def run():
        return plan_llmpq(
            "opt-66b", cluster, default_workload,
            theta=10.0, group_size=4, use_heuristic=True,
            latency_model=latency_models("opt-66b"),
            prefill_mb_cap=8, decode_mb_candidates=(8, 32),
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nthree-node OPT-66b heuristic solve: {res.total_seconds:.1f}s")
    save_results("table10_three_node", {"overhead_s": res.total_seconds,
                                        "feasible": res.feasible})
    assert res.feasible
    assert res.total_seconds < 300
