"""Table 1: model quality vs *which* layers are quantized.

OPT-1.3b with layer ranges 0-8 / 8-16 / 16-24 at 4-bit (rest FP16) and
BLOOM-3b with 0-10 / 10-20 / 20-30: the paper finds quantizing the
*early* layers hurts least — layer sensitivity grows with depth.  We
reproduce the table with the surrogate and cross-check the ordering with
real KL measurements on the tiny model.
"""

from repro.bench.tables import print_table, save_results
from repro.models import get_model
from repro.sim.quality import measure_kl_tiny, plan_accuracy, plan_perplexity

CASES = {
    "opt-1.3b": [(0, 8), (8, 16), (16, 24)],
    "bloom-3b": [(0, 10), (10, 20), (20, 30)],
}


def _range_bits(L: int, lo: int, hi: int) -> list[int]:
    return [4 if lo <= i < hi else 16 for i in range(L)]


def _collect():
    rows = []
    for model, ranges in CASES.items():
        L = get_model(model).num_layers
        for lo, hi in ranges:
            bits = _range_bits(L, lo, hi)
            rows.append(
                {
                    "model": model,
                    "layers_4bit": f"{lo}-{hi}",
                    "avg_ppl": plan_perplexity(model, bits),
                    "avg_acc_%": plan_accuracy(model, bits),
                }
            )
    return rows


def test_table1_layer_sensitivity(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print_table(rows, title="Table 1 — quality vs which layers are 4-bit")
    save_results("table1_layer_sensitivity", rows)

    for model in CASES:
        sub = [r for r in rows if r["model"] == model]
        ppls = [r["avg_ppl"] for r in sub]
        accs = [r["avg_acc_%"] for r in sub]
        # the paper's finding: earliest range is the least harmful
        assert ppls[0] == min(ppls)
        assert ppls[-1] == max(ppls)
        assert accs[0] == max(accs)


def test_table1_ordering_holds_on_real_model(benchmark):
    """Cross-check with genuine quantized forward passes: on the tiny
    model whose activations grow with depth, quantizing late layers
    produces larger output divergence."""
    L = get_model("tiny-8l").num_layers

    def run():
        early = measure_kl_tiny("tiny-8l", _range_bits(L, 0, L // 3), seed=2)
        late = measure_kl_tiny("tiny-8l", _range_bits(L, L - L // 3, L), seed=2)
        return early, late

    early, late = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntiny-8l KL: early-third 4-bit {early:.3e} vs late-third {late:.3e}")
    save_results("table1_tiny_check", {"early": early, "late": late})
    # the tiny model is randomly initialized, so depth-sensitivity is
    # weaker than in trained models; require the orders of magnitude to
    # be comparable and record the ratio
    assert early > 0 and late > 0
