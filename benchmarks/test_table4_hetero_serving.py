"""Table 4: serving performance on heterogeneous clusters 1-8.

For every cluster we evaluate PipeEdge, Uniform, FlexGen, FlexGen-int8
(OPT only) and LLM-PQ on the paper's default workload (s=512, n=100,
b=32) and report PPL / latency / throughput plus the speedup over
PipeEdge.  Expected shape, per the paper: LLM-PQ wins everywhere, with
larger gains on the more heterogeneous / memory-tighter clusters, and
PPL at or below the baselines'.

Planner settings per cluster follow Table 9: the exact ILP with small
group sizes on small clusters, the bitwidth-transfer heuristic on the
larger ones.
"""

import numpy as np
import pytest

from repro.bench.tables import print_table, save_results
from repro.core.api import compare_schemes
from repro.hardware import PAPER_CLUSTERS, paper_cluster

#: cluster id -> (group_size, use_heuristic, theta).  Broadly mirrors
#: the paper's Table 9; cluster 4 uses the exact ILP here because HiGHS
#: solves it comfortably inside the time limit (the paper fell back to
#: the heuristic there only because group=1 timed out on GUROBI), and
#: theta values are on this repo's normalized-omega scale (the 4-bit
#: column sums to 1) rather than the paper's raw-omega scale.
PLANNER_SETTINGS = {
    1: (2, False, 1.0),
    2: (2, False, 1.0),
    3: (2, False, 1.0),
    4: (2, False, 10.0),
    5: (4, True, 10.0),
    6: (2, False, 10.0),
    7: (4, False, 10.0),
    8: (4, False, 10.0),
}

HETERO_CLUSTERS = (1, 2, 3, 4, 5, 6, 7, 8)


def _run_cluster(cid: int, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    cluster = paper_cluster(cid)
    group, heur, theta = PLANNER_SETTINGS[cid]
    schemes = ("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ")
    if model.startswith("bloom"):
        schemes = ("PipeEdge", "Uniform", "LLM-PQ")  # FlexGen is OPT-only
    reports = compare_schemes(
        model, cluster, workload,
        schemes=schemes, group_size=group, use_heuristic=heur, theta=theta,
        latency_model=latency_models(model), ilp_time_limit=60.0,
    )
    by = {r.scheme: r for r in reports}
    ref = by["PipeEdge"]
    rows = []
    for r in reports:
        rows.append(
            {
                "cluster": cid,
                "model": model,
                "scheme": r.scheme,
                "ppl": r.perplexity if r.feasible else None,
                "latency_s": r.latency if r.feasible else None,
                "throughput": r.throughput,
                "x_vs_pipeedge": r.speedup_over(ref) if r.feasible else None,
            }
        )
    return rows


@pytest.mark.parametrize("cid", HETERO_CLUSTERS)
def test_table4_cluster(cid, benchmark, latency_models, default_workload):
    rows = benchmark.pedantic(
        _run_cluster, args=(cid, latency_models, default_workload),
        rounds=1, iterations=1,
    )
    print_table(rows, title=f"Table 4 — cluster {cid} ({PAPER_CLUSTERS[cid]})")
    save_results(f"table4_cluster{cid}", rows)

    by = {r["scheme"]: r for r in rows}
    llmpq = by["LLM-PQ"]
    assert llmpq["throughput"] > 0, "LLM-PQ must be feasible"
    # LLM-PQ at least matches every feasible baseline's throughput
    for name, r in by.items():
        if name != "LLM-PQ" and r["throughput"] > 0:
            assert llmpq["throughput"] >= 0.98 * r["throughput"], name
    # and quality does not regress materially vs the best feasible baseline
    ppls = [r["ppl"] for n, r in by.items() if n != "LLM-PQ" and r["ppl"] is not None]
    if ppls and llmpq["ppl"] is not None:
        assert llmpq["ppl"] <= min(ppls) + 0.6
