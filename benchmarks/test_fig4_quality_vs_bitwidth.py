"""Fig. 4: perplexity & accuracy under different quantization schemes.

BLOOM-3b PPL and OPT-1.3b accuracy across FP16 / INT8 / INT4 / INT3 and
the paper's 'mixed4-8' / 'mixed3-4' random-mixed schemes.  The headline:
mixed-precision beats uniformly using the lower bit.  A second panel
validates the ordering with *real* KL measurements on the tiny NumPy
model (genuinely quantized weights).
"""

import numpy as np

from repro.bench.tables import print_table, save_results
from repro.models import get_model
from repro.sim.quality import measure_kl_tiny, plan_accuracy, plan_perplexity


def _mixed(L: int, lo: int, hi: int, seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(b) for b in rng.choice([lo, hi], size=L)]


def _collect():
    rows = []
    for model in ("bloom-3b", "opt-1.3b"):
        L = get_model(model).num_layers
        schemes = {
            "fp16": [16] * L,
            "int8": [8] * L,
            "mixed4-8": _mixed(L, 4, 8, seed=0),
            "int4": [4] * L,
            "mixed3-4": _mixed(L, 3, 4, seed=0),
            "int3": [3] * L,
        }
        for scheme, bits in schemes.items():
            rows.append(
                {
                    "model": model,
                    "scheme": scheme,
                    "ppl": plan_perplexity(model, bits),
                    "acc_%": plan_accuracy(model, bits),
                }
            )
    return rows


def test_fig4_quality_vs_bitwidth(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print_table(rows, title="Fig. 4 — quality vs quantization scheme (surrogate)")
    save_results("fig4_quality_vs_bitwidth", rows)

    for model in ("bloom-3b", "opt-1.3b"):
        by = {r["scheme"]: r for r in rows if r["model"] == model}
        # mixed4-8 strictly between int8 and int4
        assert by["int8"]["ppl"] <= by["mixed4-8"]["ppl"] <= by["int4"]["ppl"]
        # mixed3-4 beats uniform int3 (the paper's headline)
        assert by["mixed3-4"]["ppl"] < by["int3"]["ppl"]
        # accuracy anti-correlates with ppl
        assert by["fp16"]["acc_%"] >= by["int4"]["acc_%"] >= by["int3"]["acc_%"]


def test_fig4_real_kl_on_tiny_model(benchmark):
    """Ground-truth panel: the same ordering on genuinely quantized
    weights (KL to the FP16 model's predictions)."""
    L = get_model("tiny-4l").num_layers

    def run():
        return {
            "fp16": measure_kl_tiny("tiny-4l", [16] * L),
            "int8": measure_kl_tiny("tiny-4l", [8] * L),
            "mixed4-8": measure_kl_tiny("tiny-4l", _mixed(L, 4, 8, seed=1)),
            "int4": measure_kl_tiny("tiny-4l", [4] * L),
            "mixed3-4": measure_kl_tiny("tiny-4l", _mixed(L, 3, 4, seed=1)),
            "int3": measure_kl_tiny("tiny-4l", [3] * L),
        }

    kl = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        [{"scheme": k, "KL_to_fp16": f"{v:.2e}"} for k, v in kl.items()],
        title="Fig. 4 (real measurement) — KL divergence, tiny-4l",
    )
    save_results("fig4_tiny_kl", kl)
    assert kl["fp16"] <= kl["int8"] <= kl["int4"] <= kl["int3"]
    assert kl["int8"] <= kl["mixed4-8"] <= kl["int4"]
    assert kl["mixed3-4"] <= kl["int3"]
