"""Extension (Sec. 7): tensor parallelism in the search space.

The paper argues TP folds into the planner as virtual fused devices.
We validate the sketch on cluster 10 (4x V100, OPT-66b): enumerate
uniform TP degrees {1, 2, 4}, plan each fused cluster with the standard
1-D pipeline planner, and compare.  Expected shape: TP trades pipeline
depth for per-stage speed; with NVLink-class links the fused options are
competitive, and the planner picks whichever wins — the point is that
the search covers the mesh dimension at all.
"""

from repro.bench.tables import print_table, save_results
from repro.core.optimizer import PlannerConfig
from repro.core.tensor_parallel import enumerate_tp_clusters, plan_with_tensor_parallel
from repro.hardware import paper_cluster
from repro.models import get_model
from repro.sim.pipeline import simulate_pipeline


def test_ext_tensor_parallel_search(benchmark, default_workload):
    cluster = paper_cluster(10)  # 4x V100-32G
    cfg = get_model("opt-66b")

    def run():
        res = plan_with_tensor_parallel(
            "opt-66b", cluster, default_workload,
            config=PlannerConfig(group_size=4, theta=1.0,
                                 decode_mb_candidates=(8, 16),
                                 prefill_mb_cap=8),
            max_tp=4,
        )
        rows = []
        for k, fused in enumerate_tp_clusters(cluster, cfg, max_tp=4):
            rows.append(
                {
                    "tp_degree": k,
                    "pipeline_stages": fused.num_devices,
                    "objective": res.per_degree.get(k),
                    "winner": "<-" if k == res.tp_degree else "",
                }
            )
        return res, rows

    res, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(rows, title="Extension — TP degrees on cluster 10 (OPT-66b)")
    save_results("ext_tensor_parallel", rows)

    assert res.plan is not None
    assert set(res.per_degree) == {1, 2, 4}
    # every degree produced a finite (feasible) objective on this cluster
    assert all(v != float("inf") for v in res.per_degree.values())
    # executing the winning plan on its fused cluster is feasible
    fused = dict(enumerate_tp_clusters(cluster, cfg, max_tp=4))[res.tp_degree]
    assert simulate_pipeline(res.plan, fused).feasible
