"""Table 6: effectiveness of the variance indicator vs Random / Hessian.

Protocol (adapted to the runnable tiny model): build each indicator on
the same calibration batch, hand each to the same bit-allocation
problem (a fixed memory budget forcing ~half the layers below FP16),
and score the resulting assignment with *real* KL-divergence
measurements of the genuinely quantized model.  Also report each
indicator's construction overhead — the paper's headline is that the
variance indicator matches Hessian quality at a 58-72x lower cost.
"""

import numpy as np

from repro.bench.tables import print_table, save_results
from repro.models import TinyDecoderLM, calibration_batch, get_model
from repro.quant import (
    hessian_indicator,
    random_indicator,
    variance_indicator,
)
from repro.sim.quality import measure_kl_tiny


def _allocate_bits(table, budget_low: int) -> list[int]:
    """Greedy budgeted allocation: exactly ``budget_low`` layers must run
    at 4-bit (memory pressure); the indicator chooses *which* — the
    least-sensitive ones first."""
    order = np.argsort(table.column(4))  # least sensitive first
    bits = [16] * table.num_layers
    for i in order[:budget_low]:
        bits[int(i)] = 4
    return bits


def _run():
    cfg = get_model("tiny-8l")
    model = TinyDecoderLM(cfg, seed=0)
    calib = calibration_batch(cfg.vocab_size, batch=4, seq_len=24)
    budget = cfg.num_layers // 2

    tables = {
        "Random": random_indicator(cfg.num_layers, seed=3),
        "Hessian": hessian_indicator(model, calib),
        "LLM-PQ (variance)": variance_indicator(model, calib),
    }
    rows = []
    for name, table in tables.items():
        bits = _allocate_bits(table, budget)
        kl = measure_kl_tiny("tiny-8l", bits, seed=0)
        rows.append(
            {
                "method": name,
                "kl_to_fp16": f"{kl:.3e}",
                "_kl": kl,
                "overhead_s": table.overhead_seconds,
            }
        )
    return rows


def test_table6_indicator_effectiveness(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        rows, columns=("method", "kl_to_fp16", "overhead_s"),
        title="Table 6 — indicator quality (real KL) and overhead",
    )
    save_results(
        "table6_indicator",
        [{k: v for k, v in r.items() if k != "_kl"} for r in rows],
    )
    by = {r["method"]: r for r in rows}
    # the variance indicator must not lose to random
    assert by["LLM-PQ (variance)"]["_kl"] <= by["Random"]["_kl"] * 1.05
    # and must be far cheaper than Hessian (paper: 58-72x)
    assert (
        by["Hessian"]["overhead_s"]
        > 5 * by["LLM-PQ (variance)"]["overhead_s"]
    )
    # Hessian and variance land in the same quality ballpark
    assert by["LLM-PQ (variance)"]["_kl"] <= by["Hessian"]["_kl"] * 3
