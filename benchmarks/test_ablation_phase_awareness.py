"""Ablation: phase-aware vs prefill-only partitioning.

DESIGN.md calls out the paper's core design choice — costing *both*
generation phases when partitioning.  We re-solve the cluster-3 and
cluster-4 ILPs with the decode term removed from the objective
(``phase_aware=False``, the PipeEdge-style single-phase view) and
compare end-to-end throughput of the resulting plans under the full
two-phase simulation.  Expected: the phase-aware plan wins, because the
decode phase has different device bottlenecks than prefill.
"""

import pytest

from repro.bench.tables import print_table, save_results
from repro.core.ilp import BitAssignmentILP
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import PAPER_CLUSTERS, paper_cluster
from repro.sim.pipeline import simulate_pipeline

CLUSTERS = (3, 4)


def _best_plan(optimizer, *, phase_aware: bool):
    best, best_tput = None, -1.0
    for ordering in optimizer.orderings():
        from repro.core.optimizer import _microbatch_pairs

        for mb_p, mb_d in _microbatch_pairs(
            optimizer.workload, len(ordering), optimizer.config
        ):
            ilp = BitAssignmentILP(
                cfg=optimizer.cfg,
                workload=optimizer.workload,
                devices=list(ordering),
                latency_model=optimizer.latency_model,
                indicator=optimizer.indicator.grouped(optimizer.config.group_size),
                prefill_microbatch=mb_p,
                decode_microbatch=mb_d,
                bits=optimizer.config.bits,
                group_size=optimizer.config.group_size,
                theta=optimizer.config.theta,
                phase_aware=phase_aware,
            )
            sol = ilp.solve()
            if not sol.feasible:
                continue
            plan = optimizer.plan_from_solution(ordering, sol, ilp, mb_p, mb_d)
            res = simulate_pipeline(plan, optimizer.cluster)
            if res.feasible and res.throughput > best_tput:
                best, best_tput = plan, res.throughput
    return best, best_tput


def _run(cid, latency_models, workload):
    model = PAPER_CLUSTERS[cid]
    optimizer = LLMPQOptimizer(
        model, paper_cluster(cid), workload,
        config=PlannerConfig(group_size=4, theta=1.0,
                             decode_mb_candidates=(8, 32), prefill_mb_cap=8),
        latency_model=latency_models(model),
    )
    _, aware_tput = _best_plan(optimizer, phase_aware=True)
    _, blind_tput = _best_plan(optimizer, phase_aware=False)
    return {
        "cluster": cid,
        "phase_aware_tput": aware_tput,
        "prefill_only_tput": blind_tput,
        "gain": aware_tput / blind_tput if blind_tput > 0 else float("inf"),
    }


@pytest.mark.parametrize("cid", CLUSTERS)
def test_ablation_phase_awareness(cid, benchmark, latency_models, default_workload):
    row = benchmark.pedantic(
        _run, args=(cid, latency_models, default_workload), rounds=1, iterations=1
    )
    print_table([row], title=f"Ablation — phase-aware objective, cluster {cid}")
    save_results(f"ablation_phase_cluster{cid}", row)
    assert row["phase_aware_tput"] > 0
    # costing both phases never hurts and should help
    assert row["gain"] >= 0.999
