"""Shared fixtures.

Latency-model fitting sweeps a profile grid per GPU type, so fitted
models are cached per session.  Planner tests use deliberately small
search spaces to stay fast.
"""

from __future__ import annotations

import pytest

from repro.cost.profiler import build_latency_model
from repro.hardware import make_cluster, paper_cluster
from repro.models import get_model
from repro.workload import Workload


@pytest.fixture(scope="session")
def cluster3():
    """3xT4 + 1xV100 (paper cluster 3, OPT-30b)."""
    return paper_cluster(3)


@pytest.fixture(scope="session")
def small_hetero_cluster():
    """A 2-device heterogeneous cluster for fast planner tests."""
    return make_cluster([("T4-16G", 1), ("V100-32G", 1)], name="mini")


@pytest.fixture(scope="session")
def workload():
    return Workload(prompt_len=512, gen_len=100, global_batch=32)


@pytest.fixture(scope="session")
def small_workload():
    return Workload(prompt_len=128, gen_len=16, global_batch=8)


@pytest.fixture(scope="session")
def opt30b():
    return get_model("opt-30b")


@pytest.fixture(scope="session")
def opt13b():
    return get_model("opt-13b")


@pytest.fixture(scope="session")
def tiny8l():
    return get_model("tiny-8l")


@pytest.fixture(scope="session")
def tiny4l():
    return get_model("tiny-4l")


@pytest.fixture(scope="session")
def latmodel_cluster3(opt30b):
    return build_latency_model(["T4-16G", "V100-32G"], opt30b)


@pytest.fixture(scope="session")
def latmodel_13b(opt13b):
    return build_latency_model(["T4-16G", "V100-32G"], opt13b)
