"""Cross-module integration tests: the paper's headline claims, end to end.

These exercise the complete flow — profile, plan (ILP), simulate on
ground-truth kernels, score quality — and assert the *shape* of the
paper's results rather than absolute numbers.
"""

import numpy as np
import pytest

from repro.core.api import compare_schemes, evaluate_plan, plan_llmpq
from repro.core.plan import ExecutionPlan
from repro.hardware import paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.sim.quality import QUALITY_ANCHORS
from repro.workload import Workload


@pytest.fixture(scope="module")
def cluster3_reports(latmodel_cluster3, workload):
    return compare_schemes(
        "opt-30b", paper_cluster(3), workload,
        schemes=("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ"),
        group_size=4, latency_model=latmodel_cluster3,
    )


def test_llmpq_beats_all_baselines_on_cluster3(cluster3_reports):
    """Table 4, cluster 3: LLM-PQ has the best throughput (paper: 1.82x
    over PipeEdge)."""
    by = {r.scheme: r for r in cluster3_reports}
    assert by["LLM-PQ"].feasible
    for name, rep in by.items():
        if name != "LLM-PQ" and rep.feasible:
            assert by["LLM-PQ"].throughput > rep.throughput, name


def test_llmpq_speedup_magnitude_on_cluster3(cluster3_reports):
    """The gain over PipeEdge should be material (paper: 1.3-2.9x across
    clusters; we require > 1.15x) but not absurd (< 5x)."""
    by = {r.scheme: r for r in cluster3_reports}
    x = by["LLM-PQ"].speedup_over(by["PipeEdge"])
    assert 1.15 < x < 5.0


def test_quality_preserved_on_cluster3(cluster3_reports):
    """LLM-PQ's PPL stays within a whisker of the best feasible baseline
    (paper: matches or beats baselines' PPL)."""
    by = {r.scheme: r for r in cluster3_reports}
    baseline_ppl = min(
        r.perplexity for n, r in by.items() if n != "LLM-PQ" and r.feasible
    )
    assert by["LLM-PQ"].perplexity <= baseline_ppl + 0.15


def test_offloading_loses_badly_with_long_prompts(cluster3_reports):
    """FlexGen FP16 swaps for every token: far below the pipelines."""
    by = {r.scheme: r for r in cluster3_reports}
    assert by["FlexGen"].throughput < 0.5 * by["LLM-PQ"].throughput


def test_hetero_gain_exceeds_homo_gain(latmodel_cluster3, workload):
    """Sec. 6.4: gains on homogeneous clusters are smaller than on
    heterogeneous ones (cluster 9 vs cluster 3)."""
    hetero = compare_schemes(
        "opt-30b", paper_cluster(3), workload,
        schemes=("PipeEdge", "LLM-PQ"), group_size=4,
        latency_model=latmodel_cluster3,
    )
    homo = compare_schemes(
        "opt-30b", paper_cluster(9), workload,
        schemes=("PipeEdge", "LLM-PQ"), group_size=4,
    )
    h = {r.scheme: r for r in hetero}
    o = {r.scheme: r for r in homo}
    gain_hetero = h["LLM-PQ"].speedup_over(h["PipeEdge"])
    gain_homo = o["LLM-PQ"].speedup_over(o["PipeEdge"])
    assert gain_homo > 0.9  # LLM-PQ never collapses on homo clusters
    assert gain_hetero > gain_homo


def test_plan_for_cluster1_uses_microbatch_trick(latmodel_13b):
    """Sec. 6.3 / cluster 1: on a single V100, micro-batch sizing lets a
    (mostly) INT8 OPT-13b fit where uniform FP16 cannot."""
    w = Workload(prompt_len=512, gen_len=100, global_batch=32)
    cl = paper_cluster(1)
    fp16 = simulate_pipeline(
        ExecutionPlan.uniform("opt-13b", cl.devices, w, bits=16), cl
    )
    assert not fp16.feasible
    res = plan_llmpq("opt-13b", cl, w, group_size=4, latency_model=latmodel_13b)
    assert res.feasible
    rep = evaluate_plan(res.plan, cl)
    assert rep.feasible
    assert rep.average_bits <= 12  # quantization was required
    assert rep.perplexity <= QUALITY_ANCHORS["opt-13b"].ppl_by_bits[4]


def test_theta_tradeoff(latmodel_cluster3, workload):
    """Fig. 8: larger theta -> no worse quality, no better throughput."""
    cl = paper_cluster(3)
    lo = plan_llmpq("opt-30b", cl, workload, theta=0.01, group_size=4,
                    latency_model=latmodel_cluster3)
    hi = plan_llmpq("opt-30b", cl, workload, theta=200.0, group_size=4,
                    latency_model=latmodel_cluster3)
    rep_lo = evaluate_plan(lo.plan, cl)
    rep_hi = evaluate_plan(hi.plan, cl)
    assert rep_hi.perplexity <= rep_lo.perplexity + 1e-9
    assert rep_hi.throughput <= rep_lo.throughput * 1.05


def test_short_prompt_workload_still_wins(latmodel_cluster3):
    """Table 7 shape: with s=128/n=200 LLM-PQ still beats PipeEdge, if by
    less on prefill-light workloads."""
    w = Workload(prompt_len=128, gen_len=200, global_batch=32)
    reports = compare_schemes(
        "opt-30b", paper_cluster(3), w,
        schemes=("PipeEdge", "LLM-PQ"), group_size=4,
        latency_model=latmodel_cluster3,
    )
    by = {r.scheme: r for r in reports}
    assert by["LLM-PQ"].throughput >= by["PipeEdge"].throughput
