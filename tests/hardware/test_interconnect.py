"""Unit tests for link models."""

import pytest

from repro.hardware import (
    ETHERNET_100G,
    ETHERNET_800G,
    LOOPBACK,
    NVLINK_V100,
    PCIE_GEN3,
    Link,
    link_for,
)


def test_transfer_time_alpha_beta():
    link = Link("test", bandwidth=1e9, latency=1e-5)
    assert link.transfer_time(0) == 0.0
    assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)


def test_transfer_time_negative_rejected():
    with pytest.raises(ValueError):
        PCIE_GEN3.transfer_time(-1)


def test_link_validation():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1e9, latency=-1)


def test_bandwidth_hierarchy():
    # NVLink > 800G ethernet > PCIe > 100G ethernet
    assert NVLINK_V100.bandwidth > ETHERNET_800G.bandwidth
    assert PCIE_GEN3.bandwidth > ETHERNET_100G.bandwidth


def test_loopback_is_effectively_free():
    assert LOOPBACK.transfer_time(1e9) < 1e-5


def test_link_for_known_types():
    assert link_for("V100-32G") is NVLINK_V100
    assert link_for("T4-16G") is PCIE_GEN3
    # unknown types fall back to PCIe rather than erroring
    assert link_for("UNKNOWN-GPU") is PCIE_GEN3
