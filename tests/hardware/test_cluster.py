"""Unit tests for cluster topology and ordering enumeration."""

import math

import pytest

from repro.hardware import (
    ETHERNET_100G,
    ETHERNET_800G,
    Cluster,
    Node,
    PAPER_CLUSTERS,
    make_cluster,
    paper_cluster,
)


def test_make_cluster_devices_and_counts():
    c = make_cluster([("T4-16G", 3), ("V100-32G", 1)])
    assert c.num_devices == 4
    assert c.gpu_type_counts == {"T4-16G": 3, "V100-32G": 1}
    assert c.is_heterogeneous
    assert len(c.devices) == 4
    assert c.devices[0].node_id == 0 and c.devices[3].node_id == 1


def test_homogeneous_flag():
    assert not make_cluster([("T4-16G", 4)]).is_heterogeneous


def test_total_memory():
    c = make_cluster([("T4-16G", 2)])
    assert c.total_memory_bytes == 2 * 16 * 2**30


def test_paper_clusters_match_table3():
    assert paper_cluster(3).gpu_type_counts == {"T4-16G": 3, "V100-32G": 1}
    assert paper_cluster(8).gpu_type_counts == {"V100-32G": 4, "A800-80G": 2}
    assert paper_cluster(11).gpu_type_counts == {"A800-80G": 4}
    assert PAPER_CLUSTERS[7] == "bloom-176b"
    assert PAPER_CLUSTERS[1] == "opt-13b"
    # interconnects: clusters 3,5,8,11 on 800G; 4,6,7 on 100G
    assert paper_cluster(5).inter_node_link is ETHERNET_800G
    assert paper_cluster(6).inter_node_link is ETHERNET_100G
    with pytest.raises(KeyError):
        paper_cluster(12)


def test_distinct_orderings_count_matches_multinomial():
    c = make_cluster([("T4-16G", 2), ("V100-32G", 1)])
    expected = math.factorial(3) // (math.factorial(2) * math.factorial(1))
    orderings = list(c.distinct_orderings())
    assert len(orderings) == expected == c.num_distinct_orderings()
    # type sequences must be unique
    seqs = {tuple(d.type_name for d in o) for o in orderings}
    assert len(seqs) == expected


def test_distinct_orderings_limit():
    c = paper_cluster(5)  # 4xT4 + 2xV100 -> C(6,2) = 15
    assert c.num_distinct_orderings() == 15
    assert len(list(c.distinct_orderings(limit=4))) == 4


def test_orderings_use_each_device_once():
    c = make_cluster([("T4-16G", 2), ("V100-32G", 2)])
    for ordering in c.distinct_orderings():
        assert len(set(d.name for d in ordering)) == c.num_devices


def test_link_between_intra_vs_inter_node():
    c = make_cluster([("V100-32G", 2), ("T4-16G", 1)], inter_node_link=ETHERNET_100G)
    d = c.devices
    assert c.link_between(d[0], d[1]).name == "nvlink-v100"
    assert c.link_between(d[0], d[2]) is ETHERNET_100G
    assert c.link_between(d[0], d[0]).name == "loopback"


def test_cluster_validation():
    with pytest.raises(ValueError, match="at least one node"):
        Cluster(nodes=())
    with pytest.raises(ValueError, match="duplicate"):
        Cluster(nodes=(Node(0, "T4-16G", 1), Node(0, "T4-16G", 1)))
    with pytest.raises(ValueError, match="at least one GPU"):
        Node(0, "T4-16G", 0)


def test_describe_mentions_composition():
    text = paper_cluster(3).describe()
    assert "3xT4-16G" in text and "1xV100-32G" in text
