"""Unit tests for GPU device models."""

import pytest

from repro.hardware import GPU_REGISTRY, SUPPORTED_BITS, GPUSpec, get_gpu, list_gpus, register_gpu
from repro.hardware.gpu import GB, GIB


def test_registry_contains_paper_gpus():
    for name in ("A100-40G", "A800-80G", "V100-32G", "T4-16G", "P100-12G"):
        assert name in GPU_REGISTRY


def test_get_gpu_unknown_raises_with_known_list():
    with pytest.raises(KeyError, match="V100-32G"):
        get_gpu("H100-80G")


def test_list_gpus_sorted():
    names = list_gpus()
    assert names == sorted(names)
    assert len(names) >= 5


def test_v100_arithmetic_intensity_matches_paper():
    # Sec. 4.1: V100 has arithmetic intensity 139 (125 TFLOPS / 900 GB/s)
    v100 = get_gpu("V100-32G")
    assert v100.arithmetic_intensity == pytest.approx(139, abs=1)


def test_memory_capacities():
    assert get_gpu("T4-16G").memory_bytes == 16 * GIB
    assert get_gpu("A800-80G").memory_bytes == 80 * GIB


def test_effective_flops_include_efficiency_and_precision_scale():
    t4 = get_gpu("T4-16G")
    fp16 = t4.effective_flops(16)
    assert fp16 < t4.peak_flops  # efficiency factor applies
    # T4 INT8 tensor cores: 8-bit at least as fast as FP16
    assert t4.effective_flops(8) >= fp16
    # V100's INT8 path is slower than FP16 (paper Sec. 2.5)
    v100 = get_gpu("V100-32G")
    assert v100.effective_flops(8) < v100.effective_flops(16)


def test_effective_weight_bandwidth_monotone():
    v100 = get_gpu("V100-32G")
    # quantized formats carry packing inefficiency in weight_bw_scale
    assert v100.effective_weight_bandwidth(16) >= v100.effective_weight_bandwidth(3)
    assert v100.effective_bandwidth < v100.mem_bandwidth


def test_all_supported_bits_present():
    for spec in GPU_REGISTRY.values():
        for bits in SUPPORTED_BITS:
            assert spec.supports(bits)


def test_with_memory_returns_modified_copy():
    t4 = get_gpu("T4-16G")
    big = t4.with_memory(32 * GIB)
    assert big.memory_bytes == 32 * GIB
    assert big.fp16_tflops == t4.fp16_tflops
    assert t4.memory_bytes == 16 * GIB  # original untouched


def test_spec_validation_rejects_bad_values():
    base = get_gpu("T4-16G")
    with pytest.raises(ValueError, match="memory"):
        GPUSpec(
            name="bad", memory_bytes=0, fp16_tflops=1.0, mem_bandwidth=1.0,
            compute_scale=dict(base.compute_scale),
            weight_bw_scale=dict(base.weight_bw_scale),
        )
    with pytest.raises(ValueError, match="compute_scale"):
        GPUSpec(
            name="bad", memory_bytes=1e9, fp16_tflops=1.0, mem_bandwidth=1.0,
            compute_scale={16: 1.0},  # missing low-bit entries
            weight_bw_scale=dict(base.weight_bw_scale),
        )


def test_register_gpu_conflict_detection():
    t4 = get_gpu("T4-16G")
    register_gpu(t4)  # idempotent
    conflicting = t4.with_memory(1 * GB)
    with pytest.raises(ValueError, match="already registered"):
        register_gpu(conflicting)


def test_extended_registry_entries():
    """Beyond Table 3: common serving GPUs available for custom clusters."""
    a100_80 = get_gpu("A100-80G")
    assert a100_80.memory_bytes == 80 * GIB
    assert a100_80.tensor_core_int8
    a10 = get_gpu("A10-24G")
    assert a10.memory_bytes == 24 * GIB
    # A10 is bandwidth-starved relative to its compute (decode-weak)
    assert a10.arithmetic_intensity > get_gpu("V100-32G").arithmetic_intensity
