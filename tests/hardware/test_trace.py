"""Unit tests for the synthetic fleet trace (Fig. 1 substrate)."""

import numpy as np
import pytest

from repro.hardware import DEFAULT_MEAN_UTIL, DEFAULT_PORTIONS, generate_fleet_trace


def test_trace_shapes_and_bounds():
    tr = generate_fleet_trace(hours=48, seed=1)
    assert tr.utilization.shape == (len(DEFAULT_PORTIONS), 48)
    assert np.all(tr.utilization >= 0) and np.all(tr.utilization <= 1)
    assert tr.portions.sum() == pytest.approx(1.0)


def test_mean_utilization_matches_targets():
    tr = generate_fleet_trace(seed=0)
    means = tr.mean_utilization()
    for gpu, target in DEFAULT_MEAN_UTIL.items():
        assert means[gpu] == pytest.approx(target, abs=0.03)


def test_high_calibre_gpus_run_hot_low_calibre_idle():
    # The Fig.-1 story: A100 ~saturated, T4/P100 under-utilized.
    tr = generate_fleet_trace(seed=2)
    means = tr.mean_utilization()
    assert means["A100-40G"] > 0.8
    assert means["T4-16G"] < 0.5
    assert means["P100-12G"] < means["V100-32G"]


def test_idle_capacity_dominated_by_inference_cards():
    tr = generate_fleet_trace(seed=3)
    idle = tr.idle_capacity_fraction()
    # T4s are both plentiful and idle -> largest untapped pool
    assert idle["T4-16G"] == max(idle.values())


def test_determinism_by_seed():
    a = generate_fleet_trace(seed=7)
    b = generate_fleet_trace(seed=7)
    np.testing.assert_array_equal(a.utilization, b.utilization)
    c = generate_fleet_trace(seed=8)
    assert not np.array_equal(a.utilization, c.utilization)


def test_custom_portions_validation():
    with pytest.raises(ValueError, match="same GPU types"):
        generate_fleet_trace(portions={"T4-16G": 1.0}, mean_util={"V100-32G": 0.5})
    with pytest.raises(ValueError, match="positive"):
        generate_fleet_trace(portions={"T4-16G": 0.0}, mean_util={"T4-16G": 0.5})
