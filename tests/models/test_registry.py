"""Unit tests for the model zoo."""

import pytest

from repro.models import ModelConfig, get_model, list_models, register_model


def test_zoo_covers_paper_models():
    names = list_models()
    for required in (
        "opt-1.3b", "opt-13b", "opt-30b", "opt-66b", "opt-175b",
        "bloom-560m", "bloom-1b7", "bloom-3b", "bloom-176b",
        "tiny-4l", "tiny-8l",
    ):
        assert required in names


def test_get_model_unknown():
    with pytest.raises(KeyError, match="opt-30b"):
        get_model("gpt-5")


def test_register_conflict():
    cfg = get_model("tiny-4l")
    register_model(cfg)  # idempotent
    other = ModelConfig(
        name="tiny-4l", num_layers=2, hidden_size=32, num_heads=2,
        ffn_dim=128, vocab_size=128,
    )
    with pytest.raises(ValueError, match="already registered"):
        register_model(other)


def test_opt_bloom_family_structure():
    for name in list_models():
        cfg = get_model(name)
        assert cfg.ffn_dim == 4 * cfg.hidden_size
        if name.startswith("opt"):
            assert cfg.vocab_size == 50272
        if name.startswith("bloom"):
            assert cfg.vocab_size == 250880
            assert cfg.max_position_embeddings == 0
