"""Unit tests for architecture metadata and FLOP/memory accounting."""

import pytest

from repro.models import ModelConfig, get_model


def test_total_params_match_published_sizes():
    # within a few percent of the advertised parameter counts
    expectations = {
        "opt-13b": 13.0e9,
        "opt-30b": 30.0e9,
        "opt-66b": 66.0e9,
        "opt-175b": 175.0e9,
        "bloom-176b": 176.0e9,
    }
    for name, expected in expectations.items():
        got = get_model(name).total_params
        assert abs(got - expected) / expected < 0.035, name


def test_heads_must_divide_hidden():
    with pytest.raises(ValueError, match="divide"):
        ModelConfig(
            name="bad", num_layers=2, hidden_size=10, num_heads=3,
            ffn_dim=40, vocab_size=100,
        )


def test_layer_flops_composition():
    cfg = get_model("opt-1.3b")
    h, f = cfg.hidden_size, cfg.ffn_dim
    # one token, context 1: projections 8h^2 + attention 4h + mlp 4hf
    expected = 8 * h * h + 4 * h + 4 * h * f
    assert cfg.layer_flops(1, 1, 1) == pytest.approx(expected)
    # linear in batch
    assert cfg.layer_flops(4, 1, 1) == pytest.approx(4 * expected)


def test_prefill_vs_decode_flops():
    cfg = get_model("opt-30b")
    s, b = 512, 8
    pre = cfg.prefill_layer_flops(b, s)
    dec = cfg.decode_layer_flops(b, s)
    # prefill processes s tokens: roughly s x the decode work
    assert pre / dec > s / 2


def test_flops_validation():
    cfg = get_model("opt-1.3b")
    with pytest.raises(ValueError):
        cfg.layer_flops(-1, 1, 1)


def test_kv_bytes_per_token():
    cfg = get_model("opt-13b")
    # 2 (K and V) * hidden * 2 bytes at FP16
    assert cfg.kv_bytes_per_token_per_layer(16) == 2 * cfg.hidden_size * 2
    assert cfg.kv_bytes_per_token_per_layer(8) == 2 * cfg.hidden_size


def test_layer_weight_bytes_scaling():
    cfg = get_model("opt-13b")
    b16 = cfg.layer_weight_bytes(16)
    b8 = cfg.layer_weight_bytes(8)
    b4 = cfg.layer_weight_bytes(4)
    b3 = cfg.layer_weight_bytes(3)
    assert b16 > b8 > b4 > b3
    # quantized formats carry scale/zero metadata: more than the raw ratio
    assert b4 > b16 * 4 / 16
    # but within 10% of it
    assert b4 < b16 * 4 / 16 * 1.10


def test_embedding_weight_bytes_never_quantized():
    cfg = get_model("opt-13b")
    assert cfg.embedding_weight_bytes(4) == cfg.embedding_weight_bytes(16)


def test_bloom_has_no_position_table():
    bloom = get_model("bloom-176b")
    opt = get_model("opt-13b")
    assert bloom.max_position_embeddings == 0
    assert opt.max_position_embeddings == 2048
    assert bloom.embedding_params == bloom.vocab_size * bloom.hidden_size


def test_activation_bytes():
    cfg = get_model("opt-1.3b")
    assert cfg.activation_bytes(2, 3) == 2 * 3 * cfg.hidden_size * 2


def test_layer_shape_operators():
    cfg = get_model("opt-1.3b")
    ops = cfg.layer_shape.operators
    assert set(ops) == {"q_proj", "k_proj", "v_proj", "out_proj", "fc1", "fc2"}
    h, f = cfg.hidden_size, cfg.ffn_dim
    assert ops["fc1"] == (h, f) and ops["fc2"] == (f, h)
    assert cfg.layer_shape.linear_params == 4 * h * h + 2 * h * f
