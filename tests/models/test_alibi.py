"""Unit tests for ALiBi attention (BLOOM-family tiny models)."""

import numpy as np
import pytest

from repro.models import TinyDecoderLM, generate, get_model, make_corpus
from repro.models.transformer import alibi_slopes


def test_slopes_power_of_two():
    s = alibi_slopes(8)
    assert s.shape == (8,)
    assert np.all(s > 0)
    # geometric decay
    ratios = s[1:] / s[:-1]
    np.testing.assert_allclose(ratios, ratios[0])
    # 8 heads: slopes are 2^-1, 2^-2, ..., 2^-8 (Press et al.)
    np.testing.assert_allclose(s, [2.0 ** -(i + 1) for i in range(8)])


def test_slopes_non_power_of_two():
    s = alibi_slopes(6)
    assert s.shape == (6,)
    assert np.all(s > 0)
    with pytest.raises(ValueError):
        alibi_slopes(0)


@pytest.fixture(scope="module")
def bloom_model():
    return TinyDecoderLM(get_model("tiny-bloom-4l"), seed=9)


@pytest.fixture(scope="module")
def tokens():
    return make_corpus(128, num_seqs=3, seq_len=10, seed=10).tokens


def test_alibi_model_runs(bloom_model, tokens):
    logits, cache = bloom_model.prefill(tokens)
    assert logits.shape == (3, 10, 128)


def test_alibi_causality(bloom_model, tokens):
    a, _ = bloom_model.prefill(tokens)
    mutated = tokens.copy()
    mutated[:, -1] = (mutated[:, -1] + 1) % 128
    b, _ = bloom_model.prefill(mutated)
    np.testing.assert_allclose(a[:, :-1], b[:, :-1], atol=1e-12)


def test_alibi_decode_matches_prefill(bloom_model, tokens):
    """KV-cached decode must equal full prefill — the ALiBi bias depends
    on absolute positions, which the cache path must preserve."""
    full, _ = bloom_model.prefill(tokens)
    _, cache = bloom_model.prefill(tokens[:, :-1], reserve=1)
    step = bloom_model.decode_step(tokens[:, -1], cache)
    np.testing.assert_allclose(step, full[:, -1], atol=1e-9)


def test_alibi_breaks_position_invariance(bloom_model):
    """Without ALiBi a no-position model is permutation-blind in ways a
    positional model is not; with ALiBi, shifting a token's position
    must change its logits."""
    toks = np.full((1, 8), 5, dtype=np.int64)
    toks[0, 2] = 9
    a, _ = bloom_model.prefill(toks)
    toks2 = np.full((1, 8), 5, dtype=np.int64)
    toks2[0, 5] = 9
    b, _ = bloom_model.prefill(toks2)
    assert not np.allclose(a[0, -1], b[0, -1])


def test_alibi_generation_end_to_end(bloom_model, tokens):
    out = generate(bloom_model, tokens[:, :6], 5)
    assert out.tokens.shape == (3, 5)


def test_alibi_pipeline_runtime_token_exact(bloom_model, tokens):
    """The distributed runtime handles ALiBi shards identically."""
    from repro.core.plan import ExecutionPlan, StagePlan
    from repro.hardware import Device, get_gpu
    from repro.runtime import PipelineRuntime
    from repro.workload import Workload

    w = Workload(prompt_len=10, gen_len=4, global_batch=3)
    dev = lambda i: Device(get_gpu("T4-16G"), 0, i)
    plan = ExecutionPlan(
        model_name="tiny-bloom-4l",
        stages=(StagePlan(dev(0), (16, 16)), StagePlan(dev(1), (16, 16))),
        prefill_microbatch=1, decode_microbatch=3, workload=w,
    )
    with PipelineRuntime(bloom_model, plan) as rt:
        out = rt.generate(tokens, 4)
    expected = generate(bloom_model, tokens, 4).tokens
    np.testing.assert_array_equal(out, expected)
