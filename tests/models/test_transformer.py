"""Unit tests for the runnable NumPy decoder transformer."""

import numpy as np
import pytest

from repro.models import KVCache, TinyDecoderLM, get_model, make_corpus


@pytest.fixture(scope="module")
def model(tiny4l):
    return TinyDecoderLM(tiny4l, seed=0)


@pytest.fixture(scope="module")
def tokens(tiny4l):
    return make_corpus(tiny4l.vocab_size, num_seqs=3, seq_len=10, seed=1).tokens


def test_prefill_shapes(model, tokens):
    logits, cache = model.prefill(tokens)
    assert logits.shape == (3, 10, model.cfg.vocab_size)
    assert cache.length == 10
    assert cache.k.shape == (model.cfg.num_layers, 3, 10, model.cfg.hidden_size)


def test_prefill_reserve_allocates_decode_slots(model, tokens):
    _, cache = model.prefill(tokens, reserve=5)
    assert cache.max_len == 15


def test_prefill_logits_modes_agree(model, tokens):
    """'last' and 'none' skip work but not state: caches are bit-identical
    to 'all', and the 'last' logits match the full projection's final
    position (to GEMM rounding — the lean mode projects a smaller matrix,
    so BLAS may round differently in the last ulp)."""
    full, cache_all = model.prefill(tokens, logits="all")
    last, cache_last = model.prefill(tokens, logits="last")
    none, cache_none = model.prefill(tokens, logits="none")
    assert last.shape == (3, 1, model.cfg.vocab_size)
    np.testing.assert_allclose(last, full[:, -1:], rtol=1e-12, atol=1e-12)
    assert none is None
    for c in (cache_last, cache_none):
        np.testing.assert_array_equal(c.k, cache_all.k)
        np.testing.assert_array_equal(c.v, cache_all.v)
        assert c.length == cache_all.length


def test_prefill_logits_mode_validated(model, tokens):
    with pytest.raises(ValueError, match="logits must be"):
        model.prefill(tokens, logits="first")


def test_nll_and_perplexity_unchanged_by_lean_prefill(model, tokens):
    """Quality metrics route through logits='all' and must not drift."""
    full = model.forward_full(tokens)
    assert full.shape == (3, 10, model.cfg.vocab_size)
    nll = model.nll(tokens)
    assert np.isfinite(nll) and nll > 0
    np.testing.assert_array_equal(full, model.prefill(tokens)[0])


def test_decode_step_matches_incremental_prefill(model, tokens):
    """Prefill over s+1 tokens == prefill over s then one decode step."""
    full_logits, _ = model.prefill(tokens)
    _, cache = model.prefill(tokens[:, :-1], reserve=1)
    step_logits = model.decode_step(tokens[:, -1], cache)
    np.testing.assert_allclose(step_logits, full_logits[:, -1], rtol=1e-9, atol=1e-9)


def test_causality(model, tokens):
    """Changing a later token must not affect earlier positions' logits."""
    logits_a, _ = model.prefill(tokens)
    mutated = tokens.copy()
    mutated[:, -1] = (mutated[:, -1] + 1) % model.cfg.vocab_size
    logits_b, _ = model.prefill(mutated)
    np.testing.assert_allclose(logits_a[:, :-1], logits_b[:, :-1], atol=1e-12)
    assert not np.allclose(logits_a[:, -1], logits_b[:, -1])


def test_kv_overflow_raises(model, tokens):
    _, cache = model.prefill(tokens)  # no reserve
    with pytest.raises(ValueError, match="overflow"):
        model.decode_step(tokens[:, 0], cache)


def test_prefill_rejects_1d_input(model):
    with pytest.raises(ValueError, match="batch"):
        model.prefill(np.array([1, 2, 3]))


def test_perplexity_positive_and_bounded(model, tokens):
    ppl = model.perplexity(tokens)
    assert 1.0 < ppl < model.cfg.vocab_size * 10


def test_clone_independent(model):
    clone = model.clone()
    clone.apply_to_layer(0, lambda n, w: w * 0)
    assert np.any(model.layers[0].wq != clone.layers[0].wq)


def test_apply_to_layer_targets_only_that_layer(model, tokens):
    m = model.clone()
    m.apply_to_layer(1, lambda n, w: w + 0.01)
    assert np.array_equal(m.layers[0].wq, model.layers[0].wq)
    assert not np.array_equal(m.layers[1].wq, model.layers[1].wq)


def test_capture_activation_stats_covers_all_operators(model, tokens):
    stats = model.capture_activation_stats(tokens)
    L = model.cfg.num_layers
    assert len(stats) == L * 6
    for (layer, op), (mean, var) in stats.items():
        assert 0 <= layer < L
        assert var >= 0


def test_too_large_config_rejected():
    with pytest.raises(ValueError, match="too large"):
        TinyDecoderLM(get_model("opt-13b"))


def test_kvcache_allocate_and_append():
    cache = KVCache.allocate(num_layers=2, batch=1, max_len=4, hidden=8)
    k = np.ones((1, 2, 8))
    cache.append(0, k, k, start=0)
    assert cache.k[0, 0, 1, 0] == 1.0
    with pytest.raises(ValueError, match="overflow"):
        cache.append(0, np.ones((1, 3, 8)), np.ones((1, 3, 8)), start=2)


def test_determinism_by_seed(tiny4l, tokens):
    a = TinyDecoderLM(tiny4l, seed=5)
    b = TinyDecoderLM(tiny4l, seed=5)
    la, _ = a.prefill(tokens)
    lb, _ = b.prefill(tokens)
    np.testing.assert_array_equal(la, lb)
