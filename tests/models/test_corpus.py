"""Unit tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.models import calibration_batch, make_corpus


def test_shape_and_range():
    c = make_corpus(100, num_seqs=5, seq_len=20, seed=0)
    assert c.tokens.shape == (5, 20)
    assert c.tokens.min() >= 0 and c.tokens.max() < 100
    assert c.num_sequences == 5 and c.seq_len == 20


def test_determinism():
    a = make_corpus(64, seed=4)
    b = make_corpus(64, seed=4)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    c = make_corpus(64, seed=5)
    assert not np.array_equal(a.tokens, c.tokens)


def test_zipfian_head_dominates():
    c = make_corpus(256, num_seqs=32, seq_len=128, alpha=1.2, seed=1)
    counts = np.bincount(c.tokens.ravel(), minlength=256)
    top_quarter = np.sort(counts)[::-1][:64].sum()
    assert top_quarter / counts.sum() > 0.6


def test_markov_weight_increases_bigram_repetition():
    """Higher markov weight -> successor distribution more concentrated."""

    def bigram_entropy(tokens: np.ndarray, vocab: int) -> float:
        pairs = {}
        flat = tokens
        for row in flat:
            for a, b in zip(row[:-1], row[1:]):
                pairs.setdefault(int(a), []).append(int(b))
        ents = []
        for _, nxt in pairs.items():
            if len(nxt) < 4:
                continue
            p = np.bincount(nxt, minlength=vocab) / len(nxt)
            p = p[p > 0]
            ents.append(-(p * np.log(p)).sum())
        return float(np.mean(ents))

    lo = make_corpus(64, num_seqs=64, seq_len=64, markov_weight=0.1, seed=2)
    hi = make_corpus(64, num_seqs=64, seq_len=64, markov_weight=0.9, seed=2)
    assert bigram_entropy(hi.tokens, 64) < bigram_entropy(lo.tokens, 64)


def test_validation():
    with pytest.raises(ValueError, match="vocab"):
        make_corpus(2)
    with pytest.raises(ValueError, match="markov"):
        make_corpus(64, markov_weight=1.5)


def test_calibration_batch_shape():
    cb = calibration_batch(128, batch=4, seq_len=16)
    assert cb.shape == (4, 16)
    np.testing.assert_array_equal(cb, calibration_batch(128, batch=4, seq_len=16))
