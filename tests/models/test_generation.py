"""Unit tests for the two-phase generation loop."""

import numpy as np
import pytest

from repro.models import TinyDecoderLM, generate, make_corpus


@pytest.fixture(scope="module")
def model(tiny4l):
    return TinyDecoderLM(tiny4l, seed=2)


@pytest.fixture(scope="module")
def prompts(tiny4l):
    return make_corpus(tiny4l.vocab_size, num_seqs=4, seq_len=8, seed=3).tokens


def test_generate_shape_and_range(model, prompts):
    out = generate(model, prompts, 7)
    assert out.tokens.shape == (4, 7)
    assert out.tokens.min() >= 0
    assert out.tokens.max() < model.cfg.vocab_size


def test_greedy_matches_manual_loop(model, prompts):
    """generate() must equal hand-rolled prefill + decode_step calls."""
    n = 5
    out = generate(model, prompts, n)
    logits, cache = model.prefill(prompts, reserve=n)
    cur = logits[:, -1].argmax(axis=-1)
    expected = [cur]
    for _ in range(n - 1):
        step = model.decode_step(cur, cache)
        cur = step.argmax(axis=-1)
        expected.append(cur)
    np.testing.assert_array_equal(out.tokens, np.stack(expected, axis=1))


def test_generate_never_stops_early(model, prompts):
    # ORCA protocol: exactly n tokens, EOS never honored
    out = generate(model, prompts, 12)
    assert out.tokens.shape[1] == 12


def test_generate_deterministic_greedy(model, prompts):
    a = generate(model, prompts, 4)
    b = generate(model, prompts, 4)
    np.testing.assert_array_equal(a.tokens, b.tokens)


def test_generate_sampling_seeded(model, prompts):
    a = generate(model, prompts, 4, greedy=False, seed=11)
    b = generate(model, prompts, 4, greedy=False, seed=11)
    c = generate(model, prompts, 4, greedy=False, seed=12)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert not np.array_equal(a.tokens, c.tokens)


def test_generate_validation(model, prompts):
    with pytest.raises(ValueError, match="batch"):
        generate(model, prompts[0], 3)
    with pytest.raises(ValueError, match="non-negative"):
        generate(model, prompts, -1)


def test_prefill_logits_exposed(model, prompts):
    out = generate(model, prompts, 3)
    assert out.prefill_logits.shape == (4, model.cfg.vocab_size)
    np.testing.assert_array_equal(
        out.prefill_logits.argmax(axis=-1), out.tokens[:, 0]
    )
