"""Unit tests for the shared operator-traffic arithmetic."""

import pytest

from repro.models import get_model
from repro.ops import ACT_BYTES, layer_memory_traffic


@pytest.fixture(scope="module")
def cfg():
    return get_model("opt-13b")


def test_traffic_monotone_in_everything(cfg):
    base = layer_memory_traffic(cfg, 16, 4, 64, 64)
    assert layer_memory_traffic(cfg, 16, 8, 64, 64) > base      # batch
    assert layer_memory_traffic(cfg, 16, 4, 128, 64) > base     # q
    assert layer_memory_traffic(cfg, 16, 4, 64, 128) > base     # context
    assert layer_memory_traffic(cfg, 4, 4, 64, 64) < base       # bits


def test_weight_term_dominates_decode(cfg):
    """Single-token decode at moderate context: weight bytes are the
    biggest traffic component (why quantization helps decode)."""
    total16 = layer_memory_traffic(cfg, 16, 1, 1, 512)
    w_bytes = cfg.layer_weight_bytes(16)
    assert w_bytes / total16 > 0.5


def test_kv_bits_reduce_traffic(cfg):
    full = layer_memory_traffic(cfg, 16, 8, 1, 1024, kv_bits=16)
    half = layer_memory_traffic(cfg, 16, 8, 1, 1024, kv_bits=8)
    assert half < full


def test_act_bytes_constant():
    assert ACT_BYTES == 2.0  # FP16 activations throughout
