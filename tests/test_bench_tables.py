"""Unit tests for the benchmark-harness table helpers."""

import json

from repro.bench import tables
from repro.bench.tables import format_table, save_results


def test_format_table_basic():
    rows = [{"a": 1, "b": 2.3456}, {"a": 10, "b": None}]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "a" in lines[1] and "b" in lines[1]
    assert "2.35" in text  # floats rounded to 2 decimals
    assert "-" in lines[-1]  # None rendered as dash


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=("c", "a"))
    header = text.splitlines()[0]
    assert header.index("c") < header.index("a")
    assert "b" not in header


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="x")


def test_save_results_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setattr(tables, "RESULTS_DIR", tmp_path)
    path = save_results("unit", [{"k": 1}])
    assert path.parent == tmp_path
    assert json.loads(path.read_text()) == [{"k": 1}]


def test_save_results_handles_non_json_types(tmp_path, monkeypatch):
    monkeypatch.setattr(tables, "RESULTS_DIR", tmp_path)
    path = save_results("unit2", {"p": tmp_path})  # Path is not JSON-native
    assert json.loads(path.read_text())["p"] == str(tmp_path)
