"""Smoke tests for the top-level public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_exports_resolve():
    import repro.core as core
    import repro.hardware as hardware
    import repro.models as models
    import repro.quant as quant
    import repro.runtime as runtime
    import repro.sim as sim
    import repro.workload as workload

    for mod in (core, hardware, models, quant, runtime, sim, workload):
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{mod.__name__}.{name}"


def test_quickstart_docstring_example_shape():
    """The module docstring's quickstart names must exist."""
    assert callable(repro.plan_llmpq)
    assert callable(repro.evaluate_plan)
    assert callable(repro.compare_schemes)
    assert repro.DEFAULT_WORKLOAD.prompt_len == 512
