"""Unit tests for the high-level API (plan / evaluate / compare)."""

import numpy as np
import pytest

from repro.core.api import ServingReport, compare_schemes, evaluate_plan, plan_llmpq
from repro.core.plan import ExecutionPlan


@pytest.fixture(scope="module")
def reports(small_hetero_cluster, latmodel_13b):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=50, global_batch=16)
    return compare_schemes(
        "opt-13b", small_hetero_cluster, w,
        schemes=("PipeEdge", "Uniform", "FlexGen-int8", "LLM-PQ", "adabits"),
        group_size=4, latency_model=latmodel_13b,
    )


def test_all_schemes_reported(reports):
    names = [r.scheme for r in reports]
    assert names == ["PipeEdge", "Uniform", "FlexGen-int8", "LLM-PQ", "adabits"]


def test_llmpq_wins_on_hetero_cluster(reports):
    by = {r.scheme: r for r in reports}
    llmpq = by["LLM-PQ"]
    assert llmpq.feasible
    for other in ("PipeEdge", "Uniform", "FlexGen-int8"):
        if by[other].feasible:
            assert llmpq.throughput >= by[other].throughput * 0.95


def test_quality_within_target(reports):
    by = {r.scheme: r for r in reports}
    # LLM-PQ's PPL stays close to the best baseline's (paper: negligible
    # degradation, often better)
    feasible_ppls = [r.perplexity for r in reports if r.feasible and np.isfinite(r.perplexity)]
    assert by["LLM-PQ"].perplexity <= min(feasible_ppls) + 0.6


def test_speedup_over(reports):
    by = {r.scheme: r for r in reports}
    x = by["LLM-PQ"].speedup_over(by["PipeEdge"])
    assert x == pytest.approx(by["LLM-PQ"].throughput / by["PipeEdge"].throughput)


def test_report_row_format(reports):
    row = reports[0].row()
    assert set(row) == {"scheme", "ppl", "latency_s", "throughput_tok_s", "avg_bits"}


def test_evaluate_plan_roundtrip(small_hetero_cluster):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=50, global_batch=16)
    plan = ExecutionPlan.uniform("opt-13b", small_hetero_cluster.devices, w, bits=8)
    rep = evaluate_plan(plan, small_hetero_cluster, scheme="test")
    assert rep.scheme == "test"
    assert rep.feasible
    assert rep.average_bits == 8.0


def test_unknown_scheme_rejected(small_hetero_cluster):
    from repro.workload import Workload

    w = Workload(prompt_len=64, gen_len=4, global_batch=4)
    with pytest.raises(ValueError, match="unknown scheme"):
        compare_schemes("opt-13b", small_hetero_cluster, w, schemes=("vLLM",))


def test_plan_llmpq_heuristic_mode(small_hetero_cluster, latmodel_13b):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=20, global_batch=8)
    res = plan_llmpq(
        "opt-13b", small_hetero_cluster, w,
        use_heuristic=True, group_size=4, latency_model=latmodel_13b,
    )
    assert res.feasible
