"""Unit tests for the high-level API (plan / evaluate / compare)."""

import numpy as np
import pytest

from repro.core.api import ServingReport, compare_schemes, evaluate_plan, plan_llmpq
from repro.core.plan import ExecutionPlan


@pytest.fixture(scope="module")
def reports(small_hetero_cluster, latmodel_13b):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=50, global_batch=16)
    return compare_schemes(
        "opt-13b", small_hetero_cluster, w,
        schemes=("PipeEdge", "Uniform", "FlexGen-int8", "LLM-PQ", "adabits"),
        group_size=4, latency_model=latmodel_13b,
    )


def test_all_schemes_reported(reports):
    names = [r.scheme for r in reports]
    assert names == ["PipeEdge", "Uniform", "FlexGen-int8", "LLM-PQ", "adabits"]


def test_llmpq_wins_on_hetero_cluster(reports):
    by = {r.scheme: r for r in reports}
    llmpq = by["LLM-PQ"]
    assert llmpq.feasible
    for other in ("PipeEdge", "Uniform", "FlexGen-int8"):
        if by[other].feasible:
            assert llmpq.throughput >= by[other].throughput * 0.95


def test_quality_within_target(reports):
    by = {r.scheme: r for r in reports}
    # LLM-PQ's PPL stays close to the best baseline's (paper: negligible
    # degradation, often better)
    feasible_ppls = [r.perplexity for r in reports if r.feasible and np.isfinite(r.perplexity)]
    assert by["LLM-PQ"].perplexity <= min(feasible_ppls) + 0.6


def test_speedup_over(reports):
    by = {r.scheme: r for r in reports}
    x = by["LLM-PQ"].speedup_over(by["PipeEdge"])
    assert x == pytest.approx(by["LLM-PQ"].throughput / by["PipeEdge"].throughput)


def test_report_row_format(reports):
    row = reports[0].row()
    assert set(row) == {"scheme", "ppl", "latency_s", "throughput_tok_s", "avg_bits"}


def test_evaluate_plan_roundtrip(small_hetero_cluster):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=50, global_batch=16)
    plan = ExecutionPlan.uniform("opt-13b", small_hetero_cluster.devices, w, bits=8)
    rep = evaluate_plan(plan, small_hetero_cluster, scheme="test")
    assert rep.scheme == "test"
    assert rep.feasible
    assert rep.average_bits == 8.0


def test_unknown_scheme_rejected(small_hetero_cluster):
    from repro.workload import Workload

    w = Workload(prompt_len=64, gen_len=4, global_batch=4)
    with pytest.raises(ValueError, match="unknown scheme"):
        compare_schemes("opt-13b", small_hetero_cluster, w, schemes=("vLLM",))


def test_plan_llmpq_heuristic_mode(small_hetero_cluster, latmodel_13b):
    from repro.workload import Workload

    w = Workload(prompt_len=256, gen_len=20, global_batch=8)
    res = plan_llmpq(
        "opt-13b", small_hetero_cluster, w,
        use_heuristic=True, group_size=4, latency_model=latmodel_13b,
    )
    assert res.feasible


# ---------------------------------------------------------------------------
# replan_after_failure (the runtime's last degradation rung)
# ---------------------------------------------------------------------------


def _four_stage_plan():
    from repro.hardware import make_cluster
    from repro.workload import Workload

    cl = make_cluster([("T4-16G", 4)], name="quad")
    w = Workload(prompt_len=128, gen_len=8, global_batch=8)
    return ExecutionPlan.uniform("opt-13b", cl.devices, w, bits=8)


def _all_bits(plan):
    return [b for st in plan.stages for b in st.layer_bits]


def test_replan_middle_stage_splits_layers_to_neighbours():
    from repro.core.api import replan_after_failure

    plan = _four_stage_plan()
    new = replan_after_failure(plan, 1)
    assert new.num_stages == 3
    assert new.num_layers == plan.num_layers
    assert _all_bits(new) == _all_bits(plan)  # per-layer recipe preserved
    # the dead stage's 10 layers split between stages 0 and 2
    assert new.stages[0].num_layers == 10 + 5
    assert new.stages[1].num_layers == 10 + 5
    assert new.meta["replanned_after_stage_failure"] == 1
    assert new.meta["lost_device"] == plan.stages[1].device.name
    # serving shape unchanged
    assert new.prefill_microbatch == plan.prefill_microbatch
    assert new.decode_microbatch == plan.decode_microbatch
    assert new.workload == plan.workload


def test_replan_first_and_last_stage():
    from repro.core.api import replan_after_failure

    plan = _four_stage_plan()
    first = replan_after_failure(plan, 0)
    assert first.num_stages == 3
    assert first.stages[0].num_layers == 20  # absorbed downstream
    assert _all_bits(first) == _all_bits(plan)
    last = replan_after_failure(plan, 3)
    assert last.num_stages == 3
    assert last.stages[-1].num_layers == 20  # absorbed upstream
    assert _all_bits(last) == _all_bits(plan)


def test_replan_validation():
    from repro.core.api import replan_after_failure
    from repro.hardware import make_cluster
    from repro.workload import Workload

    plan = _four_stage_plan()
    with pytest.raises(ValueError, match="out of range"):
        replan_after_failure(plan, 4)
    cl = make_cluster([("T4-16G", 1)])
    w = Workload(prompt_len=128, gen_len=8, global_batch=8)
    single = ExecutionPlan.uniform("opt-13b", cl.devices, w, bits=8)
    with pytest.raises(ValueError, match="no surviving"):
        replan_after_failure(single, 0)


def test_replan_with_planner_falls_back_gracefully(
    small_hetero_cluster, latmodel_13b
):
    """use_planner=True re-plans on the survivors, or falls back to the
    deterministic redistribution — either way a valid degraded plan."""
    from repro.core.api import replan_after_failure
    from repro.workload import Workload

    w = Workload(prompt_len=128, gen_len=8, global_batch=8)
    plan = ExecutionPlan.uniform(
        "opt-13b", small_hetero_cluster.devices, w, bits=8
    )
    new = replan_after_failure(
        plan, 0, cluster=small_hetero_cluster, use_planner=True,
        latency_model=latmodel_13b,
    )
    assert new.num_stages == 1
    assert new.num_layers == plan.num_layers
    assert new.meta["replanned_after_stage_failure"] == 0
