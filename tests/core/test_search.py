"""Tests for the parallel, cache-aware planner search engine.

Covers the engine's asserted-identical-result guarantee: vectorized MILP
assembly is *exactly* equal to the legacy dict-loop builder, the shared
prediction cache is numerically transparent, and the engine (serial or
parallel, with dedup and LP-bound pruning) returns the same best
objective and an equivalent plan as the legacy serial loop.
"""

import numpy as np
import pytest

from repro.core.ilp import BitAssignmentILP, lp_lower_bound, solve_assembled
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig, _microbatch_pairs
from repro.hardware import make_cluster
from repro.quant import synthetic_indicator
from repro.workload import Workload


@pytest.fixture(scope="module")
def search_cluster():
    """2xT4 + 1xV100: two interchangeable devices so block orderings
    exercise the type-sequence dedup key."""
    return make_cluster([("T4-16G", 2), ("V100-32G", 1)], name="search3")


def _make_opt(cluster, latmodel, **overrides):
    cfg = dict(
        group_size=4,
        theta=1.0,
        prefill_mb_cap=4,
        decode_mb_candidates=(4, 8),
    )
    cfg.update(overrides)
    return LLMPQOptimizer(
        "opt-13b",
        cluster,
        Workload(prompt_len=128, gen_len=16, global_batch=8),
        config=PlannerConfig(**cfg),
        latency_model=latmodel,
    )


def _plan_signature(plan):
    return (
        plan.layer_bits,
        tuple(st.device.type_name for st in plan.stages),
        tuple(len(st.layer_bits) for st in plan.stages),
        plan.prefill_microbatch,
        plan.decode_microbatch,
    )


# ---------------------------------------------------------------- assembly


@pytest.mark.parametrize("group", [1, 4])
@pytest.mark.parametrize("theta", [1.0, 10.0])
@pytest.mark.parametrize(
    "include_latency,phase_aware", [(True, True), (True, False), (False, True)]
)
def test_vectorized_assembly_exactly_equals_legacy(
    search_cluster, latmodel_13b, opt13b, group, theta, include_latency, phase_aware
):
    """Property-style equality: objective vector, constraint matrix and
    row bounds from the numpy builder are bitwise identical to the
    legacy scalar/dict-loop builder."""
    ind = synthetic_indicator(opt13b).normalized().grouped(group)
    ilp = BitAssignmentILP(
        cfg=opt13b,
        workload=Workload(prompt_len=128, gen_len=16, global_batch=8),
        devices=list(search_cluster.devices),
        latency_model=latmodel_13b,
        indicator=ind,
        prefill_microbatch=4,
        decode_microbatch=8,
        group_size=group,
        theta=theta,
        include_latency=include_latency,
        phase_aware=phase_aware,
    )
    vec = ilp.assemble()
    leg = ilp.assemble(legacy=True)
    assert vec is not None and leg is not None
    assert np.array_equal(vec.c, leg.c)
    assert np.array_equal(vec.lo, leg.lo)
    assert np.array_equal(vec.hi, leg.hi)
    assert vec.A.shape == leg.A.shape
    assert (vec.A - leg.A).nnz == 0  # identical sparsity *and* values
    assert np.array_equal(vec.omega, leg.omega)


def test_cached_coefficients_bitwise_equal_scalar_path(
    search_cluster, latmodel_13b, opt13b
):
    """The prediction cache fills coefficient tensors with the same
    numbers as per-cell ``predict_layer`` calls."""
    ind = synthetic_indicator(opt13b).normalized().grouped(2)
    ilp = BitAssignmentILP(
        cfg=opt13b,
        workload=Workload(prompt_len=128, gen_len=16, global_batch=8),
        devices=list(search_cluster.devices),
        latency_model=latmodel_13b,
        indicator=ind,
        prefill_microbatch=2,
        decode_microbatch=4,
        group_size=2,
    )
    _, tp_v, td_v, mem_v, om_v = ilp._coefficients()
    _, tp_l, td_l, mem_l, om_l = ilp._coefficients(legacy=True)
    assert np.array_equal(tp_v, tp_l)
    assert np.array_equal(td_v, td_l)
    assert np.array_equal(mem_v, mem_l)
    assert np.array_equal(om_v, om_l)


def test_prediction_cache_reused_across_assemblies(search_cluster, latmodel_13b):
    """A second assembly of the same candidate costs zero cache misses."""
    opt = _make_opt(search_cluster, latmodel_13b)
    ordering = opt.orderings()[0]
    _, ilp = opt._solve_candidate(ordering, 4, 8)
    misses = opt.prediction_cache.misses
    ilp.assemble()
    assert opt.prediction_cache.misses == misses
    assert opt.prediction_cache.hits > 0


# ---------------------------------------------------------------- bounds


def test_lp_bound_is_admissible(search_cluster, latmodel_13b):
    """LP relaxation optimum never exceeds the MILP optimum."""
    opt = _make_opt(search_cluster, latmodel_13b)
    for ordering in opt.orderings():
        _, ilp = opt._solve_candidate(ordering, 4, 8)
        prob = ilp.assemble()
        assert prob is not None
        sol = solve_assembled(prob)
        assert sol.feasible
        assert lp_lower_bound(prob) <= sol.objective + 1e-9


# ---------------------------------------------------------------- engine


@pytest.fixture(scope="module")
def legacy_result(search_cluster, latmodel_13b):
    return _make_opt(search_cluster, latmodel_13b).optimize_legacy()


@pytest.fixture(scope="module")
def engine_result(search_cluster, latmodel_13b):
    return _make_opt(search_cluster, latmodel_13b).optimize()


@pytest.fixture(scope="module")
def parallel_result(search_cluster, latmodel_13b):
    return _make_opt(search_cluster, latmodel_13b, n_jobs=2).optimize()


def test_engine_matches_legacy_best(engine_result, legacy_result):
    assert engine_result.feasible and legacy_result.feasible
    assert engine_result.objective == pytest.approx(
        legacy_result.objective, abs=1e-6
    )
    assert _plan_signature(engine_result.plan) == _plan_signature(
        legacy_result.plan
    )


def test_parallel_matches_serial(parallel_result, engine_result):
    assert parallel_result.objective == pytest.approx(
        engine_result.objective, abs=1e-6
    )
    assert _plan_signature(parallel_result.plan) == _plan_signature(
        engine_result.plan
    )
    assert parallel_result.stats.n_jobs == 2


def test_engine_candidate_grid_matches_legacy(engine_result, legacy_result):
    """Same enumeration order and per-candidate metadata as the legacy
    loop; the winning objective is the grid minimum in both."""
    assert len(engine_result.candidates) == len(legacy_result.candidates)
    for e, ref in zip(engine_result.candidates, legacy_result.candidates):
        assert e.ordering == ref.ordering
        assert e.prefill_microbatch == ref.prefill_microbatch
        assert e.decode_microbatch == ref.decode_microbatch
    # every non-pruned optimal candidate's objective agrees with legacy
    for e, ref in zip(engine_result.candidates, legacy_result.candidates):
        if e.status == "optimal":
            assert e.objective == pytest.approx(ref.objective, abs=1e-6)
    best = min(
        c.objective for c in engine_result.candidates if c.status == "optimal"
    )
    assert engine_result.objective == pytest.approx(best)


def test_pruned_candidates_cannot_beat_winner(engine_result, legacy_result):
    """Admissibility in action: every candidate the engine pruned has a
    legacy objective no better than the returned best."""
    for e, ref in zip(engine_result.candidates, legacy_result.candidates):
        if e.status == "pruned":
            assert ref.objective >= engine_result.objective - 1e-9


def test_stats_accounting(engine_result):
    st = engine_result.stats
    assert st is not None
    assert st.candidates_total == len(engine_result.candidates)
    assert st.candidates_total == st.unique_candidates + st.dedup_skipped
    assert st.solved >= 1
    assert st.cache_misses > 0
    assert st.cache_hits > 0  # shared cache pays off across candidates
    assert st.total_seconds > 0
    row = st.row()
    assert row["candidates"] == st.candidates_total
    assert "search:" in st.describe()


def test_prune_and_dedup_toggles_preserve_result(
    search_cluster, latmodel_13b, engine_result
):
    plain = _make_opt(
        search_cluster, latmodel_13b, prune=False, dedup=False
    ).optimize()
    assert plain.stats.pruned == 0
    assert plain.stats.dedup_skipped == 0
    assert plain.objective == pytest.approx(engine_result.objective, abs=1e-6)
    assert _plan_signature(plain.plan) == _plan_signature(engine_result.plan)


# ---------------------------------------------------------------- dedup


def test_dedup_fans_solutions_back_out(search_cluster, latmodel_13b):
    """Injected duplicate orderings are solved once and fanned back out
    with per-member records identical to the representative's."""
    opt = _make_opt(search_cluster, latmodel_13b)
    base = opt.orderings()
    opt.orderings = lambda: base + [base[0]]  # duplicate type sequence
    pairs = len(_microbatch_pairs(opt.workload, len(base[0]), opt.config))
    res = opt.optimize()
    st = res.stats
    assert st.dedup_skipped == pairs
    assert st.unique_candidates == len(base) * pairs
    assert st.candidates_total == (len(base) + 1) * pairs
    # the duplicated ordering's records mirror the first ordering's
    for rep, dup in zip(res.candidates[:pairs], res.candidates[-pairs:]):
        assert rep.ordering == dup.ordering
        assert rep.status == dup.status
        if rep.status == "optimal":
            assert dup.objective == pytest.approx(rep.objective, abs=1e-9)

    # and the best plan is unchanged by the duplicate
    ref = _make_opt(search_cluster, latmodel_13b).optimize()
    assert res.objective == pytest.approx(ref.objective, abs=1e-6)
    assert _plan_signature(res.plan) == _plan_signature(ref.plan)
