"""Unit tests for plan representation and serialization."""

import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.workload import Workload


def _dev(name="T4-16G", node=0, rank=0):
    return Device(get_gpu(name), node_id=node, local_rank=rank)


def _plan13b(w=None):
    w = w or Workload(prompt_len=128, gen_len=10, global_batch=8)
    return ExecutionPlan(
        model_name="opt-13b",
        stages=(
            StagePlan(_dev("T4-16G"), (8,) * 15),
            StagePlan(_dev("V100-32G", 1), (16,) * 25),
        ),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=w,
    )


def test_plan_properties():
    p = _plan13b()
    assert p.num_stages == 2
    assert p.num_layers == 40
    assert p.partition == (15, 25)
    assert p.layer_bits == (8,) * 15 + (16,) * 25
    assert p.average_bits() == pytest.approx((8 * 15 + 16 * 25) / 40)


def test_plan_layer_count_must_match_model():
    with pytest.raises(ValueError, match="layers"):
        ExecutionPlan(
            model_name="opt-13b",
            stages=(StagePlan(_dev(), (16,) * 10),),
            prefill_microbatch=1,
            decode_microbatch=1,
            workload=Workload(prompt_len=8, gen_len=2, global_batch=2),
        )


def test_microbatch_validation():
    w = Workload(prompt_len=8, gen_len=2, global_batch=2)
    with pytest.raises(ValueError, match="micro-batch"):
        ExecutionPlan(
            model_name="opt-13b",
            stages=(StagePlan(_dev(), (16,) * 40),),
            prefill_microbatch=0,
            decode_microbatch=1,
            workload=w,
        )
    with pytest.raises(ValueError, match="exceeds global batch"):
        ExecutionPlan(
            model_name="opt-13b",
            stages=(StagePlan(_dev(), (16,) * 40),),
            prefill_microbatch=4,
            decode_microbatch=1,
            workload=w,
        )


def test_json_roundtrip(tmp_path):
    p = _plan13b()
    path = tmp_path / "strategy.json"
    p.to_json(path)
    q = ExecutionPlan.from_json(path)
    assert q == p
    # roundtrip via string too
    r = ExecutionPlan.from_json(p.to_json())
    assert r == p


def test_describe_contains_key_facts():
    text = _plan13b().describe()
    assert "opt-13b" in text
    assert "T4-16G" in text and "V100-32G" in text
    assert "15" in text and "25" in text


def test_uniform_constructor_even_split():
    w = Workload(prompt_len=128, gen_len=10, global_batch=8)
    devices = [_dev("T4-16G", 0, i) for i in range(3)]
    p = ExecutionPlan.uniform("opt-30b", devices, w, bits=8)
    assert p.partition == (16, 16, 16)
    assert set(p.layer_bits) == {8}
    # uneven split puts the remainder on the front stages
    p2 = ExecutionPlan.uniform("opt-13b", devices, w, bits=4)  # 40 over 3
    assert p2.partition == (14, 13, 13)


def test_stageplan_validation():
    with pytest.raises(ValueError, match="positive"):
        StagePlan(_dev(), (0, 4))


def test_bit_counts():
    sp = StagePlan(_dev(), (8, 8, 16, 4))
    assert sp.bit_counts == {8: 2, 16: 1, 4: 1}
