"""Unit tests for adabits + the bitwidth-transfer heuristic (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.heuristic import (
    _objective,
    adabits_plan,
    bitwidth_transfer,
    heuristic_optimize,
)
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig


@pytest.fixture(scope="module")
def planner(cluster3, latmodel_cluster3, workload):
    return LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    )


@pytest.fixture(scope="module")
def seed_plan(planner):
    return adabits_plan(planner)


def test_adabits_feasible_and_high_precision(planner, seed_plan, cluster3):
    assert seed_plan is not None
    from repro.sim.pipeline import simulate_pipeline

    res = simulate_pipeline(seed_plan, cluster3)
    assert res.feasible
    # quality-only: should use every spare byte for precision
    assert seed_plan.average_bits() > 8


def test_bitwidth_transfer_never_degrades(planner, seed_plan):
    improved = bitwidth_transfer(planner, seed_plan)
    assert _objective(planner, improved) <= _objective(planner, seed_plan) + 1e-9


def test_bitwidth_transfer_preserves_layer_count(planner, seed_plan):
    improved = bitwidth_transfer(planner, seed_plan)
    assert improved.num_layers == seed_plan.num_layers
    assert improved.num_stages == seed_plan.num_stages


def test_heuristic_optimize_close_to_exact(planner, cluster3):
    from repro.sim.pipeline import simulate_pipeline

    heur = heuristic_optimize(planner)
    assert heur.feasible
    exact = planner.optimize()
    t_h = simulate_pipeline(heur.plan, cluster3).throughput
    t_e = simulate_pipeline(exact.plan, cluster3).throughput
    # Table 8: the heuristic lands in the same ballpark as the ILP
    assert t_h > 0.6 * t_e


def test_heuristic_faster_than_exact_per_candidate(planner):
    """The heuristic's point is solve-time: its per-ordering cost must be
    small (Table 8's overhead column)."""
    heur = heuristic_optimize(planner)
    solve_times = [c.solve_seconds for c in heur.candidates if np.isfinite(c.objective)]
    assert solve_times and max(solve_times) < 30.0


def test_adabits_with_explicit_ordering(planner, cluster3):
    ordering = list(reversed(cluster3.devices))
    plan = adabits_plan(planner, ordering)
    assert plan is not None
    assert plan.stages[0].device.type_name == "V100-32G"
