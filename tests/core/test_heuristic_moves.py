"""Unit tests for the bitwidth-transfer transformation mechanics.

Algorithm 2's moves must preserve plan well-formedness: total layer
count, stage count, contiguity (implicit in the stage structure), and
the compound "(4, 8, 2)"-style trades must actually change precision on
the target.
"""

import pytest

from repro.core.heuristic import _layer_offsets, _neighbors
from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.workload import Workload


@pytest.fixture(scope="module")
def optimizer(cluster3, latmodel_cluster3, workload):
    return LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4),
        latency_model=latmodel_cluster3,
    )


@pytest.fixture(scope="module")
def base_plan(cluster3, workload):
    devices = list(cluster3.devices)
    return ExecutionPlan(
        model_name="opt-30b",
        stages=(
            StagePlan(devices[0], (8,) * 12),
            StagePlan(devices[1], (8,) * 12),
            StagePlan(devices[2], (8,) * 12),
            StagePlan(devices[3], (16,) * 12),
        ),
        prefill_microbatch=4,
        decode_microbatch=8,
        workload=workload,
    )


def test_layer_offsets(base_plan):
    assert _layer_offsets(base_plan) == [0, 12, 24, 36]


@pytest.mark.parametrize("straggler", [0, 1, 2, 3])
def test_neighbors_preserve_layer_count(optimizer, base_plan, straggler):
    for cand in _neighbors(optimizer, base_plan, straggler):
        assert cand.num_layers == base_plan.num_layers
        assert cand.num_stages == base_plan.num_stages


def test_neighbors_include_chain_moves_to_all_targets(optimizer, base_plan):
    """A straggler in the middle must be able to shed load to both the
    head and the tail stage (through intermediates)."""
    cands = _neighbors(optimizer, base_plan, 2)
    partitions = {c.partition for c in cands}
    # some candidate reduced stage 2 by one layer
    assert any(p[2] == 11 for p in partitions)
    # ...with the extra layer landing on stage 0 (two hops away)
    assert any(p[0] == 13 and p[2] == 11 for p in partitions)
    # ...and on stage 3
    assert any(p[3] == 13 and p[2] == 11 for p in partitions)


def test_neighbors_include_bit_changes_on_straggler(optimizer, base_plan):
    cands = _neighbors(optimizer, base_plan, 1)
    same_partition = [c for c in cands if c.partition == base_plan.partition]
    bit_sets = {c.stages[1].layer_bits for c in same_partition}
    # at least one downgrade (8 -> 4) and one upgrade (8 -> 16) variant
    assert any(4 in bits for bits in bit_sets)
    assert any(16 in bits for bits in bit_sets)


def test_compound_move_downgrades_target(optimizer, base_plan):
    """The (4, 8, 2)-style variant: moving a layer onto stage 3 may also
    downgrade one of stage 3's FP16 layers to 8-bit to make room."""
    cands = _neighbors(optimizer, base_plan, 2)
    grew_and_downgraded = [
        c for c in cands
        if c.partition[3] == 13 and 8 in c.stages[3].layer_bits
    ]
    assert grew_and_downgraded


def test_neighbors_of_single_layer_stage(optimizer, workload, cluster3):
    """A one-layer straggler cannot shed its only layer (stages must stay
    non-empty) but can still change bits."""
    devices = list(cluster3.devices)
    plan = ExecutionPlan(
        model_name="opt-30b",
        stages=(
            StagePlan(devices[0], (8,) * 1),
            StagePlan(devices[1], (8,) * 15),
            StagePlan(devices[2], (8,) * 16),
            StagePlan(devices[3], (16,) * 16),
        ),
        prefill_microbatch=4,
        decode_microbatch=8,
        workload=workload,
    )
    cands = _neighbors(optimizer, plan, 0)
    assert cands  # bit changes still available
    for c in cands:
        assert all(s.num_layers >= 1 for s in c.stages)
