"""Unit tests for plan validation."""

import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.core.validate import validate_plan
from repro.hardware import Device, get_gpu, make_cluster, paper_cluster
from repro.workload import Workload


def _w():
    return Workload(prompt_len=128, gen_len=10, global_batch=8)


def _good_plan(cluster):
    return ExecutionPlan.uniform("opt-30b", cluster.devices, _w(), bits=8)


def test_good_plan_ok(cluster3):
    rep = validate_plan(_good_plan(cluster3), cluster3)
    assert rep.ok, rep.describe()
    assert rep.describe() == "plan OK"


def test_device_mismatch_detected(cluster3):
    other = make_cluster([("A800-80G", 4)])
    plan = _good_plan(other)
    rep = validate_plan(plan, cluster3)
    assert not rep.ok
    assert any(i.code == "device-mismatch" for i in rep.errors)


def test_oom_detected(cluster3):
    w = Workload(prompt_len=512, gen_len=100, global_batch=32)
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, w, bits=16)
    rep = validate_plan(plan, cluster3)
    assert not rep.ok
    assert any(i.code == "oom" for i in rep.errors)


def test_ragged_microbatch_warns(cluster3):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, _w(), bits=8,
        prefill_microbatch=3, decode_microbatch=3,
    )
    rep = validate_plan(plan)
    assert rep.ok  # warnings only
    assert any(i.code == "ragged-prefill" for i in rep.warnings)


def test_regroup_mismatch_warns(cluster3):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, _w(), bits=8,
        prefill_microbatch=4, decode_microbatch=6,
    )
    rep = validate_plan(plan)
    assert any(i.code == "regroup-mismatch" for i in rep.warnings)


def test_unsupported_bits_detected(cluster3):
    dev = Device(get_gpu("A800-80G"), 0, 0)
    stages = (StagePlan(dev, (5,) * 48),)  # 5-bit is not a kernel we have
    plan = ExecutionPlan(
        model_name="opt-30b", stages=stages,
        prefill_microbatch=2, decode_microbatch=2, workload=_w(),
    )
    rep = validate_plan(plan)
    assert any(i.code == "unsupported-bits" for i in rep.errors)


def test_validate_without_cluster_skips_memory(cluster3):
    w = Workload(prompt_len=512, gen_len=100, global_batch=32)
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, w, bits=16)
    rep = validate_plan(plan)  # no cluster: static checks only
    assert rep.ok
