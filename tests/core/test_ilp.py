"""Unit tests for the bitwidth-assignment + partition ILP."""

import numpy as np
import pytest

from repro.core.ilp import BitAssignmentILP
from repro.quant import synthetic_indicator
from repro.workload import Workload


def _make_ilp(cluster, latmodel, opt30b, *, theta=1.0, group=2,
              include_latency=True, workload=None, mb=(8, 8)):
    ind = synthetic_indicator(opt30b).normalized().grouped(group)
    return BitAssignmentILP(
        cfg=opt30b,
        workload=workload or Workload(prompt_len=512, gen_len=100, global_batch=32),
        devices=list(cluster.devices),
        latency_model=latmodel,
        indicator=ind,
        prefill_microbatch=mb[0],
        decode_microbatch=mb[1],
        group_size=group,
        theta=theta,
        include_latency=include_latency,
    )


@pytest.fixture(scope="module")
def base_solution(cluster3, latmodel_cluster3, opt30b):
    ilp = _make_ilp(cluster3, latmodel_cluster3, opt30b)
    return ilp, ilp.solve()


def test_solution_feasible(base_solution):
    _, sol = base_solution
    assert sol.feasible
    assert sol.solve_seconds < 60


def test_every_layer_assigned_once(base_solution, opt30b):
    ilp, sol = base_solution
    dev, bits = ilp.expand_groups(sol)
    assert len(dev) == opt30b.num_layers
    assert len(bits) == opt30b.num_layers
    assert all(b in (3, 4, 8, 16) for b in bits)


def test_contiguity(base_solution):
    ilp, sol = base_solution
    dev, _ = ilp.expand_groups(sol)
    # device index must be non-decreasing over layers
    assert all(a <= b for a, b in zip(dev, dev[1:]))


def test_every_device_hosts_layers(base_solution, cluster3):
    ilp, sol = base_solution
    dev, _ = ilp.expand_groups(sol)
    assert set(dev) == set(range(cluster3.num_devices))


def test_memory_constraint_respected(base_solution, opt30b, cluster3):
    ilp, sol = base_solution
    dev, bits = ilp.expand_groups(sol)
    from repro.cost.memory import kv_cache_bytes

    per_layer_kv = kv_cache_bytes(opt30b, 1, 32, 612)
    for j, device in enumerate(cluster3.devices):
        used = sum(
            opt30b.layer_weight_bytes(b) + per_layer_kv
            for d, b in zip(dev, bits)
            if d == j
        )
        assert used <= ilp._device_capacity(j) + 1e-6


def test_adaptive_quantization_exploits_heterogeneity(cluster3, latmodel_cluster3, opt30b):
    """T4s (memory-poor, INT8 tensor cores) should quantize harder than
    the V100 — the paper's core claim.  At theta ~5 the quality term is
    strong enough to keep the V100 high-precision while the T4s must
    quantize to fit."""
    ilp = _make_ilp(cluster3, latmodel_cluster3, opt30b, theta=5.0)
    sol = ilp.solve()
    dev, bits = ilp.expand_groups(sol)
    t4_bits = [b for d, b in zip(dev, bits) if cluster3.devices[d].type_name == "T4-16G"]
    v100_bits = [b for d, b in zip(dev, bits) if cluster3.devices[d].type_name == "V100-32G"]
    assert np.mean(t4_bits) < np.mean(v100_bits)


def test_higher_theta_buys_more_bits(cluster3, latmodel_cluster3, opt30b):
    """Fig. 8: raising the quality scalar shifts the plan toward higher
    precision (>= average bits)."""
    lo = _make_ilp(cluster3, latmodel_cluster3, opt30b, theta=0.01)
    hi = _make_ilp(cluster3, latmodel_cluster3, opt30b, theta=100.0)
    _, bits_lo = lo.expand_groups(lo.solve())
    _, bits_hi = hi.expand_groups(hi.solve())
    assert np.mean(bits_hi) >= np.mean(bits_lo)


def test_adabits_maximizes_quality_only(cluster3, latmodel_cluster3, opt30b):
    """Without the latency term the ILP packs in the highest-precision
    assignment that fits, at least as many bits as the joint solve."""
    joint = _make_ilp(cluster3, latmodel_cluster3, opt30b, theta=1.0)
    ada = _make_ilp(cluster3, latmodel_cluster3, opt30b, include_latency=False)
    _, bits_joint = joint.expand_groups(joint.solve())
    _, bits_ada = ada.expand_groups(ada.solve())
    assert np.mean(bits_ada) >= np.mean(bits_joint) - 1e-9


def test_infeasible_workload_detected(cluster3, latmodel_cluster3, opt30b):
    """A batch whose KV cache alone exceeds the cluster must be rejected."""
    huge = Workload(prompt_len=2048, gen_len=512, global_batch=256)
    ilp = _make_ilp(cluster3, latmodel_cluster3, opt30b, workload=huge)
    sol = ilp.solve()
    assert not sol.feasible


def test_concurrent_solves_leave_stdout_intact(
    cluster3, latmodel_cluster3, opt30b, capfd
):
    """Regression for the removed ``_quiet_fd1`` fd-redirection hack.

    The old context manager dup2'd fd 1 to /dev/null around every solve;
    two overlapping solves could race the restore and permanently silence
    stdout.  Solves now rely on HiGHS's own output suppression, so
    concurrent solves must succeed AND leave fd 1 working (capfd captures
    at the file-descriptor level, where the old bug lived)."""
    from concurrent.futures import ThreadPoolExecutor

    def solve_one(theta):
        ilp = _make_ilp(cluster3, latmodel_cluster3, opt30b, theta=theta, group=4)
        return ilp.solve()

    with ThreadPoolExecutor(max_workers=4) as pool:
        sols = list(pool.map(solve_one, [1.0, 5.0, 1.0, 5.0]))
    assert all(s.feasible for s in sols)
    # identical problems solve identically regardless of interleaving
    assert sols[0].group_bits == sols[2].group_bits
    assert sols[1].group_bits == sols[3].group_bits
    # no solver chatter leaked, and fd 1 still reaches the terminal
    out_before = capfd.readouterr().out
    assert out_before == ""
    print("fd1-alive")
    assert "fd1-alive" in capfd.readouterr().out


def test_grouped_indicator_mismatch_raises(cluster3, latmodel_cluster3, opt30b):
    ind = synthetic_indicator(opt30b).normalized()  # ungrouped: 48 rows
    ilp = BitAssignmentILP(
        cfg=opt30b,
        workload=Workload(prompt_len=512, gen_len=100, global_batch=32),
        devices=list(cluster3.devices),
        latency_model=latmodel_cluster3,
        indicator=ind,
        prefill_microbatch=8,
        decode_microbatch=8,
        group_size=2,  # expects 24 rows
    )
    with pytest.raises(ValueError, match="grouped"):
        ilp.solve()
