"""Unit tests for Algorithm 1 (the full planner)."""

import numpy as np
import pytest

from repro.core.optimizer import LLMPQOptimizer, PlannerConfig, _microbatch_pairs
from repro.core.plan import ExecutionPlan
from repro.sim.pipeline import simulate_pipeline
from repro.workload import Workload


@pytest.fixture(scope="module")
def planner(cluster3, latmodel_cluster3, workload):
    return LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(
            group_size=4,
            decode_mb_candidates=(8, 16),
            prefill_mb_cap=8,
        ),
        latency_model=latmodel_cluster3,
    )


@pytest.fixture(scope="module")
def result(planner):
    return planner.optimize()


def test_planner_finds_feasible_plan(result):
    assert result.feasible
    assert result.plan is not None
    assert result.predicted is not None and result.predicted.feasible


def test_plan_beats_uniform_baseline(result, cluster3, workload):
    llmpq = simulate_pipeline(result.plan, cluster3)
    uniform = simulate_pipeline(
        ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=8),
        cluster3,
    )
    assert llmpq.throughput > uniform.throughput


def test_candidates_recorded(result, planner):
    orderings = len(planner.orderings())
    pairs = len(_microbatch_pairs(planner.workload, 4, planner.config))
    assert len(result.candidates) == orderings * pairs
    assert any(c.status == "optimal" for c in result.candidates)
    best = min(c.objective for c in result.candidates)
    assert result.objective == pytest.approx(best)


def test_plan_covers_all_layers_contiguously(result, planner):
    plan = result.plan
    assert plan.num_layers == planner.cfg.num_layers
    assert plan.num_stages == planner.cluster.num_devices


def test_block_orderings_are_type_blocks(planner):
    for ordering in planner.orderings():
        types = [d.type_name for d in ordering]
        # same-type devices must be contiguous
        seen = []
        for t in types:
            if not seen or seen[-1] != t:
                seen.append(t)
        assert len(seen) == len(set(seen))


def test_full_ordering_mode(cluster3, latmodel_cluster3, workload):
    opt = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(ordering_mode="full", max_orderings=3),
        latency_model=latmodel_cluster3,
    )
    assert len(opt.orderings()) == 3


def test_unknown_ordering_mode_rejected(cluster3, latmodel_cluster3, workload):
    opt = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(ordering_mode="zigzag"),
        latency_model=latmodel_cluster3,
    )
    with pytest.raises(ValueError, match="ordering_mode"):
        opt.orderings()


def test_microbatch_pairs_pruning(workload):
    cfg = PlannerConfig(prefill_mb_cap=4, decode_mb_candidates=(8,))
    pairs = _microbatch_pairs(workload, 4, cfg)
    assert all(p <= 4 for p, _ in pairs)
    assert all(d == 8 for _, d in pairs)
    # default decode candidates: even split, 2x, global batch
    pairs_default = _microbatch_pairs(workload, 4, PlannerConfig())
    decodes = {d for _, d in pairs_default}
    assert decodes == {8, 16, 32}


def test_indicator_normalized_on_init(planner):
    assert planner.indicator.column(4).sum() == pytest.approx(1.0)


def test_grouped_indicator_computed_once_and_reused(
    small_hetero_cluster, latmodel_13b, small_workload, monkeypatch
):
    """The grouped omega table is hoisted into ``__init__`` — candidate
    solves share one object instead of regrouping per candidate."""
    from repro.quant.indicator import IndicatorTable

    calls = {"n": 0}
    real_grouped = IndicatorTable.grouped

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return real_grouped(self, *args, **kwargs)

    monkeypatch.setattr(IndicatorTable, "grouped", counting)
    opt = LLMPQOptimizer(
        "opt-13b", small_hetero_cluster, small_workload,
        config=PlannerConfig(
            group_size=4, prefill_mb_cap=2, decode_mb_candidates=(4,)
        ),
        latency_model=latmodel_13b,
    )
    assert calls["n"] == 1  # exactly the __init__ hoist
    orderings = opt.orderings()
    _, ilp_a = opt._solve_candidate(orderings[0], 2, 4)
    _, ilp_b = opt._solve_candidate(orderings[-1], 2, 4)
    assert calls["n"] == 1  # no regrouping per candidate
    assert ilp_a.indicator is opt.grouped_indicator
    assert ilp_b.indicator is opt.grouped_indicator


def test_optimize_reuses_hoisted_grouped_indicator(
    small_hetero_cluster, latmodel_13b, small_workload, monkeypatch
):
    """A full engine run performs zero additional ``grouped`` calls."""
    from repro.quant.indicator import IndicatorTable

    calls = {"n": 0}
    real_grouped = IndicatorTable.grouped

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return real_grouped(self, *args, **kwargs)

    opt = LLMPQOptimizer(
        "opt-13b", small_hetero_cluster, small_workload,
        config=PlannerConfig(
            group_size=4, prefill_mb_cap=2, decode_mb_candidates=(4,)
        ),
        latency_model=latmodel_13b,
    )
    monkeypatch.setattr(IndicatorTable, "grouped", counting)
    result = opt.optimize()
    assert result.feasible
    assert calls["n"] == 0
