"""Unit tests for the tensor-parallelism extension (Sec. 7)."""

import pytest

from repro.core.tensor_parallel import (
    enumerate_tp_clusters,
    fuse_tp_group,
    plan_with_tensor_parallel,
    tp_efficiency,
)
from repro.hardware import get_gpu, make_cluster
from repro.models import get_model
from repro.workload import Workload
from repro.core.optimizer import PlannerConfig


@pytest.fixture(scope="module")
def cfg():
    return get_model("opt-13b")


def test_tp_efficiency_bounds(cfg):
    v100 = get_gpu("V100-32G")
    assert tp_efficiency(v100, 1, cfg) == 1.0
    e2 = tp_efficiency(v100, 2, cfg)
    e4 = tp_efficiency(v100, 4, cfg)
    assert 0.3 < e4 <= e2 < 1.0  # comm overhead grows with degree


def test_tp_efficiency_better_on_faster_links(cfg):
    """NVLink-attached V100 loses less to allreduce than PCIe T4."""
    assert tp_efficiency(get_gpu("V100-32G"), 2, cfg) > tp_efficiency(
        get_gpu("T4-16G"), 2, cfg
    )


def test_fuse_tp_group_aggregates(cfg):
    fused = fuse_tp_group("V100-32G", 2, cfg)
    base = get_gpu("V100-32G")
    assert fused.name == "V100-32G-tp2"
    assert fused.memory_bytes == 2 * base.memory_bytes
    assert fused.mem_bandwidth == 2 * base.mem_bandwidth
    # compute less than 2x (allreduce overhead), more than 1x
    assert base.fp16_tflops < fused.fp16_tflops < 2 * base.fp16_tflops
    # idempotent registration
    assert fuse_tp_group("V100-32G", 2, cfg) is fused
    # degree-1 is the original spec
    assert fuse_tp_group("V100-32G", 1, cfg) is base


def test_fuse_validation(cfg):
    with pytest.raises(ValueError):
        fuse_tp_group("V100-32G", 0, cfg)


def test_enumerate_tp_clusters(cfg):
    cl = make_cluster([("V100-32G", 4)])
    options = enumerate_tp_clusters(cl, cfg, max_tp=4)
    degrees = [k for k, _ in options]
    assert degrees == [1, 2, 4]
    by = dict(options)
    assert by[2].num_devices == 2
    assert by[4].num_devices == 1
    assert by[4].devices[0].type_name == "V100-32G-tp4"


def test_enumerate_respects_node_boundaries(cfg):
    # 3 GPUs per node: TP=2 does not divide -> only TP 1 and 3
    cl = make_cluster([("T4-16G", 3)])
    degrees = [k for k, _ in enumerate_tp_clusters(cl, cfg, max_tp=4)]
    assert degrees == [1, 3]


def test_plan_with_tensor_parallel_end_to_end():
    """On a 2xV100 node serving OPT-13b the planner should consider both
    pure pipeline (tp=1) and fused tp=2 and pick a feasible winner."""
    cl = make_cluster([("V100-32G", 2)])
    w = Workload(prompt_len=256, gen_len=20, global_batch=8)
    res = plan_with_tensor_parallel(
        "opt-13b", cl, w,
        config=PlannerConfig(group_size=4, decode_mb_candidates=(4,),
                             prefill_mb_cap=4),
        max_tp=2,
    )
    assert res.plan is not None
    assert set(res.per_degree) == {1, 2}
    assert res.tp_degree in (1, 2)
    # the winning degree has the best recorded objective
    assert res.per_degree[res.tp_degree] == min(res.per_degree.values())
