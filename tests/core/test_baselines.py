"""Unit tests for the PipeEdge / Uniform / FlexGen baselines."""

import numpy as np
import pytest

from repro.core.baselines import flexgen_run, pipeedge_plan, uniform_plan
from repro.sim.pipeline import simulate_pipeline


@pytest.fixture(scope="module")
def pe(cluster3, workload, latmodel_cluster3):
    return pipeedge_plan("opt-30b", cluster3, workload, latency_model=latmodel_cluster3)


@pytest.fixture(scope="module")
def un(cluster3, workload, latmodel_cluster3):
    return uniform_plan("opt-30b", cluster3, workload, latency_model=latmodel_cluster3)


def test_pipeedge_feasible_uniform_bits(pe):
    assert pe.feasible
    assert pe.bits in (16, 8, 4, 3)
    assert set(pe.plan.layer_bits) == {pe.bits}


def test_pipeedge_same_microbatch_both_phases(pe, workload, cluster3):
    mb = workload.global_batch // cluster3.num_devices
    assert pe.plan.prefill_microbatch == mb
    assert pe.plan.decode_microbatch == mb


def test_pipeedge_balances_better_than_uniform(pe, un, cluster3):
    """PipeEdge's DP balances the (prefill) bottleneck at least as well
    as an even split at the same precision."""
    assert pe.bits == un.bits  # both land on the highest feasible bits
    r_pe = simulate_pipeline(pe.plan, cluster3)
    r_un = simulate_pipeline(un.plan, cluster3)
    assert max(r.prefill_time for r in r_pe.stage_reports) <= max(
        r.prefill_time for r in r_un.stage_reports
    ) * 1.01


def test_pipeedge_gives_slow_devices_fewer_layers(pe):
    layers_by_type: dict[str, list[int]] = {}
    for st in pe.plan.stages:
        layers_by_type.setdefault(st.device.type_name, []).append(st.num_layers)
    assert np.mean(layers_by_type["T4-16G"]) < np.mean(layers_by_type["V100-32G"])


def test_uniform_even_partition(un, cluster3):
    counts = un.plan.partition
    assert max(counts) - min(counts) <= 1


def test_uniform_feasible(un, cluster3):
    assert simulate_pipeline(un.plan, cluster3).feasible


def test_flexgen_opt_only(cluster3, workload):
    bloom = flexgen_run("bloom-176b", cluster3, workload)
    assert not bloom.feasible
    assert bloom.offload is None
    opt = flexgen_run("opt-30b", cluster3, workload, bits=8)
    assert opt.feasible
    assert opt.name == "FlexGen-int8"


def test_flexgen_names():
    from repro.hardware import make_cluster
    from repro.workload import Workload

    cl = make_cluster([("V100-32G", 1)])
    w = Workload(prompt_len=128, gen_len=10, global_batch=4)
    assert flexgen_run("opt-13b", cl, w, bits=16).name == "FlexGen"
    assert flexgen_run("opt-13b", cl, w, bits=8).name == "FlexGen-int8"
