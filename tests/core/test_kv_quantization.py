"""Tests for quantized-KV-cache planning (the Sec.-7 discussion knob).

The KV cache dominates stage memory for long-sequence batches; halving
it with 8-bit KV frees room for more layers or higher weight precision.
"""

import pytest

from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.workload import Workload


@pytest.fixture(scope="module")
def big_batch_workload():
    # KV-heavy: 64 requests at 612 max positions
    return Workload(prompt_len=512, gen_len=100, global_batch=64)


def test_kv8_unlocks_infeasible_workloads(cluster3, latmodel_cluster3, big_batch_workload):
    """At b=64 the FP16 KV cache alone outgrows cluster 3; 8-bit KV
    makes the same workload plannable."""
    fp16_kv = LLMPQOptimizer(
        "opt-30b", cluster3, big_batch_workload,
        config=PlannerConfig(group_size=4, kv_bits=16,
                             decode_mb_candidates=(16,), prefill_mb_cap=4),
        latency_model=latmodel_cluster3,
    ).optimize()
    int8_kv = LLMPQOptimizer(
        "opt-30b", cluster3, big_batch_workload,
        config=PlannerConfig(group_size=4, kv_bits=8,
                             decode_mb_candidates=(16,), prefill_mb_cap=4),
        latency_model=latmodel_cluster3,
    ).optimize()
    assert not fp16_kv.feasible
    assert int8_kv.feasible


def test_kv8_buys_precision(cluster3, latmodel_cluster3, workload):
    """With the same workload, 8-bit KV leaves more room for weight
    precision: average bits must not decrease."""
    cfg16 = PlannerConfig(group_size=4, kv_bits=16, theta=5.0,
                          decode_mb_candidates=(8,), prefill_mb_cap=8)
    cfg8 = PlannerConfig(group_size=4, kv_bits=8, theta=5.0,
                         decode_mb_candidates=(8,), prefill_mb_cap=8)
    r16 = LLMPQOptimizer("opt-30b", cluster3, workload, config=cfg16,
                         latency_model=latmodel_cluster3).optimize()
    r8 = LLMPQOptimizer("opt-30b", cluster3, workload, config=cfg8,
                        latency_model=latmodel_cluster3).optimize()
    assert r16.feasible and r8.feasible
    assert r8.plan.average_bits() >= r16.plan.average_bits() - 1e-9
