"""Tests for quantized-KV-cache planning (the Sec.-7 discussion knob).

The KV cache dominates stage memory for long-sequence batches; halving
it with 8-bit KV frees room for more layers or higher weight precision.
"""

import pytest

from repro.core.optimizer import LLMPQOptimizer, PlannerConfig
from repro.hardware import paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.workload import Workload


@pytest.fixture(scope="module")
def big_batch_workload():
    # KV-heavy: 64 requests at 612 max positions
    return Workload(prompt_len=512, gen_len=100, global_batch=64)


def test_kv8_unlocks_infeasible_workloads(cluster3, latmodel_cluster3, big_batch_workload):
    """At b=64 the FP16 KV cache alone outgrows cluster 3; 8-bit KV
    makes the same workload plannable."""
    fp16_kv = LLMPQOptimizer(
        "opt-30b", cluster3, big_batch_workload,
        config=PlannerConfig(group_size=4, kv_bits=16,
                             decode_mb_candidates=(16,), prefill_mb_cap=4),
        latency_model=latmodel_cluster3,
    ).optimize()
    int8_kv = LLMPQOptimizer(
        "opt-30b", cluster3, big_batch_workload,
        config=PlannerConfig(group_size=4, kv_bits=8,
                             decode_mb_candidates=(16,), prefill_mb_cap=4),
        latency_model=latmodel_cluster3,
    ).optimize()
    assert not fp16_kv.feasible
    assert int8_kv.feasible


def test_kv8_buys_precision(cluster3, latmodel_cluster3, workload):
    """With the same workload, 8-bit KV leaves more room for weight
    precision: average bits must not decrease."""
    cfg16 = PlannerConfig(group_size=4, kv_bits=16, theta=5.0,
                          decode_mb_candidates=(8,), prefill_mb_cap=8)
    cfg8 = PlannerConfig(group_size=4, kv_bits=8, theta=5.0,
                         decode_mb_candidates=(8,), prefill_mb_cap=8)
    r16 = LLMPQOptimizer("opt-30b", cluster3, workload, config=cfg16,
                         latency_model=latmodel_cluster3).optimize()
    r8 = LLMPQOptimizer("opt-30b", cluster3, workload, config=cfg8,
                        latency_model=latmodel_cluster3).optimize()
    assert r16.feasible and r8.feasible
    assert r8.plan.average_bits() >= r16.plan.average_bits() - 1e-9


# ---------------------------------------------------------------------------
# per-stage kv_bits as a first-class plan variable (KV4/KV8 tentpole)
# ---------------------------------------------------------------------------


def test_planned_stages_carry_kv_bits(cluster3, latmodel_cluster3, workload):
    """Explicit kv_bits lands on every stage and in the plan meta."""
    res = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, kv_bits=4,
                             decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    ).optimize()
    assert res.feasible
    assert res.plan.kv_bits_per_stage == (4,) * res.plan.num_stages
    assert res.plan.meta["kv_bits"] == 4


def test_kv_plan_json_roundtrip(cluster3, latmodel_cluster3, workload, tmp_path):
    """Per-stage KV bitwidths survive the strategy-file round trip."""
    from repro.core.plan import ExecutionPlan

    res = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, kv_bits=8,
                             decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    ).optimize()
    mixed = res.plan.with_kv_bits((4, 8, 16, 4)[: res.plan.num_stages])
    path = tmp_path / "strategy.json"
    mixed.to_json(path)
    loaded = ExecutionPlan.from_json(path)
    assert loaded.kv_bits_per_stage == mixed.kv_bits_per_stage


def test_kv_quantization_speeds_up_decode(cluster3, latmodel_cluster3, workload):
    """Quantized KV shrinks the decode memory stream, so the planner's
    view of the same plan gets faster as kv_bits drops."""
    res = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, kv_bits=16,
                             decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    ).optimize()
    assert res.feasible
    lat = {}
    for kv in (16, 8, 4):
        pred = simulate_pipeline(res.plan.with_kv_bits(kv), cluster3)
        assert pred.feasible
        lat[kv] = pred.total_latency
    assert lat[8] < lat[16]
    assert lat[4] < lat[8]


def test_auto_kv_search(cluster3, latmodel_cluster3, workload):
    """kv_bits='auto' returns a feasible plan whose per-stage KV levels
    are authoritative (legacy meta knob neutralized), and never does
    worse than the fp16-KV run on the same objective scale once the
    KV-error penalty justifies quantizing."""
    auto = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, kv_bits="auto", theta=0.5,
                             decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    ).optimize()
    assert auto.feasible
    assert auto.plan.meta["kv_bits"] == 16  # stage values are authoritative
    assert all(b in (4, 8, 16) for b in auto.plan.kv_bits_per_stage)
    fp16 = LLMPQOptimizer(
        "opt-30b", cluster3, workload,
        config=PlannerConfig(group_size=4, kv_bits=16, theta=0.5,
                             decode_mb_candidates=(8,), prefill_mb_cap=8),
        latency_model=latmodel_cluster3,
    ).optimize()
    # auto can always fall back to uniform fp16, so its latency+quality
    # objective (kv penalty excluded by construction at the winner) must
    # not regress beyond numerical noise
    assert auto.objective <= fp16.objective + 1e-9


def test_invalid_kv_bits_rejected(cluster3, latmodel_cluster3, workload):
    with pytest.raises(ValueError, match="kv_bits"):
        LLMPQOptimizer(
            "opt-30b", cluster3, workload,
            config=PlannerConfig(kv_bits=5),
            latency_model=latmodel_cluster3,
        )
