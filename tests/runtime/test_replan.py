"""Drift detection + live migration tests: detector unit behaviour, the
migration controller's byte-identity contract (including a migration
racing an injected crash), and drift-driven refits end to end."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate
from repro.runtime import (
    ContinuousScheduler,
    DriftConfig,
    DriftDetector,
    FaultInjector,
    PipelineRuntime,
    ServeRequest,
    StageCrash,
    workload_refit_replanner,
)
from repro.runtime.microbatch import ContinuousLedger
from repro.workload import Workload


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, *, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits)) for i, bits in enumerate(bits_per_stage)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def workload12():
    return Workload(prompt_len=12, gen_len=8, global_batch=8)


def _uniform_requests(cfg, *, n=4, s=8, g=6, seed=7, gap=0.0):
    rng = np.random.default_rng(seed)
    return [
        ServeRequest(
            request_id=i,
            prompt=rng.integers(0, cfg.vocab_size, size=s, dtype=np.int64),
            gen_len=g, arrival=i * gap,
        )
        for i in range(n)
    ]


def _assert_streams_match(report, model, requests):
    """Every completed stream must equal the batch-1 single-process run."""
    by_id = {r.request_id: r for r in requests}
    assert report.completed, "nothing completed"
    for rec in report.completed:
        req = by_id[rec.request_id]
        expected = generate(
            model, np.asarray(req.prompt)[None, :], req.gen_len
        ).tokens[0]
        np.testing.assert_array_equal(rec.tokens, expected)


class TriggerAfter(ContinuousScheduler):
    """Request a live migration at the N-th token boundary."""

    def __init__(self, rt, *, new_plan, after, **kw):
        super().__init__(rt, **kw)
        self._migrate_to = new_plan
        self._after = after
        self._boundaries = 0

    def _boundary(self):
        self._boundaries += 1
        if self._boundaries == self._after and self._migrate_to is not None:
            self.request_migration(self._migrate_to)
            self._migrate_to = None
        super()._boundary()


# ---------------------------------------------------------------------------
# DriftDetector
# ---------------------------------------------------------------------------


def _feed(det, t0, t1, rate, s=8, g=4):
    t = t0
    while t < t1:
        det.observe_arrival(t, s, g)
        t += 1.0 / rate


def test_drift_config_validation():
    with pytest.raises(ValueError, match="window"):
        DriftConfig(window=0)
    with pytest.raises(ValueError, match="threshold"):
        DriftConfig(threshold=0)
    with pytest.raises(ValueError, match="hysteresis"):
        DriftConfig(hysteresis=0)
    with pytest.raises(ValueError, match="cooldown"):
        DriftConfig(cooldown=-1)
    with pytest.raises(ValueError, match="min_requests"):
        DriftConfig(min_requests=0)
    with pytest.raises(ValueError, match="rebuild_seconds"):
        DriftConfig(rebuild_seconds=-0.1)


def test_detector_rate_drift_needs_hysteresis():
    det = DriftDetector(DriftConfig(
        window=1.0, threshold=0.5, hysteresis=2, cooldown=0.0, min_requests=3
    ))
    _feed(det, 0.0, 1.0, rate=4)
    assert det.poll(1.0) is None  # first window only calibrates
    _feed(det, 1.0, 2.0, rate=12)
    assert det.poll(2.0) is None  # one drifted window < hysteresis
    _feed(det, 2.0, 3.0, rate=12)
    est = det.poll(3.0)
    assert est is not None and est.reason == "drift:rate"
    assert est.score >= 0.5
    assert est.arrival_rate > 4.0
    assert det.triggers == 1 and det.windows_closed == 3


def test_detector_streak_resets_on_calm_window():
    det = DriftDetector(DriftConfig(
        window=1.0, threshold=0.5, hysteresis=2, cooldown=0.0, min_requests=3
    ))
    _feed(det, 0.0, 1.0, rate=4)
    det.poll(1.0)
    _feed(det, 1.0, 2.0, rate=12)   # drifted
    _feed(det, 2.0, 3.0, rate=4)    # back to normal: streak resets
    _feed(det, 3.0, 4.0, rate=12)   # drifted again — still only 1 in a row
    assert det.poll(4.0) is None
    assert det.triggers == 0


def test_detector_length_drift_axis():
    det = DriftDetector(DriftConfig(
        window=1.0, threshold=0.5, hysteresis=1, cooldown=0.0, min_requests=3
    ))
    _feed(det, 0.0, 1.0, rate=6, s=8)
    det.poll(1.0)
    _feed(det, 1.0, 2.0, rate=6, s=32)  # same rate, 4x prompts
    est = det.poll(2.0)
    assert est is not None and est.reason == "drift:prompt"
    assert est.p90_prompt >= 24


def test_detector_cooldown_suppresses_retrigger():
    det = DriftDetector(DriftConfig(
        window=1.0, threshold=0.5, hysteresis=1, cooldown=100.0, min_requests=3
    ))
    _feed(det, 0.0, 1.0, rate=4)
    det.poll(1.0)
    det._last_trigger = 1.0  # as if a trigger just fired
    _feed(det, 1.0, 2.0, rate=12)
    assert det.poll(2.0) is None  # drifted, but inside the cooldown
    assert det.triggers == 0


def test_detector_device_loss_fires_immediately():
    det = DriftDetector(DriftConfig(window=10.0))
    det.observe_device_loss(2.5, 1)
    est = det.poll(2.5)  # no window closed, no baseline — still fires
    assert est is not None
    assert est.reason == "device-loss:stage1"
    assert est.score == float("inf")
    assert det.device_losses == 1
    assert det.poll(2.6) is None  # consumed


def test_detector_rebaseline_learns_new_regime():
    det = DriftDetector(DriftConfig(
        window=1.0, threshold=0.5, hysteresis=1, cooldown=0.0, min_requests=3
    ))
    _feed(det, 0.0, 1.0, rate=4)
    det.poll(1.0)
    _feed(det, 1.0, 2.0, rate=12)
    assert det.poll(2.0) is not None
    det.rebaseline(2.0)
    _feed(det, 2.0, 3.0, rate=12)
    det.poll(3.0)  # recalibrates on the new regime
    _feed(det, 3.0, 4.0, rate=12)
    assert det.poll(4.0) is None  # 12/s is the new normal
    assert det.triggers == 1


def test_suggested_workload_clamps_and_refit_replanner(workload12):
    from repro.runtime.replan import DriftEstimate

    est = DriftEstimate(
        at=1.0, arrival_rate=2.0, mean_prompt=3.0, p90_prompt=2,
        mean_gen=0.5, p90_gen=0, occupancy=0.1, score=1.0, reason="drift:rate",
    )
    wl = est.suggested_workload(workload12)
    assert wl == Workload(prompt_len=4, gen_len=1, global_batch=8)

    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    new = workload_refit_replanner(plan, est)
    assert new is not None
    assert new.workload == wl
    assert new.stages == plan.stages  # metadata-only switch
    assert new.meta.get("drift_refit") is True
    # a suggestion matching the declared workload is a no-op
    same = DriftEstimate(
        at=1.0, arrival_rate=2.0, mean_prompt=12.0, p90_prompt=12,
        mean_gen=8.0, p90_gen=8, occupancy=0.1, score=1.0, reason="drift:rate",
    )
    assert workload_refit_replanner(plan, same) is None


def test_ledger_adopt_rehomes_units():
    ledger = ContinuousLedger(2)
    ledger.adopt(3, np.array([10.0, 20.0]))
    ledger.adopt(0, np.array([1.0, 2.0]))
    np.testing.assert_allclose(ledger.used_bytes, [11.0, 22.0])
    assert ledger.inflight_count == 2
    with pytest.raises(ValueError):
        ledger.adopt(3, np.array([1.0, 1.0]))  # already in flight
    assert ledger.admit(np.array([1.0, 1.0])) == 4  # ids stay unique
    ledger.release(3)
    np.testing.assert_allclose(ledger.used_bytes, [2.0, 3.0])


# ---------------------------------------------------------------------------
# Live migration on the real runtime
# ---------------------------------------------------------------------------


def test_manual_migration_streams_byte_identical(reference, tiny8l, workload12):
    """The headline contract: a mid-flight repartition (3 -> 2 stages,
    bit-preserving) must not change a single token of any stream."""
    plan3 = _plan([(16,) * 3, (16,) * 3, (16,) * 2], workload=workload12)
    plan2 = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _uniform_requests(tiny8l)
    with PipelineRuntime(reference, plan3) as rt:
        sched = TriggerAfter(rt, new_plan=plan2, after=2)
        report = sched.serve(requests)
        assert rt.plan is plan2
    assert len(report.completed) == len(requests)
    assert report.rejected == []  # zero drops through the quiesce
    assert report.migrations == 1 and report.replans == 1
    assert report.replayed_tokens > 0
    assert report.replay_divergences == 0  # bit-preserving plan
    assert report.quiesce_seconds > 0
    rec = sched.controller.log[0]
    assert rec.rebuilt and rec.reason == "manual"
    assert rec.stages_before == 3 and rec.stages_after == 2
    assert rec.inflight == len(requests)
    _assert_streams_match(report, reference, requests)


def test_quantized_migration_preserves_streams(reference, tiny8l, workload12):
    """Repartitioning a mixed-precision plan keeps per-layer bitwidths, so
    replayed streams still equal the fake-quant reference."""
    from repro.quant import quantize_dequantize

    layer_bits = [8, 8, 8, 4, 4, 4, 16, 16]
    plan3 = _plan([(8,) * 3, (4,) * 3, (16,) * 2], workload=workload12)
    plan2 = _plan([(8, 8, 8, 4), (4, 4, 16, 16)], workload=workload12)
    fq = reference.clone()
    for i, b in enumerate(layer_bits):
        if b < 16:
            fq.apply_to_layer(i, lambda _n, w, b=b: quantize_dequantize(w, b))
    requests = _uniform_requests(tiny8l, seed=23)
    with PipelineRuntime(reference, plan3) as rt:
        report = TriggerAfter(rt, new_plan=plan2, after=3).serve(requests)
    assert report.migrations == 1
    assert report.replay_divergences == 0
    _assert_streams_match(report, fq, requests)


def test_metadata_only_migration_skips_replay(reference, tiny8l, workload12):
    """Same partition + bitwidths: workers and KV survive, nothing is
    replayed, and the streams are untouched."""
    from dataclasses import replace

    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    refit = replace(plan, workload=Workload(8, 6, 4))
    requests = _uniform_requests(tiny8l, seed=5)
    with PipelineRuntime(reference, plan) as rt:
        sched = TriggerAfter(rt, new_plan=refit, after=2)
        report = sched.serve(requests)
        assert rt.plan is refit
    assert report.migrations == 1 and report.replans == 1
    assert report.replayed_tokens == 0
    assert sched.controller.log[0].rebuilt is False
    assert len(report.completed) == len(requests)
    _assert_streams_match(report, reference, requests)


def test_migration_racing_stage_crash(reference, tiny8l, workload12):
    """A stage crash striking *during* the migration replay must be
    absorbed by the crash ladder — same-plan forced migration — and the
    streams must still be byte-identical with nothing dropped."""
    plan3 = _plan([(16,) * 3, (16,) * 3, (16,) * 2], workload=workload12)
    plan2 = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _uniform_requests(tiny8l)
    # stage 1 sees 4 prefills (1-4) then 4 decodes (5-8) before the
    # boundary-2 migration; activation 10 is the second replayed prefill
    # of the migration itself.
    inj = FaultInjector([StageCrash(stage=1, at=10)], seed=0)
    with PipelineRuntime(reference, plan3, fault_injector=inj) as rt:
        sched = TriggerAfter(rt, new_plan=plan2, after=2)
        report = sched.serve(requests)
        assert rt.plan is plan2  # the interrupted migration still landed
    assert inj.fired and inj.fired[0][0] == "crash"
    assert report.crash_recoveries == 1
    assert report.migrations >= 1
    assert report.replayed_tokens > 0
    assert report.replay_divergences == 0
    assert len(report.completed) == len(requests)
    assert report.rejected == []
    _assert_streams_match(report, reference, requests)


def test_crash_recovery_through_controller(reference, tiny8l, workload12):
    """A transient crash with no migration requested is recovered as a
    forced same-plan migration: KV replayed, nothing dropped."""
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _uniform_requests(tiny8l, seed=13)
    inj = FaultInjector([StageCrash(stage=1, at=6)], seed=0)
    with PipelineRuntime(reference, plan, fault_injector=inj) as rt:
        sched = ContinuousScheduler(rt)
        report = sched.serve(requests)
        assert rt.stats.retries == 1
    assert report.crash_recoveries == 1
    assert report.migrations == 1 and report.replans == 0
    assert sched.controller.log[0].reason == "crash-retry:stage1"
    assert len(report.completed) == len(requests)
    _assert_streams_match(report, reference, requests)


def test_drift_refit_end_to_end(reference, tiny8l, workload12):
    """Drift in the live trace (longer prompts, shorter generations than
    the plan declared) triggers a metadata-only refit mid-serve."""
    rng = np.random.default_rng(31)
    mk = lambda i, s, t: ServeRequest(
        request_id=i,
        prompt=rng.integers(0, tiny8l.vocab_size, size=s, dtype=np.int64),
        gen_len=3, arrival=t,
    )
    calm = [mk(i, 4, i * 0.5) for i in range(12)]
    drifted = [mk(12 + i, 12, 6.0 + i * 0.5) for i in range(12)]
    requests = calm + drifted
    drift = DriftConfig(
        window=2.0, threshold=0.6, hysteresis=1, cooldown=0.0, min_requests=3
    )
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        sched = ContinuousScheduler(
            rt, drift=drift, replanner=workload_refit_replanner
        )
        report = sched.serve(requests)
        assert rt.plan.meta.get("drift_refit") is True
        assert rt.plan.workload.gen_len == 3  # refit to the observed mix
    assert report.drift_triggers >= 1
    assert report.migrations >= 1 and report.replans >= 1
    assert report.replayed_tokens == 0  # refits never re-cut shards
    assert len(report.completed) == len(requests)
    assert report.rejected == []
    _assert_streams_match(report, reference, requests)


def test_wave_policy_rejects_drift_and_migration(reference, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        with pytest.raises(ValueError, match="continuous"):
            ContinuousScheduler(rt, policy="wave", drift=DriftConfig())
        sched = ContinuousScheduler(rt, policy="wave")
        with pytest.raises(ValueError, match="continuous"):
            sched.request_migration(plan)
