"""Tests for the budget-aware dequantized-weight cache (the decode hot path).

Unit level: LRU + byte-budget semantics of :class:`DequantCache`, including
the zero-budget mode that must reproduce recompute-every-call exactly.
Integration level: the pipelined runtime serves token-identical output at
every cache setting — only counters and wall-clock may differ — and sheds
cached weights under KV-allocation pressure before the degradation ladder
fires.
"""

import queue

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, make_corpus
from repro.runtime import DequantCache, PipelineRuntime, StageWorker
from repro.runtime.faults import FaultInjector, KVAllocPressure
from repro.runtime.loader import load_stage_weights
from repro.workload import Workload


# ----------------------------------------------------------------------
# unit: cache semantics
# ----------------------------------------------------------------------
def _builder(value, nbytes, calls):
    def build():
        calls.append(value)
        return value, nbytes

    return build


def test_hit_miss_and_counters():
    cache = DequantCache(100)
    calls = []
    assert cache.get("a", _builder("A", 10, calls)) == "A"
    assert cache.get("a", _builder("A", 10, calls)) == "A"
    assert calls == ["A"]  # second get served cached
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.insertions == 1
    assert cache.bytes_in_use == 10
    assert 0 < cache.stats.hit_rate < 1


def test_zero_budget_builds_every_call():
    """Budget 0 is the naive recompute-per-call baseline: nothing is ever
    stored and every lookup invokes the builder."""
    cache = DequantCache(0)
    calls = []
    for _ in range(5):
        assert cache.get("a", _builder("A", 10, calls)) == "A"
    assert len(calls) == 5
    assert len(cache) == 0
    assert cache.bytes_in_use == 0
    assert cache.stats.misses == 5
    assert cache.stats.hits == 0
    assert cache.stats.insertions == 0


def test_lru_eviction_order():
    cache = DequantCache(30)
    calls = []
    cache.get("a", _builder("A", 10, calls))
    cache.get("b", _builder("B", 10, calls))
    cache.get("c", _builder("C", 10, calls))
    cache.get("a", _builder("A", 10, calls))  # refresh a: LRU order b, c, a
    cache.get("d", _builder("D", 10, calls))  # evicts b
    assert cache.stats.evictions == 1
    cache.get("b", _builder("B", 10, calls))  # miss: b was evicted
    assert calls == ["A", "B", "C", "D", "B"]
    assert cache.bytes_in_use == 30


def test_oversized_entry_returned_but_not_stored():
    cache = DequantCache(5)
    calls = []
    assert cache.get("big", _builder("BIG", 10, calls)) == "BIG"
    assert cache.get("big", _builder("BIG", 10, calls)) == "BIG"
    assert len(calls) == 2
    assert len(cache) == 0
    assert cache.stats.evictions == 0


def test_shed_frees_lru_first_and_reports_bytes():
    cache = DequantCache(100)
    calls = []
    for k, v in [("a", "A"), ("b", "B"), ("c", "C")]:
        cache.get(k, _builder(v, 10, calls))
    freed = cache.shed(15)
    assert freed == 20  # two LRU entries (a, b)
    assert cache.stats.sheds == 2
    assert cache.bytes_in_use == 10
    cache.get("c", _builder("C", 10, calls))  # survivor still cached
    assert calls == ["A", "B", "C"]
    assert cache.shed(1000) == 10  # drains, reports what it actually freed
    assert cache.shed(10) == 0  # nothing left


def test_shrink_and_clear():
    cache = DequantCache(100)
    calls = []
    for k in "abc":
        cache.get(k, _builder(k.upper(), 10, calls))
    assert cache.shrink(15) == 20
    assert cache.budget_bytes == 15
    assert len(cache) == 1
    cache.clear()
    assert cache.bytes_in_use == 0
    assert cache.stats.misses == 3  # counters survive clear


def test_negative_budget_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        DequantCache(-1)
    with pytest.raises(ValueError, match=">= 0"):
        DequantCache(10).shrink(-1)


def test_peak_bytes_tracks_high_water_mark():
    cache = DequantCache(50)
    calls = []
    for k in "abcde":
        cache.get(k, _builder(k, 10, calls))
    cache.shed(50)
    assert cache.bytes_in_use == 0
    assert cache.peak_bytes == 50


# ----------------------------------------------------------------------
# integration: runtime numerics must not depend on the cache setting
# ----------------------------------------------------------------------
def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits)) for i, bits in enumerate(bits_per_stage)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def prompts(tiny8l):
    return make_corpus(tiny8l.vocab_size, num_seqs=8, seq_len=12, seed=5).tokens


@pytest.fixture(scope="module")
def workload8():
    return Workload(prompt_len=12, gen_len=6, global_batch=8)


def test_tokens_identical_across_cache_settings(reference, prompts, workload8):
    """Plans, token streams and quality must be bit-identical at every
    cache setting — the cache may only change wall-clock."""
    plan = _plan([(8,) * 3, (4,) * 3, (16,) * 2], workload8)
    outs = {}
    for mb in (None, 0.0, 0.01, 1024.0):
        with PipelineRuntime(reference, plan, dequant_cache_mb=mb) as rt:
            outs[mb] = rt.generate(prompts, 6)
    base = outs[None]
    for mb, out in outs.items():
        np.testing.assert_array_equal(out, base, err_msg=f"cache_mb={mb}")


def test_auto_budget_caches_and_counts_hits(reference, prompts, workload8):
    plan = _plan([(8,) * 4, (4,) * 4], workload8)
    with PipelineRuntime(reference, plan) as rt:
        rt.generate(prompts, 6)
        st = rt.stats
    # every stage had head-room: one build per layer, the rest hits
    assert st.dequant_cache_misses == 8
    assert st.dequant_cache_hits > 8 * 4  # many more lookups than layers
    assert st.dequant_cache_evictions == 0
    assert st.dequant_cache_budget_bytes > 0
    assert st.prefill_tokens == 8 * 12
    assert st.decode_tokens == 8 * 5
    assert st.prefill_tokens_per_s > 0
    assert st.decode_tokens_per_s > 0


def test_zero_budget_rebuilds_every_materialization(reference, prompts, workload8):
    plan = _plan([(8,) * 4, (4,) * 4], workload8)
    with PipelineRuntime(reference, plan, dequant_cache_mb=0.0) as rt:
        rt.generate(prompts, 6)
        st = rt.stats
    assert st.dequant_cache_hits == 0
    assert st.dequant_cache_misses > 8  # one rebuild per layer per message
    assert st.dequant_cache_budget_bytes == 0
    assert st.dequant_build_seconds > 0


def test_tiny_budget_evicts_but_stays_exact(reference, prompts, workload8):
    """A budget that fits roughly one layer thrashes the LRU — evictions
    fire constantly, yet tokens remain bit-identical."""
    plan = _plan([(8,) * 4, (4,) * 4], workload8)
    # one tiny-8l layer entry is ~0.47 MiB; allow one layer, not four
    with PipelineRuntime(reference, plan, dequant_cache_mb=0.6) as rt:
        out = rt.generate(prompts, 6)
        st = rt.stats
    with PipelineRuntime(reference, plan) as rt2:
        expected = rt2.generate(prompts, 6)
    np.testing.assert_array_equal(out, expected)
    assert st.dequant_cache_evictions > 0


def test_cache_stays_warm_across_worker_restart(reference, prompts, workload8):
    """The engine owns the caches, so a manual recover() (worker restart)
    keeps them warm: no layer is rebuilt for the second batch."""
    plan = _plan([(8,) * 4, (4,) * 4], workload8)
    rt = PipelineRuntime(reference, plan)
    try:
        before = rt.generate(prompts, 4)
        misses_before = rt.stats.dequant_cache_misses
        assert misses_before == 8
        rt.recover()
        after = rt.generate(prompts, 4)
        np.testing.assert_array_equal(after, before)
        assert rt.stats.dequant_cache_misses == misses_before  # still warm
        assert rt.stats.dequant_cache_hits > 0
    finally:
        rt.shutdown()


def test_stats_fold_across_shard_recut(reference, prompts, workload8):
    """Re-cutting shards (what a replan does) replaces the caches; their
    counters must fold into the published totals, not reset."""
    plan = _plan([(8,) * 4, (4,) * 4], workload8)
    rt = PipelineRuntime(reference, plan)
    try:
        rt.generate(prompts, 4)
        misses_before = rt.stats.dequant_cache_misses
        assert misses_before == 8
        rt._build_loads()  # replaces caches, as _replan_without_stage does
        rt.recover()
        rt.generate(prompts, 4)
        # fresh caches rebuild each layer once; old misses are retained
        assert rt.stats.dequant_cache_misses == misses_before + 8
    finally:
        rt.shutdown()


def test_invalid_cache_budget_rejected(reference, workload8):
    plan = _plan([(16,) * 8], workload8)
    with pytest.raises(ValueError, match=">= 0"):
        PipelineRuntime(reference, plan, dequant_cache_mb=-1.0)


# ----------------------------------------------------------------------
# integration: shed-under-KV-pressure
# ----------------------------------------------------------------------
def test_worker_sheds_cache_before_failing_kv_alloc(reference, tiny8l):
    """A KV denial with cached weights resident is absorbed: the worker
    sheds dense bytes and retries instead of surfacing the error."""
    load = load_stage_weights(reference, range(4), [4, 4, 4, 4])
    cache = DequantCache(load.dense_cache_bytes)
    for ql in load.qlayers:  # warm the cache
        ql.materialize(cache)
    assert cache.bytes_in_use > 0
    injector = FaultInjector(
        [KVAllocPressure(stage=0, max_bytes=1.0, fail_count=1)]
    )
    w = StageWorker(
        0, tiny8l, load, queue.Queue(), queue.Queue(),
        injector=injector, dequant_cache=cache,
    )
    # allocation exceeds the cap -> denial -> shed -> retry succeeds
    w.kv.allocate(0, batch=2, max_len=8)
    assert cache.stats.sheds > 0
    assert cache.bytes_in_use < load.dense_cache_bytes


def test_worker_without_cache_still_surfaces_kv_error(reference, tiny8l):
    """With nothing to shed the denial escapes exactly as before — the
    degradation ladder's contract is unchanged."""
    from repro.runtime.faults import KVAllocationError

    load = load_stage_weights(reference, range(4), [16, 16, 16, 16])
    injector = FaultInjector([KVAllocPressure(stage=0, max_bytes=1.0)])
    w = StageWorker(0, tiny8l, load, queue.Queue(), queue.Queue(),
                    injector=injector, dequant_cache=DequantCache(0))
    with pytest.raises(KVAllocationError):
        w.kv.allocate(0, batch=2, max_len=8)
