"""Continuous-batching scheduler tests: byte-identity, eager KV release,
admission edge cases, and wave-baseline equivalence."""

import time

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate
from repro.runtime import (
    ContinuousScheduler,
    PipelineRuntime,
    ServeRequest,
)
from repro.workload import Workload


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, *, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits)) for i, bits in enumerate(bits_per_stage)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def workload12():
    return Workload(prompt_len=12, gen_len=8, global_batch=8)


def _mixed_requests(cfg, *, n=7, seed=11, gap=0.0):
    """Mixed-length requests (different s and gen_len per request)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        s = int(rng.integers(4, 13))
        g = int(rng.integers(1, 9))
        prompt = rng.integers(0, cfg.vocab_size, size=s, dtype=np.int64)
        out.append(
            ServeRequest(request_id=i, prompt=prompt, gen_len=g, arrival=i * gap)
        )
    return out


def _assert_streams_match(report, model, requests):
    """Every completed stream must equal the batch-1 single-process run."""
    by_id = {r.request_id: r for r in requests}
    assert report.completed, "nothing completed"
    for rec in report.completed:
        req = by_id[rec.request_id]
        expected = generate(
            model, np.asarray(req.prompt)[None, :], req.gen_len
        ).tokens[0]
        np.testing.assert_array_equal(rec.tokens, expected)


def test_continuous_streams_byte_identical_to_reference(
    reference, tiny8l, workload12
):
    """Co-batched requests must not perturb each other's token streams."""
    plan = _plan([(16,) * 3, (16,) * 3, (16,) * 2], workload=workload12)
    requests = _mixed_requests(tiny8l)
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt, policy="continuous").serve(requests)
    assert len(report.completed) == len(requests)
    _assert_streams_match(report, reference, requests)


def test_quantized_streams_match_fake_quant_reference(
    reference, tiny8l, workload12
):
    """Quantized serving must equal a single-process fake-quant model."""
    from repro.quant import quantize_dequantize

    layer_bits = [8, 8, 8, 4, 4, 4, 16, 16]
    plan = _plan([(8,) * 3, (4,) * 3, (16,) * 2], workload=workload12)
    fq = reference.clone()
    for i, b in enumerate(layer_bits):
        if b < 16:
            fq.apply_to_layer(i, lambda _n, w, b=b: quantize_dequantize(w, b))
    requests = _mixed_requests(tiny8l, seed=23)
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt, policy="continuous").serve(requests)
    _assert_streams_match(report, fq, requests)


def test_wave_and_continuous_streams_identical(reference, tiny8l, workload12):
    """Scheduling policy must never change what tokens a request gets."""
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, seed=5)
    streams = {}
    for policy in ("continuous", "wave"):
        with PipelineRuntime(reference, plan) as rt:
            report = ContinuousScheduler(rt, policy=policy).serve(requests)
        assert len(report.completed) == len(requests)
        streams[policy] = {r.request_id: r.tokens for r in report.completed}
    for rid in streams["continuous"]:
        np.testing.assert_array_equal(
            streams["continuous"][rid], streams["wave"][rid]
        )


def test_eager_release_frees_kv_while_others_in_flight(
    reference, tiny8l, workload12
):
    """A finished request's KV must drop on every stage immediately,
    while co-batched requests are still decoding."""
    snapshots = []

    class Snoop(ContinuousScheduler):
        def _release(self, unit_ids):
            before = [w.kv.current_bytes for w in self.rt.workers]
            super()._release(unit_ids)
            after = [w.kv.current_bytes for w in self.rt.workers]
            snapshots.append((before, after))

    rng = np.random.default_rng(0)
    mk = lambda i, g: ServeRequest(
        request_id=i,
        prompt=rng.integers(0, tiny8l.vocab_size, size=8, dtype=np.int64),
        gen_len=g,
    )
    requests = [mk(0, 1), mk(1, 10)]  # short one retires mid-flight
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        report = Snoop(rt, policy="continuous").serve(requests)
        released = [w.kv.released_units for w in rt.workers]
        leftover = [w.kv.current_bytes for w in rt.workers]
    assert len(report.completed) == 2
    # first release happened while request 1 was still holding its cache
    before, after = snapshots[0]
    assert all(a < b for a, b in zip(after, before))
    assert all(a > 0 for a in after)
    # by the end every stage has released both units and holds nothing
    assert released == [2, 2]
    assert leftover == [0.0, 0.0]


def test_single_request_trace(reference, tiny8l, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    req = _mixed_requests(tiny8l, n=1, seed=9)[0]
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt).serve([req])
    assert len(report.completed) == 1
    rec = report.completed[0]
    assert rec.tokens.shape == (req.gen_len,)
    assert rec.finish_time >= rec.first_token_time > 0
    assert report.throughput_tokens_per_s > 0


def test_empty_request_list(reference, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt).serve([])
    assert report.records == [] and report.makespan == 0.0
    assert report.throughput_tokens_per_s == 0.0


def test_idle_gap_between_arrivals_is_jumped(reference, tiny8l, workload12):
    """A long arrival gap advances the virtual clock without sleeping."""
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    reqs = _mixed_requests(tiny8l, n=2, seed=3)
    reqs = [
        ServeRequest(
            request_id=r.request_id, prompt=r.prompt, gen_len=r.gen_len,
            arrival=float(i) * 500.0,
        )
        for i, r in enumerate(reqs)
    ]
    t0 = time.perf_counter()
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt).serve(reqs)
    wall = time.perf_counter() - t0
    assert wall < 60.0  # the 500s gap was jumped, not slept
    assert report.makespan >= 500.0  # but the virtual timeline kept it
    assert len(report.completed) == 2
    late = next(r for r in report.completed if r.request_id == 1)
    assert late.latency < 100.0  # measured from its own arrival


def test_unfit_request_rejected_gracefully(reference, tiny8l, workload12):
    """With zero headroom nothing is admissible: every request must be
    rejected (no hang, no crash) and the report must say so."""
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, n=3)
    for policy in ("continuous", "wave"):
        with PipelineRuntime(reference, plan) as rt:
            sched = ContinuousScheduler(rt, policy=policy)
            sched.headroom[:] = 0.0
            report = sched.serve(requests)
        assert len(report.rejected) == 3
        assert report.completed == []
        assert report.generated_tokens == 0


def test_runtime_stats_mirror_per_request_metrics(
    reference, tiny8l, workload12
):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, seed=17)
    with PipelineRuntime(reference, plan) as rt:
        report = ContinuousScheduler(rt).serve(requests)
        stats = rt.stats
    assert len(stats.request_latencies) == len(report.completed)
    assert len(stats.request_ttfts) == len(report.completed)
    assert stats.latency_p95 >= stats.latency_p50 > 0
    assert stats.latency_p99 >= stats.latency_p95
    assert stats.ttft_mean > 0 and stats.ttft_p95 >= 0
    assert stats.tokens_generated == report.generated_tokens
    assert report.latency_p95 == pytest.approx(stats.latency_p95)


def test_max_inflight_cap_and_ledger_accounting(
    reference, tiny8l, workload12
):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, seed=29)
    with PipelineRuntime(reference, plan) as rt:
        sched = ContinuousScheduler(rt, max_inflight=2)
        report = sched.serve(requests)
    assert len(report.completed) == len(requests)
    assert sched.ledger.admitted_total == len(requests)
    assert sched.ledger.released_total == len(requests)
    assert sched.ledger.inflight_count == 0
    _assert_streams_match(report, reference, requests)


def test_constructor_and_request_validation(reference, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        with pytest.raises(ValueError, match="policy"):
            ContinuousScheduler(rt, policy="orca")
        with pytest.raises(ValueError, match="max_inflight"):
            ContinuousScheduler(rt, max_inflight=0)
        with pytest.raises(ValueError, match="time_scale"):
            ContinuousScheduler(rt, time_scale=-1.0)
    with pytest.raises(ValueError, match="gen_len"):
        ServeRequest(request_id=0, prompt=np.array([1, 2]), gen_len=0)
    with pytest.raises(ValueError, match="prompt"):
        ServeRequest(request_id=0, prompt=np.array([]), gen_len=2)
    with pytest.raises(ValueError, match="arrival"):
        ServeRequest(
            request_id=0, prompt=np.array([1]), gen_len=1, arrival=-1.0
        )
