"""Integration tests: the thread-pipelined runtime vs the reference model."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate, make_corpus
from repro.runtime import PipelineRuntime
from repro.workload import Workload


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, mb_p, mb_d, *, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits)) for i, bits in enumerate(bits_per_stage)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=mb_p, decode_microbatch=mb_d, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def prompts(tiny8l):
    return make_corpus(tiny8l.vocab_size, num_seqs=8, seq_len=12, seed=5).tokens


@pytest.fixture(scope="module")
def workload8():
    return Workload(prompt_len=12, gen_len=6, global_batch=8)


@pytest.mark.parametrize(
    "mb_p,mb_d",
    [(2, 4), (1, 8), (4, 4), (8, 8), (2, 2)],
    ids=lambda v: str(v),
)
def test_fp16_pipeline_matches_reference_exactly(
    reference, prompts, workload8, mb_p, mb_d
):
    """All-FP16 pipelined execution must be token-identical to the
    single-process reference, regardless of micro-batch schedule."""
    plan = _plan([(16,) * 3, (16,) * 3, (16,) * 2], mb_p, mb_d, workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 6)
    expected = generate(reference, prompts, 6).tokens
    np.testing.assert_array_equal(out, expected)


def test_single_stage_plan(reference, prompts, workload8):
    plan = _plan([(16,) * 8], 4, 8, workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 4)
    expected = generate(reference, prompts, 4).tokens
    np.testing.assert_array_equal(out, expected)


def test_quantized_pipeline_runs_and_stats(reference, prompts, workload8):
    plan = _plan([(8,) * 3, (4,) * 3, (16,) * 2], 2, 4, workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 5)
        stats = rt.stats
    assert out.shape == (8, 5)
    assert stats.prefill_microbatches == 4
    assert stats.decode_groups == 2
    assert stats.tokens_generated == 40
    assert stats.total_seconds > 0


def test_quantized_matches_fake_quant_reference(reference, prompts, workload8, tiny8l):
    """The runtime's quantized execution must equal a single-process model
    whose layers were fake-quantized with the same recipe."""
    from repro.quant import quantize_dequantize

    layer_bits = [8, 8, 8, 4, 4, 4, 16, 16]
    plan = _plan([(8,) * 3, (4,) * 3, (16,) * 2], 2, 4, workload=workload8)
    # hand-build the equivalent single-process model
    fq = reference.clone()
    for i, b in enumerate(layer_bits):
        if b < 16:
            fq.apply_to_layer(i, lambda _n, w, b=b: quantize_dequantize(w, b))
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 5)
    expected = generate(fq, prompts, 5).tokens
    np.testing.assert_array_equal(out, expected)


def test_runtime_reusable_across_batches(reference, prompts, workload8):
    plan = _plan([(16,) * 4, (16,) * 4], 4, 8, workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        a = rt.generate(prompts, 3)
        b = rt.generate(prompts, 3)
    np.testing.assert_array_equal(a, b)


def test_shutdown_idempotent(reference, workload8):
    plan = _plan([(16,) * 8], 4, 8, workload=workload8)
    rt = PipelineRuntime(reference, plan)
    rt.shutdown()
    rt.shutdown()  # no-op
    with pytest.raises(RuntimeError, match="shut down"):
        rt.generate(np.zeros((4, 12), dtype=np.int64), 2)


def test_config_mismatch_rejected(tiny4l, workload8):
    wrong_ref = TinyDecoderLM(tiny4l)
    plan = _plan([(16,) * 8], 4, 8, workload=workload8)
    with pytest.raises(ValueError, match="configs differ"):
        PipelineRuntime(wrong_ref, plan)


def test_generate_validation(reference, prompts, workload8):
    plan = _plan([(16,) * 8], 4, 8, workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        with pytest.raises(ValueError, match="positive"):
            rt.generate(prompts, 0)


def test_kv_peak_matches_cost_model(reference, prompts, workload8, tiny8l):
    """The runtime's measured peak KV bytes per stage must match the
    analytical model: layers x batch x (s + n) x 2 x hidden x 8 bytes
    (the NumPy runtime stores KV in float64)."""
    plan = _plan([(16,) * 4, (16,) * 4], 4, 8, workload=workload8)
    rt = PipelineRuntime(reference, plan)
    try:
        rt.generate(prompts, 6)
        for w in rt.workers:
            expected = 4 * 8 * (12 + 6) * 2 * tiny8l.hidden_size * 8
            # merge transiently doubles the decode-group KV
            assert w.kv.peak_bytes <= 2 * expected + 1
            assert w.kv.peak_bytes >= expected
    finally:
        rt.shutdown()


def test_supervised_recovery_after_stage_failure(reference, prompts, workload8):
    """Crash a stage with a malformed message: the supervised runtime
    restarts the stage from its cached shard and serves token-exactly."""
    from repro.runtime.messages import ActivationMessage

    plan = _plan([(16,) * 4, (16,) * 4], 4, 8, workload=workload8)
    rt = PipelineRuntime(reference, plan)
    try:
        before = rt.generate(prompts, 4)
        # poison: decode against a never-allocated cache unit
        rt.queues[0].put(
            ActivationMessage(4242, "decode", 3,
                              np.zeros((1, 1, reference.cfg.hidden_size)))
        )
        rt.workers[0].join(timeout=5.0)
        assert rt.workers[0].error is not None
        after = rt.generate(prompts, 4)  # auto-recovers and replays
        np.testing.assert_array_equal(after, before)
        assert rt.stats.retries >= 1
        assert rt.stats.stage_restarts >= 1
    finally:
        rt.shutdown()


def test_failure_without_recovery_raises_cleanly(reference, prompts, workload8):
    """With recovery disabled a poisoned pipeline fails fast with a clean
    RuntimeError (and the master never deadlocks on the dead stage)."""
    from repro.runtime.engine import SupervisionConfig
    from repro.runtime.messages import ActivationMessage

    plan = _plan([(16,) * 4, (16,) * 4], 4, 8, workload=workload8)
    rt = PipelineRuntime(
        reference, plan,
        supervision=SupervisionConfig(enable_recovery=False, queue_timeout=5.0),
    )
    try:
        rt.queues[0].put(
            ActivationMessage(4242, "decode", 3,
                              np.zeros((1, 1, reference.cfg.hidden_size)))
        )
        rt.workers[0].join(timeout=5.0)
        with pytest.raises(RuntimeError, match="failed"):
            rt.generate(prompts, 4)
        # the runtime is dead afterwards, not wedged
        with pytest.raises(RuntimeError, match="shut down"):
            rt.generate(prompts, 4)
    finally:
        rt.shutdown()


def test_manual_recover_still_works(reference, prompts, workload8):
    """The public recover() hook rebuilds a healthy pipeline on demand."""
    plan = _plan([(16,) * 4, (16,) * 4], 4, 8, workload=workload8)
    rt = PipelineRuntime(reference, plan)
    try:
        before = rt.generate(prompts, 4)
        rt.recover()
        after = rt.generate(prompts, 4)
        np.testing.assert_array_equal(after, before)
    finally:
        rt.shutdown()
