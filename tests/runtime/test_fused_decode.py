"""Fused ragged-batch decode: the default execution mode.

The contract this file pins:

1. fused decode produces **token streams identical** to the per-request
   batch-1 oracle path (``decode_batching="per-request"``) and to the
   single-process reference — for fp16, KV8 and KV4, uniform and mixed
   per-stage, across a hypothesis sweep of batch size x weight bitwidth
   x kv_bits;
2. the batched KV append/gather primitives (:class:`BatchedKVView`) are
   **bit-exact** per request against looped batch-1 cache ops, with
   exact-zero padding beyond each request's length;
3. both the reference model and the runtime resolve greedy argmax ties
   with the same first-index rule (:func:`repro.ops.greedy_pick`);
4. the scheduler's fused counters account for every fused iteration and
   the weight-stream bytes it saved.

Equality is at the token-stream level, not bitwise logits: a stacked
``(B, h) @ W`` GEMM is not row-for-row bitwise equal to B separate
GEMVs (~1e-14 drift), so divergence diagnostics report the argmax
margin of the reference logits instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate
from repro.ops import argmax_margin, greedy_pick
from repro.runtime import ContinuousScheduler, PipelineRuntime, ServeRequest
from repro.runtime.kvcache import (
    FakeQuantKVCache,
    KVCache,
    QuantizedKVCache,
    StageKVManager,
)
from repro.workload import Workload


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, kv_per_stage=None, *, workload, model="tiny-8l"):
    if kv_per_stage is None:
        kv_per_stage = [16] * len(bits_per_stage)
    stages = tuple(
        StagePlan(_dev(i), tuple(bits), kv_bits=kv)
        for i, (bits, kv) in enumerate(zip(bits_per_stage, kv_per_stage))
    )
    return ExecutionPlan(
        model_name=model, stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def reference4(tiny4l):
    return TinyDecoderLM(tiny4l, seed=7)


@pytest.fixture(scope="module")
def workload12():
    return Workload(prompt_len=12, gen_len=8, global_batch=8)


def _mixed_requests(cfg, *, n=7, seed=11, gap=0.0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        s = int(rng.integers(4, 13))
        g = int(rng.integers(2, 9))
        prompt = rng.integers(0, cfg.vocab_size, size=s, dtype=np.int64)
        out.append(
            ServeRequest(request_id=i, prompt=prompt, gen_len=g, arrival=i * gap)
        )
    return out


def _serve(model, plan, requests, mode):
    with PipelineRuntime(model, plan) as rt:
        report = ContinuousScheduler(
            rt, policy="continuous", decode_batching=mode
        ).serve(requests)
        stats = rt.stats
    return report, stats


def _streams(report):
    return {r.request_id: np.asarray(r.tokens) for r in report.completed}


def _assert_fused_matches_oracle(model, requests, fused, oracle):
    """Token-stream equality with an argmax-margin diagnostic: if a
    request diverges, replay the reference logits at the first mismatch
    and report how close the top-2 logits were."""
    by_id = {r.request_id: r for r in requests}
    assert fused.keys() == oracle.keys()
    for rid in sorted(fused):
        got, want = fused[rid], oracle[rid]
        if np.array_equal(got, want):
            continue
        t = int(np.flatnonzero(got != want)[0])
        req = by_id[rid]
        ref = generate(model, np.asarray(req.prompt)[None, :], req.gen_len)
        margin = float(argmax_margin(ref.logits[0, t])[0]) if hasattr(
            ref, "logits"
        ) else float("nan")
        raise AssertionError(
            f"request {rid} diverged at decode step {t}: fused={got[t]} "
            f"per-request={want[t]} (reference argmax margin {margin:.3e}; "
            f"a zero margin means an unbroken tie, anything larger is a "
            f"real numeric divergence)"
        )


# ---------------------------------------------------------------------------
# fused is the default and equals the oracle paths
# ---------------------------------------------------------------------------


def test_fused_is_default_and_matches_reference(reference, tiny8l, workload12):
    """Default-constructed scheduler runs fused and still reproduces the
    single-process batch-1 streams."""
    plan = _plan([(16,) * 3, (16,) * 3, (16,) * 2], workload=workload12)
    requests = _mixed_requests(tiny8l)
    with PipelineRuntime(reference, plan) as rt:
        sched = ContinuousScheduler(rt, policy="continuous")
        assert sched.decode_batching == "fused"
        report = sched.serve(requests)
        stats = rt.stats
    assert stats.fused_iterations > 0
    by_id = {r.request_id: r for r in requests}
    assert len(report.completed) == len(requests)
    for rec in report.completed:
        req = by_id[rec.request_id]
        expected = generate(
            reference, np.asarray(req.prompt)[None, :], req.gen_len
        ).tokens[0]
        np.testing.assert_array_equal(rec.tokens, expected)


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(2, 5),
    bits=st.sampled_from([16, 8, 4, 3]),
    kv_bits=st.sampled_from([16, 8, 4]),
    seed=st.integers(0, 2**31 - 1),
)
def test_fused_equals_per_request_sweep(reference4, tiny4l, n, bits, kv_bits, seed):
    """Hypothesis sweep: batch size x weight bitwidth x kv_bits.  Fused
    and per-request serving must emit identical token streams."""
    w = Workload(prompt_len=10, gen_len=5, global_batch=8)
    plan = _plan(
        [(bits,) * 2, (bits,) * 2], [kv_bits, kv_bits], workload=w,
        model="tiny-4l",
    )
    requests = _mixed_requests(tiny4l, n=n, seed=seed)
    fused_report, fused_stats = _serve(reference4, plan, requests, "fused")
    oracle_report, oracle_stats = _serve(reference4, plan, requests, "per-request")
    assert len(fused_report.completed) == len(requests)
    assert len(oracle_report.completed) == len(requests)
    _assert_fused_matches_oracle(
        reference4, requests, _streams(fused_report), _streams(oracle_report)
    )
    assert oracle_stats.fused_iterations == 0
    assert fused_stats.fused_batch_max <= n


def test_fused_equals_per_request_mixed_kv_and_bits(
    reference, tiny8l, workload12
):
    """Mixed per-stage weight bits (8/4/16) and kv_bits (4/8/16) side by
    side: fused streams equal the per-request oracle."""
    plan = _plan(
        [(8,) * 3, (4,) * 3, (16,) * 2], [4, 8, 16], workload=workload12
    )
    requests = _mixed_requests(tiny8l, n=6, seed=41)
    fused_report, _ = _serve(reference, plan, requests, "fused")
    oracle_report, _ = _serve(reference, plan, requests, "per-request")
    assert len(fused_report.completed) == len(requests)
    _assert_fused_matches_oracle(
        reference, requests, _streams(fused_report), _streams(oracle_report)
    )


def test_fused_with_staggered_arrivals(reference, tiny8l, workload12):
    """Prefills joining mid-flight co-batch with in-flight decodes: the
    mixed prefill+fused-decode iteration must not perturb streams."""
    requests = _mixed_requests(tiny8l, n=6, seed=13, gap=0.01)
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    fused_report, stats = _serve(reference, plan, requests, "fused")
    oracle_report, _ = _serve(reference, plan, requests, "per-request")
    assert len(fused_report.completed) == len(requests)
    assert stats.fused_iterations > 0
    _assert_fused_matches_oracle(
        reference, requests, _streams(fused_report), _streams(oracle_report)
    )


# ---------------------------------------------------------------------------
# deterministic tie-break (shared by reference model and runtime)
# ---------------------------------------------------------------------------


def test_greedy_pick_breaks_ties_on_lowest_index():
    """An explicit logit tie: both tied maxima, lowest index must win —
    and the rule must be exactly ``np.argmax`` semantics."""
    logits = np.array(
        [
            [1.0, 3.0, 3.0, 2.0],   # tie between 1 and 2 -> 1
            [5.0, 5.0, 5.0, 5.0],   # all tied -> 0
            [-1.0, -2.0, -1.0, -9.0],  # tie between 0 and 2 -> 0
        ]
    )
    picked = greedy_pick(logits)
    np.testing.assert_array_equal(picked, [1, 0, 0])
    np.testing.assert_array_equal(picked, logits.argmax(axis=-1))
    # tied rows have an exactly-zero argmax margin
    np.testing.assert_array_equal(argmax_margin(logits), [0.0, 0.0, 0.0])
    assert argmax_margin(np.array([1.0, 4.0, 2.0]))[0] == pytest.approx(2.0)


def test_reference_and_runtime_share_tie_break(reference, tiny8l, workload12):
    """The reference greedy sampler and the scheduler resolve the same
    constructed tie the same way."""
    from repro.models.generation import _pick

    tie = np.array([[2.0, 7.5, 7.5, 0.0]])
    rng = np.random.default_rng(0)
    assert int(_pick(tie, True, rng)[0]) == int(greedy_pick(tie)[0]) == 1
    # end to end: fused, per-request and the single-process reference all
    # walk through greedy_pick, so one request's stream is identical in
    # all three (the sweep above covers multi-request; this pins n=1)
    req = _mixed_requests(tiny8l, n=1, seed=2)[0]
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    for mode in ("fused", "per-request"):
        report, _ = _serve(reference, plan, [req], mode)
        expected = generate(
            reference, np.asarray(req.prompt)[None, :], req.gen_len
        ).tokens[0]
        np.testing.assert_array_equal(report.completed[0].tokens, expected)


# ---------------------------------------------------------------------------
# BatchedKVView: batched append/gather bit-exact vs looped batch-1 ops
# ---------------------------------------------------------------------------


def _manager(kv_bits, *, num_layers=2, hidden=8, heads=2):
    return StageKVManager(
        num_layers=num_layers, hidden_size=hidden,
        kv_bits=kv_bits, num_heads=heads,
    )


@pytest.mark.parametrize("kv_bits", [16, 8, 4])
def test_batched_view_bitexact_vs_looped_appends(kv_bits):
    """One batched append == B separate batch-1 appends, bit for bit,
    on ragged-length units; padded tail rows read back as exact zeros."""
    rng = np.random.default_rng(5)
    L, H, heads, max_len = 2, 8, 2, 10
    lens = [3, 1, 5]
    batched = _manager(kv_bits, num_layers=L, hidden=H, heads=heads)
    looped = _manager(kv_bits, num_layers=L, hidden=H, heads=heads)
    prompts_kv = {}
    for u, s in enumerate(lens):
        batched.allocate(u, 1, max_len)
        looped.allocate(u, 1, max_len)
        prompts_kv[u] = [
            (rng.normal(size=(1, s, H)) * 3.0, rng.normal(size=(1, s, H)))
            for _ in range(L)
        ]
        for li, (k, v) in enumerate(prompts_kv[u]):
            batched.get(u).append(li, k, v, 0)
            looped.get(u).append(li, k, v, 0)
        batched.get(u).length = looped.get(u).length = s

    starts = np.array(lens, dtype=np.int64)
    view = batched.batch_view((0, 1, 2), starts)
    new = {
        li: (rng.normal(size=(3, 1, H)) * 2.0, rng.normal(size=(3, 1, H)))
        for li in range(L)
    }
    for li, (k, v) in new.items():
        view.append(li, k, v)
        k_pad, v_pad = view.read_padded(li)
        # per-request looped reference: batch-1 append at that unit's start
        for i, u in enumerate((0, 1, 2)):
            looped.get(u).append(li, k[i : i + 1], v[i : i + 1], lens[u])
            kr, vr = looped.get(u).read(li, lens[u] + 1)
            np.testing.assert_array_equal(k_pad[i, : lens[u] + 1], kr[0])
            np.testing.assert_array_equal(v_pad[i, : lens[u] + 1], vr[0])
            # padding beyond the request's length is exactly zero
            np.testing.assert_array_equal(
                k_pad[i, lens[u] + 1 :], np.zeros_like(k_pad[i, lens[u] + 1 :])
            )
            np.testing.assert_array_equal(
                v_pad[i, lens[u] + 1 :], np.zeros_like(v_pad[i, lens[u] + 1 :])
            )
    view.commit_lengths()
    for u, s in enumerate(lens):
        assert batched.get(u).length == s + 1
        if kv_bits < 16:
            np.testing.assert_array_equal(
                batched.get(u).k_codes, looped.get(u).k_codes
            )
            np.testing.assert_array_equal(
                batched.get(u).k_scales, looped.get(u).k_scales
            )
        else:
            np.testing.assert_array_equal(batched.get(u).k, looped.get(u).k)
            np.testing.assert_array_equal(batched.get(u).v, looped.get(u).v)


def test_batched_view_validation():
    m = _manager(16)
    m.allocate(0, 1, 4)
    with pytest.raises(ValueError, match="at least one"):
        m.batch_view((), np.array([], dtype=np.int64))
    with pytest.raises(ValueError, match="starts"):
        m.batch_view((0,), np.array([[1]], dtype=np.int64))
    with pytest.raises(ValueError, match="overflow"):
        m.batch_view((0,), np.array([4], dtype=np.int64))
    # mixing packed and dense units in one view is rejected
    dense = KVCache.allocate(1, 1, 4, 8)
    packed = QuantizedKVCache.allocate(1, 1, 4, 8, kv_bits=4, num_heads=2)
    from repro.runtime.kvcache import BatchedKVView

    with pytest.raises(ValueError, match="share one storage type"):
        BatchedKVView([dense, packed], np.array([0, 0], dtype=np.int64))


def test_batched_view_fake_quant_dense_path():
    """FakeQuantKVCache units quantize the batched append exactly like
    their own batch-1 append."""
    rng = np.random.default_rng(9)
    H, heads = 8, 2
    a = FakeQuantKVCache.allocate_quant(1, 1, 4, H, kv_bits=4, num_heads=heads)
    b = FakeQuantKVCache.allocate_quant(1, 1, 4, H, kv_bits=4, num_heads=heads)
    k = rng.normal(size=(2, 1, H))
    v = rng.normal(size=(2, 1, H))
    from repro.runtime.kvcache import BatchedKVView

    view = BatchedKVView([a, b], np.array([0, 0], dtype=np.int64))
    view.append(0, k, v)
    ref = FakeQuantKVCache.allocate_quant(1, 2, 4, H, kv_bits=4, num_heads=heads)
    ref.append(0, k, v, 0)
    np.testing.assert_array_equal(a.k[0, 0, 0], ref.k[0, 0, 0])
    np.testing.assert_array_equal(b.k[0, 0, 0], ref.k[0, 1, 0])


# ---------------------------------------------------------------------------
# fused counters
# ---------------------------------------------------------------------------


def test_fused_counters_account_for_weight_stream(reference, tiny8l, workload12):
    """``fused_weight_bytes_saved`` must equal ``(sum(B_i) - iterations)
    * total weight bytes`` — one stream per iteration instead of B."""
    plan = _plan([(8,) * 4, (4,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, n=5, seed=19)
    _, stats = _serve(reference, plan, requests, "fused")
    assert stats.fused_iterations > 0
    assert 1.0 <= stats.fused_batch_mean <= stats.fused_batch_max <= 5
    w_total = sum(
        tiny8l.layer_weight_bytes(b)
        for sp in plan.stages
        for b in sp.layer_bits
    )
    expected = (stats.fused_batch_sum - stats.fused_iterations) * w_total
    assert stats.fused_weight_bytes_saved == pytest.approx(expected)


def test_per_request_mode_leaves_counters_zero(reference, tiny8l, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    requests = _mixed_requests(tiny8l, n=3, seed=7)
    _, stats = _serve(reference, plan, requests, "per-request")
    assert stats.fused_iterations == 0
    assert stats.fused_batch_sum == 0
    assert stats.fused_batch_max == 0
    assert stats.fused_batch_mean == 0.0
    assert stats.fused_weight_bytes_saved == 0.0


def test_decode_batching_validation(reference, workload12):
    plan = _plan([(16,) * 4, (16,) * 4], workload=workload12)
    with PipelineRuntime(reference, plan) as rt:
        with pytest.raises(ValueError, match="decode_batching"):
            ContinuousScheduler(rt, decode_batching="orca")
