"""End-to-end fault injection + recovery tests (the issue's acceptance
criteria): a supervised runtime under deterministic faults must keep
serving token-for-token identically to the single-process reference —
or fail cleanly when told not to recover."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate, make_corpus
from repro.runtime import (
    FaultInjector,
    KVAllocPressure,
    MessageCorruption,
    MessageDrop,
    PipelineRuntime,
    StageCrash,
    Straggler,
    SupervisionConfig,
)
from repro.workload import Workload

GEN = 6


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, mb_p, mb_d, *, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits)) for i, bits in enumerate(bits_per_stage)
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=mb_p, decode_microbatch=mb_d, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def prompts(tiny8l):
    return make_corpus(tiny8l.vocab_size, num_seqs=8, seq_len=12, seed=5).tokens


@pytest.fixture(scope="module")
def workload8():
    return Workload(prompt_len=12, gen_len=GEN, global_batch=8)


@pytest.fixture(scope="module")
def expected(reference, prompts):
    return generate(reference, prompts, GEN).tokens


def test_mid_pipeline_crash_during_decode_recovers_exactly(
    reference, prompts, workload8, expected
):
    """The headline acceptance test: a seeded injector kills the middle
    stage mid-decode; the runtime restarts it from the cached shard
    within the retry bound and the tokens match the reference
    bit-for-bit."""
    # 3 stages, mb_p=2 -> 4 prefill activations per stage; mb_d=4 -> 2
    # decode groups per step.  Message 6 at stage 1 is therefore the
    # second decode group of step 1: squarely mid-decode.
    plan = _plan([(16,) * 3, (16,) * 3, (16,) * 2], 2, 4, workload=workload8)
    inj = FaultInjector([StageCrash(stage=1, at=6)], seed=0)
    with PipelineRuntime(reference, plan, fault_injector=inj) as rt:
        out = rt.generate(prompts, GEN)
    np.testing.assert_array_equal(out, expected)
    assert inj.fired == [("crash", 1, 6)]
    assert 1 <= rt.stats.retries <= rt.supervision.max_retries
    assert rt.stats.stage_restarts >= 1
    assert rt.stats.replayed_microbatches >= 1
    assert rt.stats.recovery_seconds > 0


def test_straggler_is_tolerated_without_retries(
    reference, prompts, workload8, expected
):
    """A slow-but-alive stage must not trip the progress deadline."""
    plan = _plan([(16,) * 4, (16,) * 4], 2, 4, workload=workload8)
    inj = FaultInjector([Straggler(stage=0, delay=0.02, every=3)])
    with PipelineRuntime(
        reference, plan, fault_injector=inj,
        supervision=SupervisionConfig(queue_timeout=5.0),
    ) as rt:
        out = rt.generate(prompts, GEN)
    np.testing.assert_array_equal(out, expected)
    assert rt.stats.retries == 0
    assert any(f[0] == "slow" for f in inj.fired)


def test_dropped_message_detected_as_stall_and_replayed(
    reference, prompts, workload8, expected
):
    """A silently dropped activation never produces a FailureMessage;
    the bounded progress deadline catches it and the batch replays."""
    plan = _plan([(16,) * 4, (16,) * 4], 2, 4, workload=workload8)
    inj = FaultInjector([MessageDrop(stage=1, at=3)])
    with PipelineRuntime(
        reference, plan, fault_injector=inj,
        supervision=SupervisionConfig(queue_timeout=1.0),
    ) as rt:
        out = rt.generate(prompts, GEN)
    np.testing.assert_array_equal(out, expected)
    assert rt.stats.retries >= 1
    assert ("drop", 1, 3) in inj.fired


def test_kv_pressure_degrades_decode_group_instead_of_crashing(
    reference, prompts, workload8, expected, tiny8l
):
    """Denied KV allocations walk the degradation ladder: the decode
    group shrinks (more, smaller groups) and serving continues with
    identical tokens — no exception escapes."""
    # per-unit KV bytes on a 4-layer stage: 2 (k+v) x layers x batch x
    # (s + n) x hidden x 8 bytes (float64)
    unit = 2 * 4 * 2 * (12 + GEN) * tiny8l.hidden_size * 8
    # cap at 2.5 units: the mb_d=8 merge wants 4 units (denied), the
    # shrunk mb_d=4 merge wants 2 (fits)
    plan = _plan([(16,) * 4, (16,) * 4], 2, 8, workload=workload8)
    inj = FaultInjector([KVAllocPressure(stage=0, max_bytes=2.5 * unit)])
    with PipelineRuntime(reference, plan, fault_injector=inj) as rt:
        out = rt.generate(prompts, GEN)
    np.testing.assert_array_equal(out, expected)
    assert rt.stats.kv_alloc_failures >= 1
    assert rt.stats.degrade_events >= 1
    assert rt.stats.decode_groups > 1  # 8/8 would have been one group
    assert rt._decode_microbatch < 8


def test_permanent_stage_loss_triggers_replan(
    reference, prompts, workload8, expected
):
    """A stage that dies on every restart exhausts its retries; with
    replanning enabled the runtime drops the dead device, redistributes
    its layers to the neighbours and completes on the downgraded plan."""
    plan = _plan([(16,) * 3, (16,) * 3, (16,) * 2], 2, 4, workload=workload8)
    inj = FaultInjector([StageCrash(stage=1, at=1, repeat=True)])
    sup = SupervisionConfig(
        replan_on_permanent_failure=True, max_retries=1, queue_timeout=5.0
    )
    with PipelineRuntime(
        reference, plan, fault_injector=inj, supervision=sup
    ) as rt:
        out = rt.generate(prompts, GEN)
    np.testing.assert_array_equal(out, expected)  # per-layer bits preserved
    assert rt.stats.replans == 1
    assert rt.plan.num_stages == 2
    assert rt.plan is not rt.original_plan
    assert rt.original_plan.num_stages == 3
    assert rt.plan.meta.get("replanned_after_stage_failure") == 1
    # every layer kept its quantization recipe across the re-cut
    assert [b for st in rt.plan.stages for b in st.layer_bits] == [16] * 8


def test_permanent_loss_without_replan_fails_cleanly(
    reference, prompts, workload8
):
    """With replanning off, the exhausted ladder surfaces a clean
    RuntimeError within the timeout instead of deadlocking."""
    plan = _plan([(16,) * 4, (16,) * 4], 2, 4, workload=workload8)
    inj = FaultInjector([StageCrash(stage=1, at=1, repeat=True)])
    sup = SupervisionConfig(max_retries=1, queue_timeout=5.0)
    rt = PipelineRuntime(reference, plan, fault_injector=inj, supervision=sup)
    try:
        with pytest.raises(RuntimeError, match="stage 1 failed"):
            rt.generate(prompts, GEN)
        assert rt.stats.retries == 2  # max_retries + the escalating one
        with pytest.raises(RuntimeError, match="shut down"):
            rt.generate(prompts, GEN)
    finally:
        rt.shutdown()


def test_corruption_changes_tokens_deterministically(
    reference, prompts, workload8, expected
):
    """Corrupted activations are not detected (no retry) but the damage
    is seeded: two runs with the same injector seed agree with each
    other while disagreeing with the clean reference."""
    plan = _plan([(16,) * 4, (16,) * 4], 2, 4, workload=workload8)

    def run(seed):
        inj = FaultInjector([MessageCorruption(stage=0, at=2)], seed=seed)
        with PipelineRuntime(reference, plan, fault_injector=inj) as rt:
            out = rt.generate(prompts, GEN)
        assert rt.stats.retries == 0
        return out

    a, b = run(11), run(11)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, expected)


def test_injected_crash_with_recovery_disabled_raises(
    reference, prompts, workload8
):
    plan = _plan([(16,) * 4, (16,) * 4], 2, 4, workload=workload8)
    inj = FaultInjector([StageCrash(stage=0, at=1)])
    rt = PipelineRuntime(
        reference, plan, fault_injector=inj,
        supervision=SupervisionConfig(enable_recovery=False, queue_timeout=5.0),
    )
    try:
        with pytest.raises(RuntimeError, match="failed"):
            rt.generate(prompts, GEN)
    finally:
        rt.shutdown()
