"""Quantized KV cache: pack/unpack round trips and runtime token equality.

The contract chain this file pins:

1. packing is lossless on codes, so a packed cache's ``read`` is
   **bit-exact** equal to the fake-quant oracle (:func:`kv_fake_quant`);
2. the fake-quant values are within half a scale step of the original
   activations (symmetric absmax quantization error bound);
3. therefore the pipeline runtime serving packed KV4/KV8 produces
   **token-identical** output to a single-process model running the
   fake-quant reference path — for uniform and mixed per-stage KV.
"""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate, make_corpus
from repro.models.transformer import KVCache
from repro.runtime import PipelineRuntime
from repro.runtime.kvcache import (
    FakeQuantKVCache,
    QuantizedKVCache,
    StageKVManager,
    dequantize_kv,
    kv_fake_quant,
    packed_kv_nbytes,
    quantize_kv,
)
from repro.workload import Workload


# ---------------------------------------------------------------------------
# quantize/dequantize/pack round trips
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 3),
    tokens=st.integers(1, 5),
    heads=st.sampled_from([1, 2, 4]),
    kv_bits=st.sampled_from([4, 8]),
    scale_pow=st.integers(-3, 3),
    seed=st.integers(0, 2**32 - 1),
)
def test_roundtrip_within_quantization_error(
    batch, tokens, heads, kv_bits, scale_pow, seed
):
    """Dequantized values sit within half a quantization step of the
    input, per (token, head) scale — the absmax symmetric-quant bound."""
    rng = np.random.default_rng(seed)
    hidden = 8 * heads
    x = rng.normal(size=(batch, tokens, hidden)) * 10.0**scale_pow
    codes, scales = quantize_kv(x, kv_bits, heads)
    back = dequantize_kv(codes, scales, heads)
    tol = np.repeat(scales / 2.0, hidden // heads, axis=-1)
    assert np.all(np.abs(back - x) <= tol + 1e-15)
    # and the one-call oracle is exactly this round trip
    np.testing.assert_array_equal(back, kv_fake_quant(x, kv_bits, heads))


@settings(max_examples=30, deadline=None)
@given(
    heads=st.sampled_from([1, 2]),
    kv_bits=st.sampled_from([4, 8]),
    steps=st.lists(st.integers(1, 4), min_size=1, max_size=4),
    seed=st.integers(0, 2**32 - 1),
)
def test_packed_cache_bitexact_vs_fake_quant(heads, kv_bits, steps, seed):
    """Packing never perturbs codes: a packed cache reads back exactly
    what the fake-quant reference cache stores, append after append."""
    rng = np.random.default_rng(seed)
    L, B, H = 2, 2, 8 * heads
    T = sum(steps)
    packed = QuantizedKVCache.allocate(L, B, T, H, kv_bits=kv_bits, num_heads=heads)
    ref = FakeQuantKVCache.allocate_quant(
        L, B, T, H, kv_bits=kv_bits, num_heads=heads
    )
    start = 0
    for q in steps:
        k = rng.normal(size=(B, q, H)) * (1.0 + 9.0 * rng.random((B, q, 1)))
        v = rng.normal(size=(B, q, H))
        for li in range(L):
            packed.append(li, k, v, start)
            ref.append(li, k, v, start)
        start += q
    for li in range(L):
        kp, vp = packed.read(li, start)
        kr, vr = ref.read(li, start)
        np.testing.assert_array_equal(kp, kr)
        np.testing.assert_array_equal(vp, vr)


def test_zero_rows_roundtrip_exact():
    """All-zero head groups take scale 1.0 and decode back to exact 0."""
    x = np.zeros((1, 3, 8))
    codes, scales = quantize_kv(x, 4, 2)
    assert np.all(scales == 1.0)
    np.testing.assert_array_equal(dequantize_kv(codes, scales, 2), x)


def test_kv16_fake_quant_is_identity():
    x = np.random.default_rng(0).normal(size=(2, 3, 8))
    np.testing.assert_array_equal(kv_fake_quant(x, 16, 2), x)


def test_packed_allocate_validation():
    with pytest.raises(ValueError, match="byte-aligned"):
        QuantizedKVCache.allocate(1, 1, 4, 9, kv_bits=4)
    with pytest.raises(ValueError, match="kv_bits"):
        QuantizedKVCache.allocate(1, 1, 4, 8, kv_bits=16)
    with pytest.raises(ValueError, match="heads"):
        QuantizedKVCache.allocate(1, 1, 4, 8, kv_bits=4, num_heads=3)


def test_packed_overflow_guarded():
    c = QuantizedKVCache.allocate(1, 1, 4, 8, kv_bits=4, num_heads=2)
    with pytest.raises(ValueError, match="overflow"):
        c.append(0, np.zeros((1, 3, 8)), np.zeros((1, 3, 8)), 2)


# ---------------------------------------------------------------------------
# the stage manager under packed KV
# ---------------------------------------------------------------------------


def test_manager_packed_bytes_and_guard():
    """The guard and the ledger see the real packed footprint — the 4x
    (KV4) / 2x (KV8) shrink that buys admission headroom."""
    seen = []
    sizes = {}
    for bits in (16, 8, 4):
        m = StageKVManager(
            num_layers=2, hidden_size=8, alloc_guard=seen.append,
            kv_bits=bits, num_heads=2,
        )
        m.allocate(0, batch=3, max_len=10)
        sizes[bits] = m.current_bytes
        assert seen[-1] == m.current_bytes
    assert sizes[16] == 2 * (2 * 3 * 10 * 8 * 8)  # fp16 formula unchanged
    assert sizes[8] == packed_kv_nbytes(2, 3, 10, 8, 8, 2)
    assert sizes[4] == packed_kv_nbytes(2, 3, 10, 8, 4, 2)
    assert sizes[8] < sizes[16] and sizes[4] < sizes[8]


def test_manager_packed_merge_release():
    rng = np.random.default_rng(1)
    m = StageKVManager(num_layers=2, hidden_size=8, kv_bits=4, num_heads=2)
    a = m.allocate(0, batch=1, max_len=6)
    b = m.allocate(1, batch=1, max_len=6)
    k = rng.normal(size=(1, 3, 8))
    v = rng.normal(size=(1, 3, 8))
    for li in range(2):
        a.append(li, k, v, 0)
        b.append(li, 2 * k, 2 * v, 0)
    a.length = b.length = 3
    merged = m.merge(100, (0, 1))
    assert isinstance(merged, QuantizedKVCache)
    assert merged.k_codes.shape[1] == 2
    km, _ = merged.read(0, 3)
    np.testing.assert_array_equal(km[0:1], kv_fake_quant(k, 4, 2))
    np.testing.assert_array_equal(km[1:2], kv_fake_quant(2 * k, 4, 2))
    freed = m.release(100)
    assert freed == merged.kv_nbytes
    assert m.current_bytes == 0.0


# ---------------------------------------------------------------------------
# runtime end-to-end vs fake-quant reference
# ---------------------------------------------------------------------------


def _dev(i):
    return Device(get_gpu("T4-16G"), node_id=0, local_rank=i)


def _plan(bits_per_stage, kv_per_stage, *, workload):
    stages = tuple(
        StagePlan(_dev(i), tuple(bits), kv_bits=kv)
        for i, (bits, kv) in enumerate(zip(bits_per_stage, kv_per_stage))
    )
    return ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=workload,
    )


@pytest.fixture(scope="module")
def reference(tiny8l):
    return TinyDecoderLM(tiny8l, seed=3)


@pytest.fixture(scope="module")
def prompts(tiny8l):
    return make_corpus(tiny8l.vocab_size, num_seqs=8, seq_len=12, seed=5).tokens


@pytest.fixture(scope="module")
def workload8():
    return Workload(prompt_len=12, gen_len=6, global_batch=8)


@pytest.mark.parametrize("kv_bits", [4, 8])
def test_uniform_kv_pipeline_matches_fake_quant_reference(
    reference, prompts, workload8, kv_bits
):
    """Packed uniform KV4/KV8 serving is token-identical to the
    single-process fake-quant reference run."""
    plan = _plan(
        [(16,) * 3, (16,) * 3, (16,) * 2], [kv_bits] * 3, workload=workload8
    )
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 6)
    expected = generate(reference, prompts, 6, kv_bits=kv_bits).tokens
    np.testing.assert_array_equal(out, expected)


@dataclass
class _PerLayerFakeQuantCache(KVCache):
    """Reference cache for mixed per-stage KV: each layer fake-quantizes
    at its own bitwidth (16 = passthrough)."""

    layer_kv: tuple = ()
    num_heads: int = 1

    def append(self, layer, k_new, v_new, start):
        b = self.layer_kv[layer]
        super().append(
            layer,
            kv_fake_quant(k_new, b, self.num_heads),
            kv_fake_quant(v_new, b, self.num_heads),
            start,
        )


def _generate_per_layer_kv(model, prompts, num_tokens, layer_kv):
    """Greedy loop mirroring :func:`repro.models.generate` but with a
    per-layer fake-quant cache — the oracle for mixed-KV pipelines."""
    cfg = model.cfg
    batch, s = prompts.shape
    shape = (cfg.num_layers, batch, s + num_tokens, cfg.hidden_size)
    cache = _PerLayerFakeQuantCache(
        k=np.zeros(shape), v=np.zeros(shape), length=0,
        layer_kv=tuple(layer_kv), num_heads=cfg.num_heads,
    )
    x = model._embed(prompts, 0)
    for i in range(cfg.num_layers):
        x = model._block(i, x, cache, 0)
    cache.length = s
    cur = model._logits(x[:, -1:])[:, 0].argmax(axis=-1)
    out = np.empty((batch, num_tokens), dtype=np.int64)
    for t in range(num_tokens):
        out[:, t] = cur
        if t == num_tokens - 1:
            break
        cur = model.decode_step(cur, cache).argmax(axis=-1)
    return out


def test_mixed_kv_pipeline_matches_per_layer_reference(
    reference, prompts, workload8
):
    """Stages at KV4 / KV8 / fp16 side by side: the pipeline must equal a
    single-process run quantizing each layer at its stage's bitwidth."""
    kv_per_stage = [4, 8, 16]
    plan = _plan(
        [(16,) * 3, (16,) * 3, (16,) * 2], kv_per_stage, workload=workload8
    )
    layer_kv = [4] * 3 + [8] * 3 + [16] * 2
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 6)
    expected = _generate_per_layer_kv(reference, prompts, 6, layer_kv)
    np.testing.assert_array_equal(out, expected)


def test_kv4_quantized_weights_pipeline_runs(reference, prompts, workload8):
    """Weight quantization and KV quantization compose in the runtime."""
    plan = _plan(
        [(8,) * 3, (4,) * 3, (16,) * 2], [4, 4, 8], workload=workload8
    )
    with PipelineRuntime(reference, plan) as rt:
        out = rt.generate(prompts, 5)
    assert out.shape == (8, 5)


def test_kv_peak_matches_packed_footprint(reference, prompts, workload8, tiny8l):
    """The runtime's KV ledger records the packed bytes for quantized
    stages — the same quantity the planner's memory model charges."""
    kv_bits = 4
    plan = _plan([(16,) * 4, (16,) * 4], [kv_bits, kv_bits], workload=workload8)
    with PipelineRuntime(reference, plan) as rt:
        rt.generate(prompts, 6)
        for w in rt.workers:
            expected = packed_kv_nbytes(
                4, 8, 12 + 6, tiny8l.hidden_size, kv_bits, tiny8l.num_heads
            )
            # merge transiently doubles the decode-group KV
            assert expected <= w.kv.peak_bytes <= 2 * expected + 1
