"""Unit tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.runtime.faults import (
    FaultInjector,
    InjectedFault,
    KVAllocationError,
    KVAllocPressure,
    MessageCorruption,
    MessageDrop,
    StageCrash,
    Straggler,
)


def test_spec_parsing_roundtrip():
    inj = FaultInjector.from_spec(
        "crash:stage=1,at=5,repeat=1;slow:stage=0,delay=0.25,every=2;"
        "drop:stage=2,at=3;corrupt:stage=0,at=4,scale=2.0;"
        "kvcap:stage=1,max_bytes=1024,fail_count=2",
        seed=7,
    )
    assert inj.seed == 7
    kinds = [type(p).__name__ for p in inj.policies]
    assert kinds == [
        "StageCrash", "Straggler", "MessageDrop", "MessageCorruption",
        "KVAllocPressure",
    ]
    crash = inj.policies[0]
    assert (crash.stage, crash.at, crash.repeat) == (1, 5, True)
    slow = inj.policies[1]
    assert (slow.stage, slow.delay, slow.every) == (0, 0.25, 2)
    cap = inj.policies[4]
    assert (cap.max_bytes, cap.fail_count) == (1024.0, 2)


@pytest.mark.parametrize("bad", [
    "explode:stage=1",            # unknown kind
    "crash:stage",                # not key=value
    "crash:bogus=1",              # unknown field
    "crash:stage=one",            # bad value
    "slow:stage=0,max_bytes=1",   # field of another policy kind
])
def test_spec_parsing_rejects_garbage(bad):
    with pytest.raises(ValueError):
        FaultInjector.from_spec(bad)


def test_empty_spec_segments_ignored():
    inj = FaultInjector.from_spec("crash:stage=0,at=1;;")
    assert len(inj.policies) == 1


def test_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert FaultInjector.from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "crash:stage=2,at=9")
    monkeypatch.setenv("REPRO_FAULTS_SEED", "13")
    inj = FaultInjector.from_env()
    assert inj is not None and inj.seed == 13
    assert inj.policies[0].stage == 2


def test_crash_fires_at_exact_message():
    inj = FaultInjector([StageCrash(stage=0, at=3)])
    assert inj.on_activation(0) is None
    assert inj.on_activation(0) is None
    with pytest.raises(InjectedFault):
        inj.on_activation(0)
    # one-shot: retired after firing
    assert inj.on_activation(0) is None
    assert inj.fired == [("crash", 0, 3)]


def test_crash_repeat_rearms_after_restart():
    inj = FaultInjector([StageCrash(stage=0, at=2, repeat=True)])
    inj.on_activation(0)
    with pytest.raises(InjectedFault):
        inj.on_activation(0)
    inj.notify_restart(0)
    inj.on_activation(0)
    with pytest.raises(InjectedFault):
        inj.on_activation(0)
    assert [f[0] for f in inj.fired] == ["crash", "crash"]


def test_crash_only_targets_its_stage():
    inj = FaultInjector([StageCrash(stage=1, at=1)])
    for _ in range(5):
        assert inj.on_activation(0) is None
    with pytest.raises(InjectedFault):
        inj.on_activation(1)


def test_straggler_sleeps_on_schedule():
    delays = []
    inj = FaultInjector([Straggler(stage=0, delay=0.5, every=2)])
    for _ in range(4):
        inj.on_activation(0, sleep=delays.append)
    assert delays == [0.5, 0.5]  # messages 2 and 4


def test_drop_and_corrupt_actions():
    inj = FaultInjector([MessageDrop(stage=0, at=1), MessageCorruption(stage=0, at=2)])
    assert inj.on_activation(0) == "drop"
    assert inj.on_activation(0) == "corrupt"
    assert inj.on_activation(0) is None


def test_corruption_deterministic_per_seed():
    x = np.ones((2, 3))
    a = FaultInjector([], seed=5)
    b = FaultInjector([], seed=5)
    c = FaultInjector([], seed=6)
    np.testing.assert_array_equal(a.corrupt(0, x), b.corrupt(0, x))
    assert not np.array_equal(a.corrupt(0, x), c.corrupt(0, x))
    assert not np.array_equal(a.corrupt(0, x), x)


def test_kv_guard_caps_allocations():
    inj = FaultInjector([KVAllocPressure(stage=1, max_bytes=100.0)])
    guard = inj.kv_guard(1)
    guard(50.0)  # under the cap: fine
    with pytest.raises(KVAllocationError):
        guard(200.0)
    # other stages unaffected
    inj.kv_guard(0)(1e9)
    assert inj.fired[-1][0] == "kvcap"


def test_kv_guard_fail_count_heals():
    inj = FaultInjector([KVAllocPressure(stage=0, max_bytes=1.0, fail_count=2)])
    guard = inj.kv_guard(0)
    for _ in range(2):
        with pytest.raises(KVAllocationError):
            guard(10.0)
    guard(10.0)  # healed after fail_count denials


def test_retire_stage_disables_policies():
    inj = FaultInjector([
        StageCrash(stage=1, at=1, repeat=True),
        KVAllocPressure(stage=1, max_bytes=0.0),
    ])
    inj.retire_stage(1)
    assert inj.on_activation(1) is None
    inj.kv_guard(1)(1e9)  # no raise
    assert inj.fired == []


def test_identical_injectors_fire_identically():
    def drive(inj):
        log = []
        for stage in (0, 1, 0, 1, 0):
            try:
                log.append(inj.on_activation(stage, sleep=lambda _s: None))
            except InjectedFault:
                log.append("crash")
        return log, list(inj.fired)

    mk = lambda: FaultInjector(
        [StageCrash(stage=0, at=3), Straggler(stage=1, delay=0.1)], seed=3
    )
    assert drive(mk()) == drive(mk())


def test_describe_mentions_policies():
    inj = FaultInjector([StageCrash(stage=0)], seed=2)
    text = inj.describe()
    assert "StageCrash" in text and "seed=2" in text
