"""Unit tests for the on-the-fly quantized loader."""

import numpy as np
import pytest

from repro.models import TinyDecoderLM, get_model
from repro.quant import quantize_dequantize
from repro.runtime import load_stage_weights, simulate_loading


@pytest.fixture(scope="module")
def model(tiny8l):
    return TinyDecoderLM(tiny8l, seed=1)


def test_fp16_layers_pass_through(model):
    load = load_stage_weights(model, [0, 1], [16, 16])
    np.testing.assert_array_equal(load.layers[0].wq, model.layers[0].wq)
    np.testing.assert_array_equal(load.layers[1].fc2, model.layers[1].fc2)


def test_quantized_layers_match_fake_quant(model):
    load = load_stage_weights(model, [2], [4])
    expected = quantize_dequantize(model.layers[2].wq, 4)
    np.testing.assert_allclose(load.layers[0].wq, expected, atol=1e-12)
    # biases and layer norms untouched
    np.testing.assert_array_equal(load.layers[0].bq, model.layers[2].bq)
    np.testing.assert_array_equal(load.layers[0].ln1_g, model.layers[2].ln1_g)


def test_packed_bytes_scale_with_bits(model, tiny8l):
    fp16 = load_stage_weights(model, [0], [16]).packed_weight_bytes
    int4 = load_stage_weights(model, [0], [4]).packed_weight_bytes
    linear = tiny8l.layer_shape.linear_params
    assert fp16 == linear * 2
    # 4-bit packs two weights per byte + per-channel scales
    assert int4 < fp16 / 3
    assert int4 > linear / 2


def test_load_validation(model):
    with pytest.raises(ValueError, match="per layer"):
        load_stage_weights(model, [0, 1], [16])


def test_module_granularity_slashes_host_dram(tiny8l):
    shard = simulate_loading(tiny8l, [4] * 4, granularity="shard")
    module = simulate_loading(tiny8l, [4] * 4, granularity="module")
    layer = simulate_loading(tiny8l, [4] * 4, granularity="layer")
    # the plugin's headline: module-level decoupling bounds DRAM
    assert module.peak_host_dram_bytes < layer.peak_host_dram_bytes
    assert layer.peak_host_dram_bytes < shard.peak_host_dram_bytes
    assert module.num_chunks == 4 * 6
    assert shard.num_chunks == 1


def test_overlap_keeps_total_time_close_to_bottleneck(tiny8l):
    module = simulate_loading(tiny8l, [4] * 8, granularity="module")
    shard = simulate_loading(tiny8l, [4] * 8, granularity="shard")
    # overlap means fine granularity costs barely more than one big read
    assert module.total_seconds < shard.total_seconds * 1.3


def test_unknown_granularity(tiny8l):
    with pytest.raises(ValueError, match="granularity"):
        simulate_loading(tiny8l, [4], granularity="tensor")


def test_quantized_output_bytes_smaller(tiny8l):
    t16 = simulate_loading(tiny8l, [16] * 4, granularity="module")
    t4 = simulate_loading(tiny8l, [4] * 4, granularity="module")
    # disk reads identical (FP16 checkpoint), but the copy stage shrinks
    assert t4.total_seconds <= t16.total_seconds
