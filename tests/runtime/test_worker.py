"""Unit tests for the stage worker in isolation."""

import queue

import numpy as np
import pytest

from repro.models import TinyDecoderLM, get_model
from repro.runtime.loader import load_stage_weights
from repro.runtime.messages import ActivationMessage, MergeMessage, ShutdownMessage
from repro.runtime.worker import StageWorker


@pytest.fixture()
def worker_env(tiny4l):
    model = TinyDecoderLM(tiny4l, seed=4)
    load = load_stage_weights(model, [0, 1], [16, 16])
    inbound, outbound = queue.Queue(), queue.Queue()
    w = StageWorker(0, tiny4l, load, inbound, outbound)
    w.start()
    yield model, w, inbound, outbound
    inbound.put(ShutdownMessage())
    w.join(timeout=5.0)


def test_worker_processes_prefill(worker_env, tiny4l):
    model, w, inbound, outbound = worker_env
    x = np.random.default_rng(0).normal(size=(2, 6, tiny4l.hidden_size))
    inbound.put(ActivationMessage(0, "prefill", 0, x, reserve=3))
    out = outbound.get(timeout=5.0)
    assert isinstance(out, ActivationMessage)
    assert out.hidden.shape == x.shape
    assert not np.array_equal(out.hidden, x)  # something was computed
    assert w.kv.get(0).length == 6


def test_worker_decode_continues_cache(worker_env, tiny4l):
    model, w, inbound, outbound = worker_env
    rng = np.random.default_rng(1)
    x = rng.normal(size=(1, 4, tiny4l.hidden_size))
    inbound.put(ActivationMessage(7, "prefill", 0, x, reserve=2))
    outbound.get(timeout=5.0)
    step = rng.normal(size=(1, 1, tiny4l.hidden_size))
    inbound.put(ActivationMessage(7, "decode", 4, step))
    out = outbound.get(timeout=5.0)
    assert out.hidden.shape == (1, 1, tiny4l.hidden_size)
    assert w.kv.get(7).length == 5


def test_worker_merge_forwarded(worker_env, tiny4l):
    model, w, inbound, outbound = worker_env
    rng = np.random.default_rng(2)
    for uid in (0, 1):
        inbound.put(
            ActivationMessage(uid, "prefill", 0,
                              rng.normal(size=(1, 3, tiny4l.hidden_size)),
                              reserve=1)
        )
        outbound.get(timeout=5.0)
    inbound.put(MergeMessage(group_id=100, member_ids=(0, 1)))
    ack = outbound.get(timeout=5.0)
    assert isinstance(ack, MergeMessage)
    assert w.kv.get(100).k.shape[1] == 2  # merged batch


def test_worker_shutdown_propagates(tiny4l):
    model = TinyDecoderLM(tiny4l, seed=5)
    load = load_stage_weights(model, [0], [16])
    inbound, outbound = queue.Queue(), queue.Queue()
    w = StageWorker(0, tiny4l, load, inbound, outbound)
    w.start()
    inbound.put(ShutdownMessage())
    out = outbound.get(timeout=5.0)
    assert isinstance(out, ShutdownMessage)
    w.join(timeout=5.0)
    assert not w.is_alive()


def test_worker_error_surfaces(tiny4l):
    """A malformed message must not hang the pipeline: the worker stores
    the error and emits a FailureMessage so the master can fail fast."""
    from repro.runtime.messages import FailureMessage

    model = TinyDecoderLM(tiny4l, seed=6)
    load = load_stage_weights(model, [0], [16])
    inbound, outbound = queue.Queue(), queue.Queue()
    w = StageWorker(0, tiny4l, load, inbound, outbound)
    w.start()
    # decode for a cache that was never allocated -> KeyError inside
    bad = ActivationMessage(99, "decode", 4,
                            np.zeros((1, 1, tiny4l.hidden_size)))
    inbound.put(bad)
    out = outbound.get(timeout=5.0)
    assert isinstance(out, FailureMessage)
    assert out.stage_idx == 0
    assert "99" in out.error
    w.join(timeout=5.0)
    assert isinstance(w.error, KeyError)


def test_worker_forwards_failure_messages(worker_env, tiny4l):
    """Downstream stages relay a FailureMessage toward the master."""
    from repro.runtime.messages import FailureMessage

    model, w, inbound, outbound = worker_env
    inbound.put(FailureMessage(stage_idx=3, error="KeyError('x')"))
    out = outbound.get(timeout=5.0)
    assert isinstance(out, FailureMessage)
    assert out.stage_idx == 3


def test_worker_error_reported_to_control(tiny4l):
    """A crash raises the shared abort flag so upstream stages unwind too."""
    from repro.runtime.engine import PipelineControl

    model = TinyDecoderLM(tiny4l, seed=6)
    load = load_stage_weights(model, [0], [16])
    inbound, outbound = queue.Queue(), queue.Queue()
    control = PipelineControl()
    w = StageWorker(0, tiny4l, load, inbound, outbound, control=control)
    w.start()
    inbound.put(ActivationMessage(99, "decode", 4,
                                  np.zeros((1, 1, tiny4l.hidden_size))))
    outbound.get(timeout=5.0)
    w.join(timeout=5.0)
    assert control.aborted()
    assert control.failure is not None
    assert control.failure[0] == 0


def test_worker_heartbeat_advances(worker_env):
    """The idle poll loop keeps refreshing the worker's heartbeat."""
    import time

    model, w, inbound, outbound = worker_env
    h0 = w.heartbeat
    time.sleep(0.2)
    assert w.heartbeat > h0


def test_worker_stop_joins(tiny4l):
    """stop() shuts the worker down promptly without leaking the thread."""
    model = TinyDecoderLM(tiny4l, seed=7)
    load = load_stage_weights(model, [0], [16])
    inbound, outbound = queue.Queue(), queue.Queue()
    w = StageWorker(0, tiny4l, load, inbound, outbound)
    w.start()
    w.stop(timeout=5.0)
    assert not w.is_alive()
