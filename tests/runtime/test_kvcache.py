"""Unit tests for the per-stage KV manager."""

import numpy as np
import pytest

from repro.runtime import StageKVManager


@pytest.fixture()
def mgr():
    return StageKVManager(num_layers=2, hidden_size=8)


def test_allocate_shapes_and_ledger(mgr):
    c = mgr.allocate(0, batch=3, max_len=10)
    assert c.k.shape == (2, 3, 10, 8)
    expected = 2 * (2 * 3 * 10 * 8 * 8)  # k+v, float64
    assert mgr.current_bytes == expected
    assert mgr.peak_bytes == expected


def test_allocate_idempotent(mgr):
    a = mgr.allocate(0, batch=2, max_len=4)
    b = mgr.allocate(0, batch=2, max_len=4)
    assert a is b


def test_get_missing_raises(mgr):
    with pytest.raises(KeyError, match="unit 7"):
        mgr.get(7)


def test_merge_concatenates_and_frees(mgr):
    a = mgr.allocate(0, batch=2, max_len=6)
    b = mgr.allocate(1, batch=2, max_len=6)
    a.k[:] = 1.0
    b.k[:] = 2.0
    a.length = b.length = 3
    merged = mgr.merge(100, (0, 1))
    assert merged.k.shape == (2, 4, 6, 8)
    assert merged.length == 3
    np.testing.assert_array_equal(merged.k[:, :2], 1.0)
    np.testing.assert_array_equal(merged.k[:, 2:], 2.0)
    # members freed
    with pytest.raises(KeyError):
        mgr.get(0)
    assert mgr.get(100) is merged


def test_merge_length_mismatch_rejected(mgr):
    a = mgr.allocate(0, batch=1, max_len=4)
    b = mgr.allocate(1, batch=1, max_len=4)
    a.length, b.length = 2, 3
    with pytest.raises(ValueError, match="different lengths"):
        mgr.merge(100, (0, 1))


def test_peak_tracks_transient_merge_doubling(mgr):
    mgr.allocate(0, batch=2, max_len=4)
    mgr.allocate(1, batch=2, max_len=4)
    before = mgr.current_bytes
    mgr.merge(100, (0, 1))
    # transiently both members + merged existed
    assert mgr.peak_bytes == pytest.approx(2 * before)
    assert mgr.current_bytes == pytest.approx(before)


def test_merge_out_of_order_member_ids_normalized(mgr):
    """Merge must concatenate in ascending unit-id order regardless of
    the order member ids arrive in, so the merged rows stay aligned
    with the master's batch slices."""
    a = mgr.allocate(0, batch=2, max_len=6)
    b = mgr.allocate(1, batch=2, max_len=6)
    a.k[:] = 1.0
    b.k[:] = 2.0
    a.length = b.length = 3
    merged = mgr.merge(100, (1, 0))  # reversed control message
    np.testing.assert_array_equal(merged.k[:, :2], 1.0)  # unit 0 first
    np.testing.assert_array_equal(merged.k[:, 2:], 2.0)


def test_alloc_guard_blocks_allocate():
    calls = []

    def guard(requested):
        calls.append(requested)
        raise MemoryError("denied")

    mgr = StageKVManager(num_layers=2, hidden_size=8, alloc_guard=guard)
    with pytest.raises(MemoryError, match="denied"):
        mgr.allocate(0, batch=3, max_len=10)
    assert calls == [2 * 2 * 3 * 10 * 8 * 8]  # k+v bytes, float64
    assert mgr.current_bytes == 0  # nothing leaked into the ledger
    with pytest.raises(KeyError):
        mgr.get(0)


def test_alloc_guard_blocks_merge_but_keeps_members():
    denied = []

    def guard(requested):
        if denied:
            raise MemoryError("over budget")

    mgr = StageKVManager(num_layers=1, hidden_size=4, alloc_guard=guard)
    mgr.allocate(0, batch=1, max_len=4).length = 2
    mgr.allocate(1, batch=1, max_len=4).length = 2
    denied.append(True)
    with pytest.raises(MemoryError, match="over budget"):
        mgr.merge(100, (0, 1))
    # a denied merge must not have consumed its members
    assert mgr.get(0) is not None and mgr.get(1) is not None
    with pytest.raises(KeyError):
        mgr.get(100)
    denied.clear()
    merged = mgr.merge(100, (0, 1))
    assert merged.k.shape[1] == 2


def test_release_drops_current_bytes_immediately(mgr):
    """Eager retirement: ``release`` must return the freed bytes and the
    live ledger must drop at once, not at end-of-batch ``free_all``."""
    mgr.allocate(0, batch=1, max_len=10)
    mgr.allocate(1, batch=1, max_len=6)
    unit0_bytes = mgr.get(0).k.nbytes + mgr.get(0).v.nbytes
    before = mgr.current_bytes
    freed = mgr.release(0)
    assert freed == pytest.approx(unit0_bytes)
    assert mgr.current_bytes == pytest.approx(before - freed)
    assert mgr.current_bytes > 0  # the other unit survives
    assert mgr.released_units == 1
    assert mgr.released_bytes == pytest.approx(freed)
    with pytest.raises(KeyError):
        mgr.get(0)


def test_release_idempotent(mgr):
    mgr.allocate(0, batch=1, max_len=4)
    assert mgr.release(0) > 0
    assert mgr.release(0) == 0.0  # already freed
    assert mgr.release(99) == 0.0  # never existed
    assert mgr.released_units == 1


def test_free(mgr):
    mgr.allocate(0, batch=1, max_len=2)
    mgr.free(0)
    assert mgr.current_bytes == 0
    mgr.free(0)  # idempotent
    mgr.allocate(1, batch=1, max_len=2)
    mgr.free_all()
    assert not mgr.caches
