"""Unit tests for the thread-safe micro-batch manager."""

import threading

import pytest

from repro.runtime import MicroBatchManager


def test_prefill_units_cover_batch():
    m = MicroBatchManager(global_batch=10, prefill_microbatch=4, decode_microbatch=8)
    units = m.prefill_units
    assert [u[1] for u in units] == [slice(0, 4), slice(4, 8), slice(8, 10)]
    assert m.num_prefill_microbatches == 3


def test_decode_groups_regroup_units():
    m = MicroBatchManager(global_batch=16, prefill_microbatch=2, decode_microbatch=8)
    groups = m.decode_groups
    assert m.num_decode_groups == 2
    gid, members, sl = groups[0]
    assert gid >= MicroBatchManager.GROUP_ID_BASE
    assert members == (0, 1, 2, 3)
    assert sl == slice(0, 8)


def test_decode_smaller_than_prefill_keeps_units():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=4, decode_microbatch=2)
    # cannot split a cache unit: effective decode group = 1 unit
    assert m.num_decode_groups == m.num_prefill_microbatches


def test_sizes_capped_at_global_batch():
    m = MicroBatchManager(global_batch=4, prefill_microbatch=16, decode_microbatch=64)
    assert m.prefill_microbatch == 4
    assert m.decode_microbatch == 4
    assert m.num_prefill_microbatches == 1


def test_validation():
    with pytest.raises(ValueError):
        MicroBatchManager(0, 1, 1)
    with pytest.raises(ValueError):
        MicroBatchManager(4, 0, 1)


def test_inflight_tracking():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=2, decode_microbatch=4)
    m.mark_inflight(0)
    assert m.inflight_count == 1
    with pytest.raises(ValueError, match="already in flight"):
        m.mark_inflight(0)
    m.mark_done(0)
    assert m.inflight_count == 0


def test_shrink_decode_halves_and_regroups():
    m = MicroBatchManager(global_batch=16, prefill_microbatch=2, decode_microbatch=8)
    assert m.num_decode_groups == 2
    assert m.shrink_decode()
    assert m.decode_microbatch == 4
    assert m.num_decode_groups == 4
    assert m.shrink_decode()
    assert m.decode_microbatch == 2
    assert m.num_decode_groups == 8
    # floor: one prefill unit per group, cannot shrink further
    assert not m.shrink_decode()
    assert m.decode_microbatch == 2


def test_shrink_decode_reissues_group_ids():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=2, decode_microbatch=8)
    m.shrink_decode()
    gids = [g[0] for g in m.decode_groups]
    assert gids == [MicroBatchManager.GROUP_ID_BASE,
                    MicroBatchManager.GROUP_ID_BASE + 1]
    # every unit still covered exactly once, in batch order
    covered = [u for _g, members, _sl in m.decode_groups for u in members]
    assert covered == [u for u, _sl in m.prefill_units]


def test_inflight_ids_snapshot_and_clear():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=2, decode_microbatch=4)
    for uid in (3, 1, 2):
        m.mark_inflight(uid)
    assert m.inflight_ids() == (1, 2, 3)
    m.clear_inflight()
    assert m.inflight_ids() == ()
    m.mark_inflight(1)  # ledger reusable after a pipeline rebuild
    assert m.inflight_count == 1


def test_inflight_thread_safety():
    m = MicroBatchManager(global_batch=64, prefill_microbatch=1, decode_microbatch=1)
    errors = []

    def work(lo, hi):
        try:
            for i in range(lo, hi):
                m.mark_inflight(i)
            for i in range(lo, hi):
                m.mark_done(i)
        except BaseException as e:  # pragma: no cover
            errors.append(e)

    threads = [threading.Thread(target=work, args=(k * 16, (k + 1) * 16)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert m.inflight_count == 0


def test_concurrent_producer_consumer_ledger():
    """A feeder marks units in flight while a collector marks them done
    — the ledger must drain to empty with no error and no lost update."""
    import queue

    m = MicroBatchManager(global_batch=256, prefill_microbatch=1, decode_microbatch=1)
    handoff: "queue.Queue[int]" = queue.Queue()
    errors = []
    N = 256

    def feeder():
        try:
            for uid in range(N):
                m.mark_inflight(uid)
                handoff.put(uid)
        except BaseException as e:  # pragma: no cover
            errors.append(e)

    def collector():
        try:
            for _ in range(N):
                m.mark_done(handoff.get(timeout=5.0))
        except BaseException as e:  # pragma: no cover
            errors.append(e)

    ts = [threading.Thread(target=feeder), threading.Thread(target=collector)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(timeout=10.0)
    assert not errors
    assert m.inflight_count == 0


def test_concurrent_shrink_while_tracking():
    """shrink_decode() racing with ledger traffic must stay consistent:
    groups always partition the batch and the ledger never corrupts."""
    m = MicroBatchManager(global_batch=64, prefill_microbatch=2, decode_microbatch=32)
    errors = []
    stop = threading.Event()

    def churn():
        try:
            uid = 0
            while not stop.is_set():
                m.mark_inflight(uid)
                m.mark_done(uid)
                uid = (uid + 1) % 32
        except BaseException as e:  # pragma: no cover
            errors.append(e)

    t = threading.Thread(target=churn)
    t.start()
    try:
        while m.shrink_decode():
            covered = [u for _g, members, _sl in m.decode_groups for u in members]
            assert sorted(covered) == list(range(32))
    finally:
        stop.set()
        t.join(timeout=5.0)
    assert not errors
    assert m.decode_microbatch == m.prefill_microbatch


# ---------------------------------------------------------------------------
# ContinuousLedger (iteration-level admission accounting)
# ---------------------------------------------------------------------------


def test_ledger_admit_release_refunds_charges():
    import numpy as np

    from repro.runtime import ContinuousLedger

    led = ContinuousLedger(num_stages=2)
    headroom = np.array([100.0, 50.0])
    a = led.admit([60.0, 30.0])
    assert led.inflight_count == 1
    assert not led.fits([60.0, 30.0], headroom)  # second one would overflow
    assert led.fits([40.0, 20.0], headroom)
    b = led.admit([40.0, 20.0])
    assert a != b  # fresh ids, never reused
    np.testing.assert_allclose(led.used_bytes, [100.0, 50.0])
    led.release(a)
    np.testing.assert_allclose(led.used_bytes, [40.0, 20.0])
    assert led.fits([60.0, 30.0], headroom)  # the refund is available now
    led.release(a)  # idempotent
    assert led.released_total == 1
    led.release(b)
    assert led.inflight_count == 0
    assert led.admitted_total == 2 and led.released_total == 2


def test_ledger_validates_inputs():
    import numpy as np

    from repro.runtime import ContinuousLedger

    with pytest.raises(ValueError, match="num_stages"):
        ContinuousLedger(0)
    led = ContinuousLedger(3)
    with pytest.raises(ValueError, match="shape"):
        led.admit(np.array([1.0, 2.0]))  # wrong stage count
