"""Unit tests for the thread-safe micro-batch manager."""

import threading

import pytest

from repro.runtime import MicroBatchManager


def test_prefill_units_cover_batch():
    m = MicroBatchManager(global_batch=10, prefill_microbatch=4, decode_microbatch=8)
    units = m.prefill_units
    assert [u[1] for u in units] == [slice(0, 4), slice(4, 8), slice(8, 10)]
    assert m.num_prefill_microbatches == 3


def test_decode_groups_regroup_units():
    m = MicroBatchManager(global_batch=16, prefill_microbatch=2, decode_microbatch=8)
    groups = m.decode_groups
    assert m.num_decode_groups == 2
    gid, members, sl = groups[0]
    assert gid >= MicroBatchManager.GROUP_ID_BASE
    assert members == (0, 1, 2, 3)
    assert sl == slice(0, 8)


def test_decode_smaller_than_prefill_keeps_units():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=4, decode_microbatch=2)
    # cannot split a cache unit: effective decode group = 1 unit
    assert m.num_decode_groups == m.num_prefill_microbatches


def test_sizes_capped_at_global_batch():
    m = MicroBatchManager(global_batch=4, prefill_microbatch=16, decode_microbatch=64)
    assert m.prefill_microbatch == 4
    assert m.decode_microbatch == 4
    assert m.num_prefill_microbatches == 1


def test_validation():
    with pytest.raises(ValueError):
        MicroBatchManager(0, 1, 1)
    with pytest.raises(ValueError):
        MicroBatchManager(4, 0, 1)


def test_inflight_tracking():
    m = MicroBatchManager(global_batch=8, prefill_microbatch=2, decode_microbatch=4)
    m.mark_inflight(0)
    assert m.inflight_count == 1
    with pytest.raises(ValueError, match="already in flight"):
        m.mark_inflight(0)
    m.mark_done(0)
    assert m.inflight_count == 0


def test_inflight_thread_safety():
    m = MicroBatchManager(global_batch=64, prefill_microbatch=1, decode_microbatch=1)
    errors = []

    def work(lo, hi):
        try:
            for i in range(lo, hi):
                m.mark_inflight(i)
            for i in range(lo, hi):
                m.mark_done(i)
        except BaseException as e:  # pragma: no cover
            errors.append(e)

    threads = [threading.Thread(target=work, args=(k * 16, (k + 1) * 16)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert m.inflight_count == 0
