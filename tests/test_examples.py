"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed
end-to-end (the planner-heavy ones are exercised by the benchmarks and
would slow the unit suite down).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))
FAST = {"quantization_study.py", "tiny_runtime_demo.py"}


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.name in FAST], ids=lambda p: p.name
)
def test_fast_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
