"""Property-based invariants across the serving stack (hypothesis).

These pin down the monotone structure every component must respect; a
regression in any cost/simulation path that breaks monotonicity would
silently corrupt the planner's decisions, so they are tested directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan, StagePlan
from repro.cost.memory import stage_memory
from repro.hardware import Device, get_gpu, make_cluster
from repro.models import get_model
from repro.sim.kernels import layer_exec_time
from repro.sim.pipeline import simulate_pipeline
from repro.workload import Workload

CFG = get_model("opt-13b")
GPUS = ("T4-16G", "V100-32G", "A100-40G", "P100-12G")


@settings(max_examples=30, deadline=None)
@given(
    gpu=st.sampled_from(GPUS),
    bits=st.sampled_from([3, 4, 8, 16]),
    batch=st.integers(1, 16),
    s=st.integers(16, 1024),
)
def test_layer_time_monotone_in_batch_and_seq(gpu, bits, batch, s):
    spec = get_gpu(gpu)
    t = layer_exec_time(spec, CFG, bits, batch, s, s)
    assert t > 0
    assert layer_exec_time(spec, CFG, bits, batch + 1, s, s) >= t
    assert layer_exec_time(spec, CFG, bits, batch, s + 16, s + 16) >= t


@settings(max_examples=30, deadline=None)
@given(
    bits=st.sampled_from([3, 4, 8, 16]),
    n_layers=st.integers(1, 12),
    batch=st.integers(1, 32),
)
def test_stage_memory_monotone(bits, n_layers, batch):
    kw = dict(
        prompt_len=256, gen_len=32,
        prefill_microbatch=min(4, batch), decode_microbatch=min(4, batch),
        is_first=False, is_last=False,
    )
    base = stage_memory(CFG, [bits] * n_layers, global_batch=batch, **kw)
    more_layers = stage_memory(CFG, [bits] * (n_layers + 1), global_batch=batch, **kw)
    more_batch = stage_memory(CFG, [bits] * n_layers, global_batch=batch + 1, **kw)
    assert more_layers.total > base.total
    assert more_batch.total > base.total
    if bits < 16:
        hi = stage_memory(CFG, [16] * n_layers, global_batch=batch, **kw)
        assert hi.weights > base.weights


@settings(max_examples=15, deadline=None)
@given(
    split=st.integers(5, 35),
    bits=st.sampled_from([4, 8]),
    mb=st.sampled_from([2, 4, 8]),
)
def test_pipeline_latency_positive_and_balanced_is_better(split, bits, mb):
    """For any 2-way split, the balanced partition's bottleneck is no
    worse than the unbalanced one's on identical devices."""
    cl = make_cluster([("A800-80G", 2)])
    w = Workload(prompt_len=128, gen_len=8, global_batch=8)
    devs = list(cl.devices)

    def plan(a):
        return ExecutionPlan(
            model_name="opt-13b",
            stages=(
                StagePlan(devs[0], (bits,) * a),
                StagePlan(devs[1], (bits,) * (40 - a)),
            ),
            prefill_microbatch=mb, decode_microbatch=mb, workload=w,
        )

    res = simulate_pipeline(plan(split), cl)
    balanced = simulate_pipeline(plan(20), cl)
    assert res.total_latency > 0
    assert balanced.total_latency <= res.total_latency + 1e-9


@settings(max_examples=10, deadline=None)
@given(gen=st.integers(2, 64))
def test_latency_monotone_in_generation_length(gen):
    cl = make_cluster([("A800-80G", 1)])
    w1 = Workload(prompt_len=64, gen_len=gen, global_batch=4)
    w2 = Workload(prompt_len=64, gen_len=gen + 1, global_batch=4)
    p1 = ExecutionPlan.uniform("opt-13b", cl.devices, w1, bits=8)
    p2 = ExecutionPlan.uniform("opt-13b", cl.devices, w2, bits=8)
    assert (
        simulate_pipeline(p2, cl).total_latency
        > simulate_pipeline(p1, cl).total_latency
    )
