"""Unit tests for the consolidated report generator."""

import json

from repro.bench.report import build_report, load_results, write_report


def _seed_results(d):
    (d / "table4_cluster1.json").write_text(
        json.dumps([{"scheme": "LLM-PQ", "throughput": 1.0}])
    )
    (d / "table5_gain_comparison.json").write_text(
        json.dumps({"hetero": 1.8, "homo": 1.5})
    )
    (d / "custom_extra.json").write_text(json.dumps([{"x": 1}]))
    (d / "broken.json").write_text("{not json")


def test_load_results_skips_broken(tmp_path):
    _seed_results(tmp_path)
    res = load_results(tmp_path)
    assert set(res) == {"table4_cluster1", "table5_gain_comparison", "custom_extra"}


def test_build_report_sections(tmp_path):
    _seed_results(tmp_path)
    text = build_report(tmp_path)
    assert "# LLM-PQ reproduction" in text
    assert "Table 4 — cluster 1" in text
    assert "hetero vs homo gain" in text
    assert "custom_extra" in text  # unknown stems still rendered
    assert "LLM-PQ" in text


def test_write_report(tmp_path):
    _seed_results(tmp_path)
    out = write_report(tmp_path / "report.md", tmp_path)
    assert out.exists()
    assert out.read_text().startswith("# LLM-PQ")


def test_empty_results_dir(tmp_path):
    text = build_report(tmp_path / "nonexistent")
    assert "0 result files" in text


def test_report_on_real_results():
    """Against whatever the benchmarks have actually produced."""
    text = build_report()
    assert text.startswith("# LLM-PQ")
