"""Unit tests for the regression latency model (Sec. 4.1 / Fig. 7)."""

import numpy as np
import pytest

from repro.cost import LatencyModel, LatencySample, features_for
from repro.hardware import get_gpu
from repro.sim.kernels import layer_exec_time


def test_fidelity_under_six_percent(latmodel_cluster3, opt30b):
    """The paper's Fig.-7 claim: average latency error < 6% on unseen
    workloads (different batch sizes / context lengths than profiled)."""
    errs = []
    for gpu_name in ("T4-16G", "V100-32G"):
        gpu = get_gpu(gpu_name)
        for bits in (3, 4, 8, 16):
            for b, s in ((3, 384), (5, 768), (7, 640)):
                pred = latmodel_cluster3.predict_layer(gpu, bits, "prefill", b, s, s)
                true = layer_exec_time(gpu, opt30b, bits, b, s, s)
                errs.append(abs(pred - true) / true)
                pred = latmodel_cluster3.predict_layer(gpu, bits, "decode", b, 1, s)
                true = layer_exec_time(gpu, opt30b, bits, b, 1, s)
                errs.append(abs(pred - true) / true)
    assert float(np.mean(errs)) < 0.06


def test_predict_layers_sums(latmodel_cluster3):
    one = latmodel_cluster3.predict_layer("T4-16G", 8, "prefill", 4, 512, 512)
    many = latmodel_cluster3.predict_layers("T4-16G", [8, 8, 8], "prefill", 4, 512, 512)
    assert many == pytest.approx(3 * one)


def test_decode_step_times_vectorized(latmodel_cluster3):
    ctxs = np.array([512, 600, 700])
    vec = latmodel_cluster3.decode_step_times("V100-32G", 4, 8, ctxs)
    for c, v in zip(ctxs, vec):
        assert v == pytest.approx(
            latmodel_cluster3.predict_layer("V100-32G", 4, "decode", 8, 1, int(c))
        )
    # decode time grows with context (KV reads)
    assert vec[2] > vec[0]


def test_decode_step_times_matches_per_context_loop_exactly(latmodel_cluster3):
    """The analytic feature stack must be bitwise-equal to looping
    features_for over contexts — same rows, same matmul, zero drift."""
    m = latmodel_cluster3
    for gpu in ("T4-16G", "V100-32G"):
        for bits in (3, 4, 8, 16):
            for batch in (1, 3, 16):
                # non-integer contexts exercise the int-truncation semantics
                ctxs = np.array([77.0, 128.0, 129.7, 512.0, 1024.0])
                beta = m.coef[(gpu, bits, "decode")]
                loop = np.stack(
                    [features_for(m.cfg, bits, batch, 1, int(c)) for c in ctxs]
                ) @ beta
                vec = m.decode_step_times(gpu, bits, batch, ctxs)
                assert np.array_equal(vec, loop)


def test_unknown_gpu_raises(latmodel_cluster3):
    with pytest.raises(KeyError, match="profiled GPUs"):
        latmodel_cluster3.predict_layer("A100-40G", 8, "prefill", 4, 512, 512)


def test_fit_requires_samples(opt30b):
    with pytest.raises(ValueError, match="no samples"):
        LatencyModel(opt30b).fit([])
    few = [
        LatencySample("T4-16G", 8, "prefill", 1, 64, 64, 0.01),
        LatencySample("T4-16G", 8, "prefill", 2, 64, 64, 0.02),
    ]
    with pytest.raises(ValueError, match=">=3 samples"):
        LatencyModel(opt30b).fit(few)


def test_coefficients_nonnegative(latmodel_cluster3):
    for beta in latmodel_cluster3.coef.values():
        assert np.all(beta >= 0)


def test_features_shape(opt30b):
    f = features_for(opt30b, 8, 4, 512, 512)
    assert f.shape == (3,)
    assert f[0] == opt30b.layer_flops(4, 512, 512)
    assert f[2] == 1.0


def test_residual_diagnostics(latmodel_cluster3):
    assert latmodel_cluster3.max_relative_residual() < 0.25
    assert len(latmodel_cluster3.residual_stats) == 2 * 4 * 2  # gpus x bits x phases
