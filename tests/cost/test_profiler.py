"""Unit tests for the device profiler."""

import numpy as np
import pytest

from repro.cost import ProfileGrid, build_latency_model, profile_cluster, profile_device


def test_sample_count_matches_grid(opt13b):
    grid = ProfileGrid(batches=(1, 2), prompt_lens=(64, 128), decode_contexts=(128,), bits=(8, 16))
    samples = profile_device("T4-16G", opt13b, grid=grid)
    # per bits: 2 batches x (2 prefill + 1 decode) = 6; x2 bits = 12
    assert len(samples) == 12
    phases = {s.phase for s in samples}
    assert phases == {"prefill", "decode"}


def test_profiler_deterministic_by_seed(opt13b):
    grid = ProfileGrid(batches=(2,), prompt_lens=(128,), decode_contexts=(128,), bits=(8,))
    a = profile_device("T4-16G", opt13b, grid=grid, seed=1)
    b = profile_device("T4-16G", opt13b, grid=grid, seed=1)
    c = profile_device("T4-16G", opt13b, grid=grid, seed=2)
    assert [s.seconds for s in a] == [s.seconds for s in b]
    assert [s.seconds for s in a] != [s.seconds for s in c]


def test_noise_jitters_measurements(opt13b):
    quiet = ProfileGrid(batches=(2,), prompt_lens=(128,), decode_contexts=(128,), bits=(8,), noise=0.0)
    noisy = ProfileGrid(batches=(2,), prompt_lens=(128,), decode_contexts=(128,), bits=(8,), noise=0.05)
    a = profile_device("T4-16G", opt13b, grid=quiet)
    b = profile_device("T4-16G", opt13b, grid=noisy, seed=3)
    # same workload, different values due to jitter
    assert a[0].seconds != b[0].seconds
    assert b[0].seconds == pytest.approx(a[0].seconds, rel=0.25)


def test_profile_cluster_dedups_types(opt13b):
    grid = ProfileGrid(batches=(2,), prompt_lens=(128,), decode_contexts=(128,), bits=(8,))
    samples = profile_cluster(["T4-16G", "T4-16G", "V100-32G"], opt13b, grid=grid)
    gpus = {s.gpu_name for s in samples}
    assert gpus == {"T4-16G", "V100-32G"}
    # per type: 1 prefill + 1 decode sample
    assert len(samples) == 2 * 2


def test_build_latency_model_end_to_end(opt13b):
    model = build_latency_model(["T4-16G"], opt13b)
    t = model.predict_layer("T4-16G", 8, "prefill", 4, 256, 256)
    assert t > 0
