"""Unit tests for the analytical memory model (Sec. 4.1)."""

import pytest

from repro.cost import (
    FRAMEWORK_OVERHEAD_BYTES,
    embedding_bytes,
    kv_cache_bytes,
    logits_workspace_bytes,
    stage_memory,
    temp_bytes_decode,
    temp_bytes_prefill,
    weight_bytes,
)


def test_weight_bytes_sum(opt13b):
    per_layer_16 = opt13b.layer_weight_bytes(16)
    assert weight_bytes(opt13b, [16, 16]) == pytest.approx(2 * per_layer_16)
    assert weight_bytes(opt13b, []) == 0.0
    assert weight_bytes(opt13b, [4]) < per_layer_16


def test_kv_cache_scales_linearly(opt13b):
    base = kv_cache_bytes(opt13b, 10, 32, 612)
    assert kv_cache_bytes(opt13b, 20, 32, 612) == pytest.approx(2 * base)
    assert kv_cache_bytes(opt13b, 10, 64, 612) == pytest.approx(2 * base)
    assert kv_cache_bytes(opt13b, 10, 32, 1224) == pytest.approx(2 * base)
    # 8-bit KV halves the bytes
    assert kv_cache_bytes(opt13b, 10, 32, 612, kv_bits=8) == pytest.approx(base / 2)


def test_kv_cache_magnitude_opt13b(opt13b):
    """OPT-13b, b=32, len 612: 2*5120*2 B/token/layer * 40 layers."""
    total = kv_cache_bytes(opt13b, opt13b.num_layers, 32, 612)
    expected = 40 * 32 * 612 * 2 * 5120 * 2
    assert total == pytest.approx(expected)
    assert 14e9 < total < 18e9  # ~16 GB: why KV dominates cluster memory


def test_temp_memory_prefill_exceeds_decode(opt13b):
    pre = temp_bytes_prefill(opt13b, 8, 512)
    dec = temp_bytes_decode(opt13b, 8, 612)
    assert pre > dec  # s x s attention scores vs 1 x ctx


def test_stage_memory_composition(opt13b):
    mem = stage_memory(
        opt13b, [16] * 10,
        global_batch=32, prompt_len=512, gen_len=100,
        prefill_microbatch=8, decode_microbatch=8,
        is_first=True, is_last=False,
    )
    assert mem.total == pytest.approx(
        mem.weights + mem.kv_cache + mem.embedding + mem.temp
    )
    assert mem.weights == pytest.approx(weight_bytes(opt13b, [16] * 10))
    assert mem.embedding == pytest.approx(embedding_bytes(opt13b))


def test_embedding_charged_to_edges_only(opt13b):
    kw = dict(
        global_batch=32, prompt_len=512, gen_len=100,
        prefill_microbatch=8, decode_microbatch=8,
    )
    first = stage_memory(opt13b, [16] * 5, is_first=True, is_last=False, **kw)
    mid = stage_memory(opt13b, [16] * 5, is_first=False, is_last=False, **kw)
    last = stage_memory(opt13b, [16] * 5, is_first=False, is_last=True, **kw)
    assert first.embedding > 0
    assert mid.embedding == 0
    assert last.embedding > 0  # untied copy for the logits projection
    assert last.temp > mid.temp  # logits workspace


def test_single_stage_shares_embedding(opt13b):
    """First == last stage: one embedding table serves both ends."""
    both = stage_memory(
        opt13b, [16] * 5,
        global_batch=32, prompt_len=512, gen_len=100,
        prefill_microbatch=8, decode_microbatch=8,
        is_first=True, is_last=True,
    )
    assert both.embedding == pytest.approx(embedding_bytes(opt13b))


def test_fits_accounts_for_framework_overhead(opt13b):
    mem = stage_memory(
        opt13b, [16],
        global_batch=1, prompt_len=8, gen_len=2,
        prefill_microbatch=1, decode_microbatch=1,
        is_first=False, is_last=False,
    )
    assert mem.fits(mem.total + FRAMEWORK_OVERHEAD_BYTES + 1)
    assert not mem.fits(mem.total + FRAMEWORK_OVERHEAD_BYTES - 1)


def test_smaller_prefill_microbatch_reduces_peak(opt13b):
    """The cluster-1 effect: micro-batch sizing shrinks temp memory."""
    kw = dict(global_batch=32, prompt_len=512, gen_len=100,
              decode_microbatch=8, is_first=False, is_last=False)
    big = stage_memory(opt13b, [8] * 40, prefill_microbatch=32, **kw)
    small = stage_memory(opt13b, [8] * 40, prefill_microbatch=1, **kw)
    assert small.total < big.total


def test_logits_workspace(opt13b):
    assert logits_workspace_bytes(opt13b, 4, 1) == 4 * opt13b.vocab_size * 2


def test_dequant_cache_layer_bytes(opt13b):
    from repro.cost import dequant_cache_bytes, dequant_cache_layer_bytes

    h = opt13b.hidden_size
    fused = (3 * h * h + 3 * h) * 8.0
    # FP16 layers cache only the fused QKV copy (floats already resident)
    assert dequant_cache_layer_bytes(opt13b, 16) == pytest.approx(fused)
    # quantized layers additionally cache every operator's dense W_hat
    quant = dequant_cache_layer_bytes(opt13b, 4)
    assert quant == pytest.approx(opt13b.layer_shape.linear_params * 8.0 + fused)
    assert dequant_cache_bytes(opt13b, [4, 16]) == pytest.approx(quant + fused)


def test_dequant_cache_budget_is_capacity_slack(opt13b):
    from repro.cost import dequant_cache_budget

    base = stage_memory(
        opt13b, [4] * 10,
        global_batch=8, prompt_len=128, gen_len=32,
        prefill_microbatch=4, decode_microbatch=4,
        is_first=False, is_last=False,
    )
    capacity = base.total + FRAMEWORK_OVERHEAD_BYTES + 1000.0
    assert dequant_cache_budget(base, capacity) == pytest.approx(1000.0)
    # a stage at (or past) its cap gets no cache at all
    assert dequant_cache_budget(base, base.total) == 0.0
    # want_bytes caps the budget at what a full cache would use
    assert dequant_cache_budget(base, capacity, want_bytes=400.0) == 400.0


def test_stage_memory_charges_dequant_cache(opt13b):
    kw = dict(global_batch=8, prompt_len=128, gen_len=32,
              prefill_microbatch=4, decode_microbatch=4,
              is_first=False, is_last=False)
    plain = stage_memory(opt13b, [4] * 10, **kw)
    cached = stage_memory(opt13b, [4] * 10, dequant_cache_budget_bytes=1e9, **kw)
    assert plain.dequant_cache == 0.0
    assert cached.dequant_cache == pytest.approx(1e9)
    assert cached.total == pytest.approx(plain.total + 1e9)
