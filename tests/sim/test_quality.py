"""Unit tests for the quality surrogate and real tiny-model measurements."""

import numpy as np
import pytest

from repro.models import get_model
from repro.sim.quality import (
    QUALITY_ANCHORS,
    QualityAnchors,
    QualityModel,
    measure_kl_tiny,
    plan_accuracy,
    plan_perplexity,
)


def _uniform(model_name, bits):
    L = get_model(model_name).num_layers
    return [bits] * L


def test_uniform_plans_reproduce_paper_anchors():
    a = QUALITY_ANCHORS["opt-30b"]
    assert plan_perplexity("opt-30b", _uniform("opt-30b", 16)) == pytest.approx(a.ppl_fp16)
    assert plan_perplexity("opt-30b", _uniform("opt-30b", 8)) == pytest.approx(a.ppl_by_bits[8])
    assert plan_perplexity("opt-30b", _uniform("opt-30b", 4)) == pytest.approx(a.ppl_by_bits[4])


def test_mixed_between_endpoints():
    L = get_model("opt-13b").num_layers
    mixed = [4] * (L // 2) + [16] * (L - L // 2)
    ppl = plan_perplexity("opt-13b", mixed)
    lo = plan_perplexity("opt-13b", _uniform("opt-13b", 16))
    hi = plan_perplexity("opt-13b", _uniform("opt-13b", 4))
    assert lo < ppl < hi


def test_ppl_monotone_in_bits():
    vals = [plan_perplexity("opt-66b", _uniform("opt-66b", b)) for b in (16, 8, 4, 3)]
    assert vals == sorted(vals)


def test_later_layers_cost_more():
    """Table-1 structure: quantizing late layers hurts more than early."""
    L = get_model("opt-1.3b").num_layers
    early = [4] * (L // 3) + [16] * (L - L // 3)
    late = [16] * (L - L // 3) + [4] * (L // 3)
    assert plan_perplexity("opt-1.3b", late) > plan_perplexity("opt-1.3b", early)


def test_extrapolation_for_missing_anchor():
    anchors = QualityAnchors(ppl_fp16=10.0, ppl_by_bits={4: 10.5})
    # 3-bit should extrapolate worse than 4-bit via the (qmax ratio)^2 law
    assert anchors.ppl_delta(3) > anchors.ppl_delta(4)
    assert anchors.ppl_delta(8) < anchors.ppl_delta(4)
    assert anchors.ppl_delta(16) == 0.0


def test_accuracy_path():
    L = get_model("opt-1.3b").num_layers
    acc16 = plan_accuracy("opt-1.3b", _uniform("opt-1.3b", 16))
    acc4 = plan_accuracy("opt-1.3b", _uniform("opt-1.3b", 4))
    assert acc16 == pytest.approx(63.5)
    assert acc4 == pytest.approx(61.0)
    # models without accuracy anchors return None
    assert plan_accuracy("opt-30b", _uniform("opt-30b", 16)) is None


def test_quality_model_validation():
    with pytest.raises(KeyError, match="anchors"):
        QualityModel("tiny-4l")
    with pytest.raises(ValueError, match="per layer"):
        plan_perplexity("opt-13b", [16] * 3)


def test_measured_kl_monotone_in_bits(tiny4l):
    L = tiny4l.num_layers
    kls = [measure_kl_tiny("tiny-4l", [b] * L) for b in (16, 8, 4, 3)]
    assert kls[0] == pytest.approx(0.0, abs=1e-12)
    assert kls[0] < kls[1] < kls[2] < kls[3]


def test_measured_kl_mixed_between_endpoints(tiny4l):
    L = tiny4l.num_layers
    kl_mixed = measure_kl_tiny("tiny-4l", [4] * (L // 2) + [16] * (L - L // 2))
    kl_16 = measure_kl_tiny("tiny-4l", [16] * L)
    kl_4 = measure_kl_tiny("tiny-4l", [4] * L)
    assert kl_16 < kl_mixed < kl_4


def test_surrogate_and_measurement_agree_on_ordering(tiny4l):
    """The surrogate's rank order across plans must match real KL on the
    tiny model: fp16 < mixed < uniform-4bit < uniform-3bit."""
    L = tiny4l.num_layers
    plans = [
        [16] * L,
        [8] * L,
        [4] * L,
        [3] * L,
    ]
    kls = [measure_kl_tiny("tiny-4l", p) for p in plans]
    assert kls == sorted(kls)
