"""Validation: event-driven pipeline schedule vs the closed-form model."""

import pytest

from repro.core.plan import ExecutionPlan
from repro.hardware import make_cluster, paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.sim.pipeline_des import simulate_pipeline_des
from repro.workload import Workload


@pytest.fixture(scope="module")
def small_w():
    return Workload(prompt_len=512, gen_len=20, global_batch=16)


def test_des_close_to_analytic(cluster3, small_w):
    """The closed form uses per-token barriers, so it upper-bounds the
    event-driven makespan and stays within ~15% of it."""
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    ana = simulate_pipeline(plan, cluster3).total_latency
    des = simulate_pipeline_des(plan, cluster3).total_latency
    assert des <= ana * 1.001
    assert ana <= des * 1.25


def test_des_exact_for_single_stage_single_microbatch():
    """No pipelining at all: DES and closed form must agree exactly."""
    cl = make_cluster([("A800-80G", 1)])
    w = Workload(prompt_len=128, gen_len=4, global_batch=2)
    plan = ExecutionPlan.uniform(
        "opt-13b", cl.devices, w, bits=8,
        prefill_microbatch=2, decode_microbatch=2,
    )
    ana = simulate_pipeline(plan, cl).total_latency
    des = simulate_pipeline_des(plan, cl).total_latency
    assert des == pytest.approx(ana, rel=1e-9)


def test_des_task_count(cluster3, small_w):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    res = simulate_pipeline_des(plan, cluster3)
    m_p, m_d, S = 4, 2, 4
    expected = m_p * S + m_d * small_w.decode_passes * S
    assert res.num_tasks == expected


def test_des_utilization_bounded(cluster3, small_w):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    res = simulate_pipeline_des(plan, cluster3)
    for j in range(4):
        u = res.schedule.utilization(("dev", j))
        assert 0.0 < u <= 1.0


def test_des_more_microbatches_do_not_hurt(cluster3, small_w):
    """Pipelining with more prefill micro-batches shouldn't slow down
    the event-driven schedule by much (bubbles shrink)."""
    coarse = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=16, decode_microbatch=16,
    )
    fine = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=16,
    )
    t_coarse = simulate_pipeline_des(coarse, cluster3).total_latency
    t_fine = simulate_pipeline_des(fine, cluster3).total_latency
    assert t_fine <= t_coarse * 1.05


def test_async_comm_overlap_helps(small_w):
    """With heavy comm, letting transfers ride the link while the sender
    starts its next micro-batch must not slow the pipeline down."""
    from repro.hardware.interconnect import Link
    from repro.sim.pipeline_des import simulate_pipeline_des as des

    slow = Link("slow-backbone", bandwidth=2e9, latency=1e-4)
    cl = make_cluster([("V100-32G", 2), ("V100-32G", 2)], inter_node_link=slow)
    w = Workload(prompt_len=1024, gen_len=4, global_batch=16)
    plan = ExecutionPlan.uniform(
        "opt-13b", cl.devices, w, bits=8,
        prefill_microbatch=2, decode_microbatch=8,
    )
    folded = des(plan, cl).total_latency
    overlapped = des(plan, cl, async_comm=True).total_latency
    assert overlapped <= folded * 1.001


# ---------------------------------------------------------------------------
# Fault-model overlay (mirrors the runtime's recovery semantics)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def faulty_plan(cluster3, small_w):
    return ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )


def test_fault_model_validation():
    from repro.sim.pipeline_des import FaultModel

    with pytest.raises(ValueError):
        FaultModel(mtbf_seconds=0.0)
    with pytest.raises(ValueError):
        FaultModel(mtbf_seconds=10.0, restart_seconds=-1.0)


def test_huge_mtbf_means_no_failures(faulty_plan, cluster3):
    from repro.sim.pipeline_des import FaultModel, simulate_pipeline_des_with_faults

    res = simulate_pipeline_des_with_faults(
        faulty_plan, cluster3, FaultModel(mtbf_seconds=1e12)
    )
    assert res.completed
    assert res.num_failures == 0
    assert res.total_latency == pytest.approx(res.fault_free_latency)
    assert res.recovery_overhead == pytest.approx(0.0)


def test_small_mtbf_inflates_latency(faulty_plan, cluster3):
    from repro.sim.pipeline_des import FaultModel, simulate_pipeline_des_with_faults

    base = simulate_pipeline_des(faulty_plan, cluster3).total_latency
    res = simulate_pipeline_des_with_faults(
        faulty_plan, cluster3,
        FaultModel(mtbf_seconds=base / 2, restart_seconds=1.0,
                   replay_from_start=False),
    )
    assert res.completed
    assert res.num_failures > 0
    assert res.fault_free_latency == pytest.approx(base)
    assert res.total_latency > base
    assert res.downtime_seconds >= res.num_failures * 1.0 - 1e-9
    assert res.recovery_overhead > 0


def test_fault_trace_deterministic_per_seed(faulty_plan, cluster3):
    from repro.sim.pipeline_des import FaultModel, simulate_pipeline_des_with_faults

    base = simulate_pipeline_des(faulty_plan, cluster3).total_latency
    mk = lambda seed: simulate_pipeline_des_with_faults(
        faulty_plan, cluster3,
        FaultModel(mtbf_seconds=base / 3, restart_seconds=0.5, seed=seed,
                   replay_from_start=False),
    )
    a, b, c = mk(1), mk(1), mk(2)
    assert (a.total_latency, a.num_failures) == (b.total_latency, b.num_failures)
    assert (a.total_latency, a.num_failures) != (c.total_latency, c.num_failures)


def test_checkpoint_bound_never_worse_than_replay(faulty_plan, cluster3):
    """Ideal per-step checkpointing (the lower bound) cannot be slower
    than the real runtime's replay-from-start semantics."""
    from repro.sim.pipeline_des import FaultModel, simulate_pipeline_des_with_faults

    base = simulate_pipeline_des(faulty_plan, cluster3).total_latency
    replay = simulate_pipeline_des_with_faults(
        faulty_plan, cluster3,
        FaultModel(mtbf_seconds=2 * base, restart_seconds=1.0, seed=3,
                   replay_from_start=True),
    )
    ckpt = simulate_pipeline_des_with_faults(
        faulty_plan, cluster3,
        FaultModel(mtbf_seconds=2 * base, restart_seconds=1.0, seed=3,
                   replay_from_start=False),
    )
    assert ckpt.total_latency <= replay.total_latency


def test_replay_from_start_can_fail_to_complete(faulty_plan, cluster3):
    """When the MTBF is far below the batch makespan, replay-from-start
    never accumulates a full batch of uptime: the sweep reports that
    honestly instead of looping forever."""
    from repro.sim.pipeline_des import FaultModel, simulate_pipeline_des_with_faults

    base = simulate_pipeline_des(faulty_plan, cluster3).total_latency
    res = simulate_pipeline_des_with_faults(
        faulty_plan, cluster3,
        FaultModel(mtbf_seconds=base / 100, max_failures=50),
    )
    assert not res.completed
    assert res.total_latency == float("inf")


def test_mtbf_sweep_monotone_tail(faulty_plan, cluster3):
    from repro.sim.pipeline_des import mtbf_sweep

    base = simulate_pipeline_des(faulty_plan, cluster3).total_latency
    grid = [base / 2, 10 * base, 1e12]
    results = mtbf_sweep(
        faulty_plan, cluster3, grid, restart_seconds=1.0,
        replay_from_start=False,
    )
    assert len(results) == 3
    # rarer failures -> overhead shrinks to zero at the reliable end
    assert results[-1].recovery_overhead == pytest.approx(0.0)
    assert results[0].recovery_overhead >= results[-1].recovery_overhead


def test_async_comm_shared_fabric_serializes(small_w):
    """Interleaving stages across two nodes makes every boundary cross
    the same node pair: the DES must account all that traffic against a
    single shared link resource."""
    from repro.core.plan import StagePlan
    from repro.sim.comm import activation_bytes
    from repro.sim.pipeline_des import simulate_pipeline_des as des
    from repro.models import get_model

    cl = make_cluster([("V100-32G", 2), ("V100-32G", 2)])
    w = Workload(prompt_len=512, gen_len=3, global_batch=8)
    devs = list(cl.devices)
    interleaved = [devs[0], devs[2], devs[1], devs[3]]  # n0,n1,n0,n1
    stages = tuple(StagePlan(d, (8,) * 10) for d in interleaved)
    plan = ExecutionPlan(
        model_name="opt-13b", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=w,
    )
    res = des(plan, cl, async_comm=True)
    key = ("link", "inter", 0, 1)
    busy = res.schedule.resource_busy.get(key, 0.0)
    # all 4 boundaries share the node pair: every prefill and decode
    # transfer lands on this one resource
    cfg = get_model("opt-13b")
    per_pre = activation_bytes(cfg, 2, 512) / cl.inter_node_link.bandwidth
    # 3 forward boundaries cross the pair x 4 prefill micro-batches, plus
    # the decode-phase transfers on all 4 boundaries
    assert busy > 3 * 4 * per_pre
    assert res.total_latency >= busy


def test_iteration_makespan_identical_units_closed_form():
    """With every unit carrying the same stage-time vector the pipeline
    behaves like GPipe prefill: makespan = sum_j u_j + (m-1) * max_j u_j."""
    import numpy as np
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.sim.pipeline_des import iteration_makespan_des

    @settings(max_examples=50, deadline=None)
    @given(
        stage_times=st.lists(
            st.floats(min_value=1e-6, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=5,
        ),
        m=st.integers(min_value=1, max_value=6),
    )
    def check(stage_times, m):
        u = np.array(stage_times)
        got = iteration_makespan_des([u] * m)
        want = float(u.sum() + (m - 1) * u.max())
        assert got == pytest.approx(want, rel=1e-9)

    check()
