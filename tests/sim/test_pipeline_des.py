"""Validation: event-driven pipeline schedule vs the closed-form model."""

import pytest

from repro.core.plan import ExecutionPlan
from repro.hardware import make_cluster, paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.sim.pipeline_des import simulate_pipeline_des
from repro.workload import Workload


@pytest.fixture(scope="module")
def small_w():
    return Workload(prompt_len=512, gen_len=20, global_batch=16)


def test_des_close_to_analytic(cluster3, small_w):
    """The closed form uses per-token barriers, so it upper-bounds the
    event-driven makespan and stays within ~15% of it."""
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    ana = simulate_pipeline(plan, cluster3).total_latency
    des = simulate_pipeline_des(plan, cluster3).total_latency
    assert des <= ana * 1.001
    assert ana <= des * 1.25


def test_des_exact_for_single_stage_single_microbatch():
    """No pipelining at all: DES and closed form must agree exactly."""
    cl = make_cluster([("A800-80G", 1)])
    w = Workload(prompt_len=128, gen_len=4, global_batch=2)
    plan = ExecutionPlan.uniform(
        "opt-13b", cl.devices, w, bits=8,
        prefill_microbatch=2, decode_microbatch=2,
    )
    ana = simulate_pipeline(plan, cl).total_latency
    des = simulate_pipeline_des(plan, cl).total_latency
    assert des == pytest.approx(ana, rel=1e-9)


def test_des_task_count(cluster3, small_w):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    res = simulate_pipeline_des(plan, cluster3)
    m_p, m_d, S = 4, 2, 4
    expected = m_p * S + m_d * small_w.decode_passes * S
    assert res.num_tasks == expected


def test_des_utilization_bounded(cluster3, small_w):
    plan = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=8,
    )
    res = simulate_pipeline_des(plan, cluster3)
    for j in range(4):
        u = res.schedule.utilization(("dev", j))
        assert 0.0 < u <= 1.0


def test_des_more_microbatches_do_not_hurt(cluster3, small_w):
    """Pipelining with more prefill micro-batches shouldn't slow down
    the event-driven schedule by much (bubbles shrink)."""
    coarse = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=16, decode_microbatch=16,
    )
    fine = ExecutionPlan.uniform(
        "opt-30b", cluster3.devices, small_w, bits=8,
        prefill_microbatch=4, decode_microbatch=16,
    )
    t_coarse = simulate_pipeline_des(coarse, cluster3).total_latency
    t_fine = simulate_pipeline_des(fine, cluster3).total_latency
    assert t_fine <= t_coarse * 1.05


def test_async_comm_overlap_helps(small_w):
    """With heavy comm, letting transfers ride the link while the sender
    starts its next micro-batch must not slow the pipeline down."""
    from repro.hardware.interconnect import Link
    from repro.sim.pipeline_des import simulate_pipeline_des as des

    slow = Link("slow-backbone", bandwidth=2e9, latency=1e-4)
    cl = make_cluster([("V100-32G", 2), ("V100-32G", 2)], inter_node_link=slow)
    w = Workload(prompt_len=1024, gen_len=4, global_batch=16)
    plan = ExecutionPlan.uniform(
        "opt-13b", cl.devices, w, bits=8,
        prefill_microbatch=2, decode_microbatch=8,
    )
    folded = des(plan, cl).total_latency
    overlapped = des(plan, cl, async_comm=True).total_latency
    assert overlapped <= folded * 1.001


def test_async_comm_shared_fabric_serializes(small_w):
    """Interleaving stages across two nodes makes every boundary cross
    the same node pair: the DES must account all that traffic against a
    single shared link resource."""
    from repro.core.plan import StagePlan
    from repro.sim.comm import activation_bytes
    from repro.sim.pipeline_des import simulate_pipeline_des as des
    from repro.models import get_model

    cl = make_cluster([("V100-32G", 2), ("V100-32G", 2)])
    w = Workload(prompt_len=512, gen_len=3, global_batch=8)
    devs = list(cl.devices)
    interleaved = [devs[0], devs[2], devs[1], devs[3]]  # n0,n1,n0,n1
    stages = tuple(StagePlan(d, (8,) * 10) for d in interleaved)
    plan = ExecutionPlan(
        model_name="opt-13b", stages=stages,
        prefill_microbatch=2, decode_microbatch=4, workload=w,
    )
    res = des(plan, cl, async_comm=True)
    key = ("link", "inter", 0, 1)
    busy = res.schedule.resource_busy.get(key, 0.0)
    # all 4 boundaries share the node pair: every prefill and decode
    # transfer lands on this one resource
    cfg = get_model("opt-13b")
    per_pre = activation_bytes(cfg, 2, 512) / cl.inter_node_link.bandwidth
    # 3 forward boundaries cross the pair x 4 prefill micro-batches, plus
    # the decode-phase transfers on all 4 boundaries
    assert busy > 3 * 4 * per_pre
    assert res.total_latency >= busy
