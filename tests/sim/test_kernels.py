"""Unit tests for the ground-truth kernel timing model.

These pin down the device-behaviour facts the paper's planner exploits
(Figs. 3 and 5); if the device model drifts, the planner's choices stop
matching the paper and these tests catch it.
"""

import numpy as np
import pytest

from repro.hardware import get_gpu
from repro.sim.kernels import (
    embedding_exec_time,
    layer_exec_time,
    layer_exec_times_decode_sweep,
    layer_memory_traffic,
)


@pytest.fixture(scope="module")
def gpus():
    return {n: get_gpu(n) for n in ("V100-32G", "P100-12G", "T4-16G", "A100-40G")}


def test_prefill_compute_bound_decode_memory_bound(gpus, opt30b):
    """Fig.-3 asymmetry: the P100/V100 time ratio differs strongly
    between phases because prefill stresses FLOPs and decode stresses
    bandwidth."""
    pre_ratio = layer_exec_time(gpus["P100-12G"], opt30b, 16, 8, 512, 512) / layer_exec_time(
        gpus["V100-32G"], opt30b, 16, 8, 512, 512
    )
    dec_ratio = layer_exec_time(gpus["P100-12G"], opt30b, 16, 8, 1, 512) / layer_exec_time(
        gpus["V100-32G"], opt30b, 16, 8, 1, 512
    )
    assert pre_ratio > 3 * dec_ratio  # compute gap >> bandwidth gap


def test_fp16_fastest_prefill_on_v100(gpus, opt30b):
    """Fig. 5: uniform low-precision does not speed up the compute-bound
    phase on V100 (dequant overhead)."""
    v100 = gpus["V100-32G"]
    t16 = layer_exec_time(v100, opt30b, 16, 8, 512, 512)
    for bits in (3, 4, 8):
        assert layer_exec_time(v100, opt30b, bits, 8, 512, 512) > t16


def test_quantization_speeds_up_decode_everywhere(gpus, opt30b):
    """Decode streams weights: fewer bits -> fewer bytes -> faster."""
    for gpu in gpus.values():
        t16 = layer_exec_time(gpu, opt30b, 16, 8, 1, 512)
        t4 = layer_exec_time(gpu, opt30b, 4, 8, 1, 512)
        assert t4 < t16


def test_t4_int8_tensor_cores(gpus, opt30b):
    """Sec. 2.5: T4's INT8 runs at FP16 speed; V100's does not."""
    t4 = gpus["T4-16G"]
    v100 = gpus["V100-32G"]
    assert layer_exec_time(t4, opt30b, 8, 8, 512, 512) <= layer_exec_time(
        t4, opt30b, 16, 8, 512, 512
    ) * 1.01
    assert layer_exec_time(v100, opt30b, 8, 8, 512, 512) > layer_exec_time(
        v100, opt30b, 16, 8, 512, 512
    )


def test_decode_sweep_matches_scalar(gpus, opt30b):
    ctxs = np.array([256, 512, 1024])
    sweep = layer_exec_times_decode_sweep(gpus["A100-40G"], opt30b, 4, 8, ctxs)
    for c, t in zip(ctxs, sweep):
        assert t == pytest.approx(
            layer_exec_time(gpus["A100-40G"], opt30b, 4, 8, 1, int(c))
        )


def test_decode_time_grows_with_context(gpus, opt30b):
    sweep = layer_exec_times_decode_sweep(
        gpus["V100-32G"], opt30b, 16, 8, np.arange(128, 1024, 64)
    )
    assert np.all(np.diff(sweep) > 0)


def test_noise_requires_rng(gpus, opt30b):
    with pytest.raises(ValueError, match="rng"):
        layer_exec_time(gpus["T4-16G"], opt30b, 8, 1, 64, 64, noise=0.1)


def test_validation(gpus, opt30b):
    with pytest.raises(ValueError):
        layer_exec_time(gpus["T4-16G"], opt30b, 8, 0, 64, 64)


def test_memory_traffic_components(opt30b):
    """Traffic must shrink with weight bits but keep KV/act terms."""
    hi = layer_memory_traffic(opt30b, 16, 8, 1, 512)
    lo = layer_memory_traffic(opt30b, 4, 8, 1, 512)
    assert lo < hi
    assert lo > 0.2 * hi  # KV + activations survive quantization


def test_embedding_time_with_logits(gpus, opt30b):
    plain = embedding_exec_time(gpus["V100-32G"], opt30b, 8, 1, with_logits=False)
    full = embedding_exec_time(gpus["V100-32G"], opt30b, 8, 1, with_logits=True)
    assert full > plain


def test_faster_gpu_is_faster(gpus, opt30b):
    assert layer_exec_time(gpus["A100-40G"], opt30b, 16, 8, 512, 512) < layer_exec_time(
        gpus["T4-16G"], opt30b, 16, 8, 512, 512
    )
