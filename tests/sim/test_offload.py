"""Unit tests for the FlexGen offloading model."""

import pytest

from repro.hardware import make_cluster, paper_cluster
from repro.sim.offload import simulate_offload
from repro.sim.pipeline import simulate_pipeline
from repro.core.plan import ExecutionPlan
from repro.workload import Workload


def test_offload_feasible_where_pipeline_ooms(cluster3, workload):
    """FlexGen's raison d'etre: FP16 OPT-30b OOMs as a plain pipeline on
    cluster 3, but offloading serves it (slowly)."""
    plain = simulate_pipeline(
        ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=16),
        cluster3,
    )
    assert not plain.feasible
    off = simulate_offload("opt-30b", cluster3, workload, bits=16)
    assert off.feasible
    assert off.throughput > 0


def test_int8_offload_faster_than_fp16(cluster3, workload):
    """Half the bytes to stream + resident fraction doubles."""
    fp16 = simulate_offload("opt-30b", cluster3, workload, bits=16)
    int8 = simulate_offload("opt-30b", cluster3, workload, bits=8)
    assert int8.throughput > fp16.throughput
    assert int8.weight_resident_fraction >= fp16.weight_resident_fraction


def test_offload_loses_when_memory_plentiful(workload):
    """On a big-memory cluster a plain quantized pipeline beats offload
    (the paper's 'heavy swapping overhead' result)."""
    cl = paper_cluster(11)  # 4xA800-80G
    plain = simulate_pipeline(
        ExecutionPlan.uniform("opt-30b", cl.devices, workload, bits=8), cl
    )
    off = simulate_offload("opt-30b", cl, workload, bits=16)
    assert plain.feasible
    assert plain.throughput > off.throughput


def test_resident_fractions_bounds(cluster3, workload):
    off = simulate_offload("opt-30b", cluster3, workload, bits=16)
    assert 0.0 <= off.weight_resident_fraction <= 1.0
    assert 0.0 <= off.kv_resident_fraction <= 1.0
    assert off.block_size >= 1


def test_infeasible_when_budget_negative():
    """A model whose workspace alone exceeds the GPU yields infeasible."""
    cl = make_cluster([("P100-12G", 1)])
    w = Workload(prompt_len=2048, gen_len=100, global_batch=64)
    off = simulate_offload("opt-66b", cl, w, bits=16)
    assert not off.feasible
    assert off.throughput == 0 or off.total_latency == float("inf")


def test_latency_components_positive(cluster3, workload):
    off = simulate_offload("opt-30b", cluster3, workload, bits=8)
    assert off.prefill_latency > 0
    assert off.decode_latency > 0
    assert off.total_latency == pytest.approx(
        off.prefill_latency + off.decode_latency
    )
