"""Unit tests for the online-serving extension (Sec. 7 discussion)."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan
from repro.sim.online import (
    OnlineRequest,
    max_admissible_batch,
    simulate_online,
)
from repro.workload import Workload
from repro.workload.traces import sample_poisson_arrivals


@pytest.fixture(scope="module")
def w():
    return Workload(prompt_len=512, gen_len=100, global_batch=16)


def _plan(cluster3, w, bits):
    return ExecutionPlan.uniform("opt-30b", cluster3.devices, w, bits=bits)


def test_trace_generation_poisson():
    trace = sample_poisson_arrivals(rate=2.0, duration=100.0, seed=1)
    arrivals = np.array([r.arrival for r in trace])
    assert 120 < len(trace) < 280  # ~200 expected
    assert np.all(np.diff(arrivals) > 0)
    assert all(r.prompt_len >= 4 and r.gen_len >= 4 for r in trace)
    with pytest.raises(ValueError):
        sample_poisson_arrivals(rate=0, duration=1)


def test_trace_deterministic_by_seed():
    a = sample_poisson_arrivals(2.0, 50.0, seed=3)
    b = sample_poisson_arrivals(2.0, 50.0, seed=3)
    assert [r.arrival for r in a] == [r.arrival for r in b]


def test_deprecated_trace_shim_removed():
    """The sim-side sampler shim has been removed for good; the workload
    layer's sampler is the only one."""
    import repro.sim as sim
    import repro.sim.online as online

    assert not hasattr(online, "sample_poisson_trace")
    assert "sample_poisson_trace" not in sim.__all__
    assert "sample_poisson_trace" not in online.__all__


def test_lower_precision_admits_bigger_batches(cluster3, w):
    """The Sec.-7 trade-off: 4-bit weights free KV memory."""
    b8 = max_admissible_batch(_plan(cluster3, w, 8), prompt_len=512, gen_len=100)
    b4 = max_admissible_batch(_plan(cluster3, w, 4), prompt_len=512, gen_len=100)
    assert b4 > b8 > 0


def test_online_simulation_metrics(cluster3, w):
    plan = _plan(cluster3, w, 4)
    trace = [
        OnlineRequest(arrival=float(k), prompt_len=256, gen_len=32)
        for k in range(12)
    ]
    res = simulate_online(plan, cluster3, trace, max_batch=8)
    assert res.completed == 12
    assert res.makespan > 0
    assert res.p95_latency >= res.mean_latency > 0
    assert res.throughput > 0
    assert res.waves >= 2
    assert "reqs" in res.summary()


def test_online_higher_load_increases_latency(cluster3, w):
    plan = _plan(cluster3, w, 4)
    light = sample_poisson_arrivals(0.2, 60.0, seed=5, max_prompt=256, max_gen=32)
    heavy = sample_poisson_arrivals(3.0, 60.0, seed=5, max_prompt=256, max_gen=32)
    r_light = simulate_online(plan, cluster3, light, max_batch=16)
    r_heavy = simulate_online(plan, cluster3, heavy, max_batch=16)
    assert r_heavy.mean_latency > r_light.mean_latency
    assert r_heavy.mean_wave_batch > r_light.mean_wave_batch


def test_online_quantized_plan_wins_under_load(cluster3, w):
    """8-bit weights are slower to admit fewer requests: under load the
    4-bit plan's bigger waves deliver better throughput."""
    trace = sample_poisson_arrivals(4.0, 40.0, seed=7, max_prompt=256, max_gen=32)
    plan8 = _plan(cluster3, w, 8)
    plan4 = _plan(cluster3, w, 4)
    b8 = max_admissible_batch(plan8, prompt_len=256, gen_len=32)
    b4 = max_admissible_batch(plan4, prompt_len=256, gen_len=32)
    r8 = simulate_online(plan8, cluster3, trace, max_batch=min(b8, 64))
    r4 = simulate_online(plan4, cluster3, trace, max_batch=min(b4, 64))
    assert r4.throughput > r8.throughput * 0.9  # at worst comparable


def test_empty_trace_rejected(cluster3, w):
    with pytest.raises(ValueError, match="empty"):
        simulate_online(_plan(cluster3, w, 4), cluster3, [])


# ---------------------------------------------------------------------------
# Continuous (iteration-level) policy
# ---------------------------------------------------------------------------


def test_continuous_beats_wave_under_load(cluster3, w):
    """The tentpole effect: iteration-level scheduling eliminates padding
    and inter-wave drain, so under load it wins on throughput AND p95."""
    plan = _plan(cluster3, w, 4)
    trace = sample_poisson_arrivals(3.0, 60.0, seed=7, max_prompt=256, max_gen=64)
    wave = simulate_online(plan, cluster3, trace, policy="wave")
    cont = simulate_online(plan, cluster3, trace, policy="continuous")
    assert cont.completed == wave.completed == len(trace)
    assert cont.throughput >= 1.5 * wave.throughput
    assert cont.p95_latency < wave.p95_latency
    assert cont.mean_ttft < wave.mean_ttft
    assert cont.iterations > 0 and cont.mean_inflight > 1
    assert "continuous" in cont.summary()


def test_wave_continuous_equivalent_at_batch_one(cluster3, w):
    """With concurrency capped at 1 the two policies run the identical
    schedule, so every metric must agree (same kernel composition)."""
    plan = _plan(cluster3, w, 4)
    trace = [
        OnlineRequest(arrival=float(k) * 10_000.0, prompt_len=256, gen_len=32)
        for k in range(3)
    ]
    wave = simulate_online(plan, cluster3, trace, max_batch=1, policy="wave")
    cont = simulate_online(plan, cluster3, trace, max_batch=1, policy="continuous")
    assert cont.makespan == pytest.approx(wave.makespan, rel=1e-9)
    assert cont.mean_latency == pytest.approx(wave.mean_latency, rel=1e-9)
    assert cont.mean_ttft == pytest.approx(wave.mean_ttft, rel=1e-9)
    assert cont.throughput == pytest.approx(wave.throughput, rel=1e-9)


def test_continuous_des_engine_close_to_analytic(cluster3, w):
    plan = _plan(cluster3, w, 4)
    trace = sample_poisson_arrivals(1.0, 30.0, seed=2, max_prompt=256, max_gen=32)
    ana = simulate_online(plan, cluster3, trace, policy="continuous")
    des = simulate_online(plan, cluster3, trace, policy="continuous", engine="des")
    assert des.completed == ana.completed
    # the DES schedule lower-bounds each iteration's closed form, but
    # admission dynamics may differ; makespans stay in the same regime
    assert des.makespan == pytest.approx(ana.makespan, rel=0.5)


def test_continuous_single_request_and_idle_gaps(cluster3, w):
    plan = _plan(cluster3, w, 4)
    one = simulate_online(
        plan, cluster3,
        [OnlineRequest(arrival=5.0, prompt_len=128, gen_len=16)],
        policy="continuous",
    )
    assert one.completed == 1
    assert one.makespan > 5.0  # waited for the arrival
    assert one.mean_latency < one.makespan  # latency excludes the idle gap
    gap = simulate_online(
        plan, cluster3,
        [
            OnlineRequest(arrival=0.0, prompt_len=128, gen_len=16),
            OnlineRequest(arrival=1_000.0, prompt_len=128, gen_len=16),
        ],
        policy="continuous",
    )
    assert gap.completed == 2
    assert gap.makespan > 1_000.0
    assert gap.mean_latency < 100.0  # neither request waited on the gap


def test_unfit_requests_give_graceful_infeasible_result(cluster3, w):
    """A request whose KV reservation exceeds every stage's headroom is
    rejected; an all-rejected trace yields the infeasible sentinel."""
    plan = _plan(cluster3, w, 16)
    huge = [OnlineRequest(arrival=0.0, prompt_len=500_000, gen_len=100_000)]
    for policy in ("wave", "continuous"):
        res = simulate_online(plan, cluster3, huge, policy=policy)
        assert res.completed == 0
        assert res.rejected == 1
        assert res.throughput == 0.0
        assert not np.isfinite(res.makespan)


def test_per_wave_admissibility_beats_trace_wide_bound(cluster3, w):
    """Satellite fix: a burst of short requests must form waves larger
    than the admissible batch at the trace-wide worst case."""
    plan = _plan(cluster3, w, 4)
    short = [
        OnlineRequest(arrival=0.0, prompt_len=64, gen_len=8) for _ in range(64)
    ]
    long_tail = [OnlineRequest(arrival=500.0, prompt_len=2048, gen_len=128)]
    trace = short + long_tail
    worst_bound = max_admissible_batch(plan, prompt_len=2048, gen_len=128)
    assert worst_bound < 64  # the legacy trace-wide cap would throttle
    res = simulate_online(plan, cluster3, trace, policy="wave")  # max_batch=None
    assert res.completed == len(trace)
    # mean wave batch lower-bounds the max; it must already beat the cap
    assert res.mean_wave_batch > worst_bound


def test_simulate_online_validates_policy_and_engine(cluster3, w):
    plan = _plan(cluster3, w, 4)
    trace = [OnlineRequest(arrival=0.0, prompt_len=64, gen_len=8)]
    with pytest.raises(ValueError, match="policy"):
        simulate_online(plan, cluster3, trace, policy="orca")
    with pytest.raises(ValueError, match="engine"):
        simulate_online(plan, cluster3, trace, engine="magic")


# ---------------------------------------------------------------------------
# Drift-aware live replanning (mirrored migration)
# ---------------------------------------------------------------------------


def _drifted_trace():
    """Light phase (1 req/s, short) then a heavy phase (5 req/s, longer)."""
    light = [
        OnlineRequest(arrival=k * 1.0, prompt_len=128, gen_len=16)
        for k in range(40)
    ]
    heavy = [
        OnlineRequest(arrival=40.0 + k * 0.2, prompt_len=256, gen_len=32)
        for k in range(200)
    ]
    return light + heavy


def test_drift_requires_continuous_policy(cluster3, w):
    from repro.runtime.replan import DriftConfig

    plan = _plan(cluster3, w, 8)
    trace = [OnlineRequest(arrival=0.0, prompt_len=64, gen_len=8)]
    with pytest.raises(ValueError, match="continuous"):
        simulate_online(
            plan, cluster3, trace, policy="wave", drift=DriftConfig()
        )


def test_drift_migration_triggers_and_beats_static(cluster3, w):
    """The mirrored migration: the drift-aware run switches to the 4-bit
    plan when the heavy phase hits and ends up ahead of the static run,
    pause included."""
    from repro.runtime.replan import DriftConfig

    plan16 = _plan(cluster3, w, 16)
    plan4 = _plan(cluster3, w, 4)
    trace = _drifted_trace()
    drift = DriftConfig(
        window=10.0, threshold=1.0, hysteresis=1, cooldown=1000.0,
        rebuild_seconds=0.5,
    )
    static = simulate_online(plan16, cluster3, trace, policy="continuous")
    adaptive = simulate_online(
        plan16, cluster3, trace, policy="continuous", drift=drift,
        replanner=lambda cur, est: plan4 if cur is plan16 else None,
    )
    assert adaptive.drift_triggers >= 1
    assert adaptive.migrations == 1 and adaptive.replans == 1
    assert adaptive.migration_seconds > 0  # shards re-cut: replay priced
    assert adaptive.completed == static.completed == len(trace)
    assert adaptive.p95_latency < static.p95_latency
    assert "migrations" in adaptive.summary()


def test_drift_workload_refit_is_metadata_only(cluster3, w):
    """Same partition + bitwidths: the refit switch costs zero pause."""
    from repro.runtime.replan import DriftConfig, workload_refit_replanner

    plan = _plan(cluster3, w, 4)
    short = [
        OnlineRequest(arrival=k * 0.5, prompt_len=64, gen_len=16)
        for k in range(80)
    ]
    long_ = [
        OnlineRequest(arrival=40.0 + k * 0.5, prompt_len=512, gen_len=16)
        for k in range(80)
    ]
    drift = DriftConfig(
        window=10.0, threshold=1.0, hysteresis=1, cooldown=1000.0
    )
    res = simulate_online(
        plan, cluster3, short + long_, policy="continuous",
        drift=drift, replanner=workload_refit_replanner,
    )
    assert res.migrations >= 1
    assert res.migration_seconds == 0.0  # same stages: metadata-only
    assert res.completed == 160


def test_headroom_helpers_consistent(cluster3, w):
    from repro.sim.online import request_kv_bytes, stage_kv_headroom

    plan4 = _plan(cluster3, w, 4)
    plan16 = _plan(cluster3, w, 16)
    h4 = stage_kv_headroom(plan4)
    h16 = stage_kv_headroom(plan16)
    assert np.all(h4 >= h16)  # lower precision leaves more KV headroom
    assert np.any(h4 > h16)
    charge = request_kv_bytes(plan4, 256, 32)
    assert charge.shape == (plan4.num_stages,)
    assert np.all(charge > 0)
    # more admitted requests under 4-bit than 16-bit, per the Sec.-7 trade-off
    assert int(np.min(h4 / charge)) >= int(np.min(h16 / request_kv_bytes(plan16, 256, 32)))
