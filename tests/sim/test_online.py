"""Unit tests for the online-serving extension (Sec. 7 discussion)."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan
from repro.sim.online import (
    OnlineRequest,
    max_admissible_batch,
    sample_poisson_trace,
    simulate_online,
)
from repro.workload import Workload


@pytest.fixture(scope="module")
def w():
    return Workload(prompt_len=512, gen_len=100, global_batch=16)


def _plan(cluster3, w, bits):
    return ExecutionPlan.uniform("opt-30b", cluster3.devices, w, bits=bits)


def test_trace_generation_poisson():
    trace = sample_poisson_trace(rate=2.0, duration=100.0, seed=1)
    arrivals = np.array([r.arrival for r in trace])
    assert 120 < len(trace) < 280  # ~200 expected
    assert np.all(np.diff(arrivals) > 0)
    assert all(r.prompt_len >= 8 and r.gen_len >= 4 for r in trace)
    with pytest.raises(ValueError):
        sample_poisson_trace(rate=0, duration=1)


def test_trace_deterministic_by_seed():
    a = sample_poisson_trace(2.0, 50.0, seed=3)
    b = sample_poisson_trace(2.0, 50.0, seed=3)
    assert [r.arrival for r in a] == [r.arrival for r in b]


def test_lower_precision_admits_bigger_batches(cluster3, w):
    """The Sec.-7 trade-off: 4-bit weights free KV memory."""
    b8 = max_admissible_batch(_plan(cluster3, w, 8), prompt_len=512, gen_len=100)
    b4 = max_admissible_batch(_plan(cluster3, w, 4), prompt_len=512, gen_len=100)
    assert b4 > b8 > 0


def test_online_simulation_metrics(cluster3, w):
    plan = _plan(cluster3, w, 4)
    trace = [
        OnlineRequest(arrival=float(k), prompt_len=256, gen_len=32)
        for k in range(12)
    ]
    res = simulate_online(plan, cluster3, trace, max_batch=8)
    assert res.completed == 12
    assert res.makespan > 0
    assert res.p95_latency >= res.mean_latency > 0
    assert res.throughput > 0
    assert res.waves >= 2
    assert "reqs" in res.summary()


def test_online_higher_load_increases_latency(cluster3, w):
    plan = _plan(cluster3, w, 4)
    light = sample_poisson_trace(0.2, 60.0, seed=5, max_prompt=256, max_gen=32)
    heavy = sample_poisson_trace(3.0, 60.0, seed=5, max_prompt=256, max_gen=32)
    r_light = simulate_online(plan, cluster3, light, max_batch=16)
    r_heavy = simulate_online(plan, cluster3, heavy, max_batch=16)
    assert r_heavy.mean_latency > r_light.mean_latency
    assert r_heavy.mean_wave_batch > r_light.mean_wave_batch


def test_online_quantized_plan_wins_under_load(cluster3, w):
    """8-bit weights are slower to admit fewer requests: under load the
    4-bit plan's bigger waves deliver better throughput."""
    trace = sample_poisson_trace(4.0, 40.0, seed=7, max_prompt=256, max_gen=32)
    plan8 = _plan(cluster3, w, 8)
    plan4 = _plan(cluster3, w, 4)
    b8 = max_admissible_batch(plan8, prompt_len=256, gen_len=32)
    b4 = max_admissible_batch(plan4, prompt_len=256, gen_len=32)
    r8 = simulate_online(plan8, cluster3, trace, max_batch=min(b8, 64))
    r4 = simulate_online(plan4, cluster3, trace, max_batch=min(b4, 64))
    assert r4.throughput > r8.throughput * 0.9  # at worst comparable


def test_empty_trace_rejected(cluster3, w):
    with pytest.raises(ValueError, match="empty"):
        simulate_online(_plan(cluster3, w, 4), cluster3, [])
