"""Unit tests for the pipeline execution simulator."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu, make_cluster, paper_cluster
from repro.sim.pipeline import simulate_pipeline
from repro.workload import Workload


def _plan(model, devices, bits, counts, mb_p, mb_d, workload):
    stages = tuple(
        StagePlan(device=d, layer_bits=(b,) * c)
        for d, b, c in zip(devices, bits, counts)
    )
    return ExecutionPlan(
        model_name=model, stages=stages,
        prefill_microbatch=mb_p, decode_microbatch=mb_d, workload=workload,
    )


def test_uniform_plan_feasible_when_quantized(cluster3, workload):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=8)
    res = simulate_pipeline(plan, cluster3)
    assert res.feasible
    assert res.total_latency > 0
    assert res.throughput == pytest.approx(
        workload.total_generated_tokens / res.total_latency
    )


def test_fp16_ooms_on_cluster3(cluster3, workload):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=16)
    res = simulate_pipeline(plan, cluster3)
    assert not res.feasible
    assert res.oom_stages  # the T4 stages
    assert res.total_latency == float("inf")
    assert res.throughput == 0.0
    assert "INFEASIBLE" in res.summary()


def test_single_stage_single_microbatch_formula(workload):
    """With one stage and one micro-batch, prefill latency equals the
    stage busy time exactly (no bubbles)."""
    cl = make_cluster([("A800-80G", 1)])
    w = Workload(prompt_len=128, gen_len=2, global_batch=4)
    plan = _plan("opt-13b", cl.devices, [8], [40], 4, 4, w)
    res = simulate_pipeline(plan, cl)
    assert res.feasible
    assert res.prefill_latency == pytest.approx(res.stage_reports[0].prefill_time)


def test_gpipe_bubble_formula(workload):
    """Prefill latency = sum(stage times) + (m-1) * max(stage time)."""
    cl = make_cluster([("A800-80G", 2)])
    w = Workload(prompt_len=128, gen_len=2, global_batch=8)
    plan = _plan("opt-13b", cl.devices, [8, 8], [20, 20], 2, 8, w)
    res = simulate_pipeline(plan, cl)
    m = 4  # 8 / 2
    busy = [r.prefill_time for r in res.stage_reports]
    assert res.prefill_latency == pytest.approx(sum(busy) + (m - 1) * max(busy))


def test_more_decode_passes_cost_more():
    cl = make_cluster([("A800-80G", 1)])
    short = Workload(prompt_len=128, gen_len=10, global_batch=4)
    long = Workload(prompt_len=128, gen_len=50, global_batch=4)
    p_short = _plan("opt-13b", cl.devices, [8], [40], 4, 4, short)
    p_long = _plan("opt-13b", cl.devices, [8], [40], 4, 4, long)
    r_short = simulate_pipeline(p_short, cl)
    r_long = simulate_pipeline(p_long, cl)
    assert r_long.decode_latency > 4 * r_short.decode_latency
    # decode-phase rate per token is similar once prefill is factored out
    rate_short = (short.decode_passes * 4) / r_short.decode_latency
    rate_long = (long.decode_passes * 4) / r_long.decode_latency
    assert rate_long == pytest.approx(rate_short, rel=0.15)


def test_decode_times_grow_with_context(cluster3, workload):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=8)
    res = simulate_pipeline(plan, cluster3)
    for r in res.stage_reports:
        assert r.decode_time_last >= r.decode_time_first


def test_latency_model_view_close_to_ground_truth(
    cluster3, workload, latmodel_cluster3
):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=8)
    truth = simulate_pipeline(plan, cluster3)
    pred = simulate_pipeline(plan, cluster3, latency_model=latmodel_cluster3)
    assert pred.total_latency == pytest.approx(truth.total_latency, rel=0.08)


def test_memory_check_can_be_disabled(cluster3, workload):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=16)
    res = simulate_pipeline(plan, cluster3, check_memory=False)
    assert res.feasible  # OOM ignored


def test_bottleneck_stage_identified(cluster3, workload):
    # pile layers onto the last (V100) stage
    devices = list(cluster3.devices)
    plan = _plan(
        "opt-30b", devices, [8, 8, 8, 8], [4, 4, 4, 36], 8, 8, workload
    )
    res = simulate_pipeline(plan, cluster3)
    assert res.bottleneck_stage == 3


def test_stage_reports_cover_all_stages(cluster3, workload):
    plan = ExecutionPlan.uniform("opt-30b", cluster3.devices, workload, bits=8)
    res = simulate_pipeline(plan, cluster3)
    assert len(res.stage_reports) == 4
    assert sum(r.num_layers for r in res.stage_reports) == 48


def test_slow_interconnect_hurts():
    from repro.hardware.interconnect import ETHERNET_100G, Link

    w = Workload(prompt_len=512, gen_len=20, global_batch=16)
    fast = make_cluster([("V100-32G", 1), ("A100-40G", 1)], inter_node_link=ETHERNET_100G)
    slow_link = Link("slow", bandwidth=1e9, latency=1e-3)
    slow = make_cluster([("V100-32G", 1), ("A100-40G", 1)], inter_node_link=slow_link)
    plan_f = ExecutionPlan.uniform("opt-13b", fast.devices, w, bits=8)
    plan_s = ExecutionPlan.uniform("opt-13b", slow.devices, w, bits=8)
    rf = simulate_pipeline(plan_f, fast)
    rs = simulate_pipeline(plan_s, slow)
    assert rs.total_latency > rf.total_latency
