"""The vectorized event-batch trace engine vs. the scalar oracle.

``simulate_online(engine="analytic"|"des", policy="continuous")`` runs
through :mod:`repro.sim.trace_engine`; the displaced scalar loop stays
reachable as ``engine="reference"`` / ``engine="reference-des"``.  The
contract is **exact equality**: every ``OnlineResult`` field — floats
included — must match the oracle bit for bit, with or without drift
detection and live replanning, in both the token-budget linear
admission fast path and the general per-stage byte accounting
(``force_general=True``).

A hypothesis sweep drives random traces/plans/knobs through both
engines; deterministic cases pin the canned trace, migrations that
change the stage cut, and the degenerate all-rejected/empty-percentile
paths.
"""

import dataclasses
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan
from repro.runtime.replan import DriftConfig, workload_refit_replanner
from repro.runtime.scheduler import ServeReport
from repro.sim.online import OnlineRequest, simulate_online
from repro.workload.traces import (
    load_trace,
    sample_bursty_arrivals,
    sample_diurnal_arrivals,
    sample_poisson_arrivals,
    save_trace,
)

from .costview_cases import canned_trace, mb1_plan, mixed_plan

PLANS = {"mixed": mixed_plan(), "mb1": mb1_plan()}

DRIFT = DriftConfig(
    window=5.0, threshold=0.3, hysteresis=1, cooldown=10.0,
    rebuild_seconds=0.25,
)


@pytest.fixture(params=[False, True], ids=["linear", "general"])
def force_general(request):
    """Run each case through both admission paths: the exact-linear
    token-budget shortcut and the general per-stage byte scan."""
    return request.param


def _assert_identical(plan, cluster, trace, *, force_general=False, **kw):
    vec = simulate_online(
        plan, cluster, trace, policy="continuous",
        force_general=force_general, **kw,
    )
    eng = kw.pop("engine", "analytic")
    ref = "reference-des" if eng == "des" else "reference"
    oracle = simulate_online(
        plan, cluster, trace, policy="continuous", engine=ref, **kw
    )
    if vec != oracle:
        bad = [
            f"{f.name}: {getattr(vec, f.name)!r} != {getattr(oracle, f.name)!r}"
            for f in dataclasses.fields(vec)
            if getattr(vec, f.name) != getattr(oracle, f.name)
        ]
        raise AssertionError(
            "vectorized engine diverged from the oracle:\n  " + "\n  ".join(bad)
        )
    return vec


# ---------------------------------------------------------------------------
# deterministic equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("engine", ["analytic", "des"])
@pytest.mark.parametrize("max_batch", [None, 4, 2])
def test_canned_trace_identical(plan_name, engine, max_batch, force_general):
    plan, cluster = PLANS[plan_name]
    _assert_identical(
        plan, cluster, canned_trace(), engine=engine, max_batch=max_batch,
        force_general=force_general,
    )


@pytest.mark.parametrize("engine", ["analytic", "des"])
def test_mixed_kv_trace_identical(engine, force_general):
    """Per-stage KV bitwidths reshape per-stage admission charges and
    decode times; the vectorized engine must still match the oracle bit
    for bit — including the exact-linear token-budget shortcut, whose
    per-stage charge vector is no longer uniform."""
    plan, cluster = PLANS["mixed"]
    kv_plan = plan.with_kv_bits((4, 8, 16, 4))
    res = _assert_identical(
        kv_plan, cluster, canned_trace(), engine=engine,
        force_general=force_general,
    )
    assert res.completed > 0


def test_kv4_admits_more_than_kv16(force_general):
    """At the same memory budget, KV4's smaller per-request charge must
    never complete fewer requests than fp16 KV on an overload trace."""
    plan, cluster = PLANS["mixed"]
    trace = canned_trace() * 4
    r16 = _assert_identical(
        plan.with_kv_bits(16), cluster, trace, force_general=force_general
    )
    r4 = _assert_identical(
        plan.with_kv_bits(4), cluster, trace, force_general=force_general
    )
    assert r4.completed >= r16.completed
    assert r4.rejected <= r16.rejected


def test_drifting_trace_identical_with_replanning(force_general):
    plan, cluster = PLANS["mixed"]
    trace = sample_diurnal_arrivals(
        3.0, 40.0, amplitude=0.9, period=20.0, seed=7,
        max_prompt=64, max_gen=32,
    )
    res = _assert_identical(
        plan, cluster, trace, drift=DRIFT, replanner=workload_refit_replanner,
        force_general=force_general,
    )
    assert res.iterations > 0


def test_recut_migration_identical(force_general):
    """A replanner that changes the stage cut exercises the engine's
    migration path (KV recharge under the new plan's cost model)."""
    plan, cluster = PLANS["mixed"]
    plan4 = ExecutionPlan.uniform(
        "opt-30b", cluster.devices, plan.workload, bits=4
    )

    def flip(p, estimate):
        return plan4 if p is plan else plan

    trace = sample_bursty_arrivals(
        2.0, 50.0, burst_rate=10.0, burst_duration=5.0, burst_period=15.0,
        seed=101, max_prompt=64, max_gen=16,
    )
    drift = DriftConfig(
        window=5.0, threshold=0.25, hysteresis=1, cooldown=6.0,
        rebuild_seconds=0.4,
    )
    res = _assert_identical(
        plan, cluster, trace, drift=drift, replanner=flip,
        force_general=force_general,
    )
    assert res.migrations >= 1


# ---------------------------------------------------------------------------
# hypothesis sweep: random traces x engines x knobs
# ---------------------------------------------------------------------------


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plan_name=st.sampled_from(sorted(PLANS)),
    kind=st.sampled_from(["poisson", "bursty", "diurnal"]),
    seed=st.integers(0, 2**16),
    engine=st.sampled_from(["analytic", "des"]),
    max_batch=st.sampled_from([None, 8, 3]),
    with_drift=st.booleans(),
    general=st.booleans(),
)
def test_random_traces_identical(
    plan_name, kind, seed, engine, max_batch, with_drift, general
):
    plan, cluster = PLANS[plan_name]
    if kind == "poisson":
        trace = sample_poisson_arrivals(
            3.0, 25.0, seed=seed, max_prompt=96, max_gen=24
        )
    elif kind == "bursty":
        trace = sample_bursty_arrivals(
            2.0, 30.0, burst_rate=9.0, burst_duration=4.0, burst_period=12.0,
            seed=seed, max_prompt=64, max_gen=16,
        )
    else:
        trace = sample_diurnal_arrivals(
            3.0, 30.0, amplitude=0.9, period=15.0, seed=seed,
            max_prompt=64, max_gen=32,
        )
    kw = {"engine": engine, "max_batch": max_batch}
    if with_drift:
        kw.update(drift=DRIFT, replanner=workload_refit_replanner)
    _assert_identical(plan, cluster, trace, force_general=general, **kw)


# ---------------------------------------------------------------------------
# degenerate inputs: empty percentiles stay warning-free
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["analytic", "reference"])
def test_all_rejected_trace_is_infeasible_without_warnings(engine):
    """Requests too big to ever admit: the result degrades to the
    infeasible sentinel (inf latencies, zero throughput) without numpy's
    empty-slice RuntimeWarning leaking from the percentile math."""
    plan, cluster = PLANS["mixed"]
    trace = [OnlineRequest(arrival=0.0, prompt_len=10**6, gen_len=10**6)]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        res = simulate_online(
            plan, cluster, trace, policy="continuous", engine=engine
        )
    assert res.completed == 0
    assert res.rejected == 1
    assert res.mean_latency == float("inf")
    assert res.p50_latency == float("inf")
    assert res.p95_latency == float("inf")
    assert res.p99_latency == float("inf")
    assert res.p95_ttft == float("inf")
    assert res.throughput == 0.0
    assert "rejected" in res.summary()


def test_empty_serve_report_percentiles_are_safe():
    """ServeReport with nothing completed: every percentile/mean reads 0
    and nothing trips a numpy empty-slice warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        report = ServeReport(policy="continuous")
        assert report.latency_p50 == 0.0
        assert report.latency_p95 == 0.0
        assert report.latency_p99 == 0.0
        assert report.ttft_mean == 0.0
        assert report.ttft_p95 == 0.0
        assert report.throughput_tokens_per_s == 0.0


# ---------------------------------------------------------------------------
# trace persistence round-trip
# ---------------------------------------------------------------------------


def test_saved_trace_replays_identically(tmp_path):
    """save_trace -> load_trace is an exact float64 round-trip, so the
    replayed simulation is byte-identical to the original."""
    plan, cluster = PLANS["mixed"]
    trace = sample_diurnal_arrivals(
        3.0, 30.0, amplitude=0.9, period=15.0, seed=3,
        max_prompt=64, max_gen=32,
    )
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    loaded = load_trace(path)
    np.testing.assert_array_equal(loaded.arrivals, trace.arrivals)
    np.testing.assert_array_equal(loaded.prompt_lens, trace.prompt_lens)
    np.testing.assert_array_equal(loaded.gen_lens, trace.gen_lens)
    a = simulate_online(plan, cluster, trace, policy="continuous")
    b = simulate_online(plan, cluster, loaded, policy="continuous")
    assert a == b
