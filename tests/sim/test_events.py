"""Unit tests for the discrete-event task-graph scheduler."""

import pytest

from repro.sim.events import Task, simulate_task_graph


def test_single_task():
    res = simulate_task_graph([Task("a", 2.0, "r")])
    assert res.makespan == 2.0
    assert res.finish_times["a"] == 2.0
    assert res.utilization("r") == 1.0


def test_chain_serializes():
    tasks = [
        Task("a", 1.0, "r1"),
        Task("b", 2.0, "r2", deps=("a",)),
        Task("c", 3.0, "r1", deps=("b",)),
    ]
    res = simulate_task_graph(tasks)
    assert res.makespan == 6.0
    assert res.finish_times == {"a": 1.0, "b": 3.0, "c": 6.0}


def test_resource_exclusivity():
    tasks = [Task(f"t{i}", 1.0, "gpu") for i in range(4)]
    res = simulate_task_graph(tasks)
    assert res.makespan == 4.0  # serialized on one resource
    assert res.utilization("gpu") == 1.0


def test_independent_resources_parallel():
    tasks = [Task("a", 5.0, "r1"), Task("b", 3.0, "r2")]
    res = simulate_task_graph(tasks)
    assert res.makespan == 5.0


def test_priority_ordering():
    tasks = [
        Task("low", 1.0, "r", priority=(2,)),
        Task("high", 1.0, "r", priority=(1,)),
    ]
    res = simulate_task_graph(tasks)
    assert res.finish_times["high"] < res.finish_times["low"]


def test_gpipe_makespan():
    """2 stages x 3 micro-batches of unit time: classic GPipe makespan
    = sum + (m-1)*max = 2 + 2 = 4."""
    tasks = []
    for i in range(3):
        tasks.append(Task(("p", 0, i), 1.0, "s0", priority=(i, 0)))
        tasks.append(Task(("p", 1, i), 1.0, "s1", deps=(("p", 0, i),), priority=(i, 1)))
    res = simulate_task_graph(tasks)
    assert res.makespan == 4.0


def test_cycle_detected():
    tasks = [
        Task("a", 1.0, "r", deps=("b",)),
        Task("b", 1.0, "r", deps=("a",)),
    ]
    with pytest.raises(ValueError, match="cycle"):
        simulate_task_graph(tasks)


def test_unknown_dep_rejected():
    with pytest.raises(ValueError, match="unknown"):
        simulate_task_graph([Task("a", 1.0, "r", deps=("ghost",))])


def test_duplicate_id_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        simulate_task_graph([Task("a", 1.0, "r"), Task("a", 2.0, "r")])


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        Task("a", -1.0, "r")


def test_empty_graph():
    res = simulate_task_graph([])
    assert res.makespan == 0.0
