"""Canned plans and snapshot helpers for the cost-view equality suite.

``tests/data/costview_golden.json`` was captured by running
:func:`compute_snapshot` against the pre-refactor code, where every
consumer (analytic simulator, DES, online wave/continuous policies,
admission helpers) still carried its own private copy of the pricing
formulas, with the ground-truth ``kernels`` time source.  The equality
suite recomputes the same snapshot through the current code — which now
resolves everything through :class:`repro.cost.stagecosts.StageCostModel`
— and compares every float bit for bit via ``float.hex()``.

Everything here sticks to public entry points and hand-written request
lists (no samplers), so the snapshot is a pure function of the pricing
formulas — exactly the thing the refactor must not change.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import paper_cluster
from repro.sim.online import (
    OnlineRequest,
    max_admissible_batch,
    request_kv_bytes,
    simulate_online,
    stage_kv_headroom,
)
from repro.sim.pipeline import simulate_pipeline
from repro.sim.pipeline_des import simulate_pipeline_des
from repro.workload import Workload


def mixed_plan():
    """opt-30b on the 3xT4 + V100 paper cluster, mixed bits per stage."""
    cluster = paper_cluster(3)
    w = Workload(prompt_len=128, gen_len=12, global_batch=8)
    patterns = [(4, 8), (3, 4), (8, 16), (4, 4)]
    per = 48 // len(cluster.devices)
    stages = tuple(
        StagePlan(dev, tuple(patterns[j][i % 2] for i in range(per)))
        for j, dev in enumerate(cluster.devices)
    )
    plan = ExecutionPlan(
        model_name="opt-30b",
        stages=stages,
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=w,
    )
    return plan, cluster


def mb1_plan():
    """Single micro-batch plan (m_p = m_d = 1): analytic == DES exactly."""
    cluster = paper_cluster(3)
    w = Workload(prompt_len=96, gen_len=8, global_batch=1)
    patterns = [(4, 4), (8, 4), (16, 8), (3, 4)]
    per = 48 // len(cluster.devices)
    stages = tuple(
        StagePlan(dev, tuple(patterns[j][i % 2] for i in range(per)))
        for j, dev in enumerate(cluster.devices)
    )
    plan = ExecutionPlan(
        model_name="opt-30b",
        stages=stages,
        prefill_microbatch=1,
        decode_microbatch=1,
        workload=w,
        meta={"kv_bits": 8},
    )
    return plan, cluster


def canned_trace() -> list[OnlineRequest]:
    """Hand-written arrival trace (sampler-independent on purpose)."""
    lens = [
        (96, 8), (40, 5), (128, 12), (64, 6), (80, 10), (24, 4),
        (112, 7), (56, 9), (96, 5), (32, 6), (72, 8), (120, 11),
    ]
    arrivals = [
        0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 1.0, 1.05, 1.25, 3.0, 3.1, 3.3,
    ]
    return [
        OnlineRequest(arrival=a, prompt_len=s, gen_len=n)
        for a, (s, n) in zip(arrivals, lens)
    ]


def _hex(x) -> str:
    return float(x).hex()


def _hexlist(a) -> list[str]:
    return [float(v).hex() for v in np.asarray(a, dtype=np.float64).ravel()]


def pipeline_snapshot(plan, cluster) -> dict:
    res = simulate_pipeline(plan, cluster)
    return {
        "prefill_latency": _hex(res.prefill_latency),
        "decode_latency": _hex(res.decode_latency),
        "stage_prefill": _hexlist([r.prefill_time for r in res.stage_reports]),
        "stage_dec_first": _hexlist(
            [r.decode_time_first for r in res.stage_reports]
        ),
        "stage_dec_last": _hexlist(
            [r.decode_time_last for r in res.stage_reports]
        ),
        "mem_total": _hexlist([r.memory.total for r in res.stage_reports]),
        "mem_kv": _hexlist([r.memory.kv_cache for r in res.stage_reports]),
    }


def online_snapshot(
    plan, cluster, trace, *, policy, engine, max_batch=None
) -> dict:
    r = simulate_online(
        plan, cluster, trace, policy=policy, engine=engine, max_batch=max_batch
    )
    out = {
        k: _hex(getattr(r, k))
        for k in (
            "makespan", "mean_latency", "p50_latency", "p95_latency",
            "p99_latency", "throughput", "mean_ttft", "p95_ttft",
            "mean_wave_batch", "mean_inflight",
        )
    }
    out.update(
        completed=r.completed, waves=r.waves,
        iterations=r.iterations, rejected=r.rejected,
    )
    return out


def compute_snapshot() -> dict:
    """The full kernels-source snapshot the golden file pins down."""
    out: dict = {}
    for name, (plan, cluster) in (
        ("mixed", mixed_plan()),
        ("mb1", mb1_plan()),
    ):
        out[name] = {
            "pipeline": pipeline_snapshot(plan, cluster),
            "des_sync": _hex(
                simulate_pipeline_des(plan, cluster).total_latency
            ),
            "des_async": _hex(
                simulate_pipeline_des(
                    plan, cluster, async_comm=True
                ).total_latency
            ),
            "headroom": _hexlist(stage_kv_headroom(plan)),
            "charge_64_8": _hexlist(request_kv_bytes(plan, 64, 8)),
            "max_batch_128_12": max_admissible_batch(
                plan, prompt_len=128, gen_len=12
            ),
        }
    plan, cluster = mixed_plan()
    trace = canned_trace()
    for policy in ("wave", "continuous"):
        for engine in ("analytic", "des"):
            out[f"online_{policy}_{engine}"] = online_snapshot(
                plan, cluster, trace, policy=policy, engine=engine
            )
    out["online_wave_cap4"] = online_snapshot(
        plan, cluster, trace, policy="wave", engine="analytic", max_batch=4
    )
    return out
