"""Batched-decode pricing: the cost model's two decode execution modes.

``decode_batching="fused"`` is the default and reproduces the historical
pricing byte for byte (one weight stream per iteration — the runtime's
fused ragged-batch path).  ``"per-request"`` prices the batch-1 oracle
path as ``b`` sequential unit iterations, exactly
``float(b) * unit_decode_times(1, ctx)``, so the planner can quantify
what fusion buys on a given cluster.
"""

import numpy as np
import pytest

from repro.cost.latency import LatencyModel
from repro.cost.stagecosts import StageCostModel
from repro.models import get_model
from repro.sim.online import simulate_online

from .costview_cases import canned_trace, mixed_plan


@pytest.fixture(scope="module")
def scm_pair():
    plan, cluster = mixed_plan()
    fused = StageCostModel(plan, cluster)
    per = StageCostModel(plan, cluster, decode_batching="per-request")
    return fused, per


def test_default_mode_is_fused(scm_pair):
    fused, per = scm_pair
    assert fused.decode_batching == "fused"
    assert per.decode_batching == "per-request"


def test_per_request_is_exactly_b_unit_iterations(scm_pair):
    """The oracle mode prices ``b`` sequential batch-1 messages — the
    product must be bitwise, not approximate."""
    fused, per = scm_pair
    for b in (1, 2, 4, 7):
        for ctx in (64.0, 130.0, 513.0):
            got = per.unit_decode_times(b, ctx)
            want = float(b) * per.unit_decode_times(1, ctx)
            np.testing.assert_array_equal(got, want)
            # batch 1 is mode-independent
            np.testing.assert_array_equal(
                per.unit_decode_times(1, ctx), fused.unit_decode_times(1, ctx)
            )


def test_fused_beats_per_request_above_batch_one(scm_pair):
    """Fused shares the weight stream, so its iteration time is strictly
    below b sequential unit iterations for every b > 1."""
    fused, per = scm_pair
    for b in (2, 4, 8):
        f = fused.unit_decode_times(b, 256.0).sum()
        p = per.unit_decode_times(b, 256.0).sum()
        assert f < p


def test_vectorized_batch_table_matches_scalar_dispatch(scm_pair):
    """``unit_decode_times_batch`` row i must equal
    ``unit_decode_times(batches[i], contexts[i])`` bit for bit in both
    modes — the vectorized trace engine prices through this call."""
    batches = np.array([1, 3, 1, 6, 2])
    contexts = np.array([64.0, 128.0, 257.0, 96.0, 512.0])
    for scm in scm_pair:
        table = scm.unit_decode_times_batch(batches, contexts)
        for i in range(batches.size):
            np.testing.assert_array_equal(
                table[i], scm.unit_decode_times(int(batches[i]), float(contexts[i]))
            )


def test_derive_propagates_decode_batching(scm_pair):
    _, per = scm_pair
    derived = per.derive(per.plan)
    assert derived.decode_batching == "per-request"


def test_invalid_mode_rejected():
    plan, cluster = mixed_plan()
    with pytest.raises(ValueError, match="decode_batching"):
        StageCostModel(plan, cluster, decode_batching="orca")


# ---------------------------------------------------------------------------
# simulate_online plumbing
# ---------------------------------------------------------------------------


def test_simulate_online_mode_validation_and_conflict():
    plan, cluster = mixed_plan()
    trace = canned_trace()
    with pytest.raises(ValueError, match="decode_batching"):
        simulate_online(plan, cluster, trace, decode_batching="orca")
    per = StageCostModel(plan, cluster, decode_batching="per-request")
    with pytest.raises(ValueError, match="prices"):
        simulate_online(
            plan, cluster, trace, cost_model=per, decode_batching="fused"
        )


def test_simulate_online_per_request_slows_decode():
    """Pricing the batch-1 oracle mode must never finish faster than the
    fused default on the same trace, and explicit fused == default."""
    plan, cluster = mixed_plan()
    trace = canned_trace()
    base = simulate_online(plan, cluster, trace, policy="continuous")
    fused = simulate_online(
        plan, cluster, trace, policy="continuous", decode_batching="fused"
    )
    per = simulate_online(
        plan, cluster, trace, policy="continuous", decode_batching="per-request"
    )
    assert fused.makespan == base.makespan
    assert per.makespan >= fused.makespan
    assert per.completed == fused.completed == len(trace)


# ---------------------------------------------------------------------------
# latency-model vector-batch pricing
# ---------------------------------------------------------------------------


def _toy_latency_model():
    cfg = get_model("opt-13b")
    m = LatencyModel(cfg)
    # hand-set coefficients: values only flow through dot products, so
    # any non-negative triple exercises the feature math
    m.coef[("T4-16G", 16, "decode")] = np.array([1e-13, 2e-12, 5e-4])
    return m


def test_latency_vector_batch_rows_match_scalar_batch():
    """A ``(K,)`` batch vector prices row i exactly like a scalar
    ``batch=b_i`` call at ``contexts[i]`` — w_bytes charged once per row
    (fused semantics) in both shapes."""
    m = _toy_latency_model()
    batches = np.array([1, 2, 5, 3])
    contexts = np.array([32.0, 100.0, 257.0, 64.0])
    vec = m.decode_step_times("T4-16G", 16, batches, contexts)
    for i in range(batches.size):
        scalar = m.decode_step_times(
            "T4-16G", 16, int(batches[i]), np.array([contexts[i]])
        )
        np.testing.assert_array_equal(vec[i], scalar[0])


def test_latency_scalar_batch_unchanged_by_vector_support():
    """Scalar batch stays the original code path: same rows as a
    constant vector of that batch."""
    m = _toy_latency_model()
    contexts = np.array([32.0, 100.0, 257.0])
    a = m.decode_step_times("T4-16G", 16, 4, contexts)
    b = m.decode_step_times("T4-16G", 16, np.array([4, 4, 4]), contexts)
    np.testing.assert_array_equal(a, b)
