"""Cost-drift guard: every consumer prices plans through StageCostModel.

Three layers of protection:

* **Golden byte-identity** — the committed
  ``tests/data/costview_golden.json`` was captured from the pre-refactor
  code (each consumer still carrying its private pricing copy) with the
  ``kernels`` source; the refactored stack must reproduce every float bit
  for bit.
* **Model-source oracle** — the fitted-latency-model path is checked in
  the same run against the pre-refactor formulas re-derived inline from
  the raw :class:`LatencyModel`, again with exact ``==``.
* **Cross-path equality** — planner tables, simulator stage times, DES,
  scheduler admission and the online helpers must all resolve to the same
  floats (the Sec.-4.1 "one cost model" property the CI step pins).
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cost.predictions import PredictionCache
from repro.cost.stagecosts import StageCostModel, planner_time_tables
from repro.sim.comm import boundary_links, stage_comm_time
from repro.sim.kernels import embedding_exec_time
from repro.sim.pipeline import simulate_pipeline
from repro.sim.pipeline_des import simulate_pipeline_des

from .costview_cases import canned_trace, compute_snapshot, mb1_plan, mixed_plan

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "costview_golden.json"


# ---------------------------------------------------------------------------
# layer 1: pre-refactor kernels-source goldens, bit for bit
# ---------------------------------------------------------------------------


def test_kernels_source_byte_identical_to_prerefactor_golden():
    got = compute_snapshot()
    want = json.loads(GOLDEN.read_text())
    assert got == want


# ---------------------------------------------------------------------------
# layer 2: model source vs the pre-refactor formulas, exact
# ---------------------------------------------------------------------------


def _oracle_stage_times_model(plan, cluster, model, contexts):
    """Pre-refactor analytic-simulator pricing under a fitted model:
    per-stage prefill busy times and the decode context-sweep table,
    re-derived here straight from the LatencyModel the way
    ``sim/pipeline.py`` did before the refactor."""
    cfg = model.cfg
    w = plan.workload
    n = plan.num_stages
    links = boundary_links(cluster, [s.device for s in plan.stages])
    mb_p, mb_d, s = plan.prefill_microbatch, plan.decode_microbatch, w.prompt_len
    pre = np.empty(n)
    dec = np.empty((n, contexts.size))
    for j, stage in enumerate(plan.stages):
        gpu = stage.device.spec
        t = model.predict_layers(gpu, stage.layer_bits, "prefill", mb_p, s, s)
        if j == 0:
            t += embedding_exec_time(gpu, cfg, mb_p, s, with_logits=False)
        if j == n - 1:
            t += embedding_exec_time(gpu, cfg, mb_p, 1, with_logits=True)
        if j < n - 1:
            t += stage_comm_time(links[j], cfg, mb_p, s)
        pre[j] = t
        total = np.zeros_like(contexts, dtype=np.float64)
        for bits, count in stage.bit_counts.items():
            total += count * model.decode_step_times(gpu, bits, mb_d, contexts)
        extra = 0.0
        if j == 0:
            extra += embedding_exec_time(gpu, cfg, mb_d, 1, with_logits=False)
        if j == n - 1:
            extra += embedding_exec_time(gpu, cfg, mb_d, 1, with_logits=True)
        row = total + extra
        row = row + stage_comm_time(links[j], cfg, mb_d, 1)
        dec[j] = row
    return pre, dec


@pytest.mark.parametrize("case", [mixed_plan, mb1_plan])
def test_model_source_stage_times_match_prerefactor_oracle(
    case, latmodel_cluster3
):
    plan, cluster = case()
    w = plan.workload
    contexts = w.prompt_len + np.arange(1, w.decode_passes + 1, dtype=np.float64)
    oracle_pre, oracle_dec = _oracle_stage_times_model(
        plan, cluster, latmodel_cluster3, contexts
    )
    scm = StageCostModel(plan, cluster, latency_model=latmodel_cluster3)
    assert scm.source == "model"
    got_pre = scm.stage_prefill_times()
    got_dec = scm.stage_decode_times(contexts)
    assert np.array_equal(got_pre, oracle_pre)
    assert np.array_equal(got_dec, oracle_dec)
    # and the simulator consumes exactly these tables
    res = simulate_pipeline(plan, cluster, latency_model=latmodel_cluster3)
    m_p = -(-w.global_batch // plan.prefill_microbatch)
    assert res.prefill_latency == float(
        oracle_pre.sum() + (m_p - 1) * oracle_pre.max()
    )
    for j, r in enumerate(res.stage_reports):
        assert r.prefill_time == oracle_pre[j]
        assert r.decode_time_first == oracle_dec[j, 0]
        assert r.decode_time_last == oracle_dec[j, -1]


# ---------------------------------------------------------------------------
# layer 3: cross-path equalities
# ---------------------------------------------------------------------------


def test_unit_decode_fast_path_bitwise_equals_scalar_reference():
    """The precomputed-constant vectorized decode-unit path (the online
    continuous fast path) must be bitwise equal to the per-layer scalar
    walk it replaced, for any (batch, context)."""
    plan, cluster = mixed_plan()
    fast = StageCostModel(plan, cluster)  # kernels + caching -> fast path
    slow = StageCostModel(plan, cluster, cache=False)  # scalar reference
    for batch in (1, 2, 5, 16):
        for context in (33.0, 128.0, 140.0, 1024.0):
            a = fast.unit_decode_times(batch, context)
            b = slow.unit_decode_times(batch, context)
            assert np.array_equal(a, b), (batch, context)
    # prefill units agree too (same code path, memoized vs not)
    for s in (24, 96, 128):
        assert np.array_equal(
            fast.unit_prefill_times(s), slow.unit_prefill_times(s)
        )


@pytest.mark.parametrize("source", ["kernels", "model"])
def test_analytic_equals_des_on_mb1_plan(source, latmodel_cluster3):
    """With one micro-batch in both phases there is no overlap to model:
    the closed form and the event-driven schedule price the identical
    task chain, at either time source."""
    plan, cluster = mb1_plan()
    model = latmodel_cluster3 if source == "model" else None
    ana = simulate_pipeline(plan, cluster, latency_model=model).total_latency
    des = simulate_pipeline_des(plan, cluster, latency_model=model).total_latency
    assert des == pytest.approx(ana, rel=1e-12)


def test_planner_tables_share_floats_with_cost_model(latmodel_cluster3):
    """The ILP's coefficient blocks and a source="model" StageCostModel
    must literally share floats when handed the same PredictionCache."""
    plan, cluster = mixed_plan()
    w = plan.workload
    cache = PredictionCache(latmodel_cluster3)
    scm = StageCostModel(plan, cluster, prediction_cache=cache)
    bits = (3, 4, 8, 16)
    type_names = [s.device.type_name for s in plan.stages]
    avg_ctx = w.prompt_len + max(w.decode_passes, 1) // 2
    lp, ld = planner_time_tables(
        cache, type_names, bits,
        prefill_microbatch=plan.prefill_microbatch,
        decode_microbatch=plan.decode_microbatch,
        prompt_len=w.prompt_len, avg_context=avg_ctx,
    )
    for j in range(plan.num_stages):
        for k, b in enumerate(bits):
            assert lp[j, k] == scm.layer_time(
                j, b, "prefill", plan.prefill_microbatch, w.prompt_len, w.prompt_len
            )
            assert ld[j, k] == scm.layer_time(
                j, b, "decode", plan.decode_microbatch, 1, avg_ctx
            )
        # a whole shard: the ILP's sum of table cells == the cost model's
        # stage prefill-layers sum (same addition order over layer_bits)
        cells = {b: lp[j, k] for k, b in enumerate(bits)}
        oracle = float(sum(cells[b] for b in plan.stages[j].layer_bits))
        assert oracle == scm._stage_layers_prefill(
            j, plan.prefill_microbatch, w.prompt_len
        )


def test_online_wrappers_delegate_to_cost_model():
    from repro.sim.online import (
        max_admissible_batch,
        request_kv_bytes,
        stage_kv_headroom,
    )

    plan, _cluster = mixed_plan()
    scm = StageCostModel(plan)
    assert np.array_equal(stage_kv_headroom(plan), scm.kv_headroom())
    assert np.array_equal(
        request_kv_bytes(plan, 64, 8), scm.request_kv_bytes(64, 8)
    )
    assert max_admissible_batch(
        plan, prompt_len=128, gen_len=12
    ) == scm.max_admissible_batch(prompt_len=128, gen_len=12)


def test_scheduler_headroom_matches_cost_model(tiny8l):
    """The real runtime's admission ledger prices KV headroom through the
    same StageCostModel view (minus the live dequant-cache budgets)."""
    from repro.core.plan import ExecutionPlan, StagePlan
    from repro.hardware import Device, get_gpu
    from repro.models import TinyDecoderLM
    from repro.runtime import ContinuousScheduler, PipelineRuntime
    from repro.workload import Workload

    stages = tuple(
        StagePlan(Device(get_gpu("T4-16G"), node_id=0, local_rank=i), (16,) * 4)
        for i in range(2)
    )
    plan = ExecutionPlan(
        model_name="tiny-8l", stages=stages,
        prefill_microbatch=2, decode_microbatch=4,
        workload=Workload(prompt_len=12, gen_len=8, global_batch=8),
    )
    with PipelineRuntime(TinyDecoderLM(tiny8l, seed=3), plan) as rt:
        sched = ContinuousScheduler(rt)
        expected = StageCostModel(rt.plan, cfg=rt.cfg).kv_headroom(
            [c.budget_bytes for c in rt.dequant_caches]
        )
        assert np.array_equal(sched.headroom, expected)
        charge = sched.cost.request_kv_bytes(12, 8)
        assert np.array_equal(
            charge, StageCostModel(rt.plan, cfg=rt.cfg).request_kv_bytes(12, 8)
        )


def test_wave_derive_shares_parent_memos():
    plan, cluster = mixed_plan()
    parent = StageCostModel(plan, cluster)
    parent.comm_time(0, plan.prefill_microbatch, plan.workload.prompt_len)
    from dataclasses import replace

    reshaped = replace(
        plan, workload=replace(plan.workload, global_batch=3),
        prefill_microbatch=2, decode_microbatch=3,
    )
    child = parent.derive(reshaped)
    assert child._comm_memo is parent._comm_memo
    assert child._emb_memo is parent._emb_memo
    # a different-stages plan is refused
    other, _ = mb1_plan()
    with pytest.raises(ValueError, match="identical stages"):
        parent.derive(other)


def test_online_results_identical_with_shared_cost_model():
    """Passing an externally built (and warm) cost model must not change
    a single float of the online result."""
    from repro.sim.online import simulate_online

    plan, cluster = mixed_plan()
    trace = canned_trace()
    base = simulate_online(plan, cluster, trace, policy="continuous")
    scm = StageCostModel(plan, cluster)
    scm.unit_decode_times(3, 200.0)  # pre-warm with unrelated queries
    shared = simulate_online(
        plan, cluster, trace, policy="continuous", cost_model=scm
    )
    assert base == shared


# ---------------------------------------------------------------------------
# satellite 6: workload/cost imports stay free of the sim stack
# ---------------------------------------------------------------------------


def test_workload_and_cost_import_without_sim():
    code = (
        "import sys\n"
        "import repro\n"
        "assert 'repro.core' not in sys.modules, 'repro eagerly imports core'\n"
        "import repro.workload\n"
        "import repro.cost\n"
        "bad = [m for m in sys.modules if m.startswith('repro.sim')]\n"
        "assert not bad, f'sim leaked via {bad}'\n"
        "assert 'repro.core' not in sys.modules\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
