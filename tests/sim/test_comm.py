"""Unit tests for inter-stage communication costs."""

import pytest

from repro.hardware import make_cluster
from repro.hardware.interconnect import ETHERNET_100G, PCIE_GEN3
from repro.models import get_model
from repro.sim.comm import activation_bytes, boundary_links, stage_comm_time


def test_activation_bytes():
    cfg = get_model("opt-13b")
    assert activation_bytes(cfg, 8, 512) == 8 * 512 * cfg.hidden_size * 2


def test_stage_comm_time_uses_alpha_beta():
    cfg = get_model("opt-13b")
    nbytes = activation_bytes(cfg, 8, 512)
    t = stage_comm_time(ETHERNET_100G, cfg, 8, 512)
    assert t == pytest.approx(ETHERNET_100G.latency + nbytes / ETHERNET_100G.bandwidth)


def test_boundary_links_structure():
    c = make_cluster([("T4-16G", 2), ("V100-32G", 1)])
    devices = list(c.devices)
    links = boundary_links(c, devices)
    assert len(links) == 3  # 2 forward boundaries + token feedback
    assert links[0] is PCIE_GEN3  # intra T4 node
    assert links[1] is c.inter_node_link
    assert links[2] is c.inter_node_link  # V100 -> T4 feedback


def test_single_device_feedback_is_loopback():
    c = make_cluster([("V100-32G", 1)])
    links = boundary_links(c, list(c.devices))
    assert len(links) == 1
    assert links[0].name == "loopback"
