"""Unit tests for the consolidated percentile helpers (repro.stats)."""

import math
import warnings

import numpy as np

from repro import stats


def test_quantile_matches_numpy_on_clean_data():
    v = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert stats.quantile(v, q) == float(np.quantile(v, q))


def test_percentile_matches_numpy_on_clean_data():
    v = [0.5, 2.5, 1.5, 10.0]
    for q in (50, 95, 99):
        assert stats.percentile(v, q) == float(np.percentile(v, q))


def test_empty_conventions():
    """Simulator paths read empty as inf; runtime reports as 0."""
    empty = np.empty(0)
    assert stats.quantile(empty, 0.99) == float("inf")
    assert stats.percentile(empty, 99) == 0.0
    assert stats.mean(empty) == 0.0
    assert stats.quantile([], 0.5, empty=-1.0) == -1.0
    assert stats.percentile([], 50, empty=float("nan")) != stats.percentile([], 50, empty=0.0)


def test_empty_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        stats.quantile(np.empty(0), 0.5)
        stats.percentile([], 99)
        stats.mean([])


def test_nan_samples_are_dropped():
    v = [1.0, float("nan"), 3.0]
    assert stats.quantile(v, 0.5) == 2.0
    assert stats.percentile(v, 50) == 2.0
    assert stats.mean(v) == 2.0


def test_all_nan_counts_as_empty():
    v = [float("nan"), float("nan")]
    assert math.isinf(stats.quantile(v, 0.99))
    assert stats.percentile(v, 99) == 0.0
    assert stats.mean(v) == 0.0


def test_accepts_lists_tuples_and_arrays():
    assert stats.mean((1.0, 2.0, 3.0)) == 2.0
    assert stats.quantile([5.0], 0.99) == 5.0
    assert stats.percentile(np.array([5.0]), 1) == 5.0
