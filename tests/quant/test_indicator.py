"""Unit tests for the layer-sensitivity indicators (Sec. 4.2 / Table 6)."""

import numpy as np
import pytest

from repro.models import TinyDecoderLM, calibration_batch, get_model
from repro.quant import (
    IndicatorTable,
    hessian_indicator,
    random_indicator,
    synthetic_indicator,
    variance_indicator,
)


@pytest.fixture(scope="module")
def tiny_model(tiny4l):
    return TinyDecoderLM(tiny4l, seed=0)


@pytest.fixture(scope="module")
def calib(tiny4l):
    return calibration_batch(tiny4l.vocab_size, batch=4, seq_len=16)


@pytest.fixture(scope="module")
def var_table(tiny_model, calib):
    return variance_indicator(tiny_model, calib)


def test_fp16_column_is_zero(var_table):
    np.testing.assert_array_equal(var_table.column(16), 0.0)


def test_omega_monotone_in_bits(var_table):
    assert np.all(var_table.column(3) >= var_table.column(4))
    assert np.all(var_table.column(4) >= var_table.column(8))


def test_lookup_and_shape(var_table, tiny4l):
    assert var_table.num_layers == tiny4l.num_layers
    assert var_table.lookup(0, 4) == var_table.column(4)[0]


def test_normalized_4bit_column_sums_to_one(var_table):
    n = var_table.normalized()
    assert n.column(4).sum() == pytest.approx(1.0)
    # relative ordering preserved
    np.testing.assert_allclose(
        n.omega / max(n.omega.max(), 1e-12),
        var_table.omega / max(var_table.omega.max(), 1e-12),
    )


def test_grouped_sums(var_table):
    g = var_table.grouped(2)
    assert g.num_layers == (var_table.num_layers + 1) // 2
    assert g.column(4)[0] == pytest.approx(var_table.column(4)[:2].sum())
    # group_size 1 is a no-op
    assert var_table.grouped(1) is var_table


def test_validation():
    with pytest.raises(ValueError, match="num_bits"):
        IndicatorTable(omega=np.zeros((4, 2)), bits=(3, 4, 8), method="x")
    with pytest.raises(ValueError, match="non-negative"):
        IndicatorTable(omega=-np.ones((2, 1)), bits=(4,), method="x")


def test_hessian_indicator_nonzero_and_slower(tiny_model, calib, var_table):
    h = hessian_indicator(tiny_model, calib)
    assert np.any(h.omega > 0)
    np.testing.assert_array_equal(h.column(16), 0.0)
    # Table 6: Hessian costs orders of magnitude more than the variance
    # indicator; on the tiny model we just require clearly slower.
    assert h.overhead_seconds > 5 * var_table.overhead_seconds


def test_random_indicator_layer_ranking_varies_with_seed():
    a = random_indicator(8, seed=0)
    b = random_indicator(8, seed=1)
    assert not np.array_equal(a.column(4), b.column(4))
    # monotone in bits even when random across layers
    assert np.all(a.column(3) >= a.column(4))
    np.testing.assert_array_equal(a.column(16), 0.0)


def test_synthetic_indicator_matches_model_shape():
    cfg = get_model("opt-13b")
    s = synthetic_indicator(cfg)
    assert s.num_layers == cfg.num_layers
    # Table-1 structure: later layers are more sensitive
    assert s.column(4)[-1] > s.column(4)[0]
    assert np.all(s.column(3) >= s.column(4))


def test_variance_indicator_tracks_weight_magnitude(tiny_model, calib):
    """Blowing up one layer's weights must raise its omega (S_W^2 term)."""
    boosted = tiny_model.clone()
    boosted.apply_to_layer(2, lambda n, w: w * 4.0)
    base = variance_indicator(tiny_model, calib)
    boost = variance_indicator(boosted, calib)
    gain = boost.column(4) / np.maximum(base.column(4), 1e-18)
    assert np.argmax(gain) == 2
    assert gain[2] > 4.0


def test_indicator_json_roundtrip(tmp_path, var_table):
    path = tmp_path / "omega.json"
    var_table.to_json(path)
    loaded = type(var_table).from_json(path)
    np.testing.assert_allclose(loaded.omega, var_table.omega)
    assert loaded.bits == var_table.bits
    assert loaded.method == var_table.method
    # string form round-trips too
    loaded2 = type(var_table).from_json(var_table.to_json())
    np.testing.assert_allclose(loaded2.omega, var_table.omega)


# ---------------------------------------------------------------------------
# KV-cache error indicators (the kv_bits planner dimension)
# ---------------------------------------------------------------------------


def test_kv_error_indicator_measured_on_model(tiny_model, calib):
    from repro.quant import kv_error_indicator

    t = kv_error_indicator(tiny_model, calib)
    assert t.method == "kv-error"
    assert t.num_layers == tiny_model.cfg.num_layers
    # fp16 KV is lossless; coarser KV hurts more
    assert np.all(t.column(16) == 0.0)
    assert np.all(t.column(4) > t.column(8))
    assert np.all(t.column(8) > 0.0)


def test_synthetic_kv_indicator_shape_and_ordering():
    from repro.quant import synthetic_kv_indicator

    cfg = get_model("opt-13b")
    t = synthetic_kv_indicator(cfg)
    assert t.num_layers == cfg.num_layers
    assert np.all(t.column(16) == 0.0)
    assert np.all(t.column(4) > t.column(8))
    # later layers see wider activations, hence larger KV error
    assert t.column(4)[-1] > t.column(4)[0]
