"""Property tests for Theorem 1 (variance inflation bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    ActivationStats,
    g_deterministic,
    g_stochastic,
    measured_variance_inflation,
    variance_inflation_bound,
)


def test_g_functions():
    stats = ActivationStats(mean=0.5, var=2.0)
    assert g_deterministic(stats) == pytest.approx(0.5)
    assert g_stochastic(stats) == pytest.approx((0.25 + 2.0) / 6)
    assert stats.second_moment == pytest.approx(2.25)


def test_from_samples():
    x = np.array([1.0, 3.0])
    stats = ActivationStats.from_samples(x)
    assert stats.mean == 2.0 and stats.var == 1.0


def test_bound_validation():
    stats = ActivationStats(0.0, 1.0)
    with pytest.raises(ValueError, match="d_w"):
        variance_inflation_bound(0, 0.1, stats)
    with pytest.raises(ValueError, match="rounding"):
        variance_inflation_bound(4, 0.1, stats, rounding="banker")


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sampled_from([3, 4]),
    seed=st.integers(0, 2000),
)
def test_deterministic_inflation_below_bound(bits, seed):
    """Theorem 1 (deterministic): measured inflation <= worst-case bound.

    Checked where the inflation signal dominates sampling noise (3/4
    bits); at 8 bits the inflation is smaller than the finite-sample
    noise of the variance estimator, covered by the test below.
    """
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.02, size=(48, 32))
    x = rng.normal(0.1, 1.0, size=(512, 48))
    inflation, bound = measured_variance_inflation(
        w, x, bits, rounding="deterministic", seed=seed
    )
    assert inflation <= bound + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_eight_bit_near_lossless(seed):
    """At 8 bits the inflation is negligible relative to the output
    variance itself (the reason the paper treats INT8 as quality-free)."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.02, size=(48, 32))
    x = rng.normal(0.1, 1.0, size=(512, 48))
    inflation, _ = measured_variance_inflation(w, x, 8, seed=seed)
    out_var = float((x @ w).var())
    # a few parts in a thousand of the output variance — sampling noise
    # of the variance estimator dominates the true inflation at 8 bits
    assert abs(inflation) < 3e-3 * out_var


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sampled_from([3, 4]),
    seed=st.integers(0, 2000),
)
def test_stochastic_inflation_near_expected_bound(bits, seed):
    """Theorem 1 (stochastic) holds in expectation over fractional parts;
    a single draw may exceed the 1/6 expected-case constant but never the
    1/4 worst case (a 1.5x factor)."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.02, size=(48, 32))
    x = rng.normal(0.1, 1.0, size=(512, 48))
    inflation, bound = measured_variance_inflation(
        w, x, bits, rounding="stochastic", seed=seed
    )
    assert inflation <= 1.5 * bound + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_bound_monotone_in_bits(seed):
    """Fewer bits -> larger scale -> larger bound."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.02, size=(32, 16))
    x = rng.normal(0.0, 1.0, size=(128, 32))
    bounds = {}
    for bits in (3, 4, 8):
        _, bounds[bits] = measured_variance_inflation(w, x, bits)
    assert bounds[3] > bounds[4] > bounds[8]


def test_inflation_scales_with_input_dimension():
    """The D_W factor: doubling fan-in roughly doubles the bound."""
    rng = np.random.default_rng(0)
    stats = ActivationStats(0.0, 1.0)
    b_small = variance_inflation_bound(32, 0.01, stats)
    b_big = variance_inflation_bound(64, 0.01, stats)
    assert b_big == pytest.approx(2 * b_small)
