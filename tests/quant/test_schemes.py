"""Unit tests for the Sec.-7 candidate quantization schemes."""

import numpy as np
import pytest

from repro.quant.quantizer import quantize_dequantize
from repro.quant.schemes import (
    awq_quantize_dequantize,
    double_quantize_scales,
    spqr_quantize,
)


def _skewed_problem(seed=0, d=64, o=48, n=256):
    """Weights + activations with strongly skewed channel magnitudes —
    the regime AWQ is built for."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.05, size=(d, o))
    chan_scale = np.exp(rng.normal(0, 1.2, size=d))  # heavy channel skew
    x = rng.normal(0, 1.0, size=(n, d)) * chan_scale
    return w, x


def _weighted_err(w, w_hat, x):
    return float(np.square(x @ (w - w_hat)).sum())


class TestAWQ:
    def test_beats_rtn_on_skewed_activations(self):
        w, x = _skewed_problem()
        for bits in (3, 4):
            rtn = quantize_dequantize(w, bits)
            awq = awq_quantize_dequantize(w, x, bits)
            assert _weighted_err(w, awq, x) < _weighted_err(w, rtn, x)

    def test_alpha_zero_equals_rtn(self):
        w, x = _skewed_problem(seed=1)
        awq0 = awq_quantize_dequantize(w, x, 4, alpha=0.0)
        rtn = quantize_dequantize(w, 4)
        np.testing.assert_allclose(awq0, rtn, atol=1e-12)

    def test_validation(self):
        w, x = _skewed_problem()
        with pytest.raises(ValueError, match="alpha"):
            awq_quantize_dequantize(w, x, 4, alpha=2.0)
        with pytest.raises(ValueError, match="\\(N, D\\)"):
            awq_quantize_dequantize(w, x[:, :-1], 4)


class TestSpQR:
    def test_outliers_kept_exactly(self):
        rng = np.random.default_rng(2)
        w = rng.normal(0, 0.02, size=(32, 32))
        w[3, 5] = 5.0  # a monster outlier
        res = spqr_quantize(w, 3, outlier_fraction=0.01)
        assert res.w_hat[3, 5] == 5.0

    def test_error_shrinks_with_outlier_budget(self):
        rng = np.random.default_rng(3)
        # heavy-tailed weights: exactly where outliers matter
        w = rng.standard_t(df=2, size=(64, 48)) * 0.02
        errs = []
        for frac in (0.0, 0.01, 0.05):
            res = spqr_quantize(w, 3, outlier_fraction=frac)
            errs.append(float(np.abs(res.w_hat - w).max()))
        assert errs[2] < errs[1] < errs[0]

    def test_storage_accounting(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(64, 64))
        res = spqr_quantize(w, 4, outlier_fraction=0.02)
        assert res.outlier_fraction == pytest.approx(0.02, abs=0.002)
        assert res.dense_bytes == pytest.approx(64 * 64 * 4 / 8 + 64 * 2)
        assert res.outlier_bytes == pytest.approx(round(0.02 * 64 * 64) * 6)
        assert res.total_bytes < w.size * 2  # far below FP16

    def test_validation(self):
        with pytest.raises(ValueError, match="outlier_fraction"):
            spqr_quantize(np.ones((4, 4)), 4, outlier_fraction=1.0)


class TestDoubleQuant:
    def test_metadata_savings(self):
        rng = np.random.default_rng(5)
        scales = np.abs(rng.normal(0.01, 0.002, size=(1, 512)))
        res = double_quantize_scales(scales, meta_bits=8, block=64)
        # FP16 baseline 1024 B -> int8 codes 512 B + 8 blocks x 8 B
        assert res.baseline_bytes == 1024
        assert res.metadata_bytes == 512 + 8 * 8
        assert res.savings_fraction > 0.4

    def test_reconstruction_error_tiny(self):
        rng = np.random.default_rng(6)
        scales = np.abs(rng.normal(0.01, 0.002, size=256))
        res = double_quantize_scales(scales)
        rel = np.abs(res.scales_hat - scales) / scales
        assert rel.max() < 0.02

    def test_constant_block_exact(self):
        scales = np.full(64, 0.25)
        res = double_quantize_scales(scales)
        np.testing.assert_allclose(res.scales_hat, scales)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            double_quantize_scales(np.array([-1.0]))
        with pytest.raises(ValueError, match="block"):
            double_quantize_scales(np.ones(4), block=0)


def test_end_to_end_weight_storage_stack():
    """Compose the schemes: SpQR base + double-quantized scales gives a
    storage budget well under FP16 at near-FP16 fidelity."""
    rng = np.random.default_rng(7)
    w = rng.standard_t(df=3, size=(128, 96)) * 0.02
    res = spqr_quantize(w, 4, outlier_fraction=0.01)
    scales = np.abs(w).max(axis=0) / 7
    dq = double_quantize_scales(scales)
    total = res.dense_bytes + res.outlier_bytes - 96 * 2 + dq.metadata_bytes
    assert total < 0.35 * w.size * 2
    err = np.abs(res.w_hat - w).mean()
    assert err < 0.01 * np.abs(w).max()
