"""Unit + property tests for bit-packing and quantized linear kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    QuantConfig,
    QuantizedLinear,
    pack_codes,
    pack_codes_reference,
    qmax_for_bits,
    quantize,
    unpack_codes,
    unpack_codes_reference,
)


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sampled_from([3, 4, 8]),
    n=st.integers(1, 200),
    seed=st.integers(0, 1000),
)
def test_pack_unpack_roundtrip(bits, n, seed):
    rng = np.random.default_rng(seed)
    qmax = qmax_for_bits(bits)
    codes = rng.integers(-qmax, qmax + 1, size=n).astype(np.int16)
    packed = pack_codes(codes, bits)
    recovered = unpack_codes(packed, bits, n)
    np.testing.assert_array_equal(recovered, codes)


@settings(max_examples=60, deadline=None)
@given(
    bits=st.sampled_from([3, 4, 8]),
    n=st.integers(1, 300),
    seed=st.integers(0, 1000),
)
def test_vectorized_matches_reference_bytes(bits, n, seed):
    """The single-pass pack/unpack must be byte-for-byte the slow oracle."""
    rng = np.random.default_rng(seed)
    qmax = qmax_for_bits(bits)
    codes = rng.integers(-qmax, qmax + 1, size=n).astype(np.int16)
    packed = pack_codes(codes, bits)
    np.testing.assert_array_equal(packed, pack_codes_reference(codes, bits))
    np.testing.assert_array_equal(
        unpack_codes(packed, bits, n), unpack_codes_reference(packed, bits, n)
    )


@pytest.mark.parametrize("bits", [3, 4, 8])
@pytest.mark.parametrize("n", [1, 7, 8, 9, 63, 64, 65, 255])
def test_roundtrip_odd_sizes_and_extremes(bits, n):
    """Sizes straddling byte boundaries, with every code at an extreme."""
    qmax = qmax_for_bits(bits)
    for fill in (-qmax, qmax, 0):
        codes = np.full(n, fill, dtype=np.int16)
        packed = pack_codes(codes, bits)
        np.testing.assert_array_equal(unpack_codes(packed, bits, n), codes)
        np.testing.assert_array_equal(packed, pack_codes_reference(codes, bits))
    # alternating extremes exercises carry across bit boundaries
    codes = np.tile(np.array([-qmax, qmax], dtype=np.int16), (n + 1) // 2)[:n]
    packed = pack_codes(codes, bits)
    np.testing.assert_array_equal(unpack_codes(packed, bits, n), codes)
    np.testing.assert_array_equal(packed, pack_codes_reference(codes, bits))


def test_forward_bias_added_in_place_result():
    """Bias path must match explicit broadcast add exactly."""
    rng = np.random.default_rng(7)
    w = rng.normal(0, 0.05, size=(12, 9))
    bias = rng.normal(0, 0.01, size=9)
    x = rng.normal(size=(4, 12))
    ql = QuantizedLinear.from_float(w, bias, 4)
    np.testing.assert_array_equal(ql.forward(x), x @ ql.dequantized() + bias)
    # and the input is never mutated
    x0 = x.copy()
    ql.forward(x)
    np.testing.assert_array_equal(x, x0)


def test_packed_density():
    codes = np.zeros(64, dtype=np.int16)
    assert pack_codes(codes, 4).nbytes == 32   # two nibbles per byte
    assert pack_codes(codes, 3).nbytes == 24   # 192 bits
    assert pack_codes(codes, 8).nbytes == 64


def test_pack_rejects_wide_codes():
    with pytest.raises(ValueError, match="bits <= 8"):
        pack_codes(np.zeros(4, dtype=np.int16), 16)
    with pytest.raises(ValueError, match="out of range"):
        pack_codes(np.array([100], dtype=np.int16), 3)


def test_quantized_linear_matches_fake_quant():
    rng = np.random.default_rng(0)
    w = rng.normal(0, 0.05, size=(24, 16))
    bias = rng.normal(0, 0.01, size=16)
    x = rng.normal(size=(5, 24))
    for bits in (3, 4, 8):
        ql = QuantizedLinear.from_float(w, bias, bits)
        qt = quantize(w, QuantConfig(bits=bits))
        np.testing.assert_allclose(ql.dequantized(), qt.dequantize(), atol=1e-12)
        np.testing.assert_allclose(ql.forward(x), x @ qt.dequantize() + bias, atol=1e-12)


def test_quantized_linear_fp16_identity():
    rng = np.random.default_rng(1)
    w = rng.normal(size=(8, 8))
    ql = QuantizedLinear.from_float(w, None, 16)
    np.testing.assert_array_equal(ql.dequantized(), w)
    assert ql.weight_nbytes == 8 * 8 * 2


def test_weight_nbytes_scale_with_bits():
    rng = np.random.default_rng(2)
    w = rng.normal(size=(64, 64))
    sizes = {b: QuantizedLinear.from_float(w, None, b).weight_nbytes for b in (3, 4, 8, 16)}
    assert sizes[3] < sizes[4] < sizes[8] < sizes[16]
    # 4-bit: half a byte per weight + 2-byte scale per column
    assert sizes[4] == 64 * 64 // 2 + 64 * 2


def test_from_quantized_constructor():
    rng = np.random.default_rng(3)
    w = rng.normal(size=(10, 6))
    qt = quantize(w, QuantConfig(bits=4))
    ql = QuantizedLinear.from_quantized(qt, None)
    np.testing.assert_allclose(ql.dequantized(), qt.dequantize(), atol=1e-12)
