"""Unit + property tests for the GPTQ implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    calibration_objective,
    gptq_quantize,
    qmax_for_bits,
    rtn_quantize,
)


def _problem(seed: int, d: int = 24, o: int = 16, n: int = 128):
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.05, size=(d, o))
    # correlated calibration inputs (the realistic, GPTQ-favouring case)
    base = rng.normal(0, 1.0, size=(n, d // 2))
    x = np.hstack([base, base + rng.normal(0, 0.3, size=(n, d - d // 2))])
    return w, x


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), bits=st.sampled_from([3, 4]))
def test_gptq_beats_rtn_on_calibration_objective(seed, bits):
    """The whole point of GPTQ: lower ||WX - W_hat X||^2 than RTN."""
    w, x = _problem(seed)
    qg = gptq_quantize(w, x, bits)
    qr = rtn_quantize(w, bits)
    obj_g = calibration_objective(w, qg.dequantize(), x)
    obj_r = calibration_objective(w, qr.dequantize(), x)
    assert obj_g <= obj_r * 1.001


def test_gptq_codes_in_range():
    w, x = _problem(1)
    for bits in (3, 4, 8):
        qt = gptq_quantize(w, x, bits)
        qmax = qmax_for_bits(bits)
        assert qt.codes.max() <= qmax and qt.codes.min() >= -qmax
        assert qt.bits == bits


def test_gptq_validation():
    w, x = _problem(2)
    with pytest.raises(ValueError, match="\\(N, D\\)"):
        gptq_quantize(w, x[:, :-1], 4)
    with pytest.raises(ValueError, match="\\(D, O\\)"):
        gptq_quantize(w[0], x, 4)


def test_rtn_scale_per_channel():
    w, _ = _problem(3)
    qt = rtn_quantize(w, 4)
    assert qt.scale.shape == (1, w.shape[1])


def test_gptq_8bit_near_lossless():
    w, x = _problem(4)
    qt = gptq_quantize(w, x, 8)
    rel = calibration_objective(w, qt.dequantize(), x) / np.square(x @ w).sum()
    assert rel < 1e-4


def test_calibration_objective_zero_for_identical():
    w, x = _problem(5)
    assert calibration_objective(w, w, x) == 0.0
