"""Unit + property tests for the symmetric quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    QuantConfig,
    qmax_for_bits,
    quantize,
    quantize_dequantize,
)


def test_qmax_values():
    assert qmax_for_bits(8) == 127
    assert qmax_for_bits(4) == 7
    assert qmax_for_bits(3) == 3
    with pytest.raises(ValueError):
        qmax_for_bits(1)
    with pytest.raises(ValueError):
        qmax_for_bits(17)


def test_config_validation():
    with pytest.raises(ValueError):
        QuantConfig(bits=8, rounding="nearest")  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        QuantConfig(bits=8, granularity="per_row")  # type: ignore[arg-type]


def test_sixteen_bit_passthrough():
    w = np.random.default_rng(0).normal(size=(8, 8))
    np.testing.assert_array_equal(quantize_dequantize(w, 16), w)


@settings(max_examples=30, deadline=None)
@given(
    bits=st.sampled_from([3, 4, 8]),
    seed=st.integers(0, 1000),
)
def test_roundtrip_error_bounded_by_half_scale(bits, seed):
    """Deterministic rounding error per element is at most scale/2."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.1, size=(16, 12))
    qt = quantize(w, QuantConfig(bits=bits))
    err = np.abs(qt.dequantize() - w)
    assert np.all(err <= qt.scale / 2 + 1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_stochastic_rounding_unbiased(seed):
    """Averaged over many draws, stochastic rounding reproduces w."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.1, size=(4, 4))
    cfg = QuantConfig(bits=4, rounding="stochastic")
    draws = np.stack(
        [
            quantize(w, cfg, rng=np.random.default_rng(seed * 1000 + k)).dequantize()
            for k in range(400)
        ]
    )
    bias = np.abs(draws.mean(axis=0) - w)
    scale = np.abs(w).max(axis=0) / qmax_for_bits(4)
    assert np.all(bias < 0.15 * scale + 1e-9)


def test_stochastic_requires_rng():
    w = np.ones((2, 2))
    with pytest.raises(ValueError, match="rng"):
        quantize(w, QuantConfig(bits=4, rounding="stochastic"))


def test_per_channel_scales_shape():
    w = np.random.default_rng(1).normal(size=(6, 10))
    qt = quantize(w, QuantConfig(bits=4, granularity="per_channel"))
    assert qt.scale.shape == (1, 10)
    qt2 = quantize(w, QuantConfig(bits=4, granularity="per_tensor"))
    assert qt2.scale.ndim == 0


def test_per_channel_beats_per_tensor_on_mixed_scales():
    rng = np.random.default_rng(2)
    w = np.hstack([rng.normal(0, 1.0, (16, 4)), rng.normal(0, 0.01, (16, 4))])
    err_pc = np.abs(
        quantize(w, QuantConfig(bits=4, granularity="per_channel")).dequantize() - w
    ).mean()
    err_pt = np.abs(
        quantize(w, QuantConfig(bits=4, granularity="per_tensor")).dequantize() - w
    ).mean()
    assert err_pc < err_pt


def test_codes_within_signed_range():
    w = np.random.default_rng(3).normal(size=(32, 8))
    for bits in (3, 4, 8):
        qt = quantize(w, QuantConfig(bits=bits))
        qmax = qmax_for_bits(bits)
        assert qt.codes.max() <= qmax and qt.codes.min() >= -qmax


def test_zero_column_handled():
    w = np.zeros((4, 3))
    w[:, 0] = 1.0
    qt = quantize(w, QuantConfig(bits=4))
    np.testing.assert_allclose(qt.dequantize()[:, 1:], 0.0)


def test_packed_size_property():
    w = np.random.default_rng(4).normal(size=(10, 10))
    qt = quantize(w, QuantConfig(bits=3))
    assert qt.nbytes_packed == pytest.approx(100 * 3 / 8)


def test_rejects_3d_input():
    with pytest.raises(ValueError, match="vector or matrix"):
        quantize(np.zeros((2, 2, 2)), QuantConfig(bits=4))


@settings(max_examples=25, deadline=None)
@given(
    bits_lo=st.sampled_from([3, 4]),
    bits_hi=st.sampled_from([8]),
    seed=st.integers(0, 500),
)
def test_more_bits_never_worse(bits_lo, bits_hi, seed):
    """Monotonicity: higher precision gives no larger max error."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.05, size=(12, 12))
    err_lo = np.abs(quantize_dequantize(w, bits_lo) - w).max()
    err_hi = np.abs(quantize_dequantize(w, bits_hi) - w).max()
    assert err_hi <= err_lo + 1e-12
