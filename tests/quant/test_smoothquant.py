"""Unit tests for the SmoothQuant W8A8 path (paper Sec. 2.4)."""

import numpy as np
import pytest

from repro.quant.smoothquant import smooth_factors, smoothquant_matmul, w8a8_matmul


#: outlier channels are a property of the *model*, stable across batches
#: (the observation SmoothQuant's static calibration relies on)
OUTLIER_CHANNELS = (3, 17, 40, 58)


def _outlier_problem(seed=0, n=256, d=64, o=48):
    """Activations with a few huge channels — the W8A8 killer."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1.0, size=(n, d))
    x[:, list(OUTLIER_CHANNELS)] *= 50.0
    w = rng.normal(0, 0.05, size=(d, o))
    return x, w


def _err(x, w, y_hat):
    y = x @ w
    return float(np.square(y - y_hat).sum() / np.square(y).sum())


def test_smoothing_beats_naive_w8a8_on_outliers():
    x, w = _outlier_problem()
    naive = w8a8_matmul(x, w)
    smooth = smoothquant_matmul(x, w, alpha=0.5)
    assert _err(x, w, smooth.y) < 0.25 * _err(x, w, naive.y)


def test_smoothing_identity_transform():
    """diag(s)^-1 then diag(s) must be an exact identity pre-quantization."""
    x, w = _outlier_problem(seed=1)
    s = smooth_factors(x, w)
    np.testing.assert_allclose((x / s) @ (w * s[:, None]), x @ w, rtol=1e-10)


def test_alpha_zero_moves_everything_to_weights():
    x, w = _outlier_problem(seed=2)
    s0 = smooth_factors(x, w, alpha=0.0)
    s1 = smooth_factors(x, w, alpha=1.0)
    # alpha=1 tracks activation maxima; alpha=0 inverse weight maxima
    assert not np.allclose(s0, s1)


def test_w8a8_near_exact_on_benign_activations():
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1.0, size=(128, 32))
    w = rng.normal(0, 0.05, size=(32, 16))
    res = w8a8_matmul(x, w)
    assert _err(x, w, res.y) < 1e-3


def test_metadata_shapes():
    x, w = _outlier_problem(seed=4)
    res = smoothquant_matmul(x, w)
    assert res.y.shape == (x.shape[0], w.shape[1])
    assert res.weight_scale.shape == (1, w.shape[1])
    assert res.act_scale > 0


def test_validation():
    x, w = _outlier_problem(seed=5)
    with pytest.raises(ValueError, match="alpha"):
        smooth_factors(x, w, alpha=1.5)
    with pytest.raises(ValueError, match="matching"):
        smooth_factors(x[:, :-1], w)


def test_static_calibration_close_to_dynamic():
    """Offline smoothing factors from a calibration set work nearly as
    well as per-batch (the production deployment mode)."""
    x_calib, w = _outlier_problem(seed=6)
    x_live, _ = _outlier_problem(seed=7)
    static = smoothquant_matmul(x_live, w, x_calib=x_calib)
    dynamic = smoothquant_matmul(x_live, w)
    assert _err(x_live, w, static.y) < 3 * _err(x_live, w, dynamic.y) + 1e-6


class TestLLMInt8:
    def test_decomposition_rescues_outliers(self):
        from repro.quant.smoothquant import llm_int8_matmul

        x, w = _outlier_problem(seed=8)
        naive = w8a8_matmul(x, w)
        decomposed = llm_int8_matmul(x, w, threshold=6.0)
        assert _err(x, w, decomposed.y) < 0.05 * _err(x, w, naive.y)

    def test_no_outliers_equals_w8a8(self):
        from repro.quant.smoothquant import llm_int8_matmul

        rng = np.random.default_rng(9)
        x = rng.normal(0, 1.0, size=(64, 32))  # no column exceeds 6
        x = np.clip(x, -5.9, 5.9)
        w = rng.normal(0, 0.05, size=(32, 16))
        a = llm_int8_matmul(x, w).y
        b = w8a8_matmul(x, w).y
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_all_outliers_is_exact(self):
        from repro.quant.smoothquant import llm_int8_matmul

        rng = np.random.default_rng(10)
        x = rng.normal(0, 10.0, size=(32, 16)) + 20  # every column huge
        w = rng.normal(0, 0.05, size=(16, 8))
        res = llm_int8_matmul(x, w, threshold=6.0)
        np.testing.assert_allclose(res.y, x @ w, rtol=1e-12)

    def test_validation(self):
        from repro.quant.smoothquant import llm_int8_matmul

        x, w = _outlier_problem(seed=11)
        with pytest.raises(ValueError, match="threshold"):
            llm_int8_matmul(x, w, threshold=0)
        with pytest.raises(ValueError, match="matching"):
            llm_int8_matmul(x[:, :-1], w)
