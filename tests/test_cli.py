"""End-to-end tests for the llmpq-algo / llmpq-dist CLI entry points."""

import json

import pytest

from repro.cli import algo_main, dist_main
from repro.core.plan import ExecutionPlan


@pytest.fixture(scope="module")
def strategy_file(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "strategy.json"
    rc = algo_main([
        "--model-name", "opt-13b",
        "--cluster", "1",
        "--group", "4",
        "--global-bz", "16",
        "--s", "256",
        "--n", "20",
        "-o", str(out),
    ])
    assert rc == 0
    return out


def test_algo_writes_valid_strategy(strategy_file):
    plan = ExecutionPlan.from_json(strategy_file)
    assert plan.model_name == "opt-13b"
    assert plan.num_layers == 40
    data = json.loads(strategy_file.read_text())
    assert data["workload"]["prompt_len"] == 256


def test_dist_simulates_strategy(strategy_file, capsys):
    rc = dist_main(["--strat-file-name", str(strategy_file)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_dist_on_explicit_cluster(strategy_file):
    assert dist_main(["--strat-file-name", str(strategy_file), "--cluster", "1"]) == 0


def test_algo_custom_devices(tmp_path):
    out = tmp_path / "s.json"
    rc = algo_main([
        "--model-name", "opt-13b",
        "--device-names", "T4-16G", "V100-32G",
        "--device-numbers", "1", "1",
        "--group", "4",
        "--global-bz", "8",
        "--s", "128",
        "--n", "10",
        "-o", str(out),
    ])
    assert rc == 0
    plan = ExecutionPlan.from_json(out)
    assert plan.num_stages == 2


def test_algo_requires_cluster_or_devices():
    with pytest.raises(SystemExit):
        algo_main(["--model-name", "opt-13b"])


def test_dist_runs_tiny_model_for_real(tmp_path, capsys):
    """A tiny-model strategy is executed on the actual NumPy runtime."""
    from repro.core.plan import StagePlan
    from repro.hardware import Device, get_gpu
    from repro.workload import Workload

    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    plan = ExecutionPlan(
        model_name="tiny-4l",
        stages=(StagePlan(dev(0), (16, 16)), StagePlan(dev(1), (8, 8))),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=Workload(prompt_len=8, gen_len=4, global_batch=4),
    )
    path = tmp_path / "tiny.json"
    plan.to_json(path)
    assert dist_main(["--strat-file-name", str(path)]) == 0
    assert "tok/s wall" in capsys.readouterr().out


def test_dist_dequant_cache_knob(tmp_path, capsys):
    """--dequant-cache-mb is threaded through to the runtime and the
    hot-path stats line reflects the setting."""
    from repro.core.plan import StagePlan
    from repro.hardware import Device, get_gpu
    from repro.workload import Workload

    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    plan = ExecutionPlan(
        model_name="tiny-4l",
        stages=(StagePlan(dev(0), (4, 4)), StagePlan(dev(1), (8, 8))),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=Workload(prompt_len=8, gen_len=4, global_batch=4),
    )
    path = tmp_path / "tiny.json"
    plan.to_json(path)

    assert dist_main(["--strat-file-name", str(path),
                      "--dequant-cache-mb", "0"]) == 0
    out = capsys.readouterr().out
    assert "hot path:" in out
    assert "budget 0.0 MiB" in out

    assert dist_main(["--strat-file-name", str(path)]) == 0
    out = capsys.readouterr().out
    assert "hot path:" in out
    assert "budget 0.0 MiB" not in out


def test_algo_with_omega_file(tmp_path):
    """The paper's --omega_file flow: precompute an indicator, feed it in."""
    from repro.models import get_model
    from repro.quant import synthetic_indicator

    omega = tmp_path / "omega.json"
    synthetic_indicator(get_model("opt-13b")).to_json(omega)
    out = tmp_path / "s.json"
    rc = algo_main([
        "--model-name", "opt-13b",
        "--cluster", "1",
        "--group", "4",
        "--global-bz", "8",
        "--s", "128",
        "--n", "10",
        "--omega-file", str(omega),
        "-o", str(out),
    ])
    assert rc == 0
    assert ExecutionPlan.from_json(out).num_layers == 40


def _tiny_plan(tmp_path, name="tiny.json"):
    from repro.core.plan import StagePlan
    from repro.hardware import Device, get_gpu
    from repro.workload import Workload

    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    plan = ExecutionPlan(
        model_name="tiny-4l",
        stages=(StagePlan(dev(0), (16, 16)), StagePlan(dev(1), (16, 16))),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=Workload(prompt_len=8, gen_len=4, global_batch=4),
    )
    path = tmp_path / name
    plan.to_json(path)
    return path


def test_dist_missing_strategy_file_friendly_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        dist_main(["--strat-file-name", str(tmp_path / "nope.json")])
    assert "not found" in str(exc.value)
    assert "Traceback" not in capsys.readouterr().err


def test_dist_invalid_json_friendly_error(tmp_path):
    bad = tmp_path / "garbage.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as exc:
        dist_main(["--strat-file-name", str(bad)])
    assert "not valid JSON" in str(exc.value)


def test_dist_unknown_model_friendly_error(tmp_path, strategy_file):
    data = json.loads(strategy_file.read_text())
    data["model_name"] = "opt-999b"
    bad = tmp_path / "unknown_model.json"
    bad.write_text(json.dumps(data))
    with pytest.raises(SystemExit) as exc:
        dist_main(["--strat-file-name", str(bad)])
    assert "unknown" in str(exc.value)


def test_dist_strategy_path_is_directory(tmp_path):
    with pytest.raises(SystemExit) as exc:
        dist_main(["--strat-file-name", str(tmp_path)])
    assert "directory" in str(exc.value)


def test_algo_missing_omega_file_friendly_error(tmp_path):
    with pytest.raises(SystemExit) as exc:
        algo_main([
            "--model-name", "opt-13b", "--cluster", "1",
            "--omega-file", str(tmp_path / "missing.json"),
        ])
    assert "omega file not found" in str(exc.value)


def test_algo_invalid_omega_file_friendly_error(tmp_path):
    omega = tmp_path / "omega.json"
    omega.write_text("[1, 2")
    with pytest.raises(SystemExit) as exc:
        algo_main([
            "--model-name", "opt-13b", "--cluster", "1",
            "--omega-file", str(omega),
        ])
    assert "invalid omega file" in str(exc.value)


def test_algo_mismatched_omega_file_infeasible(tmp_path):
    """An indicator computed for another depth cannot drive this model."""
    from repro.models import get_model
    from repro.quant import synthetic_indicator

    omega = tmp_path / "omega30.json"
    synthetic_indicator(get_model("opt-30b")).to_json(omega)  # 48 layers
    with pytest.raises(SystemExit) as exc:
        algo_main([
            "--model-name", "opt-13b", "--cluster", "1",
            "--omega-file", str(omega),
        ])
    assert "infeasible" in str(exc.value)


def test_dist_invalid_fault_spec_exits_nonzero(tmp_path, capsys):
    path = _tiny_plan(tmp_path)
    rc = dist_main(["--strat-file-name", str(path),
                    "--fault-spec", "explode:stage=1"])
    assert rc == 2
    assert "invalid --fault-spec" in capsys.readouterr().err


def test_dist_recovers_from_injected_crash(tmp_path, capsys):
    """The CLI serves through an injected crash and reports recovery."""
    path = _tiny_plan(tmp_path)
    rc = dist_main(["--strat-file-name", str(path),
                    "--fault-spec", "crash:stage=1,at=2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "tok/s wall" in out
    assert "recovery:" in out
    assert "1 retries" in out


def test_dist_no_recovery_fails_with_exit_3(tmp_path, capsys):
    path = _tiny_plan(tmp_path)
    rc = dist_main(["--strat-file-name", str(path),
                    "--fault-spec", "crash:stage=0,at=1,repeat=1",
                    "--no-recovery"])
    assert rc == 3
    assert "serving failed" in capsys.readouterr().err


def test_dist_fault_spec_from_env(tmp_path, capsys, monkeypatch):
    path = _tiny_plan(tmp_path)
    monkeypatch.setenv("REPRO_FAULTS", "slow:stage=0,delay=0.001,every=2")
    rc = dist_main(["--strat-file-name", str(path)])
    assert rc == 0
    assert "recovery:" in capsys.readouterr().out


def test_dist_rejects_invalid_strategy(tmp_path, capsys):
    """Pre-flight validation: an OOM-bound strategy exits with code 2."""
    from repro.hardware import paper_cluster
    from repro.workload import Workload

    w = Workload(prompt_len=512, gen_len=100, global_batch=32)
    cl = paper_cluster(3)
    plan = ExecutionPlan.uniform("opt-30b", cl.devices, w, bits=16)  # OOMs
    path = tmp_path / "bad.json"
    plan.to_json(path)
    rc = dist_main(["--strat-file-name", str(path), "--cluster", "3"])
    assert rc == 2
    assert "oom" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# llmpq-serve (online trace replay)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_strategy_file(tmp_path_factory):
    from repro.core.plan import StagePlan
    from repro.hardware import Device, get_gpu
    from repro.workload import Workload

    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    plan = ExecutionPlan(
        model_name="tiny-4l",
        stages=(StagePlan(dev(0), (16, 16)), StagePlan(dev(1), (8, 8))),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=Workload(prompt_len=12, gen_len=6, global_batch=4),
    )
    path = tmp_path_factory.mktemp("serve") / "tiny.json"
    plan.to_json(path)
    return path


def test_serve_tiny_continuous(tiny_strategy_file, capsys):
    from repro.cli import serve_main

    rc = serve_main([
        "--strat-file-name", str(tiny_strategy_file),
        "--rate", "4", "--duration", "2", "--time-scale", "0",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[continuous]" in out and "0 rejected" in out
    assert "latency p50" in out and "ttft mean" in out


def test_serve_tiny_wave_baseline(tiny_strategy_file, capsys):
    from repro.cli import serve_main

    rc = serve_main([
        "--strat-file-name", str(tiny_strategy_file),
        "--policy", "wave",
        "--rate", "4", "--duration", "2", "--time-scale", "0",
    ])
    assert rc == 0
    assert "[wave]" in capsys.readouterr().out


def test_serve_simulates_big_model(strategy_file, capsys):
    from repro.cli import serve_main

    rc = serve_main([
        "--strat-file-name", str(strategy_file),
        "--cluster", "1",
        "--rate", "1", "--duration", "10",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[continuous]" in out and "reqs" in out


def test_serve_sim_wave_and_des_engines(strategy_file, capsys):
    from repro.cli import serve_main

    for extra in (["--policy", "wave"], ["--engine", "des"]):
        rc = serve_main([
            "--strat-file-name", str(strategy_file),
            "--cluster", "1",
            "--rate", "1", "--duration", "8", *extra,
        ])
        assert rc == 0
    out = capsys.readouterr().out
    assert "[wave]" in out and "[continuous]" in out


def test_serve_trace_file_roundtrip(strategy_file, tmp_path, capsys):
    """--save-trace then --trace-file replays the exact same trace: the
    simulated summary line is byte-identical."""
    from repro.cli import serve_main

    saved = tmp_path / "trace.json"
    base = [
        "--strat-file-name", str(strategy_file),
        "--cluster", "1",
        "--rate", "1", "--duration", "8",
    ]
    assert serve_main([*base, "--save-trace", str(saved)]) == 0
    first = capsys.readouterr().out
    assert saved.exists()
    assert serve_main([*base, "--trace-file", str(saved)]) == 0
    assert capsys.readouterr().out == first


def test_serve_reference_engine_matches_vectorized(strategy_file, capsys):
    """--engine reference runs the scalar oracle; its summary matches the
    default vectorized engine on the same sampled trace."""
    from repro.cli import serve_main

    base = [
        "--strat-file-name", str(strategy_file),
        "--cluster", "1",
        "--rate", "1", "--duration", "8",
    ]
    assert serve_main([*base, "--engine", "reference"]) == 0
    ref = capsys.readouterr().out
    assert serve_main(base) == 0
    assert capsys.readouterr().out == ref


def test_serve_bad_trace_file_friendly_error(strategy_file, tmp_path, capsys):
    from repro.cli import serve_main

    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    with pytest.raises(SystemExit) as exc:
        serve_main([
            "--strat-file-name", str(strategy_file),
            "--cluster", "1", "--trace-file", str(bogus),
        ])
    assert "not a saved arrival trace" in str(exc.value)
    assert "Traceback" not in capsys.readouterr().err


def test_serve_reference_engine_needs_continuous(tiny_strategy_file, capsys):
    from repro.cli import serve_main

    rc = serve_main([
        "--strat-file-name", str(tiny_strategy_file),
        "--policy", "wave", "--engine", "reference",
    ])
    assert rc == 2
    assert "continuous" in capsys.readouterr().err


def test_serve_rejects_bad_rate(tiny_strategy_file, capsys):
    from repro.cli import serve_main

    assert serve_main([
        "--strat-file-name", str(tiny_strategy_file), "--rate", "0",
    ]) == 2
    assert "must be positive" in capsys.readouterr().err


def test_serve_missing_strategy_friendly_error(tmp_path, capsys):
    from repro.cli import serve_main

    with pytest.raises(SystemExit) as exc:
        serve_main(["--strat-file-name", str(tmp_path / "nope.json")])
    assert "not found" in str(exc.value)
    assert "Traceback" not in capsys.readouterr().err


def test_serve_sim_cost_source_model(strategy_file, capsys):
    """--cost-source model prices the online simulator with an on-the-fly
    fitted latency model instead of the roofline kernels."""
    from repro.cli import serve_main

    rc = serve_main([
        "--strat-file-name", str(strategy_file),
        "--cluster", "1",
        "--rate", "1", "--duration", "5",
        "--cost-source", "model",
    ])
    assert rc == 0
    assert "reqs" in capsys.readouterr().out


def test_algo_cost_source_model(tmp_path, capsys):
    out = tmp_path / "s.json"
    rc = algo_main([
        "--model-name", "opt-13b",
        "--device-names", "T4-16G", "V100-32G",
        "--device-numbers", "1", "1",
        "--group", "4",
        "--global-bz", "8",
        "--s", "128",
        "--n", "10",
        "--cost-source", "model",
        "-o", str(out),
    ])
    assert rc == 0
    assert "predicted" in capsys.readouterr().out
