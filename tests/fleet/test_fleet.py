"""Fleet layer: 1-replica byte-identity, routing determinism, pool
disaggregation, and autoscaler hysteresis.

The load-bearing contract is the degenerate case: a fleet of one
replica must be *byte-identical* to the single-pipeline paths it wraps
— every ``OnlineResult`` field against the simulator, every generated
token stream against the real scheduler+runtime.  On top of that the
router must break ties deterministically (lowest replica id), an empty
or all-draining fleet must reject rather than crash, and the autoscaler
must not flap on a constant-rate trace.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, StagePlan
from repro.fleet import (
    POOL_DECODE,
    POOL_PREFILL,
    AutoscaleConfig,
    FleetAutoscaler,
    ReplicaLoad,
    Router,
    RuntimeReplica,
    SimReplica,
    serve_fleet,
    serve_fleet_runtime,
)
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM
from repro.runtime.scheduler import (
    ContinuousScheduler,
    PipelineRuntime,
    ServeRequest,
)
from repro.sim.online import simulate_online
from repro.workload import Workload
from repro.workload.traces import ArrivalTrace

from ..sim.costview_cases import mixed_plan

PLAN, CLUSTER = mixed_plan()


def _trace(n=400, seed=0, span=60.0, max_prompt=96, max_gen=24):
    rng = np.random.default_rng(seed)
    return ArrivalTrace(
        arrivals=np.sort(rng.uniform(0.0, span, n)),
        prompt_lens=rng.integers(8, max_prompt, n),
        gen_lens=rng.integers(4, max_gen, n),
    )


# ---------------------------------------------------------------------------
# 1-replica byte-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["analytic", "des"])
def test_single_replica_identical_to_simulator(engine):
    """A 1-replica fleet is the simulator: every OnlineResult field."""
    trace = _trace()
    direct = simulate_online(
        PLAN, CLUSTER, trace, policy="continuous", engine=engine
    )
    rep = SimReplica(0, PLAN, CLUSTER, engine=engine)
    fr = serve_fleet([rep], trace)
    assert len(fr.replica_results) == 1
    wrapped = fr.replica_results[0].online
    for f in dataclasses.fields(type(direct)):
        a, b = getattr(direct, f.name), getattr(wrapped, f.name)
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=f.name)
        else:
            assert a == b, f.name
    assert fr.completed == direct.completed
    assert fr.rejected == direct.rejected
    assert fr.n_requests == len(trace)


def _tiny_plan(workload):
    dev = lambda i: Device(get_gpu("T4-16G"), node_id=0, local_rank=i)
    return ExecutionPlan(
        model_name="tiny-8l",
        stages=(StagePlan(dev(0), (16, 16, 8, 8)), StagePlan(dev(1), (8, 8, 4, 4))),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=workload,
    )


def _tiny_requests(cfg, n=9, seed=5):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        s = int(rng.integers(4, 13))
        g = int(rng.integers(2, 8))
        prompt = rng.integers(0, cfg.vocab_size, size=s, dtype=np.int64)
        out.append(
            ServeRequest(request_id=i, prompt=prompt, gen_len=g, arrival=0.0)
        )
    return out


def test_single_replica_identical_to_runtime(tiny8l):
    """A 1-replica runtime fleet streams the same tokens as a direct
    scheduler run over the same requests."""
    plan = _tiny_plan(Workload(prompt_len=12, gen_len=8, global_batch=8))
    ref = TinyDecoderLM(tiny8l, seed=3)
    requests = _tiny_requests(tiny8l)

    with PipelineRuntime(ref, plan) as rt:
        direct = ContinuousScheduler(rt, time_scale=0.0).serve(list(requests))

    rep = RuntimeReplica(0, ref, plan, time_scale=0.0)
    fr = serve_fleet_runtime([rep], requests)
    report = fr.replica_results[0].report

    assert len(report.completed) == len(direct.completed)
    direct_tokens = {r.request_id: r.tokens for r in direct.completed}
    for rec in report.completed:
        np.testing.assert_array_equal(rec.tokens, direct_tokens[rec.request_id])
    assert fr.completed == len(direct.completed)
    assert fr.generated_tokens == direct.generated_tokens


# ---------------------------------------------------------------------------
# degenerate fleets
# ---------------------------------------------------------------------------


def test_empty_fleet_raises():
    with pytest.raises(ValueError, match="no replicas"):
        serve_fleet([], _trace(20))


def test_duplicate_replica_ids_raise():
    reps = [SimReplica(1, PLAN, CLUSTER), SimReplica(1, PLAN, CLUSTER)]
    with pytest.raises(ValueError, match="duplicate"):
        serve_fleet(reps, _trace(20))


def test_all_draining_rejects_everything():
    trace = _trace(50)
    reps = [SimReplica(i, PLAN, CLUSTER) for i in range(2)]
    for r in reps:
        r.draining = True
    fr = serve_fleet(reps, trace, router="least-loaded")
    assert fr.completed == 0
    assert fr.rejected == len(trace)
    assert fr.ttfts.size == 0


def test_unknown_router_policy_rejected():
    with pytest.raises(ValueError, match="unknown router policy"):
        Router("weighted-lottery")


# ---------------------------------------------------------------------------
# router determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["least-loaded", "ttft"])
def test_router_ties_break_to_lowest_id(policy):
    """Identical fresh replicas tie on every score — the pick must be
    replica 0, not an arbitrary or random member."""
    reps = [SimReplica(i, PLAN, CLUSTER) for i in range(3)]
    loads = [ReplicaLoad(r) for r in reps]
    choice = Router(policy).pick(loads, 0.0, 64, 16)
    assert choice is loads[0]


@pytest.mark.parametrize(
    "policy", ["round-robin", "least-loaded", "ttft", "prefix"]
)
def test_routing_is_reproducible(policy):
    """Two identical runs route identically: same per-replica shares,
    same pooled percentiles."""
    trace = _trace(300, seed=7)

    def run():
        reps = [SimReplica(i, PLAN, CLUSTER) for i in range(3)]
        return serve_fleet(reps, trace, router=policy)

    a, b = run(), run()
    assert [r.routed for r in a.replica_results] == [
        r.routed for r in b.replica_results
    ]
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.ttfts, b.ttfts)
    assert a.gpu_seconds == b.gpu_seconds


def test_prefix_routing_is_sticky():
    """Same prompt length -> same replica, every time."""
    n = 200
    rng = np.random.default_rng(3)
    lens = rng.choice([16, 32, 64], n)
    trace = ArrivalTrace(
        arrivals=np.sort(rng.uniform(0, 120, n)),
        prompt_lens=lens,
        gen_lens=np.full(n, 8),
    )
    reps = [SimReplica(i, PLAN, CLUSTER) for i in range(3)]
    fr = serve_fleet(reps, trace, router="prefix")
    # reconstruct the hash assignment: every distinct length maps to
    # exactly one replica, so routed counts match the length histogram
    from repro.fleet.router import _HASH_MUL

    expect = [0, 0, 0]
    for ln in lens:
        expect[((int(ln) * _HASH_MUL) & 0xFFFFFFFF) % 3] += 1
    assert [r.routed for r in fr.replica_results] == expect


# ---------------------------------------------------------------------------
# prefill/decode disaggregation
# ---------------------------------------------------------------------------


def test_disaggregated_pools_split_by_phase():
    n = 120
    rng = np.random.default_rng(11)
    half = n // 2
    spr = np.concatenate([np.full(half, 64), np.full(half, 8)])
    sgen = np.concatenate([np.full(half, 8), np.full(half, 48)])
    trace = ArrivalTrace(
        arrivals=np.sort(rng.uniform(0, 60, n)), prompt_lens=spr, gen_lens=sgen
    )
    reps = [
        SimReplica(0, PLAN, CLUSTER, pool=POOL_PREFILL),
        SimReplica(1, PLAN, CLUSTER, pool=POOL_DECODE),
    ]
    fr = serve_fleet(reps, trace, router="least-loaded")
    by_pool = {r.pool: r for r in fr.replica_results}
    assert by_pool[POOL_PREFILL].routed == half  # s >= g
    assert by_pool[POOL_DECODE].routed == half   # s < g
    assert fr.rejected == 0


# ---------------------------------------------------------------------------
# autoscaler
# ---------------------------------------------------------------------------


def _uniform_trace(rate, span, s=64, g=16):
    n = int(rate * span)
    return ArrivalTrace(
        arrivals=np.arange(n) / rate,
        prompt_lens=np.full(n, s),
        gen_lens=np.full(n, g),
    )


def test_autoscaler_no_flapping_on_constant_rate():
    """A constant-rate trace whose utilization sits inside the
    (low, high) band must produce zero scale events."""
    rep = SimReplica(0, PLAN, CLUSTER)
    svc = rep.service_seconds(64, 16)
    rate = 0.5 / svc  # rho ~= 0.5 with one active replica
    trace = _uniform_trace(rate, 120.0)
    reps = [rep] + [SimReplica(i, PLAN, CLUSTER) for i in range(1, 3)]
    asc = FleetAutoscaler(AutoscaleConfig(
        window=5.0, high=0.8, low=0.2, hysteresis=2, cooldown=10.0,
    ))
    fr = serve_fleet(reps, trace, router="ttft", autoscaler=asc, active=[0])
    assert fr.scale_events == ()
    assert fr.replica_results[1].routed == 0
    assert fr.replica_results[2].routed == 0


def test_autoscaler_scales_up_under_overload_and_drains_after():
    """3x-overload then trough: scale-ups during the burst, scale-downs
    after, never below min_active, and idle replicas cost no GPU time."""
    rep = SimReplica(0, PLAN, CLUSTER)
    svc = rep.service_seconds(64, 16)
    hot = _uniform_trace(3.0 / svc, 60.0)          # rho ~= 3 on one replica
    cold_rate = 0.1 / svc
    n_cold = int(cold_rate * 120.0)
    cold = ArrivalTrace(
        arrivals=60.0 + np.arange(n_cold) / cold_rate,
        prompt_lens=np.full(n_cold, 64),
        gen_lens=np.full(n_cold, 16),
    )
    trace = ArrivalTrace(
        arrivals=np.concatenate([hot.arrivals, cold.arrivals]),
        prompt_lens=np.concatenate([hot.prompt_lens, cold.prompt_lens]),
        gen_lens=np.concatenate([hot.gen_lens, cold.gen_lens]),
    )
    reps = [rep] + [SimReplica(i, PLAN, CLUSTER) for i in range(1, 4)]
    asc = FleetAutoscaler(AutoscaleConfig(
        window=5.0, high=0.8, low=0.2, hysteresis=2, cooldown=10.0,
    ))
    fr = serve_fleet(reps, trace, router="ttft", autoscaler=asc, active=[0])
    ups = [e for e in fr.scale_events if e.action == "scale-up"]
    downs = [e for e in fr.scale_events if e.action == "scale-down"]
    assert ups, "overload must trigger scale-up"
    assert downs, "trough must trigger scale-down"
    assert all(e.active_after >= 1 for e in downs)
    # scale-ups happen during the burst, drains only after it
    assert max(e.at for e in ups) <= 60.0 + 5.0
    assert min(e.at for e in downs) > 60.0
    # autoscaled GPU time is below always-on provisioning for the fleet
    always_on = fr.makespan * sum(r.num_devices for r in reps)
    assert fr.gpu_seconds < always_on


def test_autoscaler_hysteresis_ignores_single_window_spike():
    """One hot window must not trigger with hysteresis=3."""
    rep = SimReplica(0, PLAN, CLUSTER)
    svc = rep.service_seconds(64, 16)
    spike = _uniform_trace(3.0 / svc, 5.0)          # exactly one window
    tail_rate = 0.5 / svc
    n_tail = int(tail_rate * 115.0)
    trace = ArrivalTrace(
        arrivals=np.concatenate(
            [spike.arrivals, 5.0 + np.arange(n_tail) / tail_rate]
        ),
        prompt_lens=np.full(len(spike) + n_tail, 64),
        gen_lens=np.full(len(spike) + n_tail, 16),
    )
    reps = [rep, SimReplica(1, PLAN, CLUSTER)]
    asc = FleetAutoscaler(AutoscaleConfig(
        window=5.0, high=0.8, low=0.2, hysteresis=3, cooldown=10.0,
    ))
    fr = serve_fleet(reps, trace, router="ttft", autoscaler=asc, active=[0])
    assert not [e for e in fr.scale_events if e.action == "scale-up"]


def test_autoscaler_factory_plans_new_replica():
    """With no idle reserve, scale-up goes through the replica factory,
    which receives the pool name and a workload estimate."""
    rep = SimReplica(0, PLAN, CLUSTER)
    svc = rep.service_seconds(64, 16)
    trace = _uniform_trace(3.0 / svc, 60.0)
    calls = []

    def factory(pool, estimate):
        calls.append((pool, estimate))
        return SimReplica(100 + len(calls), PLAN, CLUSTER)

    asc = FleetAutoscaler(
        AutoscaleConfig(window=5.0, high=0.8, low=0.2, hysteresis=2,
                        cooldown=10.0),
        replica_factory=factory,
    )
    fr = serve_fleet([rep], trace, router="ttft", autoscaler=asc)
    assert calls, "factory must be consulted when the pool is exhausted"
    pool, estimate = calls[0]
    assert pool == "general"
    assert estimate.arrival_rate > 0
    assert estimate.p90_prompt > 0
    built = [r for r in fr.replica_results if r.replica_id >= 100]
    assert built and built[0].routed > 0
