"""Unit tests for the ShareGPT-like prompt trace."""

import numpy as np
import pytest

from repro.workload import sample_sharegpt_like, workloads_from_trace


def test_trace_shape_and_determinism():
    a = sample_sharegpt_like(1000, seed=0)
    b = sample_sharegpt_like(1000, seed=0)
    assert a.size == 1000
    np.testing.assert_array_equal(a.prompt_lens, b.prompt_lens)


def test_substantial_short_fraction():
    """Sec. 2.1's observation: a large share of prompts are short."""
    tr = sample_sharegpt_like(10_000, seed=1)
    assert 0.3 < tr.fraction_short(128) < 0.6


def test_long_tail_capped():
    tr = sample_sharegpt_like(10_000, seed=2, max_prompt=2048)
    assert tr.prompt_lens.max() <= 2048
    assert tr.prompt_lens.min() >= 1
    # heavy tail: some prompts exceed 1024
    assert (tr.prompt_lens > 1024).sum() > 0


def test_workloads_from_trace_buckets():
    tr = sample_sharegpt_like(5000, seed=3)
    ws = workloads_from_trace(tr, batch=16)
    assert ws
    pads = [w.prompt_len for w in ws]
    assert pads == sorted(pads)
    assert all(w.global_batch == 16 for w in ws)
    assert all(w.gen_len >= 1 for w in ws)


def test_mismatched_arrays_rejected():
    from repro.workload import PromptTrace

    with pytest.raises(ValueError):
        PromptTrace(prompt_lens=np.zeros(3), gen_lens=np.zeros(4))
