"""Unit tests for the ShareGPT-like prompt trace."""

import numpy as np
import pytest

from repro.workload import sample_sharegpt_like, workloads_from_trace


def test_trace_shape_and_determinism():
    a = sample_sharegpt_like(1000, seed=0)
    b = sample_sharegpt_like(1000, seed=0)
    assert a.size == 1000
    np.testing.assert_array_equal(a.prompt_lens, b.prompt_lens)


def test_substantial_short_fraction():
    """Sec. 2.1's observation: a large share of prompts are short."""
    tr = sample_sharegpt_like(10_000, seed=1)
    assert 0.3 < tr.fraction_short(128) < 0.6


def test_long_tail_capped():
    tr = sample_sharegpt_like(10_000, seed=2, max_prompt=2048)
    assert tr.prompt_lens.max() <= 2048
    assert tr.prompt_lens.min() >= 1
    # heavy tail: some prompts exceed 1024
    assert (tr.prompt_lens > 1024).sum() > 0


def test_workloads_from_trace_buckets():
    tr = sample_sharegpt_like(5000, seed=3)
    ws = workloads_from_trace(tr, batch=16)
    assert ws
    pads = [w.prompt_len for w in ws]
    assert pads == sorted(pads)
    assert all(w.global_batch == 16 for w in ws)
    assert all(w.gen_len >= 1 for w in ws)


def test_mismatched_arrays_rejected():
    from repro.workload import PromptTrace

    with pytest.raises(ValueError):
        PromptTrace(prompt_lens=np.zeros(3), gen_lens=np.zeros(4))


# ---------------------------------------------------------------------------
# Timed Poisson arrivals (online serving)
# ---------------------------------------------------------------------------


def test_poisson_arrivals_shape_and_bounds():
    from repro.workload import RequestArrival, sample_poisson_arrivals

    arr = sample_poisson_arrivals(rate=2.0, duration=100.0, seed=1)
    assert 120 < len(arr) < 280  # ~200 expected
    times = np.array([r.arrival for r in arr])
    assert np.all(np.diff(times) > 0)
    assert all(isinstance(r, RequestArrival) for r in arr)
    assert all(4 <= r.prompt_len <= 512 for r in arr)
    assert all(4 <= r.gen_len <= 128 for r in arr)


def test_poisson_arrivals_deterministic_and_mixed_lengths():
    from repro.workload import sample_poisson_arrivals

    a = sample_poisson_arrivals(3.0, 50.0, seed=7)
    b = sample_poisson_arrivals(3.0, 50.0, seed=7)
    assert [(r.arrival, r.prompt_len, r.gen_len) for r in a] == [
        (r.arrival, r.prompt_len, r.gen_len) for r in b
    ]
    lens = np.array([r.prompt_len for r in a])
    # the mix must contain both short (<128) and long prompts
    assert (lens < 128).any() and (lens >= 128).any()


def test_poisson_arrivals_caps_and_validation():
    from repro.workload import RequestArrival, sample_poisson_arrivals

    arr = sample_poisson_arrivals(5.0, 40.0, seed=3, max_prompt=64, max_gen=16)
    assert all(r.prompt_len <= 64 and r.gen_len <= 16 for r in arr)
    with pytest.raises(ValueError):
        sample_poisson_arrivals(rate=0.0, duration=10.0)
    with pytest.raises(ValueError):
        sample_poisson_arrivals(rate=1.0, duration=0.0)
    with pytest.raises(ValueError):
        RequestArrival(arrival=-1.0, prompt_len=8, gen_len=4)
    with pytest.raises(ValueError):
        RequestArrival(arrival=0.0, prompt_len=0, gen_len=4)
    with pytest.raises(ValueError):
        RequestArrival(arrival=0.0, prompt_len=8, gen_len=0)
