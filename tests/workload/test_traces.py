"""Unit tests for the ShareGPT-like prompt trace."""

import numpy as np
import pytest

from repro.workload import sample_sharegpt_like, workloads_from_trace


def test_trace_shape_and_determinism():
    a = sample_sharegpt_like(1000, seed=0)
    b = sample_sharegpt_like(1000, seed=0)
    assert a.size == 1000
    np.testing.assert_array_equal(a.prompt_lens, b.prompt_lens)


def test_substantial_short_fraction():
    """Sec. 2.1's observation: a large share of prompts are short."""
    tr = sample_sharegpt_like(10_000, seed=1)
    assert 0.3 < tr.fraction_short(128) < 0.6


def test_long_tail_capped():
    tr = sample_sharegpt_like(10_000, seed=2, max_prompt=2048)
    assert tr.prompt_lens.max() <= 2048
    assert tr.prompt_lens.min() >= 1
    # heavy tail: some prompts exceed 1024
    assert (tr.prompt_lens > 1024).sum() > 0


def test_workloads_from_trace_buckets():
    tr = sample_sharegpt_like(5000, seed=3)
    ws = workloads_from_trace(tr, batch=16)
    assert ws
    pads = [w.prompt_len for w in ws]
    assert pads == sorted(pads)
    assert all(w.global_batch == 16 for w in ws)
    assert all(w.gen_len >= 1 for w in ws)


def test_mismatched_arrays_rejected():
    from repro.workload import PromptTrace

    with pytest.raises(ValueError):
        PromptTrace(prompt_lens=np.zeros(3), gen_lens=np.zeros(4))


# ---------------------------------------------------------------------------
# Timed Poisson arrivals (online serving)
# ---------------------------------------------------------------------------


def test_poisson_arrivals_shape_and_bounds():
    from repro.workload import RequestArrival, sample_poisson_arrivals

    arr = sample_poisson_arrivals(rate=2.0, duration=100.0, seed=1)
    assert 120 < len(arr) < 280  # ~200 expected
    times = np.array([r.arrival for r in arr])
    assert np.all(np.diff(times) > 0)
    assert all(isinstance(r, RequestArrival) for r in arr)
    assert all(4 <= r.prompt_len <= 512 for r in arr)
    assert all(4 <= r.gen_len <= 128 for r in arr)


def test_poisson_arrivals_deterministic_and_mixed_lengths():
    from repro.workload import sample_poisson_arrivals

    a = sample_poisson_arrivals(3.0, 50.0, seed=7)
    b = sample_poisson_arrivals(3.0, 50.0, seed=7)
    assert [(r.arrival, r.prompt_len, r.gen_len) for r in a] == [
        (r.arrival, r.prompt_len, r.gen_len) for r in b
    ]
    lens = np.array([r.prompt_len for r in a])
    # the mix must contain both short (<128) and long prompts
    assert (lens < 128).any() and (lens >= 128).any()


def test_poisson_arrivals_caps_and_validation():
    from repro.workload import RequestArrival, sample_poisson_arrivals

    arr = sample_poisson_arrivals(5.0, 40.0, seed=3, max_prompt=64, max_gen=16)
    assert all(r.prompt_len <= 64 and r.gen_len <= 16 for r in arr)
    with pytest.raises(ValueError):
        sample_poisson_arrivals(rate=0.0, duration=10.0)
    with pytest.raises(ValueError):
        sample_poisson_arrivals(rate=1.0, duration=0.0)
    with pytest.raises(ValueError):
        RequestArrival(arrival=-1.0, prompt_len=8, gen_len=4)
    with pytest.raises(ValueError):
        RequestArrival(arrival=0.0, prompt_len=0, gen_len=4)
    with pytest.raises(ValueError):
        RequestArrival(arrival=0.0, prompt_len=8, gen_len=0)


# ---------------------------------------------------------------------------
# Drift-exercising arrival processes (bursty / diurnal / Pareto)
# ---------------------------------------------------------------------------


def test_bursty_arrivals_deterministic_and_bursty():
    from repro.workload import sample_bursty_arrivals

    a = sample_bursty_arrivals(1.0, 300.0, seed=4, burst_duration=5.0,
                               burst_period=30.0)
    b = sample_bursty_arrivals(1.0, 300.0, seed=4, burst_duration=5.0,
                               burst_period=30.0)
    assert [(r.arrival, r.prompt_len, r.gen_len) for r in a] == [
        (r.arrival, r.prompt_len, r.gen_len) for r in b
    ]
    times = np.array([r.arrival for r in a])
    assert np.all(np.diff(times) > 0)
    # arrivals inside the 5s burst windows run at ~8x the base rate
    in_burst = (times % 30.0) < 5.0
    burst_rate = in_burst.sum() / (300.0 / 30.0 * 5.0)
    base_rate = (~in_burst).sum() / (300.0 / 30.0 * 25.0)
    assert burst_rate > 3.0 * base_rate
    with pytest.raises(ValueError):
        sample_bursty_arrivals(0.0, 10.0)
    with pytest.raises(ValueError):
        sample_bursty_arrivals(1.0, 10.0, burst_duration=30.0, burst_period=30.0)
    with pytest.raises(ValueError):
        sample_bursty_arrivals(2.0, 10.0, burst_rate=1.0)


def test_diurnal_arrivals_follow_the_cycle():
    from repro.workload import sample_diurnal_arrivals

    a = sample_diurnal_arrivals(2.0, 240.0, seed=5, amplitude=0.9, period=120.0)
    b = sample_diurnal_arrivals(2.0, 240.0, seed=5, amplitude=0.9, period=120.0)
    assert [(r.arrival, r.prompt_len) for r in a] == [
        (r.arrival, r.prompt_len) for r in b
    ]
    times = np.array([r.arrival for r in a])
    assert np.all(np.diff(times) > 0)
    # the rising half of the sine carries more arrivals than the falling
    phase = times % 120.0
    day = (phase < 60.0).sum()
    night = (phase >= 60.0).sum()
    assert day > 1.5 * night
    with pytest.raises(ValueError):
        sample_diurnal_arrivals(2.0, 10.0, amplitude=1.0)
    with pytest.raises(ValueError):
        sample_diurnal_arrivals(0.0, 10.0)


def test_pareto_arrivals_heavy_tail():
    from repro.workload import sample_pareto_arrivals

    a = sample_pareto_arrivals(3.0, 200.0, seed=6, shape=1.2)
    b = sample_pareto_arrivals(3.0, 200.0, seed=6, shape=1.2)
    assert [(r.arrival, r.prompt_len, r.gen_len) for r in a] == [
        (r.arrival, r.prompt_len, r.gen_len) for r in b
    ]
    lens = np.array([r.prompt_len for r in a])
    assert lens.min() >= 16 and lens.max() <= 2048
    # heavy tail: the max dwarfs the median, and some prompts blow past 8x
    assert lens.max() > 8 * np.median(lens)
    assert all(r.gen_len >= 4 and r.gen_len <= 512 for r in a)
    with pytest.raises(ValueError):
        sample_pareto_arrivals(1.0, 10.0, shape=0.0)


def test_concat_arrival_phases_offsets_clocks():
    from repro.workload import (
        concat_arrival_phases,
        sample_pareto_arrivals,
        sample_poisson_arrivals,
    )

    calm = sample_poisson_arrivals(1.0, 60.0, seed=1)
    heavy = sample_pareto_arrivals(4.0, 60.0, seed=2)
    trace = concat_arrival_phases([calm, heavy])
    assert len(trace) == len(calm) + len(heavy)
    times = np.array([r.arrival for r in trace])
    assert np.all(np.diff(times) >= 0)  # monotone across the phase seam
    # the second phase really starts after the first ends
    assert trace[len(calm)].arrival > calm[-1].arrival
