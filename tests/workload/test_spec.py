"""Unit tests for workload specs."""

import pytest

from repro.workload import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD, Workload


def test_defaults_match_paper():
    assert DEFAULT_WORKLOAD.prompt_len == 512
    assert DEFAULT_WORKLOAD.gen_len == 100
    assert DEFAULT_WORKLOAD.global_batch == 32
    assert SHORT_PROMPT_WORKLOAD.prompt_len == 128
    assert SHORT_PROMPT_WORKLOAD.gen_len == 200


def test_derived_quantities():
    w = Workload(prompt_len=100, gen_len=10, global_batch=4)
    assert w.max_seq_len == 110
    assert w.total_generated_tokens == 40
    assert w.decode_passes == 9  # prefill yields the first token


def test_validation():
    with pytest.raises(ValueError):
        Workload(prompt_len=0, gen_len=1, global_batch=1)
    with pytest.raises(ValueError):
        Workload(prompt_len=1, gen_len=0, global_batch=1)
    with pytest.raises(ValueError):
        Workload(prompt_len=1, gen_len=1, global_batch=0)


def test_frozen():
    w = Workload(prompt_len=1, gen_len=1, global_batch=1)
    with pytest.raises(AttributeError):
        w.gen_len = 5  # type: ignore[misc]
