"""Quantized linear "kernels": packed storage + numerically real execution.

The runtime executes plans on simulated devices, but the *numerics* are
real: a :class:`QuantizedLinear` stores bit-packed integer codes exactly
as a serving kernel would (4-bit nibbles, 3-bit fields, 8-bit bytes) and
dequantizes on the fly at matmul time.  The packed byte counts feed the
memory bookkeeping; the dequantize-matmul path feeds the quality
measurements.

Packing is a single vectorized pass over a flat little-endian bitstream:
``pack_codes`` explodes each biased code into its ``bits`` low-order bits
with :func:`np.unpackbits` and folds the stream back into bytes with
:func:`np.packbits`; ``unpack_codes`` is the exact inverse.  The original
per-bit-offset loop implementations are kept as ``pack_codes_reference``
/ ``unpack_codes_reference`` equality oracles.

Dequantization is the decode hot path's dominant cost when repeated, so
``dequantized()`` can be served from a
:class:`~repro.runtime.dequant_cache.DequantCache` attached via
:meth:`QuantizedLinear.attach_cache` — with no cache (or a zero-byte
budget) every call re-unpacks, which is the naive baseline behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .quantizer import QuantizedTensor, qmax_for_bits

__all__ = [
    "pack_codes",
    "unpack_codes",
    "pack_codes_reference",
    "unpack_codes_reference",
    "QuantizedLinear",
]


def pack_codes_reference(codes: np.ndarray, bits: int) -> np.ndarray:
    """Original per-bit-offset packing loop, kept as an equality oracle."""
    if bits > 8:
        raise ValueError("pack_codes handles bits <= 8")
    qmax = qmax_for_bits(bits)
    flat = (codes.astype(np.int32).ravel() + qmax).astype(np.uint32)
    if np.any(flat >> bits):
        raise ValueError("codes out of range for bitwidth")
    n = flat.size
    total_bits = n * bits
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    positions = np.arange(n, dtype=np.int64) * bits
    for offset in range(bits):
        bitpos = positions + offset
        byte_idx = bitpos >> 3
        bit_in_byte = bitpos & 7
        bit_vals = ((flat >> offset) & 1).astype(np.uint8)
        np.bitwise_or.at(out, byte_idx, (bit_vals << bit_in_byte).astype(np.uint8))
    return out


def unpack_codes_reference(packed: np.ndarray, bits: int, size: int) -> np.ndarray:
    """Original per-bit-offset unpacking loop, kept as an equality oracle."""
    if bits > 8:
        raise ValueError("unpack_codes handles bits <= 8")
    qmax = qmax_for_bits(bits)
    positions = np.arange(size, dtype=np.int64) * bits
    vals = np.zeros(size, dtype=np.uint32)
    for offset in range(bits):
        bitpos = positions + offset
        byte_idx = bitpos >> 3
        bit_in_byte = bitpos & 7
        bit = (packed[byte_idx] >> bit_in_byte) & 1
        vals |= bit.astype(np.uint32) << offset
    return (vals.astype(np.int32) - qmax).astype(np.int16)


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack signed integer codes into a uint8 buffer.

    Codes are biased to unsigned (``code + qmax``) then written little-
    endian into a flat bitstream.  Works for any ``bits <= 8``; 16-bit
    tensors are stored as int16 directly and never hit this path.

    Byte-identical to :func:`pack_codes_reference` but built from a
    single ``unpackbits``/``packbits`` bit-matrix pass instead of a
    Python loop over bit offsets.
    """
    if bits > 8:
        raise ValueError("pack_codes handles bits <= 8")
    qmax = qmax_for_bits(bits)
    flat = (codes.astype(np.int32).ravel() + qmax).astype(np.uint32)
    if np.any(flat >> bits):
        raise ValueError("codes out of range for bitwidth")
    # each value becomes its `bits` low-order bits, little-endian, so the
    # concatenated rows are exactly the flat bitstream the oracle writes
    bit_rows = np.unpackbits(
        flat.astype(np.uint8)[:, None], axis=1, bitorder="little"
    )[:, :bits]
    return np.packbits(bit_rows.ravel(), bitorder="little")


def unpack_codes(packed: np.ndarray, bits: int, size: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns signed int16 codes.

    Single-pass: the packed bytes are exploded to the little-endian
    bitstream, reshaped to one row of ``bits`` bits per value, and folded
    back to bytes per row — no Python loop over bit offsets.
    """
    if bits > 8:
        raise ValueError("unpack_codes handles bits <= 8")
    qmax = qmax_for_bits(bits)
    stream = np.unpackbits(np.ascontiguousarray(packed), bitorder="little")
    bit_rows = stream[: size * bits].reshape(size, bits)
    padded = np.zeros((size, 8), dtype=np.uint8)
    padded[:, :bits] = bit_rows
    vals = np.packbits(padded, axis=1, bitorder="little")[:, 0]
    return (vals.astype(np.int32) - qmax).astype(np.int16)


@dataclass
class QuantizedLinear:
    """A dense layer held in packed quantized form.

    16-bit layers skip packing and keep the float weights.  ``forward``
    computes ``x @ W_hat + b`` where ``W_hat`` is the dequantized weight —
    numerically identical to what a real weight-only kernel produces.

    ``cache`` / ``cache_key`` are the cached-``W_hat`` slot: when a
    :class:`~repro.runtime.dequant_cache.DequantCache` is attached,
    ``dequantized()`` is served from it (subject to the cache's byte
    budget) instead of re-unpacking the codes on every call.
    """

    shape: tuple[int, int]
    bits: int
    packed: np.ndarray | None
    scale: np.ndarray | None
    bias: np.ndarray | None
    fp_weight: np.ndarray | None = None
    cache: object | None = field(default=None, repr=False, compare=False)
    cache_key: object | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_float(cls, w: np.ndarray, bias: np.ndarray | None, bits: int) -> "QuantizedLinear":
        """Quantize + bit-pack a float weight into kernel storage."""
        w = np.asarray(w, dtype=np.float64)
        if bits >= 16:
            return cls(shape=w.shape, bits=16, packed=None, scale=None,
                       bias=bias, fp_weight=w)
        from .quantizer import QuantConfig, quantize

        qt = quantize(w, QuantConfig(bits=bits))
        if bits <= 8:
            packed = pack_codes(qt.codes, bits)
        else:
            packed = qt.codes.astype(np.int16).view(np.uint8)
        return cls(shape=w.shape, bits=bits, packed=packed, scale=qt.scale, bias=bias)

    @classmethod
    def from_quantized(cls, qt: QuantizedTensor, bias: np.ndarray | None) -> "QuantizedLinear":
        """Wrap an existing quantized tensor (e.g. GPTQ output)."""
        packed = pack_codes(qt.codes, qt.bits) if qt.bits <= 8 else None
        return cls(shape=qt.shape, bits=qt.bits, packed=packed, scale=qt.scale, bias=bias)

    @property
    def weight_nbytes(self) -> int:
        """Actual bytes held for the weight (packed codes or FP16)."""
        if self.bits >= 16:
            return int(np.prod(self.shape)) * 2
        assert self.packed is not None
        meta = 0 if self.scale is None else self.scale.size * 2
        return int(self.packed.nbytes) + meta

    @property
    def dense_nbytes(self) -> int:
        """Bytes of the dequantized ``W_hat`` (float64 in this substrate)."""
        return int(np.prod(self.shape)) * 8

    def attach_cache(self, cache: object, key: object) -> None:
        """Serve ``dequantized()`` from ``cache`` under ``key`` from now on."""
        self.cache = cache
        self.cache_key = key

    def _build_dense(self) -> np.ndarray:
        """Unpack + rescale the packed codes into the dense ``W_hat``."""
        assert self.packed is not None and self.scale is not None
        size = int(np.prod(self.shape))
        if self.bits <= 8:
            codes = unpack_codes(self.packed, self.bits, size)
        else:
            codes = self.packed.view(np.int16)[:size]
        return codes.reshape(self.shape).astype(np.float64) * self.scale

    def dequantized(self) -> np.ndarray:
        """Reconstruct the float weight from packed codes (the kernel math)."""
        if self.bits >= 16:
            assert self.fp_weight is not None
            return self.fp_weight
        if self.cache is not None:
            return self.cache.get(
                self.cache_key, lambda: (self._build_dense(), self.dense_nbytes)
            )
        return self._build_dense()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``x @ W_hat + b`` exactly as a weight-only serving kernel computes."""
        y = x @ self.dequantized()
        if self.bias is not None:
            y += self.bias
        return y
