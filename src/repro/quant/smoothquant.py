"""W8A8 kernel-based quantization (SmoothQuant, Xiao et al., 2023).

The paper's Sec. 2.4 splits LLM quantization into two families: the
weight-only kernels (GPTQ et al., used for 3/4-bit) and **W8A8**
kernel-based schemes that quantize *activations too* so the matmul runs
on INT8 tensor cores.  The W8A8 difficulty is activation outliers: a few
channels are orders of magnitude larger than the rest, and per-tensor
activation quantization destroys them.

SmoothQuant's fix is to migrate quantization difficulty from activations
to weights with a per-channel smoothing factor

``s_c = max|X_c|^alpha / max|W_c|^(1-alpha)``

applied as ``X' = X diag(s)^-1`` and ``W' = diag(s) W`` (mathematically
identity), after which both are INT8-quantized.  This module implements
the real transform; the unit tests verify the claim — smoothing cuts the
W8A8 matmul error on outlier-heavy activations vs naive W8A8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quantizer import qmax_for_bits

__all__ = [
    "smooth_factors",
    "W8A8Result",
    "w8a8_matmul",
    "llm_int8_matmul",
    "smoothquant_matmul",
]


def smooth_factors(
    x_calib: np.ndarray, w: np.ndarray, *, alpha: float = 0.5
) -> np.ndarray:
    """Per-input-channel smoothing scales ``s`` (length ``D``)."""
    x = np.asarray(x_calib, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.shape[1] != w.shape[0]:
        raise ValueError("x_calib must be (N, D) matching w (D, O)")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha in [0, 1]")
    x_max = np.abs(x).max(axis=0)
    w_max = np.abs(w).max(axis=1)
    x_max = np.where(x_max > 0, x_max, 1.0)
    w_max = np.where(w_max > 0, w_max, 1.0)
    s = x_max**alpha / w_max ** (1.0 - alpha)
    return np.where(s > 0, s, 1.0)


@dataclass(frozen=True)
class W8A8Result:
    """An INT8xINT8 matmul's output plus its quantization metadata."""

    y: np.ndarray
    act_scale: float
    weight_scale: np.ndarray


def w8a8_matmul(x: np.ndarray, w: np.ndarray) -> W8A8Result:
    """Naive W8A8: per-tensor INT8 activations x per-channel INT8 weights.

    The integer accumulation is exact (int32 semantics via float64
    integers), so the only error is the quantization itself — like a
    real INT8 tensor-core kernel.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    qmax = qmax_for_bits(8)
    a_scale = max(float(np.abs(x).max()), 1e-12) / qmax
    xq = np.clip(np.rint(x / a_scale), -qmax, qmax)
    w_scale = np.abs(w).max(axis=0, keepdims=True)
    w_scale = np.where(w_scale > 0, w_scale, 1.0) / qmax
    wq = np.clip(np.rint(w / w_scale), -qmax, qmax)
    y = (xq @ wq) * a_scale * w_scale
    return W8A8Result(y=y, act_scale=a_scale, weight_scale=w_scale)


def llm_int8_matmul(
    x: np.ndarray,
    w: np.ndarray,
    *,
    threshold: float = 6.0,
) -> W8A8Result:
    """LLM.int8() decomposition (Dettmers et al., 2022) — the kernel the
    paper actually uses for its INT8 precision (Sec. 2.4).

    Input columns whose absolute maximum exceeds ``threshold`` (the
    emergent outlier features) are computed in FP16; everything else goes
    through the INT8 path.  The two partial products are summed — which
    is why the paper treats INT8 as effectively lossless, at the price of
    the decomposition overhead the device model charges on non-tensor-
    core GPUs.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.shape[1] != w.shape[0]:
        raise ValueError("x must be (N, D) matching w (D, O)")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    outlier = np.abs(x).max(axis=0) > threshold
    y_fp16 = x[:, outlier] @ w[outlier, :]
    if np.all(outlier):
        return W8A8Result(y=y_fp16, act_scale=0.0, weight_scale=np.zeros((1, w.shape[1])))
    base = w8a8_matmul(x[:, ~outlier], w[~outlier, :])
    return W8A8Result(
        y=base.y + y_fp16,
        act_scale=base.act_scale,
        weight_scale=base.weight_scale,
    )


def smoothquant_matmul(
    x: np.ndarray,
    w: np.ndarray,
    *,
    x_calib: np.ndarray | None = None,
    alpha: float = 0.5,
) -> W8A8Result:
    """SmoothQuant W8A8: smooth, then quantize both operands.

    ``x_calib`` defaults to ``x`` itself (static smoothing uses offline
    calibration; passing the live batch reproduces the upper bound).
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    s = smooth_factors(x if x_calib is None else x_calib, w, alpha=alpha)
    res = w8a8_matmul(x / s[None, :], w * s[:, None])
    return res
