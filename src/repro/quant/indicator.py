"""Layer-sensitivity indicators that guide bitwidth selection (Sec. 4.2).

The planner needs, for every decoder layer ``i`` and candidate bitwidth
``b``, a scalar ``omega[i, b]`` quantifying how much quantizing that layer
to ``b`` bits perturbs model quality.  Three generators are provided,
mirroring the paper's Table 6 comparison:

* :func:`variance_indicator` — the paper's contribution (Prop. 2):
  ``omega_{i,b} = sum_o D_{W_o} * S_{W_o}(b)^2 * G(X_o)``, computed from a
  single cheap calibration pass;
* :func:`hessian_indicator` — a HAWQ-style baseline using second-order
  loss curvature per layer, obtained by (expensive) finite-difference
  probes — faithful to its 58-72x higher overhead in Table 6;
* :func:`random_indicator` — the null baseline.

For models too large to run (OPT-13b+), :func:`synthetic_indicator`
evaluates the same Prop.-2 formula on analytically generated weight/
activation statistics whose depth profile matches the measured Table-1
behaviour (later layers are more quantization-sensitive).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..models.config import ModelConfig
from ..models.transformer import TinyDecoderLM
from .quantizer import qmax_for_bits, quantize_dequantize
from .theory import ActivationStats, g_deterministic, g_stochastic

__all__ = [
    "IndicatorTable",
    "variance_indicator",
    "hessian_indicator",
    "random_indicator",
    "synthetic_indicator",
    "kv_error_indicator",
    "synthetic_kv_indicator",
]

DEFAULT_BITS: tuple[int, ...] = (3, 4, 8, 16)

#: Candidate KV-cache bitwidths (16 = fp16 baseline, lossless).
DEFAULT_KV_BITS: tuple[int, ...] = (4, 8, 16)


@dataclass(frozen=True)
class IndicatorTable:
    """Per-(layer, bitwidth) sensitivity scores.

    ``omega`` has shape ``(num_layers, len(bits))``; ``omega[i, j]`` is the
    quality perturbation of putting layer ``i`` at ``bits[j]``.  16-bit
    entries are exactly zero (lossless).  ``overhead_seconds`` records how
    long the indicator took to build (Table 6's overhead column).
    """

    omega: np.ndarray
    bits: tuple[int, ...]
    method: str
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.omega.ndim != 2 or self.omega.shape[1] != len(self.bits):
            raise ValueError("omega must be (num_layers, num_bits)")
        if np.any(self.omega < 0):
            raise ValueError("omega entries must be non-negative")

    @property
    def num_layers(self) -> int:
        """Rows of the omega table (layers or groups)."""
        return int(self.omega.shape[0])

    def lookup(self, layer: int, bits: int) -> float:
        """omega of one (layer, bitwidth) cell."""
        return float(self.omega[layer, self.bits.index(bits)])

    def column(self, bits: int) -> np.ndarray:
        """Per-layer omega at a fixed bitwidth."""
        return self.omega[:, self.bits.index(bits)]

    def normalized(self) -> "IndicatorTable":
        """Rescale so the 4-bit column sums to 1.

        With this convention ``theta`` reads as "seconds of latency I
        would pay to avoid quantizing the *whole* model from FP16 to
        uniform 4-bit", independent of the layer count — which keeps the
        user scalar portable across model sizes (the paper's Table-9
        values span 1..1000 on this kind of scale).
        """
        if 4 not in self.bits:
            return self
        ref = float(self.column(4).sum())
        if ref <= 0:
            return self
        return IndicatorTable(
            omega=self.omega / ref,
            bits=self.bits,
            method=self.method,
            overhead_seconds=self.overhead_seconds,
        )

    # ------------------------------------------------------------------
    # Persistence (the CLI's --omega_file of Sec. 5)
    # ------------------------------------------------------------------
    def to_json(self, path=None) -> str:
        """Serialize to JSON (optionally writing ``path``); the --omega_file format."""
        import json

        payload = {
            "omega": self.omega.tolist(),
            "bits": list(self.bits),
            "method": self.method,
            "overhead_seconds": self.overhead_seconds,
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            from pathlib import Path

            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, src) -> "IndicatorTable":
        """Load a table from a JSON string or file path."""
        import json
        from pathlib import Path

        text = str(src)
        if not text.lstrip().startswith("{"):
            text = Path(src).read_text()
        d = json.loads(text)
        return cls(
            omega=np.asarray(d["omega"], dtype=np.float64),
            bits=tuple(int(b) for b in d["bits"]),
            method=str(d.get("method", "loaded")),
            overhead_seconds=float(d.get("overhead_seconds", 0.0)),
        )

    def grouped(self, group_size: int) -> "IndicatorTable":
        """Sum omega over consecutive layer groups (Optimization #2)."""
        if group_size <= 1:
            return self
        L = self.num_layers
        num_groups = (L + group_size - 1) // group_size
        out = np.zeros((num_groups, len(self.bits)))
        for g in range(num_groups):
            out[g] = self.omega[g * group_size : (g + 1) * group_size].sum(axis=0)
        return IndicatorTable(
            omega=out, bits=self.bits, method=self.method,
            overhead_seconds=self.overhead_seconds,
        )


def _zero_fp16_column(omega: np.ndarray, bits: tuple[int, ...]) -> np.ndarray:
    if 16 in bits:
        omega[:, bits.index(16)] = 0.0
    return omega


# ----------------------------------------------------------------------
# Variance indicator (the paper's): one calibration pass.
# ----------------------------------------------------------------------
def variance_indicator(
    model: TinyDecoderLM,
    calib_tokens: np.ndarray,
    *,
    bits: tuple[int, ...] = DEFAULT_BITS,
    rounding: str = "deterministic",
) -> IndicatorTable:
    """Prop.-2 omega from real calibration activations of ``model``."""
    t0 = time.perf_counter()
    stats = model.capture_activation_stats(np.asarray(calib_tokens))
    L = model.cfg.num_layers
    ops = model.cfg.layer_shape.operators
    g_fn = g_deterministic if rounding == "deterministic" else g_stochastic

    omega = np.zeros((L, len(bits)))
    for i in range(L):
        layer = model.layers[i]
        for name, w in layer.linear_weights().items():
            d_w = w.shape[0]
            amax = float(np.abs(w).max())
            mean, var = stats[(i, name)]
            g = g_fn(ActivationStats(mean=mean, var=var))
            for j, b in enumerate(bits):
                if b >= 16:
                    continue
                scale = amax / qmax_for_bits(b)
                omega[i, j] += d_w * scale**2 * g
    del ops
    omega = _zero_fp16_column(omega, bits)
    return IndicatorTable(
        omega=omega, bits=bits, method="variance",
        overhead_seconds=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Hessian (HAWQ-style) baseline: finite-difference curvature probes.
# ----------------------------------------------------------------------
def hessian_indicator(
    model: TinyDecoderLM,
    calib_tokens: np.ndarray,
    *,
    bits: tuple[int, ...] = DEFAULT_BITS,
    probes: int = 1,
    eps: float = 1.0,
) -> IndicatorTable:
    """Curvature-based sensitivity: for each layer, probe the loss along
    the quantization-error direction ``Delta`` and score the symmetric
    second difference ``L(W+eps*Delta) - 2L(W) + L(W-eps*Delta)``, which
    approximates the HAWQ quantity ``Delta^T H Delta`` at ``eps = 1``.

    Needs ``2 * probes`` extra forward passes *per layer per bitwidth*,
    which is why Table 6 reports it orders of magnitude more expensive
    than the variance indicator.
    """
    t0 = time.perf_counter()
    tokens = np.asarray(calib_tokens)
    base_loss = model.nll(tokens)
    L = model.cfg.num_layers
    omega = np.zeros((L, len(bits)))

    for i in range(L):
        layer = model.layers[i]
        for j, b in enumerate(bits):
            if b >= 16:
                continue
            # quantization-error direction for this layer at this bitwidth
            deltas = {
                name: quantize_dequantize(w, b) - w
                for name, w in layer.linear_weights().items()
            }
            norm2 = sum(float(np.square(d).sum()) for d in deltas.values())
            if norm2 == 0:
                continue
            curv = 0.0
            for _ in range(probes):
                plus = model.clone()
                minus = model.clone()
                plus.apply_to_layer(i, lambda n, w: w + eps * deltas[n])
                minus.apply_to_layer(i, lambda n, w: w - eps * deltas[n])
                lp = plus.nll(tokens)
                lm = minus.nll(tokens)
                curv += (lp - 2 * base_loss + lm) / eps**2
            # curvature along Delta already includes ||Delta||^2 scaling
            omega[i, j] = max(abs(curv) / probes, 1e-12 * norm2)
    omega = _zero_fp16_column(omega, bits)
    return IndicatorTable(
        omega=omega, bits=bits, method="hessian",
        overhead_seconds=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Random baseline.
# ----------------------------------------------------------------------
def random_indicator(
    num_layers: int,
    *,
    bits: tuple[int, ...] = DEFAULT_BITS,
    seed: int = 0,
    scale: float = 1.0,
) -> IndicatorTable:
    """Uniform-random omega, rescaled to a comparable magnitude so that it
    exerts a similar pull on the ILP objective (Sec. 6.5's setup)."""
    rng = np.random.default_rng(seed)
    # Randomness is in the *layer ranking*; per-bit factors stay monotone
    # (fewer bits always hurt more) so the ILP is not handed an unphysical
    # signal — only an uninformed one.
    layer_score = rng.random(num_layers) * scale
    bit_factor = np.array([0.0 if b >= 16 else (16.0 / b) ** 2 for b in bits])
    omega = layer_score[:, None] * bit_factor[None, :]
    omega = _zero_fp16_column(omega, bits)
    return IndicatorTable(omega=omega, bits=bits, method="random", overhead_seconds=0.0)


# ----------------------------------------------------------------------
# KV-cache error indicators: the planner's quality signal for the
# per-stage KV bitwidth axis.
# ----------------------------------------------------------------------
def kv_error_indicator(
    model: TinyDecoderLM,
    calib_tokens: np.ndarray,
    *,
    kv_bits: tuple[int, ...] = DEFAULT_KV_BITS,
) -> IndicatorTable:
    """Measured per-(layer, KV bitwidth) quantization error.

    Runs one real prefill on the tiny NumPy model, reads every layer's
    filled K/V rows out of the cache, and scores the mean squared error
    of the runtime's per-token, per-head fake quantization at each
    candidate bitwidth.  16-bit entries are exactly zero (lossless), so
    the table plugs into the same ``theta``-weighted objective as the
    weight indicators.
    """
    from ..runtime.kvcache import kv_fake_quant

    t0 = time.perf_counter()
    tokens = np.asarray(calib_tokens)
    _, cache = model.prefill(tokens, logits="none")
    L = model.cfg.num_layers
    heads = model.cfg.num_heads
    filled = cache.length
    omega = np.zeros((L, len(kv_bits)))
    for i in range(L):
        k = cache.k[i, :, :filled]
        v = cache.v[i, :, :filled]
        for j, b in enumerate(kv_bits):
            if b >= 16:
                continue
            err_k = kv_fake_quant(k, b, heads) - k
            err_v = kv_fake_quant(v, b, heads) - v
            omega[i, j] = float(np.square(err_k).mean() + np.square(err_v).mean())
    omega = _zero_fp16_column(omega, kv_bits)
    return IndicatorTable(
        omega=omega, bits=kv_bits, method="kv-error",
        overhead_seconds=time.perf_counter() - t0,
    )


def synthetic_kv_indicator(
    cfg: ModelConfig,
    *,
    kv_bits: tuple[int, ...] = DEFAULT_KV_BITS,
    act_var_base: float = 1.0,
    act_var_growth: float = 0.04,
) -> IndicatorTable:
    """Analytic KV-error table for models too large to execute.

    Mirrors :func:`synthetic_indicator`'s depth profile: K/V rows are
    projections of the residual stream, whose variance grows linearly
    with depth, and per-token symmetric quantization at ``b`` bits with
    an ``amax ~ 3 sigma`` scale has per-element MSE ``scale^2 / 12``.
    The per-layer score sums K and V over the hidden dimension.
    """
    t0 = time.perf_counter()
    L, h = cfg.num_layers, cfg.hidden_size
    omega = np.zeros((L, len(kv_bits)))
    for i in range(L):
        act_var = act_var_base * (1.0 + act_var_growth * i)
        amax = 3.0 * np.sqrt(act_var)
        for j, b in enumerate(kv_bits):
            if b >= 16:
                continue
            scale = amax / qmax_for_bits(b)
            omega[i, j] = 2.0 * h * scale**2 / 12.0
    omega = _zero_fp16_column(omega, kv_bits)
    return IndicatorTable(
        omega=omega, bits=kv_bits, method="synthetic-kv",
        overhead_seconds=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Synthetic indicator for models too large to execute.
# ----------------------------------------------------------------------
def synthetic_indicator(
    cfg: ModelConfig,
    *,
    bits: tuple[int, ...] = DEFAULT_BITS,
    rounding: str = "deterministic",
    weight_std: float = 0.02,
    act_var_base: float = 1.0,
    act_var_growth: float = 0.04,
    seed: int = 0,
) -> IndicatorTable:
    """Prop.-2 omega from analytic statistics of a ``cfg``-shaped model.

    Weight max-magnitude follows the Gaussian extreme-value estimate
    ``amax = std * sqrt(2 ln N)``; activation variance grows linearly with
    depth (the residual stream accumulates), matching Table 1's finding
    that *later* layers are more quantization-sensitive.
    """
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    g_fn = g_deterministic if rounding == "deterministic" else g_stochastic
    ops = cfg.layer_shape.operators
    L = cfg.num_layers

    omega = np.zeros((L, len(bits)))
    for i in range(L):
        act_var = act_var_base * (1.0 + act_var_growth * i)
        act_var *= rng.uniform(0.9, 1.1)  # layer-to-layer jitter
        g = g_fn(ActivationStats(mean=0.0, var=act_var))
        for d_w, cols in ops.values():
            n = d_w * cols
            amax = weight_std * np.sqrt(2.0 * np.log(max(n, 2)))
            for j, b in enumerate(bits):
                if b >= 16:
                    continue
                scale = amax / qmax_for_bits(b)
                omega[i, j] += d_w * scale**2 * g
    omega = _zero_fp16_column(omega, bits)
    return IndicatorTable(
        omega=omega, bits=bits, method="synthetic-variance",
        overhead_seconds=time.perf_counter() - t0,
    )
