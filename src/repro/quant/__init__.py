"""Quantization substrate: quantizers, GPTQ, Theorem-1 theory, indicators."""

from .quantizer import (
    QuantConfig,
    QuantizedTensor,
    dequantize,
    qmax_for_bits,
    quantize,
    quantize_dequantize,
)
from .theory import (
    ActivationStats,
    g_deterministic,
    g_stochastic,
    measured_variance_inflation,
    variance_inflation_bound,
)
from .gptq import calibration_objective, gptq_quantize, rtn_quantize
from .indicator import (
    DEFAULT_BITS,
    DEFAULT_KV_BITS,
    IndicatorTable,
    hessian_indicator,
    kv_error_indicator,
    random_indicator,
    synthetic_indicator,
    synthetic_kv_indicator,
    variance_indicator,
)
from .kernels import (
    QuantizedLinear,
    pack_codes,
    pack_codes_reference,
    unpack_codes,
    unpack_codes_reference,
)
from .smoothquant import (
    W8A8Result,
    llm_int8_matmul,
    smooth_factors,
    smoothquant_matmul,
    w8a8_matmul,
)
from .schemes import (
    DoubleQuantResult,
    SpqrResult,
    awq_quantize_dequantize,
    double_quantize_scales,
    spqr_quantize,
)

__all__ = [
    "QuantConfig",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "qmax_for_bits",
    "ActivationStats",
    "g_deterministic",
    "g_stochastic",
    "variance_inflation_bound",
    "measured_variance_inflation",
    "gptq_quantize",
    "rtn_quantize",
    "calibration_objective",
    "IndicatorTable",
    "variance_indicator",
    "hessian_indicator",
    "random_indicator",
    "synthetic_indicator",
    "kv_error_indicator",
    "synthetic_kv_indicator",
    "DEFAULT_BITS",
    "DEFAULT_KV_BITS",
    "QuantizedLinear",
    "pack_codes",
    "unpack_codes",
    "pack_codes_reference",
    "unpack_codes_reference",
    "awq_quantize_dequantize",
    "SpqrResult",
    "spqr_quantize",
    "DoubleQuantResult",
    "double_quantize_scales",
    "W8A8Result",
    "smooth_factors",
    "w8a8_matmul",
    "llm_int8_matmul",
    "smoothquant_matmul",
]
