"""Symmetric weight quantization with deterministic / stochastic rounding.

Implements the paper's Sec. 2.4 quantizer: the weight range is split into
``2^b - 1`` uniform bins around zero, each value is mapped to an integer
code ``q = round((w - z) / s)`` and reconstructed as ``ŵ = q * s + z``.
Symmetric quantization fixes ``z = 0``.

Two rounding modes (Sec. 4.2 / Theorem 1):

* ``deterministic`` — round-to-nearest;
* ``stochastic`` — round up with probability equal to the fractional part,
  giving an *unbiased* estimate of the weight.

Granularity is per output channel (one scale per column) by default,
matching GPTQ-style serving kernels, or per tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = [
    "QuantConfig",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "qmax_for_bits",
]

Rounding = Literal["deterministic", "stochastic"]
Granularity = Literal["per_channel", "per_tensor"]


def qmax_for_bits(bits: int) -> int:
    """Largest positive integer code of a signed ``bits``-wide format."""
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    return 2 ** (bits - 1) - 1


@dataclass(frozen=True)
class QuantConfig:
    """Quantization recipe for one tensor."""

    bits: int
    rounding: Rounding = "deterministic"
    granularity: Granularity = "per_channel"

    def __post_init__(self) -> None:
        qmax_for_bits(self.bits)  # validates bits
        if self.rounding not in ("deterministic", "stochastic"):
            raise ValueError(f"unknown rounding {self.rounding!r}")
        if self.granularity not in ("per_channel", "per_tensor"):
            raise ValueError(f"unknown granularity {self.granularity!r}")


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized weight: integer codes + reconstruction metadata.

    ``codes`` has the original shape with dtype ``int16`` (wide enough for
    any supported bitwidth); ``scale`` broadcasts against ``codes``.
    """

    codes: np.ndarray
    scale: np.ndarray
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        """Original tensor shape."""
        return self.codes.shape

    @property
    def nbytes_packed(self) -> float:
        """Bytes after ideal bit-packing (codes only, excl. metadata)."""
        return self.codes.size * self.bits / 8.0

    def dequantize(self) -> np.ndarray:
        """Reconstruct floats from codes and scales."""
        return self.codes.astype(np.float64) * self.scale


def _scales(w: np.ndarray, cfg: QuantConfig) -> np.ndarray:
    qmax = qmax_for_bits(cfg.bits)
    if cfg.granularity == "per_tensor":
        amax = np.abs(w).max()
        amax = amax if amax > 0 else 1.0
        return np.asarray(amax / qmax)
    # per output channel: one scale per column of a (in, out) matrix
    amax = np.abs(w).max(axis=0, keepdims=True)
    amax = np.where(amax > 0, amax, 1.0)
    return amax / qmax


def quantize(
    w: np.ndarray,
    cfg: QuantConfig,
    *,
    rng: np.random.Generator | None = None,
) -> QuantizedTensor:
    """Quantize ``w`` to integer codes.

    Stochastic rounding requires ``rng``; deterministic mode ignores it.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim not in (1, 2):
        raise ValueError("quantize expects a vector or matrix")
    scale = _scales(w, cfg)
    x = w / scale
    qmax = qmax_for_bits(cfg.bits)
    if cfg.rounding == "deterministic":
        q = np.rint(x)
    else:
        if rng is None:
            raise ValueError("stochastic rounding needs an rng")
        lo = np.floor(x)
        frac = x - lo
        q = lo + (rng.random(x.shape) < frac)
    q = np.clip(q, -qmax, qmax).astype(np.int16)
    return QuantizedTensor(codes=q, scale=np.asarray(scale), bits=cfg.bits)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Functional alias of :meth:`QuantizedTensor.dequantize`."""
    return qt.dequantize()


def quantize_dequantize(
    w: np.ndarray,
    bits: int,
    *,
    rounding: Rounding = "deterministic",
    granularity: Granularity = "per_channel",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Round-trip a weight through quantization (a 'fake-quant' pass).

    16-bit is treated as lossless passthrough, as in the serving stack.
    """
    if bits >= 16:
        return np.asarray(w, dtype=np.float64)
    cfg = QuantConfig(bits=bits, rounding=rounding, granularity=granularity)
    return quantize(w, cfg, rng=rng).dequantize()
