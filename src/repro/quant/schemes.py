"""Additional weight-only quantization schemes (paper Sec. 7).

The discussion section lists the then-new schemes LLM-PQ can adopt as
candidate precisions: *AWQ* (activation-aware scaling), *SpQR*
(outlier-preserving sparse + quantized representation) and *QLoRA*'s
double quantization of the quantization metadata itself.  Each is
implemented here as a real algorithm on NumPy weights with the same
:class:`~repro.quant.quantizer.QuantizedTensor`-style round-trip
interface, so the unit tests can verify the claims that motivated them:

* AWQ beats plain RTN on the activation-weighted error when channel
  magnitudes are skewed;
* SpQR approaches FP16 quality by exempting a small fraction of outlier
  weights;
* double quantization shrinks metadata bytes at negligible extra error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quantizer import qmax_for_bits

__all__ = [
    "awq_quantize_dequantize",
    "SpqrResult",
    "spqr_quantize",
    "DoubleQuantResult",
    "double_quantize_scales",
]


# ----------------------------------------------------------------------
# AWQ: activation-aware weight quantization (Lin et al., 2023)
# ----------------------------------------------------------------------
def awq_quantize_dequantize(
    w: np.ndarray,
    x_calib: np.ndarray,
    bits: int,
    *,
    alpha: float = 0.5,
) -> np.ndarray:
    """AWQ's core trick: scale salient input channels up before
    quantization and fold the inverse scale into the activations.

    Channel saliency is the mean activation magnitude; scales are
    ``s_c = saliency_c ** alpha`` (normalized).  ``W' = diag(s) W`` is
    quantized per output channel, and dequantization applies
    ``diag(s)^-1``, so salient channels get finer effective resolution.
    Returns the effective dequantized weight.
    """
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x_calib, dtype=np.float64)
    if x.shape[1] != w.shape[0]:
        raise ValueError("calibration activations must be (N, D)")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha in [0, 1]")
    saliency = np.abs(x).mean(axis=0)
    saliency = np.where(saliency > 0, saliency, saliency[saliency > 0].min() if np.any(saliency > 0) else 1.0)
    s = saliency**alpha
    s /= np.exp(np.mean(np.log(s)))  # geometric-mean normalize

    w_scaled = w * s[:, None]
    qmax = qmax_for_bits(bits)
    col_scale = np.abs(w_scaled).max(axis=0, keepdims=True)
    col_scale = np.where(col_scale > 0, col_scale, 1.0) / qmax
    q = np.clip(np.rint(w_scaled / col_scale), -qmax, qmax)
    return (q * col_scale) / s[:, None]


# ----------------------------------------------------------------------
# SpQR: sparse outliers + dense quantized base (Dettmers et al., 2023)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpqrResult:
    """Dequantized weight plus the storage accounting."""

    w_hat: np.ndarray
    outlier_fraction: float
    dense_bytes: float
    outlier_bytes: float

    @property
    def total_bytes(self) -> float:
        """Dense + outlier storage, bytes."""
        return self.dense_bytes + self.outlier_bytes


def spqr_quantize(
    w: np.ndarray,
    bits: int,
    *,
    outlier_fraction: float = 0.01,
) -> SpqrResult:
    """Keep the largest-magnitude weights in FP16 (sparse), quantize the
    rest; the paper's near-lossless recipe.

    Outliers are selected globally by |w|; storage counts the dense
    packed codes + per-channel scales + (index, fp16 value) pairs for
    each outlier.
    """
    w = np.asarray(w, dtype=np.float64)
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction in [0, 1)")
    k = int(round(outlier_fraction * w.size))
    mask = np.zeros(w.shape, dtype=bool)
    if k > 0:
        flat_idx = np.argpartition(np.abs(w).ravel(), -k)[-k:]
        mask.ravel()[flat_idx] = True

    base = np.where(mask, 0.0, w)
    qmax = qmax_for_bits(bits)
    scale = np.abs(base).max(axis=0, keepdims=True)
    scale = np.where(scale > 0, scale, 1.0) / qmax
    q = np.clip(np.rint(base / scale), -qmax, qmax)
    w_hat = q * scale
    w_hat[mask] = w[mask]  # exact outliers

    dense_bytes = w.size * bits / 8.0 + w.shape[1] * 2.0
    outlier_bytes = k * (4.0 + 2.0)  # int32 index + fp16 value
    return SpqrResult(
        w_hat=w_hat,
        outlier_fraction=k / w.size if w.size else 0.0,
        dense_bytes=dense_bytes,
        outlier_bytes=outlier_bytes,
    )


# ----------------------------------------------------------------------
# QLoRA-style double quantization of the scale metadata
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DoubleQuantResult:
    """Reconstructed scales plus metadata byte accounting."""

    scales_hat: np.ndarray
    metadata_bytes: float
    baseline_bytes: float

    @property
    def savings_fraction(self) -> float:
        """Metadata bytes saved vs FP16 scales."""
        if self.baseline_bytes <= 0:
            return 0.0
        return 1.0 - self.metadata_bytes / self.baseline_bytes


def double_quantize_scales(
    scales: np.ndarray,
    *,
    meta_bits: int = 8,
    block: int = 64,
) -> DoubleQuantResult:
    """Quantize the per-channel FP16 scales themselves to ``meta_bits``
    in blocks, keeping one FP32 scale-of-scales per block.

    Scales are positive, so an asymmetric (min/max) block code is used.
    Baseline = FP16 per scale; double-quantized = ``meta_bits`` per
    scale + 8 bytes (fp32 min & step) per block.
    """
    s = np.asarray(scales, dtype=np.float64).ravel()
    if np.any(s < 0):
        raise ValueError("scales must be non-negative")
    if block <= 0:
        raise ValueError("block must be positive")
    qmax = 2**meta_bits - 1
    out = np.empty_like(s)
    n_blocks = 0
    for lo in range(0, s.size, block):
        chunk = s[lo : lo + block]
        n_blocks += 1
        cmin, cmax = float(chunk.min()), float(chunk.max())
        step = (cmax - cmin) / qmax if cmax > cmin else 1.0
        codes = np.clip(np.rint((chunk - cmin) / step), 0, qmax)
        out[lo : lo + block] = codes * step + cmin
    return DoubleQuantResult(
        scales_hat=out.reshape(np.asarray(scales).shape),
        metadata_bytes=s.size * meta_bits / 8.0 + n_blocks * 8.0,
        baseline_bytes=s.size * 2.0,
    )
