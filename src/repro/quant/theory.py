"""Theorem 1: output-variance inflation caused by weight quantization.

For a linear operator ``y = W X`` with ``W in R^{D x O}`` quantized at
scale ``S_W`` the paper bounds the output variance:

.. math::

    Var[\\tilde W X] = Var[W X] + D_W S_W^2 \\cdot G(X)

with ``G(X) = Var[X] / 4`` for deterministic rounding and
``G(X) = (E[X]^2 + Var[X]) / 6`` for stochastic rounding.

The intuition: each quantized weight carries an independent rounding error
``e`` with ``|e| <= S/2`` (deterministic, worst-case second moment
``S^2/4``) or ``E[e^2] = S^2 * f(1-f) <= S^2/6`` in expectation over a
uniform fractional part (stochastic, unbiased).  A dot product sums
``D_W`` such error terms against the input entries.

These functions return the *bound* on the inflation term; the property
tests check empirically measured inflation from real quantized matmuls
stays below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quantizer import QuantConfig, quantize

__all__ = [
    "g_deterministic",
    "g_stochastic",
    "variance_inflation_bound",
    "measured_variance_inflation",
    "ActivationStats",
]


@dataclass(frozen=True)
class ActivationStats:
    """First and second moments of an operator's input activations."""

    mean: float
    var: float

    @property
    def second_moment(self) -> float:
        """``E[X^2] = E[X]^2 + Var[X]``."""
        return self.mean**2 + self.var

    @classmethod
    def from_samples(cls, x: np.ndarray) -> "ActivationStats":
        """Empirical moments of an activation sample."""
        x = np.asarray(x, dtype=np.float64)
        return cls(mean=float(x.mean()), var=float(x.var()))


def g_deterministic(stats: ActivationStats) -> float:
    """``G(X)`` for deterministic (round-to-nearest) quantization."""
    return stats.var / 4.0


def g_stochastic(stats: ActivationStats) -> float:
    """``G(X)`` for stochastic (unbiased) rounding."""
    return stats.second_moment / 6.0


def variance_inflation_bound(
    d_w: int,
    scale: float | np.ndarray,
    stats: ActivationStats,
    *,
    rounding: str = "deterministic",
) -> float:
    """Theorem-1 bound on ``Var[W~X] - Var[WX]``.

    ``scale`` may be a per-channel vector; the worst channel is used.
    """
    if d_w <= 0:
        raise ValueError("d_w must be positive")
    s2 = float(np.max(np.square(scale)))
    if rounding == "deterministic":
        g = g_deterministic(stats)
    elif rounding == "stochastic":
        g = g_stochastic(stats)
    else:
        raise ValueError(f"unknown rounding {rounding!r}")
    return d_w * s2 * g


def measured_variance_inflation(
    w: np.ndarray,
    x: np.ndarray,
    bits: int,
    *,
    rounding: str = "deterministic",
    seed: int = 0,
) -> tuple[float, float]:
    """Empirical ``(Var[W~X] - Var[WX], bound)`` for one operator.

    ``w`` is ``(D, O)``, ``x`` is ``(N, D)`` activation samples.
    """
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    cfg = QuantConfig(bits=bits, rounding=rounding)  # type: ignore[arg-type]
    rng = np.random.default_rng(seed)
    qt = quantize(w, cfg, rng=rng)
    w_hat = qt.dequantize()

    y = x @ w
    y_hat = x @ w_hat
    inflation = float(y_hat.var() - y.var())
    bound = variance_inflation_bound(
        w.shape[0], qt.scale, ActivationStats.from_samples(x), rounding=rounding
    )
    return inflation, bound
