"""GPTQ-style weight-only quantization (Frantar et al., 2022).

The serving stack's sub-8-bit kernels load weights produced by GPTQ.  We
implement the algorithm's core: quantize weight columns one at a time and
propagate the rounding error into the not-yet-quantized columns through
the inverse Hessian of the layer's inputs, ``H = X^T X + lambda I``.

This is the real algorithm on real (NumPy) matrices — the unit tests
verify it beats plain round-to-nearest on the calibration objective
``||WX - W_hat X||_F^2`` (Eq. 1 of the paper).
"""

from __future__ import annotations

import numpy as np

from .quantizer import QuantizedTensor, qmax_for_bits

__all__ = ["gptq_quantize", "rtn_quantize", "calibration_objective"]


def _per_channel_scales(w: np.ndarray, bits: int) -> np.ndarray:
    qmax = qmax_for_bits(bits)
    amax = np.abs(w).max(axis=0, keepdims=True)
    amax = np.where(amax > 0, amax, 1.0)
    return amax / qmax


def rtn_quantize(w: np.ndarray, bits: int) -> QuantizedTensor:
    """Plain round-to-nearest baseline (per output channel)."""
    w = np.asarray(w, dtype=np.float64)
    scale = _per_channel_scales(w, bits)
    qmax = qmax_for_bits(bits)
    q = np.clip(np.rint(w / scale), -qmax, qmax).astype(np.int16)
    return QuantizedTensor(codes=q, scale=scale, bits=bits)


def gptq_quantize(
    w: np.ndarray,
    x_calib: np.ndarray,
    bits: int,
    *,
    damping: float = 0.01,
) -> QuantizedTensor:
    """GPTQ: error-compensated quantization of ``w`` (shape ``(D, O)``).

    ``x_calib`` is ``(N, D)`` calibration activations.  Rows of ``w``
    (input dimensions) are processed in order; after quantizing row ``d``
    the induced output error is folded back into rows ``> d`` using the
    Cholesky factor of the damped inverse Hessian, exactly as in the
    reference implementation (transposed convention: GPTQ's "columns" are
    our rows because our weights are stored ``(in, out)``).
    """
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x_calib, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("w must be (D, O)")
    if x.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ValueError("x_calib must be (N, D) with D matching w")
    d_in, _ = w.shape
    qmax = qmax_for_bits(bits)
    scale = _per_channel_scales(w, bits)

    h = x.T @ x
    lam = damping * float(np.mean(np.diag(h))) + 1e-12
    h[np.diag_indices_from(h)] += lam
    # Inverse Hessian via Cholesky of H^{-1} (upper), as in GPTQ.
    h_inv = np.linalg.inv(h)
    # numerical symmetrization before Cholesky
    h_inv = 0.5 * (h_inv + h_inv.T)
    u = np.linalg.cholesky(h_inv).T  # upper triangular, H^{-1} = U^T U... see note
    # note: np.linalg.cholesky returns lower L with H_inv = L L^T, so
    # U = L^T is upper with H_inv = U^T U; diag(U) > 0.

    w_work = w.copy()
    q_codes = np.zeros_like(w, dtype=np.int16)
    for d in range(d_in):
        row = w_work[d]
        q = np.clip(np.rint(row / scale[0]), -qmax, qmax)
        q_codes[d] = q.astype(np.int16)
        deq = q * scale[0]
        err = (row - deq) / u[d, d]
        if d + 1 < d_in:
            # spread the error over the remaining rows
            w_work[d + 1 :] -= np.outer(u[d, d + 1 :], err)
    return QuantizedTensor(codes=q_codes, scale=scale, bits=bits)


def calibration_objective(
    w: np.ndarray, w_hat: np.ndarray, x_calib: np.ndarray
) -> float:
    """Eq. 1: ``||W X - W_hat X||_F^2`` (with our (N,D)x(D,O) layout)."""
    y = x_calib @ w
    y_hat = x_calib @ w_hat
    return float(np.square(y - y_hat).sum())
