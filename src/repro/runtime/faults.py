"""Deterministic fault injection for the serving runtime.

Serving on heterogeneous, often-preemptible clusters means stage
crashes, stragglers, lost messages and memory pressure are normal
operating conditions, not exceptions.  This module provides the *test
harness* for that reality: a seeded :class:`FaultInjector` holding a
list of declarative fault policies that the stage workers and the KV
manager consult at well-defined points.  Every fault fires at an exact
per-stage message count (and any randomness — e.g. corruption noise —
comes from the injector's seed), so a failing run can be replayed
bit-for-bit.

Policies can be constructed programmatically, parsed from a compact
spec string (``crash:stage=1,at=5;slow:stage=0,delay=0.01``) via
:meth:`FaultInjector.from_spec`, or picked up from the ``REPRO_FAULTS``
environment variable via :meth:`FaultInjector.from_env` — which is how
the CLI and ad-hoc experiments opt in without code changes.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "InjectedFault",
    "KVAllocationError",
    "PipelineStallError",
    "StageCrash",
    "Straggler",
    "MessageDrop",
    "MessageCorruption",
    "KVAllocPressure",
    "FaultInjector",
    "FAULTS_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"


class InjectedFault(RuntimeError):
    """Raised inside a stage worker by a :class:`StageCrash` policy."""


class KVAllocationError(MemoryError):
    """KV-cache allocation denied (injected or real memory pressure)."""


class PipelineStallError(RuntimeError):
    """The master's bounded wait on the pipeline expired without progress."""


# ----------------------------------------------------------------------
# Fault policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageCrash:
    """Kill stage ``stage`` when it processes its ``at``-th activation.

    ``repeat=True`` re-arms after every restart, modelling a *permanent*
    device fault (the stage dies again as soon as it does work) — the
    trigger for the degrade-and-replan ladder.  ``repeat=False`` is a
    transient fault: it fires once and is retired, so the restarted
    worker survives.
    """

    stage: int
    at: int = 1
    repeat: bool = False


@dataclass(frozen=True)
class Straggler:
    """Delay stage ``stage`` by ``delay`` seconds on every ``every``-th
    activation (an artificially slow device / noisy neighbour)."""

    stage: int
    delay: float = 0.01
    every: int = 1


@dataclass(frozen=True)
class MessageDrop:
    """Silently drop the ``at``-th activation entering ``stage`` — the
    micro-batch vanishes and only the master's stall timeout notices."""

    stage: int
    at: int = 1


@dataclass(frozen=True)
class MessageCorruption:
    """Add seeded noise of magnitude ``scale`` to the ``at``-th
    activation entering ``stage`` (a silent data-corruption fault)."""

    stage: int
    at: int = 1
    scale: float = 1.0


@dataclass(frozen=True)
class KVAllocPressure:
    """Deny any KV allocation on ``stage`` larger than ``max_bytes``.

    Mimics an allocator running out of head-room: per-unit prefill
    allocations still fit but the big merged decode group does not,
    which is exactly the situation the runtime degrades out of by
    shrinking the decode group.  ``fail_count`` bounds how many times
    the denial fires (``None`` = always).
    """

    stage: int
    max_bytes: float
    fail_count: int | None = None


_POLICY_KINDS = {
    "crash": StageCrash,
    "slow": Straggler,
    "drop": MessageDrop,
    "corrupt": MessageCorruption,
    "kvcap": KVAllocPressure,
}

_FIELD_TYPES = {
    "stage": int,
    "at": int,
    "repeat": lambda v: bool(int(v)),
    "delay": float,
    "every": int,
    "scale": float,
    "max_bytes": float,
    "fail_count": int,
}


# ----------------------------------------------------------------------
@dataclass
class _PolicyState:
    """Mutable bookkeeping for one policy instance."""

    policy: object
    retired: bool = False
    fire_count: int = 0


class FaultInjector:
    """Seeded, thread-safe fault driver consulted by the runtime.

    The stage workers call :meth:`on_activation` once per activation
    message; the KV manager calls the guard from :meth:`kv_guard` before
    every allocation.  All trigger points are counter-based, and the
    per-stage counters reset on :meth:`notify_restart`, so a policy
    like ``StageCrash(stage=1, at=3, repeat=True)`` deterministically
    kills every incarnation of stage 1 at its third message.
    """

    def __init__(self, policies: Sequence[object] = (), seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._states = [_PolicyState(p) for p in policies]
        self._counts: dict[int, int] = {}
        self._dead_stages: set[int] = set()
        #: chronological record of fired faults: (kind, stage, message_no)
        self.fired: list[tuple[str, int, int]] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Parse ``kind:key=val,...;kind:key=val,...`` into an injector.

        Kinds: ``crash``, ``slow``, ``drop``, ``corrupt``, ``kvcap``.
        Example: ``crash:stage=1,at=5,repeat=1;slow:stage=0,delay=0.01``.
        """
        policies: list[object] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, body = part.partition(":")
            kind = kind.strip()
            if kind not in _POLICY_KINDS:
                known = ", ".join(sorted(_POLICY_KINDS))
                raise ValueError(f"unknown fault kind {kind!r}; known: {known}")
            kwargs: dict[str, object] = {}
            for item in filter(None, (s.strip() for s in body.split(","))):
                key, eq, val = item.partition("=")
                key = key.strip()
                if not eq or key not in _FIELD_TYPES:
                    raise ValueError(f"bad fault field {item!r} in {part!r}")
                try:
                    kwargs[key] = _FIELD_TYPES[key](val.strip())
                except ValueError as e:
                    raise ValueError(f"bad value for {key!r} in {part!r}") from e
            try:
                policies.append(_POLICY_KINDS[kind](**kwargs))
            except TypeError as e:
                raise ValueError(f"bad fields for fault {kind!r}: {e}") from None
        return cls(policies, seed=seed)

    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        """Build from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``; None if unset."""
        spec = os.environ.get(FAULTS_ENV_VAR)
        if not spec:
            return None
        seed = int(os.environ.get(FAULTS_SEED_ENV_VAR, "0"))
        return cls.from_spec(spec, seed=seed)

    @property
    def policies(self) -> tuple[object, ...]:
        """The configured policies (including retired ones)."""
        return tuple(s.policy for s in self._states)

    # -- runtime hooks --------------------------------------------------
    def on_activation(
        self, stage: int, sleep: Callable[[float], object] | None = None
    ) -> str | None:
        """Consult policies for one activation entering ``stage``.

        Returns ``"drop"`` / ``"corrupt"`` for the worker to act on,
        sleeps in place for stragglers (via ``sleep``, which should be
        interruptible — workers pass their stop-event's ``wait``), and
        raises :class:`InjectedFault` for crash policies.
        """
        with self._lock:
            if stage in self._dead_stages:
                return None
            count = self._counts.get(stage, 0) + 1
            self._counts[stage] = count
            actions: list[tuple[str, object]] = []
            for st in self._states:
                p = st.policy
                if st.retired or getattr(p, "stage", None) != stage:
                    continue
                if isinstance(p, Straggler):
                    if count % max(p.every, 1) == 0:
                        st.fire_count += 1
                        self.fired.append(("slow", stage, count))
                        actions.append(("slow", p.delay))
                elif isinstance(p, MessageDrop) and count == p.at:
                    st.retired = True
                    self.fired.append(("drop", stage, count))
                    actions.append(("drop", None))
                elif isinstance(p, MessageCorruption) and count == p.at:
                    st.retired = True
                    self.fired.append(("corrupt", stage, count))
                    actions.append(("corrupt", None))
                elif isinstance(p, StageCrash) and count == p.at:
                    if not p.repeat:
                        st.retired = True
                    st.fire_count += 1
                    self.fired.append(("crash", stage, count))
                    actions.append(("crash", None))
        # act outside the lock: sleeping or raising while holding it
        # would stall every other stage's bookkeeping
        result: str | None = None
        for kind, arg in actions:
            if kind == "slow":
                (sleep or time.sleep)(float(arg))  # type: ignore[arg-type]
            elif kind == "crash":
                raise InjectedFault(f"injected crash: stage {stage}")
            else:
                result = kind
        return result

    def corrupt(self, stage: int, hidden: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """Seeded corruption noise for ``hidden`` (deterministic per call site)."""
        count = self._counts.get(stage, 0)
        rng = np.random.default_rng((self.seed, stage, count))
        return hidden + scale * rng.normal(size=hidden.shape)

    def corruption_scale(self, stage: int) -> float:
        """The scale of the corruption policy targeting ``stage`` (or 1.0)."""
        for st in self._states:
            if isinstance(st.policy, MessageCorruption) and st.policy.stage == stage:
                return st.policy.scale
        return 1.0

    def kv_guard(self, stage: int) -> Callable[[float], None]:
        """An allocation guard for ``stage``'s :class:`StageKVManager`."""

        def guard(requested_bytes: float) -> None:
            with self._lock:
                if stage in self._dead_stages:
                    return
                for st in self._states:
                    p = st.policy
                    if st.retired or not isinstance(p, KVAllocPressure):
                        continue
                    if p.stage != stage or requested_bytes <= p.max_bytes:
                        continue
                    st.fire_count += 1
                    if p.fail_count is not None and st.fire_count >= p.fail_count:
                        st.retired = True
                    self.fired.append(("kvcap", stage, self._counts.get(stage, 0)))
                    raise KVAllocationError(
                        f"injected KV allocation failure: stage {stage} "
                        f"requested {requested_bytes:.0f} B > cap {p.max_bytes:.0f} B"
                    )

        return guard

    # -- lifecycle ------------------------------------------------------
    def notify_restart(self, stage: int) -> None:
        """Reset ``stage``'s message counter (a fresh worker incarnation)."""
        with self._lock:
            self._counts[stage] = 0

    def retire_stage(self, stage: int) -> None:
        """Disable every policy for ``stage`` — its device left the plan."""
        with self._lock:
            self._dead_stages.add(stage)
            for st in self._states:
                if getattr(st.policy, "stage", None) == stage:
                    st.retired = True

    def describe(self) -> str:
        """One-line summary of configured policies and fired faults."""
        kinds = ", ".join(type(s.policy).__name__ for s in self._states) or "none"
        return f"FaultInjector(seed={self.seed}, policies=[{kinds}], fired={len(self.fired)})"
