"""Live replanning: drift detection + zero-downtime online migration.

LLM-PQ's plan is chosen offline for one workload, but production traffic
drifts — arrival rate, prompt-length mix, and the healthy device set all
change — and a stale plan silently burns the latency/quality headroom the
ILP fought for.  This module turns the repo's three existing subsystems
(crash replanning, the warm planner stack, the continuous scheduler) into
one reconfiguration story:

* :class:`DriftDetector` watches windowed serving signals — arrival rate,
  prompt/generation length distribution, KV occupancy, device-loss
  events — against a self-calibrated baseline and raises a
  :class:`DriftEstimate` once the relative deviation clears a hysteresis
  threshold (with a cooldown so one regime change triggers one re-solve).
* A *replanner* maps ``(current plan, estimate) -> new plan | None``.
  :func:`workload_refit_replanner` is the cheap rung (re-size the plan's
  declared workload, keeping partition and bitwidths — a metadata-only
  switch); :func:`make_search_replanner` is the full rung (re-solve
  through :func:`repro.core.api.plan_llmpq` on the observed workload).
* :class:`MigrationController` executes the switch on a live
  :class:`~repro.runtime.scheduler.ContinuousScheduler` **without
  dropping traffic**: it runs at a token boundary (the pipeline is
  quiesced by construction — no activation in flight), swaps the plan via
  :meth:`PipelineRuntime.switch_plan`, re-prices admission under the new
  plan's :class:`~repro.cost.stagecosts.StageCostModel`, re-homes every
  in-flight cache unit in a fresh ledger, and — when the swap re-cut
  shards and therefore lost worker KV state — replays each in-flight
  request's recorded computation (batch-1 prefill at its original prompt
  length, then per-token decode feeding the recorded ids) so the rebuilt
  KV caches are bit-identical to the lost ones.  Replay mirrors the
  original kernel shapes exactly, which is what keeps post-migration
  token streams byte-identical to an unmigrated run whenever the new
  plan preserves per-layer bitwidths (repartitions and workload refits
  do; :func:`~repro.core.api.replan_after_failure` does by design).

Crash recovery, drift replanning, and manual replans all flow through
the same controller — a crash is just a forced same-plan migration, and
a permanent device loss escalates to a bit-preserving repartition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..workload.spec import Workload

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.plan import ExecutionPlan
    from ..hardware.cluster import Cluster
    from .scheduler import ContinuousScheduler

__all__ = [
    "DriftConfig",
    "DriftEstimate",
    "DriftDetector",
    "MigrationRecord",
    "MigrationController",
    "workload_refit_replanner",
    "make_search_replanner",
]

#: A replanner maps ``(current plan, drift estimate)`` to a new plan, or
#: ``None`` to keep serving the current one.
Replanner = Callable[["ExecutionPlan", "DriftEstimate"], "Optional[ExecutionPlan]"]


@dataclass(frozen=True)
class DriftConfig:
    """Detection thresholds and windows (virtual-clock seconds)."""

    window: float = 10.0        #: tumbling observation window
    threshold: float = 0.5      #: relative deviation that counts as drift
    hysteresis: int = 2         #: consecutive drifted windows before firing
    cooldown: float = 30.0      #: min seconds between triggers
    min_requests: int = 5       #: arrivals needed to trust length statistics
    #: simulator-side pause charged per shard-rebuilding migration (the
    #: real runtime measures its own quiesce; the analytic mirror cannot)
    rebuild_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if self.rebuild_seconds < 0:
            raise ValueError("rebuild_seconds must be >= 0")


@dataclass(frozen=True)
class DriftEstimate:
    """What the detector believes the workload looks like *now*."""

    at: float               #: virtual time of the trigger
    arrival_rate: float     #: requests/s over the recent windows
    mean_prompt: float
    p90_prompt: int
    mean_gen: float
    p90_gen: int
    occupancy: float        #: max per-stage KV usage fraction (0..1+)
    score: float            #: deviation score that fired the trigger
    reason: str             #: e.g. ``"drift:rate"`` or ``"device-loss:stage1"``

    def suggested_workload(self, base: Workload) -> Workload:
        """Re-size ``base`` to the observed p90 lengths (batch unchanged)."""
        return Workload(
            prompt_len=max(4, self.p90_prompt),
            gen_len=max(1, self.p90_gen),
            global_batch=base.global_batch,
        )


class DriftDetector:
    """Windowed drift detection over serving signals.

    Feed it observations tagged with the caller's (virtual) clock —
    :meth:`observe_arrival` for every request arrival,
    :meth:`observe_occupancy` at token boundaries,
    :meth:`observe_device_loss` from the fault path — and call
    :meth:`poll` at boundaries.  The first closed window with enough
    requests becomes the baseline; each later window scores the maximum
    relative deviation of arrival rate, mean prompt length, and mean
    generation length (plus the absolute occupancy shift), and the
    detector fires once ``hysteresis`` consecutive windows clear
    ``threshold`` and the cooldown has elapsed.  A device loss fires
    immediately.  Call :meth:`rebaseline` after acting on a trigger so
    the detector re-learns the post-migration regime.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        # pending observations as parallel columns: scalar observes append
        # to Python tail lists, batch observes park whole arrays as chunks
        # (no per-element conversion) — window maths then runs as array
        # reductions over the same values in the same order either way,
        # so closed-window statistics (and therefore triggers) are
        # bit-identical
        self._pending_t: list[float] = []
        self._pending_s: list[int] = []
        self._pending_g: list[int] = []
        self._arr_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._occ_t: list[float] = []
        self._occ_v: list[float] = []
        self._occ_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._win_start = 0.0
        self._baseline: tuple[float, float, float, float] | None = None
        self._streak = 0
        self._last_trigger = -float("inf")
        self._loss_stage: int | None = None
        #: last ``hysteresis + 1`` closed windows' arrivals (for estimates)
        self._recent: deque = deque(maxlen=self.config.hysteresis + 1)
        self._last_occ = 0.0
        self.windows_closed = 0
        self.triggers = 0
        self.device_losses = 0

    # -- observations ---------------------------------------------------
    def observe_arrival(self, t: float, prompt_len: int, gen_len: int) -> None:
        """Record one request arrival at virtual time ``t``."""
        self._pending_t.append(t)
        self._pending_s.append(prompt_len)
        self._pending_g.append(gen_len)

    def observe_arrivals(self, times, prompt_lens, gen_lens) -> None:
        """Batch form of :meth:`observe_arrival` (aligned arrays)."""
        self._flush_arrival_tail()
        self._arr_chunks.append((
            np.asarray(times, dtype=np.float64),
            np.asarray(prompt_lens, dtype=np.int64),
            np.asarray(gen_lens, dtype=np.int64),
        ))

    def observe_occupancy(self, t: float, fraction: float) -> None:
        """Record the max per-stage KV usage fraction at time ``t``."""
        self._occ_t.append(t)
        self._occ_v.append(float(fraction))
        self._last_occ = float(fraction)

    def observe_occupancies(self, times, fractions) -> None:
        """Batch form of :meth:`observe_occupancy` (aligned arrays)."""
        ts = np.asarray(times, dtype=np.float64)
        vs = np.asarray(fractions, dtype=np.float64)
        if vs.size:
            self._flush_occupancy_tail()
            self._occ_chunks.append((ts, vs))
            self._last_occ = float(vs[-1])

    def _flush_arrival_tail(self) -> None:
        if self._pending_t:
            self._arr_chunks.append((
                np.array(self._pending_t, dtype=np.float64),
                np.array(self._pending_s, dtype=np.int64),
                np.array(self._pending_g, dtype=np.int64),
            ))
            self._pending_t = []
            self._pending_s = []
            self._pending_g = []

    def _flush_occupancy_tail(self) -> None:
        if self._occ_t:
            self._occ_chunks.append((
                np.array(self._occ_t, dtype=np.float64),
                np.array(self._occ_v, dtype=np.float64),
            ))
            self._occ_t = []
            self._occ_v = []

    def _arrival_columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pending arrivals as aligned arrays (observation order)."""
        self._flush_arrival_tail()
        ch = self._arr_chunks
        if not ch:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        if len(ch) == 1:
            return ch[0]
        merged = (
            np.concatenate([c[0] for c in ch]),
            np.concatenate([c[1] for c in ch]),
            np.concatenate([c[2] for c in ch]),
        )
        self._arr_chunks = [merged]
        return merged

    def _occupancy_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Pending occupancy samples as aligned arrays."""
        self._flush_occupancy_tail()
        ch = self._occ_chunks
        if not ch:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
        if len(ch) == 1:
            return ch[0]
        merged = (
            np.concatenate([c[0] for c in ch]),
            np.concatenate([c[1] for c in ch]),
        )
        self._occ_chunks = [merged]
        return merged

    def observe_device_loss(self, t: float, stage_idx: int) -> None:
        """Record a permanent device loss (fires on the next poll)."""
        self._loss_stage = stage_idx
        self.device_losses += 1

    # -- control --------------------------------------------------------
    def next_window_end(self) -> float:
        """When the currently open window closes — the only instant a
        (non-device-loss) trigger can fire, which is what lets the
        vectorized engine skip polling between window boundaries."""
        return self._win_start + self.config.window

    def rebaseline(self, now: float | None = None) -> None:
        """Forget the baseline (post-migration) and restart the cooldown."""
        self._baseline = None
        self._streak = 0
        self._recent.clear()
        if now is not None:
            self._win_start = now
            self._last_trigger = now
        self._pending_t.clear()
        self._pending_s.clear()
        self._pending_g.clear()
        self._arr_chunks.clear()
        self._occ_t.clear()
        self._occ_v.clear()
        self._occ_chunks.clear()

    def estimate(self, now: float, *, reason: str = "estimate") -> DriftEstimate:
        """Current workload estimate from the recent windows, no trigger.

        The fleet autoscaler uses this to size the plan for a replica it
        is about to scale up: same recent-window statistics a drift
        trigger would report, available on demand.
        """
        return self._estimate(now, score=0.0, reason=reason)

    def poll(self, now: float) -> DriftEstimate | None:
        """Close any windows ending before ``now``; return a trigger or None."""
        cfg = self.config
        if self._loss_stage is not None:
            stage = self._loss_stage
            self._loss_stage = None
            self.triggers += 1
            self._last_trigger = now
            return self._estimate(
                now, score=float("inf"), reason=f"device-loss:stage{stage}"
            )
        fired: DriftEstimate | None = None
        while now >= self._win_start + cfg.window:
            end = self._win_start + cfg.window
            pt, ps, pg = self._arrival_columns()
            keep = pt >= end
            in_s, in_g = ps[~keep], pg[~keep]
            self._arr_chunks = [(pt[keep], ps[keep], pg[keep])]
            ot, ov = self._occupancy_columns()
            okeep = ot >= end
            occ_in = ov[~okeep]
            self._occ_chunks = [(ot[okeep], ov[okeep])]
            est = self._close_window(end, in_s, in_g, occ_in)
            if est is not None and fired is None:
                fired = est
            self._win_start = end
        return fired

    # -- internals ------------------------------------------------------
    def _close_window(
        self,
        end: float,
        prompts: np.ndarray,
        gens: np.ndarray,
        occ: np.ndarray,
    ) -> DriftEstimate | None:
        cfg = self.config
        self.windows_closed += 1
        self._recent.append((prompts, gens))
        rate = prompts.size / cfg.window
        occ_mean = float(np.mean(occ)) if occ.size else self._last_occ
        if self._baseline is None:
            if prompts.size >= cfg.min_requests:
                mp = float(np.mean(prompts))
                mg = float(np.mean(gens))
                self._baseline = (rate, mp, mg, occ_mean)
            return None
        base_rate, base_mp, base_mg, base_occ = self._baseline
        eps = 1e-9
        devs = {"rate": abs(rate - base_rate) / max(base_rate, eps)}
        if prompts.size >= cfg.min_requests:
            mp = float(np.mean(prompts))
            mg = float(np.mean(gens))
            devs["prompt"] = abs(mp - base_mp) / max(base_mp, eps)
            devs["gen"] = abs(mg - base_mg) / max(base_mg, eps)
        if occ.size:
            devs["occupancy"] = abs(occ_mean - base_occ)
        axis = max(devs, key=devs.get)
        score = devs[axis]
        if score >= cfg.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if (
            self._streak >= cfg.hysteresis
            and end - self._last_trigger >= cfg.cooldown
        ):
            self._streak = 0
            self.triggers += 1
            self._last_trigger = end
            return self._estimate(end, score=score, reason=f"drift:{axis}")
        return None

    def _estimate(self, at: float, *, score: float, reason: str) -> DriftEstimate:
        _, pend_s, pend_g = self._arrival_columns()
        s_parts = [s for s, _ in self._recent] + [pend_s]
        g_parts = [g for _, g in self._recent] + [pend_g]
        prompts = np.concatenate(s_parts)
        gens = np.concatenate(g_parts)
        cfg = self.config
        spanned = max(len(self._recent), 1) * cfg.window
        rate = prompts.size / spanned if prompts.size else 0.0
        if prompts.size:
            mp, p90p = float(prompts.mean()), int(np.quantile(prompts, 0.9))
            mg, p90g = float(gens.mean()), int(np.quantile(gens, 0.9))
        elif self._baseline is not None:
            mp = p90p = self._baseline[1]
            mg = p90g = self._baseline[2]
            mp, mg = float(mp), float(mg)
            p90p, p90g = int(p90p), int(p90g)
        else:
            mp, p90p, mg, p90g = 0.0, 0, 0.0, 0
        return DriftEstimate(
            at=at, arrival_rate=rate,
            mean_prompt=mp, p90_prompt=p90p,
            mean_gen=mg, p90_gen=p90g,
            occupancy=self._last_occ, score=score, reason=reason,
        )


# ---------------------------------------------------------------------------
# Replanners
# ---------------------------------------------------------------------------


def workload_refit_replanner(
    plan: "ExecutionPlan", estimate: DriftEstimate
) -> "Optional[ExecutionPlan]":
    """Cheap rung: re-size the plan's declared workload to the estimate.

    Partition and per-layer bitwidths are untouched, so the runtime
    switch is metadata-only (no worker rebuild, no KV replay) — it
    re-prices admission headroom and per-request charges under the
    observed prompt/generation lengths.  Returns ``None`` when the
    suggested workload already matches.
    """
    wl = estimate.suggested_workload(plan.workload)
    if wl == plan.workload:
        return None
    return replace(plan, workload=wl, meta={**plan.meta, "drift_refit": True})


def make_search_replanner(
    cluster: "Cluster",
    *,
    theta: float = 1.0,
    use_heuristic: bool = True,
    ilp_time_limit: float = 10.0,
    latency_model=None,
    **plan_kwargs,
) -> Replanner:
    """Full rung: re-solve through the warm planner stack.

    The returned replanner calls :func:`repro.core.api.plan_llmpq` on the
    drift estimate's suggested workload (heuristic mode by default so a
    live re-solve stays fast) and hands back the new plan — or ``None``
    when the solve fails or reproduces the current plan.  Passing a
    fitted ``latency_model`` keeps repeated re-solves warm, mirroring the
    planner's own prediction-cache reuse.
    """

    def _replan(
        plan: "ExecutionPlan", estimate: DriftEstimate
    ) -> "Optional[ExecutionPlan]":
        from ..core.api import plan_llmpq

        wl = estimate.suggested_workload(plan.workload)
        result = plan_llmpq(
            plan.model_name, cluster, wl,
            theta=theta, use_heuristic=use_heuristic,
            ilp_time_limit=ilp_time_limit, latency_model=latency_model,
            **plan_kwargs,
        )
        if result.plan is None or result.plan == plan:
            return None
        return result.plan

    return _replan


# ---------------------------------------------------------------------------
# Migration
# ---------------------------------------------------------------------------


@dataclass
class MigrationRecord:
    """What one migration did (appended to the controller's log)."""

    reason: str
    rebuilt: bool               #: workers rebuilt (shards re-cut / restarted)
    stages_before: int = 0
    stages_after: int = 0
    inflight: int = 0           #: requests carried across the switch
    replayed_tokens: int = 0    #: tokens recomputed to rebuild KV state
    divergences: int = 0        #: replayed samples that differed (bit changes)
    quiesce_seconds: float = 0.0  #: admission-paused virtual seconds


class MigrationController:
    """Executes plan switches on a live scheduler without dropping traffic.

    One controller per :class:`ContinuousScheduler`; crash recovery,
    drift replanning, and manual :meth:`ContinuousScheduler
    .request_migration` calls all land in :meth:`migrate`.  It must run
    at a token boundary — the scheduler guarantees the pipeline is idle
    there, which is the whole quiesce protocol: no draining dance is
    needed because continuous batching already synchronizes every
    iteration at the master.
    """

    def __init__(self, scheduler: "ContinuousScheduler") -> None:
        self.sched = scheduler
        self.log: list[MigrationRecord] = []

    def migrate(
        self,
        new_plan: "Optional[ExecutionPlan]" = None,
        *,
        reason: str = "manual",
        force_restart: bool = False,
    ) -> MigrationRecord:
        """Switch the running pipeline to ``new_plan`` (or rebuild in place).

        ``new_plan=None`` keeps the current plan — with
        ``force_restart=True`` that is exactly a crash recovery: rebuild
        the workers from cached shards and replay in-flight state.
        Pending requests stay queued and every in-flight request is
        carried across, so nothing is dropped.
        """
        sched = self.sched
        rt = sched.rt
        if sched.policy != "continuous":
            raise ValueError("live migration requires the continuous policy")
        from ..cost.stagecosts import StageCostModel
        from .microbatch import ContinuousLedger

        t0 = sched._now()
        rec = MigrationRecord(
            reason=reason, rebuilt=False,
            stages_before=rt.plan.num_stages,
            inflight=len(sched._active),
        )
        target = new_plan if new_plan is not None else rt.plan
        rebuilt = rt.switch_plan(target)
        if force_restart and not rebuilt:
            rt._restart_stages()
            rebuilt = True
        rec.rebuilt = rebuilt
        rec.stages_after = rt.plan.num_stages

        # re-price admission under the new plan; in-flight units keep
        # their ids (worker KV units are keyed by them) but are re-homed
        # into a ledger shaped for the new stage count with recomputed
        # charges
        sched.cost = StageCostModel(rt.plan, cfg=rt.cfg)
        sched.headroom = sched.cost.kv_headroom(
            [c.budget_bytes for c in rt.dequant_caches]
        )
        ledger = ContinuousLedger(rt.plan.num_stages)
        for a in sched._active:
            ledger.adopt(
                a.unit_id,
                sched.cost.request_kv_bytes(a.req.prompt_len, a.req.gen_len),
            )
        sched.ledger = ledger

        if rebuilt:
            self._replay(rec)
        self._retire_finished()

        rec.quiesce_seconds = sched._now() - t0
        sched.migrations += 1
        sched.quiesce_seconds += rec.quiesce_seconds
        sched.replayed_tokens += rec.replayed_tokens
        sched.replay_divergences += rec.divergences
        rt.stats.migrations += 1
        rt.stats.quiesce_seconds += rec.quiesce_seconds
        self.log.append(rec)
        return rec

    # -- state re-map ---------------------------------------------------
    def _replay(self, rec: MigrationRecord) -> None:
        """Rebuild lost KV state by replaying each request's computation.

        Replay mirrors the original kernel shapes exactly — a batch-1
        prefill over the original prompt, then one batch-1 decode per
        recorded token feeding the recorded id — because a single fused
        prefill over prompt+tokens would change GEMM shapes and hence
        rounding, breaking the byte-identity contract.  Rounds are
        pipelined across requests like a normal iteration.  Replayed
        samples are compared against the recorded stream: under a
        bit-preserving plan they match bit-for-bit; under changed
        bitwidths mismatches are *counted* (the recorded, already-emitted
        tokens stay authoritative so client-visible streams remain
        self-consistent).
        """
        sched = self.sched
        replaying = [a for a in sched._active if a.tokens]
        if not replaying:
            return
        for a in replaying:
            sched._send_prefill(a, a.reserve)
        outs = sched._collect(len(replaying))
        for a in replaying:
            tok = sched._sample(a, outs[a.unit_id])
            rec.replayed_tokens += 1
            if tok != a.tokens[0]:
                rec.divergences += 1
        k = 1
        while True:
            round_ = [a for a in replaying if len(a.tokens) > k]
            if not round_:
                break
            for a in round_:
                sched._send_replay_decode(a, k)
            outs = sched._collect(len(round_))
            for a in round_:
                tok = sched._sample(a, outs[a.unit_id])
                rec.replayed_tokens += 1
                if tok != a.tokens[k]:
                    rec.divergences += 1
            k += 1

    def _retire_finished(self) -> None:
        """Retire requests that finished but whose release was interrupted.

        A crash during the release handshake leaves fully-generated
        requests in the active set; decoding them again would corrupt
        the schedule, so they are released and reported here instead.
        """
        sched = self.sched
        done = [
            a for a in sched._active
            if a.decode_budget <= 0 and len(a.tokens) >= a.req.gen_len
        ]
        if not done:
            return
        sched._release([a.unit_id for a in done])
        now = sched._now()
        for a in done:
            sched._active.remove(a)
            a.record.tokens = np.array(a.tokens, dtype=np.int64)
            if a.record.finish_time == 0.0:  # pragma: no cover - guard
                a.record.finish_time = now
            sched._report.records.append(a.record)
