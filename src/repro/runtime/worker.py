"""Pipeline stage worker.

Each worker is a thread owning one model shard (its layers already
quantized by the loader) and a KV manager.  It consumes activation
messages from its inbound queue, runs its decoder blocks with the exact
same :func:`~repro.models.transformer.decoder_block` computation as the
reference model, and forwards the result — the runtime therefore
*executes* plans rather than merely costing them, and its outputs are
bit-for-bit comparable against a single-process run.
"""

from __future__ import annotations

import queue
import threading

from ..models.config import ModelConfig
from ..models.transformer import decoder_block
from .kvcache import StageKVManager
from .loader import StageLoad
from .messages import ActivationMessage, MergeMessage, ShutdownMessage

__all__ = ["StageWorker"]


class StageWorker(threading.Thread):
    """One pipeline stage running on its own thread.

    Parameters
    ----------
    stage_idx:
        Position in the pipeline (0-based).
    cfg:
        Model architecture.
    load:
        The shard's prepared (quantized) weights.
    inbound / outbound:
        Message queues toward the previous / next hop.
    """

    def __init__(
        self,
        stage_idx: int,
        cfg: ModelConfig,
        load: StageLoad,
        inbound: "queue.Queue",
        outbound: "queue.Queue",
    ) -> None:
        super().__init__(name=f"stage-{stage_idx}", daemon=True)
        self.stage_idx = stage_idx
        self.cfg = cfg
        self.load = load
        self.inbound = inbound
        self.outbound = outbound
        self.kv = StageKVManager(
            num_layers=len(load.layers), hidden_size=cfg.hidden_size
        )
        self.processed_messages = 0
        self.error: BaseException | None = None

    # ------------------------------------------------------------------
    def _process(self, msg: ActivationMessage) -> ActivationMessage:
        if msg.phase == "prefill":
            cache = self.kv.allocate(
                msg.microbatch_id,
                batch=msg.hidden.shape[0],
                max_len=msg.hidden.shape[1] + msg.reserve,
            )
        else:
            cache = self.kv.get(msg.microbatch_id)
        x = msg.hidden
        for li, lw in enumerate(self.load.layers):
            x = decoder_block(self.cfg, lw, x, cache, li, msg.start)
        cache.length = msg.start + msg.hidden.shape[1]
        return ActivationMessage(
            microbatch_id=msg.microbatch_id,
            phase=msg.phase,
            start=msg.start,
            hidden=x,
            reserve=msg.reserve,
        )

    def run(self) -> None:  # pragma: no cover - exercised via engine tests
        """Message loop: process activations until shutdown or failure."""
        try:
            while True:
                msg = self.inbound.get()
                if isinstance(msg, ShutdownMessage):
                    self.outbound.put(msg)
                    return
                if isinstance(msg, MergeMessage):
                    self.kv.merge(msg.group_id, msg.member_ids)
                    self.outbound.put(msg)
                    continue
                out = self._process(msg)
                self.processed_messages += 1
                self.outbound.put(out)
        except BaseException as exc:  # surface worker crashes to the master
            self.error = exc
            self.outbound.put(ShutdownMessage())
