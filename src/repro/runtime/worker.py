"""Pipeline stage worker.

Each worker is a thread owning one model shard (its layers already
quantized by the loader) and a KV manager.  It consumes activation
messages from its inbound queue, runs its decoder blocks with the exact
same :func:`~repro.models.transformer.decoder_block` computation as the
reference model, and forwards the result — the runtime therefore
*executes* plans rather than merely costing them, and its outputs are
bit-for-bit comparable against a single-process run.

Supervision: the message loop never blocks unboundedly.  Every inbound
``get`` uses a short timeout; between polls the worker refreshes its
heartbeat and checks both its own stop flag and the shared control
plane's abort flag, so a failure anywhere in the pipeline propagates in
*both* directions — downstream via a :class:`FailureMessage` riding the
data path, upstream via the abort flag — and no neighbour can deadlock
on a dead stage.

Hot path: the shard's resident representation is the *packed* quantized
codes; each decoder layer is materialized to dense weights through the
stage's :class:`~repro.runtime.dequant_cache.DequantCache`, so
steady-state decode never touches the packed codes while a cold (or
zero-budget) cache rebuilds them per message.  Under KV-allocation
pressure the worker sheds cached dense weights and retries the
allocation once before letting the engine's degradation ladder fire.
"""

from __future__ import annotations

import queue
import threading
import time

from ..models.config import ModelConfig
from ..models.transformer import batched_decode_block, decoder_block
from .dequant_cache import DequantCache
from .faults import FaultInjector, KVAllocationError
from .kvcache import StageKVManager
from .loader import StageLoad
from .messages import (
    ActivationMessage,
    BatchedDecodeMessage,
    FailureMessage,
    MergeMessage,
    ReleaseMessage,
    ShutdownMessage,
)

__all__ = ["StageWorker"]


class StageWorker(threading.Thread):
    """One pipeline stage running on its own thread.

    Parameters
    ----------
    stage_idx:
        Position in the pipeline (0-based).
    cfg:
        Model architecture.
    load:
        The shard's prepared (quantized) weights.
    inbound / outbound:
        Message queues toward the previous / next hop.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` consulted
        on every activation (and on every KV allocation via the
        manager's guard).
    control:
        Optional shared control plane (the engine's
        :class:`~repro.runtime.engine.PipelineControl`): crashes are
        reported to it and its abort flag is polled so the whole
        pipeline unwinds together.
    poll_interval:
        Heartbeat granularity: the bound on every blocking queue wait.
    dequant_cache:
        Optional per-device :class:`DequantCache` the shard's layers are
        materialized through.  ``None`` rebuilds dense weights on every
        message (the zero-budget baseline).
    """

    def __init__(
        self,
        stage_idx: int,
        cfg: ModelConfig,
        load: StageLoad,
        inbound: "queue.Queue",
        outbound: "queue.Queue",
        *,
        injector: FaultInjector | None = None,
        control=None,
        poll_interval: float = 0.05,
        dequant_cache: DequantCache | None = None,
        kv_bits: int = 16,
    ) -> None:
        super().__init__(name=f"stage-{stage_idx}", daemon=True)
        self.stage_idx = stage_idx
        self.cfg = cfg
        self.load = load
        self.inbound = inbound
        self.outbound = outbound
        self.injector = injector
        self.control = control
        self.poll_interval = poll_interval
        self.dequant_cache = dequant_cache
        self.kv_bits = kv_bits
        self.kv = StageKVManager(
            num_layers=load.num_layers,
            hidden_size=cfg.hidden_size,
            alloc_guard=self._make_kv_guard(),
            kv_bits=kv_bits,
            num_heads=cfg.num_heads,
        )
        self.processed_messages = 0
        self.error: BaseException | None = None
        self.heartbeat = time.monotonic()
        self._stop_event = threading.Event()

    def _make_kv_guard(self):
        """KV guard that sheds cached dense weights before failing.

        Cached ``W_hat`` tensors are rebuildable from the resident packed
        codes, so under allocation pressure they are freed first and the
        allocation retried once; only if the guard still denies does the
        :class:`KVAllocationError` escape to the degradation ladder.
        """
        if self.injector is None:
            return None
        inner = self.injector.kv_guard(self.stage_idx)

        def guard(requested_bytes: float) -> None:
            try:
                inner(requested_bytes)
            except KVAllocationError:
                cache = self.dequant_cache
                if cache is None or cache.shed(requested_bytes) <= 0:
                    raise
                inner(requested_bytes)

        return guard

    # ------------------------------------------------------------------
    def _process(self, msg: ActivationMessage) -> ActivationMessage:
        if msg.phase == "prefill":
            cache = self.kv.allocate(
                msg.microbatch_id,
                batch=msg.hidden.shape[0],
                max_len=msg.hidden.shape[1] + msg.reserve,
            )
        else:
            cache = self.kv.get(msg.microbatch_id)
        x = msg.hidden
        for li, qlayer in enumerate(self.load.qlayers):
            lw = qlayer.materialize(self.dequant_cache)
            x = decoder_block(self.cfg, lw, x, cache, li, msg.start)
        cache.length = msg.start + msg.hidden.shape[1]
        return ActivationMessage(
            microbatch_id=msg.microbatch_id,
            phase=msg.phase,
            start=msg.start,
            hidden=x,
            reserve=msg.reserve,
        )

    def _process_batched(self, msg: BatchedDecodeMessage) -> BatchedDecodeMessage:
        """One fused decode iteration: a single stacked GEMM per layer
        shared by every in-flight request, ragged attention per request.

        The batched KV view scatters/gathers against the same per-unit
        caches the batch-1 path uses, so requests still retire, migrate
        and replay individually.
        """
        view = self.kv.batch_view(msg.unit_ids, msg.starts)
        x = msg.hidden
        for li, qlayer in enumerate(self.load.qlayers):
            lw = qlayer.materialize(self.dequant_cache)
            x = batched_decode_block(self.cfg, lw, x, view, li, msg.starts)
        view.commit_lengths()
        return BatchedDecodeMessage(unit_ids=msg.unit_ids, starts=msg.starts, hidden=x)

    def _should_exit(self) -> bool:
        if self._stop_event.is_set():
            return True
        return self.control is not None and self.control.aborted()

    def run(self) -> None:  # pragma: no cover - exercised via engine tests
        """Message loop: process activations until shutdown or failure."""
        try:
            while True:
                self.heartbeat = time.monotonic()
                if self._should_exit():
                    return
                try:
                    msg = self.inbound.get(timeout=self.poll_interval)
                except queue.Empty:
                    continue
                if isinstance(msg, ShutdownMessage):
                    self.outbound.put(msg)
                    return
                if isinstance(msg, FailureMessage):
                    self.outbound.put(msg)  # forward toward the master
                    continue
                if isinstance(msg, MergeMessage):
                    self.kv.merge(msg.group_id, msg.member_ids)
                    self.outbound.put(msg)
                    continue
                if isinstance(msg, ReleaseMessage):
                    # eager retirement: riding the data path means the
                    # unit's last activation was already processed here
                    for uid in msg.unit_ids:
                        self.kv.release(uid)
                    self.outbound.put(msg)
                    continue
                if self.injector is not None:
                    # fused decode messages count as one activation — the
                    # iteration is one unit of stage work on the wire
                    action = self.injector.on_activation(
                        self.stage_idx, sleep=self._stop_event.wait
                    )
                    if action == "drop":
                        continue
                    if action == "corrupt":
                        corrupted = self.injector.corrupt(
                            self.stage_idx,
                            msg.hidden,
                            self.injector.corruption_scale(self.stage_idx),
                        )
                        if isinstance(msg, BatchedDecodeMessage):
                            msg = BatchedDecodeMessage(
                                unit_ids=msg.unit_ids,
                                starts=msg.starts,
                                hidden=corrupted,
                            )
                        else:
                            msg = ActivationMessage(
                                microbatch_id=msg.microbatch_id,
                                phase=msg.phase,
                                start=msg.start,
                                hidden=corrupted,
                                reserve=msg.reserve,
                            )
                if isinstance(msg, BatchedDecodeMessage):
                    out: ActivationMessage | BatchedDecodeMessage = (
                        self._process_batched(msg)
                    )
                else:
                    out = self._process(msg)
                self.processed_messages += 1
                self.outbound.put(out)
        except BaseException as exc:  # surface worker crashes to the master
            self.error = exc
            if self.control is not None:
                self.control.report_failure(self.stage_idx, exc)
            self.outbound.put(FailureMessage(self.stage_idx, repr(exc)))

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker and join, escalating instead of leaking.

        A polite :class:`ShutdownMessage` wakes a worker blocked on its
        inbound queue immediately; the stop flag covers every other loop
        position.  If the thread still refuses to exit after a second
        grace period (it can only be wedged inside a single layer's
        matmul), a :class:`RuntimeError` names the leaked thread instead
        of silently abandoning it.
        """
        self.inbound.put(ShutdownMessage())
        self._stop_event.set()
        self.join(timeout=timeout)
        if self.is_alive():
            self.join(timeout=timeout)  # escalation grace period
            if self.is_alive():
                raise RuntimeError(
                    f"stage {self.stage_idx} worker thread failed to stop "
                    f"within {2 * timeout:.1f}s (leaked thread {self.name!r})"
                )
