"""Thread-safe micro-batch manager (paper Sec. 5).

Owns the split of the global batch into prefill micro-batches (cache
units) and their regrouping into decode groups, and tracks in-flight
units so concurrent producers/consumers (the master's feeder and
collector) stay consistent.

:class:`ContinuousLedger` is the iteration-level counterpart for online
serving: instead of a fixed global batch cut up front, cache-unit ids are
minted as requests are admitted, each unit carries a per-stage KV byte
charge under the planner's memory model, and retiring a unit returns its
charge immediately so the freed slots can be reused by the next admission
— the bookkeeping half of continuous batching.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["MicroBatchManager", "ContinuousLedger"]


@dataclass(frozen=True)
class _Unit:
    unit_id: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        """Requests in this unit."""
        return self.hi - self.lo

    @property
    def as_slice(self) -> slice:
        """Slice into the global batch."""
        return slice(self.lo, self.hi)


class MicroBatchManager:
    """Splits a global batch for two-phase pipelined serving.

    Parameters
    ----------
    global_batch:
        Total requests in the offline batch.
    prefill_microbatch / decode_microbatch:
        The plan's phase-specific sizes.  Decode groups are assembled
        from whole prefill units, so the effective decode size is
        ``prefill_microbatch * ceil(decode_microbatch / prefill_microbatch)``
        capped at the global batch — the closest realizable regrouping.

    Under KV memory pressure the engine calls :meth:`shrink_decode` to
    halve the decode group size (down to one prefill unit per group) and
    regroup, rather than crashing — one rung of the runtime's
    degradation ladder.
    """

    GROUP_ID_BASE = 10_000

    def __init__(
        self, global_batch: int, prefill_microbatch: int, decode_microbatch: int
    ) -> None:
        if global_batch <= 0:
            raise ValueError("global_batch must be positive")
        if prefill_microbatch <= 0 or decode_microbatch <= 0:
            raise ValueError("micro-batch sizes must be positive")
        self.global_batch = global_batch
        self.prefill_microbatch = min(prefill_microbatch, global_batch)
        self.decode_microbatch = min(decode_microbatch, global_batch)
        self._lock = threading.Lock()
        self._inflight: set[int] = set()

        self._units = [
            _Unit(uid, lo, min(lo + self.prefill_microbatch, global_batch))
            for uid, lo in enumerate(range(0, global_batch, self.prefill_microbatch))
        ]
        self._rebuild_groups()

    def _rebuild_groups(self) -> None:
        per_group = max(1, self.decode_microbatch // self.prefill_microbatch)
        self._groups: list[tuple[int, tuple[int, ...], slice]] = []
        for g, lo_idx in enumerate(range(0, len(self._units), per_group)):
            members = self._units[lo_idx : lo_idx + per_group]
            self._groups.append(
                (
                    self.GROUP_ID_BASE + g,
                    tuple(u.unit_id for u in members),
                    slice(members[0].lo, members[-1].hi),
                )
            )

    # ------------------------------------------------------------------
    @property
    def prefill_units(self) -> list[tuple[int, slice]]:
        """``(unit_id, batch_slice)`` per prefill micro-batch."""
        return [(u.unit_id, u.as_slice) for u in self._units]

    @property
    def decode_groups(self) -> list[tuple[int, tuple[int, ...], slice]]:
        """``(group_id, member_unit_ids, batch_slice)`` per decode group."""
        return list(self._groups)

    @property
    def num_prefill_microbatches(self) -> int:
        """Cache units in the prefill phase."""
        return len(self._units)

    @property
    def num_decode_groups(self) -> int:
        """Merged groups in the decode phase."""
        return len(self._groups)

    # ------------------------------------------------------------------
    def shrink_decode(self) -> bool:
        """Halve the decode group size and regroup (degradation rung).

        Returns ``False`` when already at the floor (one prefill unit
        per decode group) — the ladder must escalate instead.  Safe to
        call between serving attempts; group ids are reissued from
        :data:`GROUP_ID_BASE`, so callers must re-merge.
        """
        with self._lock:
            floor = self.prefill_microbatch
            new = max(floor, self.decode_microbatch // 2)
            if new == self.decode_microbatch:
                return False
            self.decode_microbatch = new
            self._rebuild_groups()
            return True

    # ------------------------------------------------------------------
    def mark_inflight(self, unit_id: int) -> None:
        """Record a unit entering the pipeline (errors on double entry)."""
        with self._lock:
            if unit_id in self._inflight:
                raise ValueError(f"unit {unit_id} already in flight")
            self._inflight.add(unit_id)

    def mark_done(self, unit_id: int) -> None:
        """Record a unit leaving the pipeline."""
        with self._lock:
            self._inflight.discard(unit_id)

    @property
    def inflight_count(self) -> int:
        """Units currently in the pipeline."""
        with self._lock:
            return len(self._inflight)

    def inflight_ids(self) -> tuple[int, ...]:
        """Snapshot of the in-flight ledger (sorted unit/group ids).

        On a stage failure this is exactly the set of micro-batches the
        recovery path must replay."""
        with self._lock:
            return tuple(sorted(self._inflight))

    def clear_inflight(self) -> None:
        """Reset the ledger (the pipeline was rebuilt; nothing survives)."""
        with self._lock:
            self._inflight.clear()


class ContinuousLedger:
    """Cache-unit id allocator + per-stage KV accounting for continuous
    batching.

    The iteration-level scheduler admits a request by charging its KV
    reservation (one ``(num_stages,)`` byte vector under the planner's
    Sec.-4.1 memory model) against the per-stage headroom; retiring the
    request refunds the charge at once, which is what lets the next
    queued request take over the freed slots at the very next token
    boundary instead of waiting for a wave to drain.
    """

    def __init__(self, num_stages: int) -> None:
        if num_stages <= 0:
            raise ValueError("num_stages must be positive")
        self.num_stages = num_stages
        self._lock = threading.Lock()
        self._next_id = 0
        self._charges: dict[int, np.ndarray] = {}
        self._used = np.zeros(num_stages)
        self.admitted_total = 0
        self.released_total = 0

    def _as_charge(self, charge) -> np.ndarray:
        arr = np.asarray(charge, dtype=np.float64)
        if arr.shape != (self.num_stages,):
            raise ValueError(
                f"charge must have shape ({self.num_stages},), got {arr.shape}"
            )
        return arr

    def fits(self, charge, headroom) -> bool:
        """Would admitting ``charge`` stay within ``headroom`` everywhere?"""
        arr = self._as_charge(charge)
        with self._lock:
            return bool(np.all(self._used + arr <= np.asarray(headroom) + 1e-9))

    def admit(self, charge) -> int:
        """Charge the reservation and mint a fresh cache-unit id."""
        arr = self._as_charge(charge)
        with self._lock:
            uid = self._next_id
            self._next_id += 1
            self._charges[uid] = arr
            self._used += arr
            self.admitted_total += 1
            return uid

    def adopt(self, unit_id: int, charge) -> None:
        """Register an *existing* unit id with a (re-priced) charge.

        Live migration re-homes in-flight cache units under a new plan's
        cost model: each unit keeps its id (worker KV units are keyed by
        it) while its per-stage charge is recomputed for the new stage
        boundaries.  Fresh ids minted later never collide with adopted
        ones.
        """
        arr = self._as_charge(charge)
        with self._lock:
            if unit_id in self._charges:
                raise ValueError(f"unit {unit_id} already admitted")
            self._next_id = max(self._next_id, unit_id + 1)
            self._charges[unit_id] = arr
            self._used += arr
            self.admitted_total += 1

    def release(self, unit_id: int) -> None:
        """Refund a unit's charge (idempotent)."""
        with self._lock:
            arr = self._charges.pop(unit_id, None)
            if arr is not None:
                self._used -= arr
                self.released_total += 1

    @property
    def inflight_count(self) -> int:
        """Units currently admitted and not yet released."""
        with self._lock:
            return len(self._charges)

    @property
    def used_bytes(self) -> np.ndarray:
        """Per-stage KV bytes currently charged (copy)."""
        with self._lock:
            return self._used.copy()
