"""Master engine: drives a real pipelined generative-serving run.

The :class:`PipelineRuntime` executes an :class:`~repro.core.plan.
ExecutionPlan` on actual NumPy compute: stage workers (threads) hold the
plan's quantized shards, the master handles pre/post-processing
(embedding lookup, final layer norm + logit projection, token sampling)
and the hybrid micro-batch schedule — prefill micro-batches flow through
the pipeline concurrently, then merge into larger decode groups exactly
as the assigner planned.

Because the computation is real, a runtime run on a tiny model can be
checked token-for-token against the single-process reference
(:func:`repro.models.generation.generate`), which is what the
integration tests do.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass

import numpy as np

from ..core.plan import ExecutionPlan
from ..models.registry import get_model
from ..models.transformer import TinyDecoderLM
from .loader import StageLoad, load_stage_weights
from .messages import ActivationMessage, MergeMessage, ShutdownMessage
from .worker import StageWorker

__all__ = ["RuntimeStats", "PipelineRuntime"]


@dataclass
class RuntimeStats:
    """Wall-clock accounting of one :meth:`PipelineRuntime.generate`."""

    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    prefill_microbatches: int = 0
    decode_groups: int = 0
    tokens_generated: int = 0

    @property
    def total_seconds(self) -> float:
        """Prefill + decode wall-clock."""
        return self.prefill_seconds + self.decode_seconds


class PipelineRuntime:
    """Thread-pipelined executor for tiny models.

    Parameters
    ----------
    reference:
        Full-precision model providing weights + embedding tables.  The
        loader quantizes each stage's slice per the plan.
    plan:
        The assigner's output.  ``plan.model_name`` must match the
        reference's config.
    """

    def __init__(self, reference: TinyDecoderLM, plan: ExecutionPlan) -> None:
        cfg = get_model(plan.model_name)
        if cfg != reference.cfg:
            raise ValueError("plan and reference model configs differ")
        self.cfg = cfg
        self.reference = reference
        self.plan = plan

        # prepared (quantized) shard weights are cached so that failure
        # recovery does not pay the quantization cost again — the point
        # of the paper's on-the-fly loader (Sec. 5)
        self._loads: list[StageLoad] = []
        offset = 0
        for stage in plan.stages:
            indices = list(range(offset, offset + stage.num_layers))
            offset += stage.num_layers
            self._loads.append(
                load_stage_weights(reference, indices, stage.layer_bits)
            )
        self.queues: list[queue.Queue] = []
        self.workers: list[StageWorker] = []
        self._build_pipeline()
        self._alive = True
        self.stats = RuntimeStats()

    def _build_pipeline(self) -> None:
        self.queues = [queue.Queue() for _ in range(self.plan.num_stages + 1)]
        self.workers = [
            StageWorker(j, self.cfg, load, self.queues[j], self.queues[j + 1])
            for j, load in enumerate(self._loads)
        ]
        for w in self.workers:
            w.start()

    def recover(self) -> None:
        """Rebuild the pipeline after a stage failure.

        Dead workers are discarded, live ones shut down, and fresh
        workers are started from the *cached* quantized shards — KV state
        is lost (the in-flight batch must be re-served), but weight
        preparation is skipped, which is the recovery-speed win the
        paper's loading plugin claims.
        """
        for j, w in enumerate(self.workers):
            if w.is_alive():
                self.queues[j].put(ShutdownMessage())
        for w in self.workers:
            w.join(timeout=5.0)
        self._build_pipeline()
        self._alive = True

    # ------------------------------------------------------------------
    @property
    def head(self) -> queue.Queue:
        """Inbound queue of the first stage."""
        return self.queues[0]

    @property
    def tail(self) -> queue.Queue:
        """Outbound queue of the last stage."""
        return self.queues[-1]

    def _collect(self, count: int, timeout: float = 60.0) -> dict[int, ActivationMessage]:
        out: dict[int, ActivationMessage] = {}
        deadline = time.monotonic() + timeout
        while len(out) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("pipeline stalled")
            msg = self.tail.get(timeout=remaining)
            if isinstance(msg, ShutdownMessage):
                self._raise_worker_error()
                raise RuntimeError("pipeline shut down unexpectedly")
            if isinstance(msg, MergeMessage):
                continue  # merge acks surface here, ignore
            out[msg.microbatch_id] = msg
        return out

    def _raise_worker_error(self) -> None:
        for w in self.workers:
            if w.error is not None:
                raise RuntimeError(f"stage {w.stage_idx} failed") from w.error

    def _logits_last(self, hidden: np.ndarray) -> np.ndarray:
        """Master post-processing: final LN + tied LM head, last position."""
        return self.reference._logits(hidden[:, -1:])[:, 0]

    # ------------------------------------------------------------------
    def generate(
        self, prompts: np.ndarray, num_tokens: int, *, greedy: bool = True, seed: int = 0
    ) -> np.ndarray:
        """Serve one offline batch; returns ``(batch, num_tokens)`` ids."""
        if not self._alive:
            raise RuntimeError("runtime already shut down")
        prompts = np.asarray(prompts)
        batch, s = prompts.shape
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(seed)
        mb_p = min(self.plan.prefill_microbatch, batch)
        mb_d = min(self.plan.decode_microbatch, batch)

        # ---------------- prefill (all units in flight at once) --------
        t0 = time.perf_counter()
        unit_slices: list[slice] = []
        for uid, lo in enumerate(range(0, batch, mb_p)):
            sl = slice(lo, min(lo + mb_p, batch))
            unit_slices.append(sl)
            x = self.reference._embed(prompts[sl], 0)
            self.head.put(
                ActivationMessage(
                    microbatch_id=uid, phase="prefill", start=0,
                    hidden=x, reserve=num_tokens,
                )
            )
        outs = self._collect(len(unit_slices))
        tokens = np.empty((batch, num_tokens), dtype=np.int64)
        current = np.empty(batch, dtype=np.int64)
        for uid, sl in enumerate(unit_slices):
            logits = self._logits_last(outs[uid].hidden)
            current[sl] = _pick(logits, greedy, rng)
        tokens[:, 0] = current
        self.stats.prefill_seconds += time.perf_counter() - t0
        self.stats.prefill_microbatches += len(unit_slices)

        # ---------------- regroup for decode ---------------------------
        t1 = time.perf_counter()
        units_per_group = max(1, mb_d // mb_p)
        groups: list[tuple[int, slice]] = []
        gid_base = 10_000  # distinct id space for merged groups
        uid = 0
        g = 0
        while uid < len(unit_slices):
            members = tuple(range(uid, min(uid + units_per_group, len(unit_slices))))
            lo = unit_slices[members[0]].start
            hi = unit_slices[members[-1]].stop
            gid = gid_base + g
            self.head.put(MergeMessage(group_id=gid, member_ids=members))
            groups.append((gid, slice(lo, hi)))
            uid += units_per_group
            g += 1
        # wait for merge acks to clear the pipe (they arrive at the tail)
        acks = 0
        while acks < len(groups):
            msg = self.tail.get(timeout=60.0)
            if isinstance(msg, ShutdownMessage):
                self._raise_worker_error()
                raise RuntimeError("pipeline shut down unexpectedly")
            if isinstance(msg, MergeMessage):
                acks += 1
        self.stats.decode_groups = len(groups)

        # ---------------- decode loop -----------------------------------
        for step in range(1, num_tokens):
            start = s + step - 1
            for gid, sl in groups:
                x = self.reference._embed(current[sl].reshape(-1, 1), start)
                self.head.put(
                    ActivationMessage(
                        microbatch_id=gid, phase="decode", start=start, hidden=x
                    )
                )
            outs = self._collect(len(groups))
            for gid, sl in groups:
                logits = self._logits_last(outs[gid].hidden)
                current[sl] = _pick(logits, greedy, rng)
            tokens[:, step] = current
        self.stats.decode_seconds += time.perf_counter() - t1
        self.stats.tokens_generated += batch * num_tokens

        # free decode groups for the next batch
        for w in self.workers:
            w.kv.free_all()
        return tokens

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop all stage workers and drain the pipeline (idempotent)."""
        if not self._alive:
            return
        self.head.put(ShutdownMessage())
        # the shutdown message propagates to the tail when all stages exit
        try:
            while True:
                msg = self.tail.get(timeout=10.0)
                if isinstance(msg, ShutdownMessage):
                    break
        except queue.Empty:  # pragma: no cover - defensive
            pass
        for w in self.workers:
            w.join(timeout=5.0)
        self._alive = False

    def __enter__(self) -> "PipelineRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _pick(logits: np.ndarray, greedy: bool, rng: np.random.Generator) -> np.ndarray:
    if greedy:
        return logits.argmax(axis=-1)
    z = logits - logits.max(axis=-1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=-1, keepdims=True)
    return np.array([rng.choice(p.shape[1], p=row) for row in p])
