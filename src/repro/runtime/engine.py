"""Master engine: drives a real pipelined generative-serving run.

The :class:`PipelineRuntime` executes an :class:`~repro.core.plan.
ExecutionPlan` on actual NumPy compute: stage workers (threads) hold the
plan's quantized shards, the master handles pre/post-processing
(embedding lookup, final layer norm + logit projection, token sampling)
and the hybrid micro-batch schedule — prefill micro-batches flow through
the pipeline concurrently, then merge into larger decode groups exactly
as the assigner planned.

Because the computation is real, a runtime run on a tiny model can be
checked token-for-token against the single-process reference
(:func:`repro.models.generation.generate`), which is what the
integration tests do.

Fault tolerance (paper Sec. 5's recovery story, made concrete): every
blocking wait is bounded, worker health is tracked through a shared
:class:`PipelineControl`, and a stage failure triggers the degradation
ladder

1. **retry** — rebuild the dead workers from the *cached* quantized
   shards (no re-quantization — the point of the on-the-fly loader) and
   replay the batch.  Generation is seeded, so the replay is
   token-for-token identical to an undisturbed run.
2. **shrink** — on KV-allocation pressure, halve the decode group via
   :class:`~repro.runtime.microbatch.MicroBatchManager` and keep
   serving with smaller groups instead of crashing.
3. **replan** — on a permanent device loss (a stage that dies on every
   restart), call back into :func:`repro.core.api.replan_after_failure`
   to redistribute its layers over the surviving devices and serve the
   downgraded plan.

Deterministic failures for all of this come from
:class:`~repro.runtime.faults.FaultInjector`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import stats
from ..core.plan import ExecutionPlan
from ..cost.memory import dequant_cache_budget, stage_memory
from ..models.registry import get_model
from ..models.transformer import TinyDecoderLM
from ..ops import greedy_pick
from .dequant_cache import DequantCache, DequantCacheStats
from .faults import FaultInjector, KVAllocationError, PipelineStallError
from .loader import StageLoad, load_stage_weights
from .messages import ActivationMessage, FailureMessage, MergeMessage, ShutdownMessage
from .microbatch import MicroBatchManager
from .worker import StageWorker

__all__ = [
    "RuntimeStats",
    "SupervisionConfig",
    "PipelineControl",
    "StageFailureError",
    "PipelineRuntime",
]


@dataclass
class RuntimeStats:
    """Wall-clock and fault accounting of a :class:`PipelineRuntime`."""

    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    prefill_microbatches: int = 0
    decode_groups: int = 0
    tokens_generated: int = 0
    # --- hot-path counters --------------------------------------------
    prefill_tokens: int = 0      #: prompt tokens pushed through prefill
    decode_tokens: int = 0       #: tokens produced by decode steps
    dequant_cache_hits: int = 0      #: layer materializations served cached
    dequant_cache_misses: int = 0    #: layer materializations rebuilt
    dequant_cache_evictions: int = 0  #: LRU drops to respect the byte budget
    dequant_cache_sheds: int = 0      #: drops forced by KV pressure
    dequant_build_seconds: float = 0.0  #: wall-clock unpacking/dequantizing
    dequant_cache_budget_bytes: float = 0.0  #: summed per-stage budgets
    # --- per-request serving metrics ----------------------------------
    #: completion latency (admission/arrival -> last token) per request
    request_latencies: list[float] = field(default_factory=list)
    #: time to first token (admission/arrival -> prefill token) per request
    request_ttfts: list[float] = field(default_factory=list)
    # --- fault-tolerance counters -------------------------------------
    retries: int = 0             #: batch replays after a stage failure
    stage_restarts: int = 0      #: workers rebuilt from cached shards
    degrade_events: int = 0      #: decode-group shrinks under KV pressure
    kv_alloc_failures: int = 0   #: KV allocations denied
    replans: int = 0             #: plans rebuilt after permanent device loss
    replayed_microbatches: int = 0  #: in-flight units lost to failures
    recovery_seconds: float = 0.0   #: wall-clock spent rebuilding workers
    # --- live-replanning counters --------------------------------------
    migrations: int = 0          #: live plan switches (drift/crash/manual)
    drift_triggers: int = 0      #: drift-detector firings observed
    quiesce_seconds: float = 0.0  #: admission paused for migrations (virtual)
    # --- fused-decode counters ------------------------------------------
    fused_iterations: int = 0    #: decode iterations run as one ragged batch
    fused_batch_sum: int = 0     #: total requests across fused iterations
    fused_batch_max: int = 0     #: largest fused decode batch seen
    #: weight bytes *not* re-streamed thanks to fusing: each iteration
    #: charges the stage weight stream once instead of once per request
    fused_weight_bytes_saved: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Prefill + decode wall-clock."""
        return self.prefill_seconds + self.decode_seconds

    @property
    def prefill_tokens_per_s(self) -> float:
        """Prompt tokens processed per second of prefill wall-clock."""
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        """Tokens produced per second of steady-state decode wall-clock."""
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def fused_batch_mean(self) -> float:
        """Mean decode batch size across fused iterations (0 when none)."""
        return (
            self.fused_batch_sum / self.fused_iterations
            if self.fused_iterations
            else 0.0
        )

    def _latency_pct(self, q: float) -> float:
        return stats.percentile(self.request_latencies, q, empty=0.0)

    @property
    def latency_p50(self) -> float:
        """Median request completion latency (seconds)."""
        return self._latency_pct(50)

    @property
    def latency_p95(self) -> float:
        """95th-percentile request completion latency (seconds)."""
        return self._latency_pct(95)

    @property
    def latency_p99(self) -> float:
        """99th-percentile request completion latency (seconds)."""
        return self._latency_pct(99)

    @property
    def ttft_mean(self) -> float:
        """Mean time-to-first-token across requests (seconds)."""
        return stats.mean(self.request_ttfts, empty=0.0)

    @property
    def ttft_p95(self) -> float:
        """95th-percentile time-to-first-token (seconds)."""
        return stats.percentile(self.request_ttfts, 95, empty=0.0)


@dataclass(frozen=True)
class SupervisionConfig:
    """Bounds and switches for the runtime's fault handling."""

    queue_timeout: float = 30.0      #: master wait for pipeline progress
    heartbeat_interval: float = 0.05  #: worker poll / heartbeat granularity
    join_timeout: float = 5.0        #: per-worker stop() join bound
    max_retries: int = 3             #: batch replays before escalating
    max_replans: int = 2             #: device losses tolerated per runtime
    enable_recovery: bool = True     #: False = fail fast with RuntimeError
    degrade_on_kv_pressure: bool = True
    replan_on_permanent_failure: bool = False


class PipelineControl:
    """Shared control plane: first-failure record + abort flag.

    Workers report crashes here; every worker (and the master's
    collector) polls :meth:`aborted` between bounded queue waits, so a
    failure propagates to *both* pipeline directions without relying on
    the data path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._abort = threading.Event()
        self.failure: tuple[int, BaseException] | None = None

    def report_failure(self, stage_idx: int, exc: BaseException) -> None:
        """Record the first failure and raise the abort flag."""
        with self._lock:
            if self.failure is None:
                self.failure = (stage_idx, exc)
        self._abort.set()

    def aborted(self) -> bool:
        """True once any stage has failed."""
        return self._abort.is_set()


class StageFailureError(RuntimeError):
    """Internal signal: a serving attempt died and may be retried."""

    def __init__(self, stage_idx: int | None, cause: BaseException, message: str):
        super().__init__(message)
        self.stage_idx = stage_idx
        self.cause = cause


class PipelineRuntime:
    """Supervised thread-pipelined executor for tiny models.

    Parameters
    ----------
    reference:
        Full-precision model providing weights + embedding tables.  The
        loader quantizes each stage's slice per the plan.
    plan:
        The assigner's output.  ``plan.model_name`` must match the
        reference's config.
    fault_injector:
        Optional deterministic fault driver (crashes, stragglers,
        drops, corruption, KV pressure).
    supervision:
        Timeouts and retry/degradation bounds; the defaults recover
        transparently from transient faults.
    dequant_cache_mb:
        Per-stage byte budget (in MiB) for the dequantized-weight cache.
        ``None`` (default) derives each stage's budget from the plan's
        per-device memory slack via
        :func:`repro.cost.memory.dequant_cache_budget`; ``0`` disables
        caching entirely, reproducing the rebuild-every-call baseline.
    """

    def __init__(
        self,
        reference: TinyDecoderLM,
        plan: ExecutionPlan,
        *,
        fault_injector: FaultInjector | None = None,
        supervision: SupervisionConfig | None = None,
        dequant_cache_mb: float | None = None,
    ) -> None:
        cfg = get_model(plan.model_name)
        if cfg != reference.cfg:
            raise ValueError("plan and reference model configs differ")
        if dequant_cache_mb is not None and dequant_cache_mb < 0:
            raise ValueError("dequant_cache_mb must be >= 0")
        self.cfg = cfg
        self.reference = reference
        self.plan = plan
        self.original_plan = plan
        self.injector = fault_injector
        self.supervision = supervision or SupervisionConfig()
        self._dequant_cache_mb = dequant_cache_mb

        # prepared (quantized) shard weights are cached so that failure
        # recovery does not pay the quantization cost again — the point
        # of the paper's on-the-fly loader (Sec. 5)
        self._loads: list[StageLoad] = []
        self.dequant_caches: list[DequantCache] = []
        self._folded_cache_stats = DequantCacheStats()
        self._build_loads()
        self.queues: list[queue.Queue] = []
        self.workers: list[StageWorker] = []
        self.control = PipelineControl()
        self._build_pipeline()
        self._alive = True
        self._decode_microbatch = plan.decode_microbatch
        self._mbm: MicroBatchManager | None = None
        self.stats = RuntimeStats()
        self._sync_cache_stats()

    def _build_loads(self) -> None:
        # fold counters of caches about to be replaced (replan re-cuts
        # shards) into the running totals so stats stay monotonic
        for cache in getattr(self, "dequant_caches", []):
            self._fold_cache_stats(cache)
        self._loads = []
        self.dequant_caches = []
        offset = 0
        for j, stage in enumerate(self.plan.stages):
            indices = list(range(offset, offset + stage.num_layers))
            offset += stage.num_layers
            load = load_stage_weights(self.reference, indices, stage.layer_bits)
            self._loads.append(load)
            self.dequant_caches.append(
                DequantCache(self._stage_cache_budget(j, load))
            )

    def _fold_cache_stats(self, cache: DequantCache) -> None:
        f, s = self._folded_cache_stats, cache.stats
        f.hits += s.hits
        f.misses += s.misses
        f.evictions += s.evictions
        f.sheds += s.sheds
        f.build_seconds += s.build_seconds

    def _sync_cache_stats(self) -> None:
        """Publish dequant-cache counters (folded + live) onto ``stats``."""
        f = self._folded_cache_stats
        live = [c.stats for c in self.dequant_caches]
        self.stats.dequant_cache_hits = f.hits + sum(s.hits for s in live)
        self.stats.dequant_cache_misses = f.misses + sum(s.misses for s in live)
        self.stats.dequant_cache_evictions = (
            f.evictions + sum(s.evictions for s in live)
        )
        self.stats.dequant_cache_sheds = f.sheds + sum(s.sheds for s in live)
        self.stats.dequant_build_seconds = (
            f.build_seconds + sum(s.build_seconds for s in live)
        )
        self.stats.dequant_cache_budget_bytes = float(
            sum(c.budget_bytes for c in self.dequant_caches)
        )

    def _stage_cache_budget(self, stage_idx: int, load: StageLoad) -> float:
        """Byte budget of one stage's dequant cache.

        With no explicit override the budget is the device's memory slack
        under the planner's own accounting (Sec.-4.1 model), capped at
        the bytes a full cache of this shard would use — so runtime
        residency stays inside the memory the plan was admitted with.
        """
        if self._dequant_cache_mb is not None:
            return float(self._dequant_cache_mb) * 2**20
        stage = self.plan.stages[stage_idx]
        wl = self.plan.workload
        base = stage_memory(
            self.cfg, stage.layer_bits,
            global_batch=wl.global_batch,
            prompt_len=wl.prompt_len,
            gen_len=wl.gen_len,
            prefill_microbatch=self.plan.prefill_microbatch,
            decode_microbatch=self.plan.decode_microbatch,
            is_first=stage_idx == 0,
            is_last=stage_idx == self.plan.num_stages - 1,
            kv_bits=stage.kv_bits,
        )
        return dequant_cache_budget(
            base, stage.device.spec.memory_bytes,
            want_bytes=load.dense_cache_bytes,
        )

    def _build_pipeline(self) -> None:
        self.control = PipelineControl()
        self.queues = [queue.Queue() for _ in range(self.plan.num_stages + 1)]
        self.workers = [
            StageWorker(
                j, self.cfg, load, self.queues[j], self.queues[j + 1],
                injector=self.injector,
                control=self.control,
                poll_interval=self.supervision.heartbeat_interval,
                dequant_cache=self.dequant_caches[j],
                kv_bits=self.plan.stages[j].kv_bits,
            )
            for j, load in enumerate(self._loads)
        ]
        for w in self.workers:
            w.start()

    # ------------------------------------------------------------------
    # Recovery machinery
    # ------------------------------------------------------------------
    def _restart_stages(self) -> None:
        """Tear the pipeline down and rebuild it from the cached shards.

        KV state is lost (the in-flight batch must be re-served), but
        weight preparation is skipped, which is the recovery-speed win
        the paper's loading plugin claims.
        """
        t0 = time.perf_counter()
        crashed = sum(1 for w in self.workers if w.error is not None)
        stuck: list[str] = []
        for w in self.workers:
            try:
                w.stop(timeout=self.supervision.join_timeout)
            except RuntimeError as e:  # pragma: no cover - defensive
                stuck.append(str(e))
            if self.injector is not None:
                self.injector.notify_restart(w.stage_idx)
        if stuck:  # pragma: no cover - defensive
            raise RuntimeError("; ".join(stuck))
        self._build_pipeline()
        self.stats.stage_restarts += max(crashed, 1)
        self.stats.recovery_seconds += time.perf_counter() - t0

    def recover(self) -> None:
        """Rebuild the pipeline after a stage failure (public, manual)."""
        self._restart_stages()
        self._alive = True

    def switch_plan(self, new_plan: ExecutionPlan) -> bool:
        """Adopt ``new_plan`` on the running pipeline; True if rebuilt.

        The universal reconfiguration primitive behind crash replans,
        drift migrations, and manual replans.  When the new plan keeps
        the same layer split and per-layer bitwidths (e.g. a workload
        refit or a device re-labelling), the switch is metadata-only:
        workers, shards, dequant caches, and KV state all survive.
        Otherwise shards are re-cut from the full-precision reference
        and the workers rebuilt — KV state is lost and the caller (the
        :class:`~repro.runtime.replan.MigrationController`) must replay
        in-flight requests to restore it.
        """
        if new_plan.model_name != self.plan.model_name:
            raise ValueError("switch_plan cannot change the model")
        same_shards = tuple(
            (s.num_layers, s.layer_bits, s.kv_bits) for s in new_plan.stages
        ) == tuple(
            (s.num_layers, s.layer_bits, s.kv_bits) for s in self.plan.stages
        )
        self.plan = new_plan
        self._decode_microbatch = new_plan.decode_microbatch
        if same_shards:
            return False
        t0 = time.perf_counter()
        self._build_loads()  # new stage boundaries: shards must be re-cut
        self.stats.recovery_seconds += time.perf_counter() - t0
        self._restart_stages()
        return True

    def _replan_without_stage(self, failed_stage: int) -> None:
        """Degrade the plan: drop the dead stage's device, redistribute
        its layers to the surviving neighbours, rebuild shards + workers."""
        from ..core.api import replan_after_failure

        new_plan = replan_after_failure(self.plan, failed_stage)
        if self.injector is not None:
            self.injector.retire_stage(failed_stage)
        keep = min(self._decode_microbatch, new_plan.decode_microbatch)
        self.switch_plan(new_plan)
        self._decode_microbatch = keep
        self.stats.replans += 1

    def _shrink_decode_group(self) -> bool:
        floor = min(self.plan.prefill_microbatch, self._decode_microbatch)
        new = max(floor, self._decode_microbatch // 2)
        if new == self._decode_microbatch:
            return False
        self._decode_microbatch = new
        return True

    def _fail_cleanly(self, err: StageFailureError) -> None:
        """Stop everything and surface a clean RuntimeError (no deadlock)."""
        self._alive = False
        problems: list[str] = []
        for w in self.workers:
            try:
                w.stop(timeout=self.supervision.join_timeout)
            except RuntimeError as e:  # pragma: no cover - defensive
                problems.append(str(e))
        detail = f" ({'; '.join(problems)})" if problems else ""
        where = (
            f"stage {err.stage_idx}" if err.stage_idx is not None else "pipeline"
        )
        raise RuntimeError(f"{where} failed: {err.cause!r}{detail}") from err.cause

    # ------------------------------------------------------------------
    @property
    def head(self) -> queue.Queue:
        """Inbound queue of the first stage."""
        return self.queues[0]

    @property
    def tail(self) -> queue.Queue:
        """Outbound queue of the last stage."""
        return self.queues[-1]

    def _check_health(self) -> None:
        if self.control.failure is not None:
            stage_idx, exc = self.control.failure
            raise StageFailureError(
                stage_idx, exc, f"stage {stage_idx} failed: {exc!r}"
            )
        for w in self.workers:
            if not w.is_alive():
                exc = w.error or RuntimeError(f"stage {w.stage_idx} worker died")
                raise StageFailureError(
                    w.stage_idx, exc, f"stage {w.stage_idx} died: {exc!r}"
                )

    def _next_message(self, what: str):
        """Bounded wait on the tail with health checks between polls.

        The deadline measures *progress*: it spans one message, not the
        whole phase, so slow-but-alive stages (stragglers) never trip it
        while a dropped message or a silent wedge does.
        """
        deadline = time.monotonic() + self.supervision.queue_timeout
        while True:
            self._check_health()
            try:
                msg = self.tail.get(timeout=min(self.supervision.heartbeat_interval, 0.05))
            except queue.Empty:
                if time.monotonic() >= deadline:
                    cause = PipelineStallError(
                        f"no progress for {self.supervision.queue_timeout:.1f}s "
                        f"while waiting for {what}"
                    )
                    raise StageFailureError(None, cause, str(cause))
                continue
            if isinstance(msg, FailureMessage):
                stage_idx = msg.stage_idx
                exc = next(
                    (w.error for w in self.workers
                     if w.stage_idx == stage_idx and w.error is not None),
                    None,
                ) or RuntimeError(msg.error)
                raise StageFailureError(
                    stage_idx, exc, f"stage {stage_idx} failed: {msg.error}"
                )
            if isinstance(msg, ShutdownMessage):
                cause = RuntimeError("pipeline shut down unexpectedly")
                raise StageFailureError(None, cause, str(cause))
            return msg

    def _collect(
        self, count: int, mbm: MicroBatchManager | None = None
    ) -> dict[int, ActivationMessage]:
        out: dict[int, ActivationMessage] = {}
        while len(out) < count:
            msg = self._next_message(f"activation {len(out) + 1}/{count}")
            if isinstance(msg, MergeMessage):
                continue  # merge acks surface here, ignore
            out[msg.microbatch_id] = msg
            if mbm is not None:
                mbm.mark_done(msg.microbatch_id)
        return out

    def _collect_merge_acks(self, count: int) -> None:
        acks = 0
        while acks < count:
            msg = self._next_message(f"merge ack {acks + 1}/{count}")
            if isinstance(msg, MergeMessage):
                acks += 1

    def _logits_last(self, hidden: np.ndarray) -> np.ndarray:
        """Master post-processing: final LN + tied LM head, last position."""
        return self.reference._logits(hidden[:, -1:])[:, 0]

    # ------------------------------------------------------------------
    def generate(
        self, prompts: np.ndarray, num_tokens: int, *, greedy: bool = True, seed: int = 0
    ) -> np.ndarray:
        """Serve one offline batch; returns ``(batch, num_tokens)`` ids.

        Supervised: stage crashes, stalls and KV pressure inside the
        attempt are handled per the degradation ladder (retry → shrink
        decode group → replan) within the configured bounds; only when
        the ladder is exhausted — or recovery is disabled — does a
        :class:`RuntimeError` escape, and it does so within the
        configured timeouts rather than deadlocking.
        """
        if not self._alive:
            raise RuntimeError("runtime already shut down")
        prompts = np.asarray(prompts)
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        sup = self.supervision
        retries = 0
        while True:
            try:
                return self._serve_batch(prompts, num_tokens, greedy, seed)
            except StageFailureError as err:
                self._sync_cache_stats()
                if self._mbm is not None:
                    self.stats.replayed_microbatches += len(self._mbm.inflight_ids())
                if not sup.enable_recovery:
                    self._fail_cleanly(err)
                if (
                    isinstance(err.cause, KVAllocationError)
                    and sup.degrade_on_kv_pressure
                ):
                    self.stats.kv_alloc_failures += 1
                    if self._shrink_decode_group():
                        # shrinking is finitely repeatable (halving hits
                        # the prefill floor), so it has its own budget
                        self.stats.degrade_events += 1
                        self._restart_stages()
                        continue
                retries += 1
                self.stats.retries += 1
                if retries > sup.max_retries:
                    if (
                        sup.replan_on_permanent_failure
                        and err.stage_idx is not None
                        and self.plan.num_stages > 1
                        and self.stats.replans < sup.max_replans
                    ):
                        self._replan_without_stage(err.stage_idx)
                        retries = 0
                        continue
                    self._fail_cleanly(err)
                self._restart_stages()

    def _serve_batch(
        self, prompts: np.ndarray, num_tokens: int, greedy: bool, seed: int
    ) -> np.ndarray:
        """One unsupervised serving attempt (raises StageFailureError)."""
        rng = np.random.default_rng(seed)
        batch, s = prompts.shape
        mbm = MicroBatchManager(
            batch,
            min(self.plan.prefill_microbatch, batch),
            min(self._decode_microbatch, batch),
        )
        self._mbm = mbm

        # ---------------- prefill (all units in flight at once) --------
        t0 = time.perf_counter()
        for uid, sl in mbm.prefill_units:
            x = self.reference._embed(prompts[sl], 0)
            mbm.mark_inflight(uid)
            self.head.put(
                ActivationMessage(
                    microbatch_id=uid, phase="prefill", start=0,
                    hidden=x, reserve=num_tokens,
                )
            )
        outs = self._collect(mbm.num_prefill_microbatches, mbm)
        tokens = np.empty((batch, num_tokens), dtype=np.int64)
        current = np.empty(batch, dtype=np.int64)
        for uid, sl in mbm.prefill_units:
            logits = self._logits_last(outs[uid].hidden)
            current[sl] = _pick(logits, greedy, rng)
        tokens[:, 0] = current
        prefill_elapsed = time.perf_counter() - t0
        self.stats.prefill_seconds += prefill_elapsed
        self.stats.prefill_microbatches += mbm.num_prefill_microbatches
        self.stats.prefill_tokens += batch * s

        # ---------------- regroup for decode ---------------------------
        t1 = time.perf_counter()
        groups = mbm.decode_groups
        for gid, members, _sl in groups:
            self.head.put(MergeMessage(group_id=gid, member_ids=members))
        self._collect_merge_acks(len(groups))
        self.stats.decode_groups = mbm.num_decode_groups

        # ---------------- decode loop -----------------------------------
        for step in range(1, num_tokens):
            start = s + step - 1
            for gid, _members, sl in groups:
                x = self.reference._embed(current[sl].reshape(-1, 1), start)
                mbm.mark_inflight(gid)
                self.head.put(
                    ActivationMessage(
                        microbatch_id=gid, phase="decode", start=start, hidden=x
                    )
                )
            outs = self._collect(len(groups), mbm)
            for gid, _members, sl in groups:
                logits = self._logits_last(outs[gid].hidden)
                current[sl] = _pick(logits, greedy, rng)
            tokens[:, step] = current
        decode_elapsed = time.perf_counter() - t1
        self.stats.decode_seconds += decode_elapsed
        self.stats.tokens_generated += batch * num_tokens
        self.stats.decode_tokens += batch * (num_tokens - 1)
        # offline batches admit everyone at t=0 and finish together, so
        # every request shares the wave's TTFT and completion latency —
        # recorded only on the successful attempt (retries never get here)
        self.stats.request_ttfts.extend([prefill_elapsed] * batch)
        self.stats.request_latencies.extend(
            [prefill_elapsed + decode_elapsed] * batch
        )
        self._sync_cache_stats()

        # free decode groups for the next batch
        for w in self.workers:
            w.kv.free_all()
        self._mbm = None
        return tokens

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop all stage workers and join with escalation (idempotent)."""
        if not self._alive:
            return
        self._alive = False
        problems: list[str] = []
        for w in self.workers:
            try:
                w.stop(timeout=self.supervision.join_timeout)
            except RuntimeError as e:  # pragma: no cover - defensive
                problems.append(str(e))
        if problems:  # pragma: no cover - defensive
            raise RuntimeError("shutdown leaked threads: " + "; ".join(problems))

    def __enter__(self) -> "PipelineRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _pick(logits: np.ndarray, greedy: bool, rng: np.random.Generator) -> np.ndarray:
    if greedy:
        # shared first-index tie-break (repro.ops.greedy_pick): the
        # runtime and the reference model must resolve exact ties alike
        return greedy_pick(logits)
    z = logits - logits.max(axis=-1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=-1, keepdims=True)
    return np.array([rng.choice(p.shape[1], p=row) for row in p])
