"""On-the-fly quantized model loading (paper Sec. 5).

Two jobs:

1. **Real weight preparation** — :func:`load_stage_weights` takes the
   full-precision reference model, slices out a stage's layers and
   applies each layer's assigned quantization, returning layer weights
   that are numerically identical to what a weight-only serving kernel
   computes, plus a byte ledger from the genuinely bit-packed codes.

2. **Loading-timeline model** — :func:`simulate_loading` reproduces the
   plugin the paper describes: the integrated checkpoint is decoupled
   into module-level weights, and disk->CPU reads are overlapped with
   on-GPU quantization and CPU->GPU copies.  Module-level granularity
   bounds host DRAM by a single module instead of the whole shard,
   which is the plugin's headline benefit ("significant reduction in
   DRAM required for model loading").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..models.config import ModelConfig
from ..models.transformer import LayerWeights, TinyDecoderLM
from ..quant.kernels import QuantizedLinear

__all__ = ["StageLoad", "load_stage_weights", "LoadTimeline", "simulate_loading"]


@dataclass(frozen=True)
class StageLoad:
    """A stage's prepared weights plus its packed-byte ledger."""

    layers: tuple[LayerWeights, ...]
    layer_bits: tuple[int, ...]
    packed_weight_bytes: int


def load_stage_weights(
    model: TinyDecoderLM,
    layer_indices: Sequence[int],
    layer_bits: Sequence[int],
) -> StageLoad:
    """Slice + quantize the layers a stage hosts.

    Every dense matrix is round-tripped through the real quantizer at its
    assigned bitwidth; the byte ledger comes from actually bit-packing
    the codes (see :class:`~repro.quant.kernels.QuantizedLinear`).
    """
    if len(layer_indices) != len(layer_bits):
        raise ValueError("one bitwidth per layer required")
    out: list[LayerWeights] = []
    packed = 0
    for li, bits in zip(layer_indices, layer_bits):
        layer = model.layers[li]
        new: dict[str, np.ndarray] = {}
        for name, w in layer.linear_weights().items():
            ql = QuantizedLinear.from_float(w, None, bits)
            packed += ql.weight_nbytes
            new[name] = ql.dequantized() if bits < 16 else w
        out.append(layer.replace_linears(new))
    return StageLoad(
        layers=tuple(out),
        layer_bits=tuple(layer_bits),
        packed_weight_bytes=packed,
    )


@dataclass(frozen=True)
class LoadTimeline:
    """Result of the loading-pipeline simulation."""

    total_seconds: float
    peak_host_dram_bytes: float
    granularity: str
    num_chunks: int


def simulate_loading(
    cfg: ModelConfig,
    layer_bits: Sequence[int],
    *,
    granularity: str = "module",
    disk_bandwidth: float = 2.0e9,
    pcie_bandwidth: float = 12.0e9,
    quantize_rate: float = 40.0e9,
) -> LoadTimeline:
    """Timeline of loading one stage's weights with overlap.

    The chunk stream is a three-stage software pipeline —
    ``disk -> host DRAM``, ``quantize`` (GPU-side, consumes FP16 bytes),
    ``host -> device copy`` — so total time is bounded by the slowest
    stage plus pipeline fill, and host DRAM holds at most two chunks in
    flight (double buffering).

    ``granularity="module"`` streams per dense operator;
    ``granularity="shard"`` loads the whole stage as one chunk (the
    naive loader the plugin replaces).
    """
    ops = cfg.layer_shape.operators
    chunks_fp16: list[float] = []
    chunks_out: list[float] = []
    for bits in layer_bits:
        layer_fp16 = []
        layer_out = []
        for rows, cols in ops.values():
            fp16_bytes = rows * cols * 2.0
            out_bytes = rows * cols * bits / 8.0 + (2 * 2 * cols if bits < 16 else 0)
            layer_fp16.append(fp16_bytes)
            layer_out.append(out_bytes)
        if granularity == "module":
            chunks_fp16.extend(layer_fp16)
            chunks_out.extend(layer_out)
        elif granularity == "layer":
            chunks_fp16.append(sum(layer_fp16))
            chunks_out.append(sum(layer_out))
        elif granularity == "shard":
            pass  # accumulated below
        else:
            raise ValueError(f"unknown granularity {granularity!r}")
    if granularity == "shard":
        total_fp16 = float(
            sum(cfg.layer_shape.linear_params * 2.0 for _ in layer_bits)
        )
        total_out = float(
            sum(
                cfg.layer_shape.linear_params * b / 8.0
                + sum(2 * 2 * c for _, c in ops.values())
                for b in layer_bits
            )
        )
        chunks_fp16 = [total_fp16]
        chunks_out = [total_out]

    fp16 = np.asarray(chunks_fp16)
    out = np.asarray(chunks_out)
    t_disk = fp16 / disk_bandwidth
    t_quant = fp16 / quantize_rate
    t_copy = out / pcie_bandwidth

    # three-stage pipeline: completion = fill of first chunk through all
    # stages + per-chunk max stage time afterwards
    stage_times = np.vstack([t_disk, t_quant, t_copy])
    total = float(stage_times[:, 0].sum() + stage_times.max(axis=0)[1:].sum())
    # double buffering: at most two chunks of FP16 bytes resident on host
    peak = float(fp16.max() * min(2, len(fp16)))
    return LoadTimeline(
        total_seconds=total,
        peak_host_dram_bytes=peak,
        granularity=granularity,
        num_chunks=len(chunks_fp16),
    )
