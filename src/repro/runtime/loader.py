"""On-the-fly quantized model loading (paper Sec. 5).

Two jobs:

1. **Real weight preparation** — :func:`load_stage_weights` takes the
   full-precision reference model, slices out a stage's layers and
   applies each layer's assigned quantization.  The stage keeps the
   weights exactly as a serving kernel stores them: genuinely bit-packed
   integer codes (plus scales) for quantized layers, float weights for
   16-bit layers.  The byte ledger comes from the packed codes, and the
   memory the stage actually holds matches it — dense ``W_hat`` tensors
   only ever exist as cache/temp memory, materialized per layer through
   a :class:`~repro.runtime.dequant_cache.DequantCache` (or rebuilt on
   every call when the cache budget is zero).

2. **Loading-timeline model** — :func:`simulate_loading` reproduces the
   plugin the paper describes: the integrated checkpoint is decoupled
   into module-level weights, and disk->CPU reads are overlapped with
   on-GPU quantization and CPU->GPU copies.  Module-level granularity
   bounds host DRAM by a single module instead of the whole shard,
   which is the plugin's headline benefit ("significant reduction in
   DRAM required for model loading").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..models.config import ModelConfig
from ..models.transformer import LayerWeights, TinyDecoderLM, fused_qkv
from ..quant.kernels import QuantizedLinear

__all__ = [
    "QuantizedStageLayer",
    "StageLoad",
    "load_stage_weights",
    "LoadTimeline",
    "simulate_loading",
]


@dataclass(frozen=True)
class QuantizedStageLayer:
    """One resident decoder layer in serving (packed) form.

    ``base`` supplies the layer norms and biases (and the float dense
    weights for 16-bit operators — those are the resident representation
    at FP16, shared with the reference model, not a copy).  ``linears``
    holds the packed :class:`QuantizedLinear` per quantized operator.
    """

    layer_index: int
    bits: int
    base: LayerWeights
    linears: dict[str, QuantizedLinear]

    @property
    def cache_entry_bytes(self) -> int:
        """Dense bytes a materialized (cached) copy of this layer holds:
        every quantized operator's ``W_hat`` plus the fused QKV arrays."""
        dense = sum(ql.dense_nbytes for ql in self.linears.values())
        h = self.base.wq.shape[0]
        fused = (3 * h * h + 3 * h) * 8
        return int(dense + fused)

    def _build(self) -> tuple[LayerWeights, int]:
        """Dequantize into runnable :class:`LayerWeights` (cache builder)."""
        new = {name: ql.dequantized() for name, ql in self.linears.items()}
        lw = self.base.replace_linears(new)
        fused_qkv(lw)  # precompute so the cached entry owns the fused GEMM
        return lw, self.cache_entry_bytes

    def materialize(self, cache=None) -> LayerWeights:
        """Runnable float weights, via ``cache`` when one is attached.

        With no cache (or a zero budget inside one) the dense weights are
        rebuilt from the packed codes on every call — the naive baseline
        the hot-path cache exists to avoid.
        """
        if cache is None:
            return self._build()[0]
        return cache.get(("layer", self.layer_index), self._build)


@dataclass(frozen=True)
class StageLoad:
    """A stage's prepared weights plus its packed-byte ledger."""

    qlayers: tuple[QuantizedStageLayer, ...]
    layer_bits: tuple[int, ...]
    packed_weight_bytes: int

    @property
    def num_layers(self) -> int:
        """Resident decoder layers."""
        return len(self.qlayers)

    @property
    def dense_cache_bytes(self) -> int:
        """Bytes a full (every-layer) dequant cache would occupy."""
        return sum(q.cache_entry_bytes for q in self.qlayers)

    @property
    def layers(self) -> tuple[LayerWeights, ...]:
        """Materialized float weights (uncached, built on access).

        Convenience view for tests and offline inspection; the worker hot
        path materializes per layer through its dequant cache instead.
        """
        return tuple(q.materialize() for q in self.qlayers)


def load_stage_weights(
    model: TinyDecoderLM,
    layer_indices: Sequence[int],
    layer_bits: Sequence[int],
) -> StageLoad:
    """Slice + quantize the layers a stage hosts.

    Every dense matrix is round-tripped through the real quantizer at its
    assigned bitwidth; the byte ledger comes from actually bit-packing
    the codes (see :class:`~repro.quant.kernels.QuantizedLinear`), and
    the packed codes are what the stage keeps resident.
    """
    if len(layer_indices) != len(layer_bits):
        raise ValueError("one bitwidth per layer required")
    out: list[QuantizedStageLayer] = []
    packed = 0
    for li, bits in zip(layer_indices, layer_bits):
        layer = model.layers[li]
        linears: dict[str, QuantizedLinear] = {}
        for name, w in layer.linear_weights().items():
            ql = QuantizedLinear.from_float(w, None, bits)
            packed += ql.weight_nbytes
            if bits < 16:
                linears[name] = ql
        out.append(
            QuantizedStageLayer(
                layer_index=li, bits=bits, base=layer, linears=linears
            )
        )
    return StageLoad(
        qlayers=tuple(out),
        layer_bits=tuple(layer_bits),
        packed_weight_bytes=packed,
    )


@dataclass(frozen=True)
class LoadTimeline:
    """Result of the loading-pipeline simulation."""

    total_seconds: float
    peak_host_dram_bytes: float
    granularity: str
    num_chunks: int


def simulate_loading(
    cfg: ModelConfig,
    layer_bits: Sequence[int],
    *,
    granularity: str = "module",
    disk_bandwidth: float = 2.0e9,
    pcie_bandwidth: float = 12.0e9,
    quantize_rate: float = 40.0e9,
) -> LoadTimeline:
    """Timeline of loading one stage's weights with overlap.

    The chunk stream is a three-stage software pipeline —
    ``disk -> host DRAM``, ``quantize`` (GPU-side, consumes FP16 bytes),
    ``host -> device copy`` — so total time is bounded by the slowest
    stage plus pipeline fill, and host DRAM holds at most two chunks in
    flight (double buffering).

    ``granularity="module"`` streams per dense operator;
    ``granularity="shard"`` loads the whole stage as one chunk (the
    naive loader the plugin replaces).
    """
    ops = cfg.layer_shape.operators
    chunks_fp16: list[float] = []
    chunks_out: list[float] = []
    for bits in layer_bits:
        layer_fp16 = []
        layer_out = []
        for rows, cols in ops.values():
            fp16_bytes = rows * cols * 2.0
            out_bytes = rows * cols * bits / 8.0 + (2 * 2 * cols if bits < 16 else 0)
            layer_fp16.append(fp16_bytes)
            layer_out.append(out_bytes)
        if granularity == "module":
            chunks_fp16.extend(layer_fp16)
            chunks_out.extend(layer_out)
        elif granularity == "layer":
            chunks_fp16.append(sum(layer_fp16))
            chunks_out.append(sum(layer_out))
        elif granularity == "shard":
            pass  # accumulated below
        else:
            raise ValueError(f"unknown granularity {granularity!r}")
    if granularity == "shard":
        total_fp16 = float(
            sum(cfg.layer_shape.linear_params * 2.0 for _ in layer_bits)
        )
        total_out = float(
            sum(
                cfg.layer_shape.linear_params * b / 8.0
                + sum(2 * 2 * c for _, c in ops.values())
                for b in layer_bits
            )
        )
        chunks_fp16 = [total_fp16]
        chunks_out = [total_out]

    fp16 = np.asarray(chunks_fp16)
    out = np.asarray(chunks_out)
    t_disk = fp16 / disk_bandwidth
    t_quant = fp16 / quantize_rate
    t_copy = out / pcie_bandwidth

    # three-stage pipeline: completion = fill of first chunk through all
    # stages + per-chunk max stage time afterwards
    stage_times = np.vstack([t_disk, t_quant, t_copy])
    total = float(stage_times[:, 0].sum() + stage_times.max(axis=0)[1:].sum())
    # double buffering: at most two chunks of FP16 bytes resident on host
    peak = float(fp16.max() * min(2, len(fp16)))
    return LoadTimeline(
        total_seconds=total,
        peak_host_dram_bytes=peak,
        granularity=granularity,
        num_chunks=len(chunks_fp16),
    )
