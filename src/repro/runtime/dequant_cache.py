"""Budget-aware cache of dequantized weights (the decode hot path).

Weight-only quantization keeps *packed codes* resident — that is what the
planner's memory model charges as weight bytes — but every matmul needs
the dense ``W_hat``.  Rebuilding ``W_hat`` from the codes on every decode
step is the naive-baseline tax this module removes: a per-device
:class:`DequantCache` memoizes built entries under an LRU policy whose
byte budget is derived from the plan's per-device memory slack (see
:func:`repro.cost.memory.dequant_cache_budget`), so a stage near its
memory cap caches fewer layers and a stage with head-room caches all of
them.

A budget of zero stores nothing: every ``get`` invokes the builder, which
reproduces the recompute-every-call behavior exactly (same numerics, no
resident dense bytes).  Under KV-allocation pressure the owning worker
can :meth:`shed` cached bytes before the runtime's degradation ladder
fires — dropping memoized weights is always safe because they can be
rebuilt from the resident codes.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

__all__ = ["DequantCacheStats", "DequantCache"]


@dataclass
class DequantCacheStats:
    """Counters of one :class:`DequantCache` (monotonic over its life)."""

    hits: int = 0            #: entries served without rebuilding
    misses: int = 0          #: builder invocations
    insertions: int = 0      #: built entries that fit the budget
    evictions: int = 0       #: LRU entries dropped to respect the budget
    sheds: int = 0           #: entries dropped on demand (KV pressure)
    build_seconds: float = 0.0  #: wall-clock spent unpacking/dequantizing

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DequantCache:
    """LRU byte-budgeted memo of built (dequantized) weight entries.

    Thread-safe; in the runtime each stage worker owns one instance
    (per-device, like a real allocator pool) and the engine aggregates
    the stats afterwards.

    ``get(key, builder)`` returns the cached value or calls ``builder``,
    which must return ``(value, nbytes)``.  Entries larger than the whole
    budget are returned but never stored.
    """

    def __init__(self, budget_bytes: float) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = float(budget_bytes)
        self.stats = DequantCacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[object, tuple[object, int]]" = OrderedDict()
        self._bytes = 0
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        """Bytes of all resident entries."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object, builder: Callable[[], tuple[object, int]]):
        """Fetch ``key``, building (and caching if it fits) on a miss."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return hit[0]
            self.stats.misses += 1
            t0 = time.perf_counter()
            value, nbytes = builder()
            self.stats.build_seconds += time.perf_counter() - t0
            nbytes = int(nbytes)
            if 0 < nbytes <= self.budget_bytes:
                self._entries[key] = (value, nbytes)
                self._bytes += nbytes
                self.stats.insertions += 1
                self._evict_to(self.budget_bytes, counter="evictions")
                self.peak_bytes = max(self.peak_bytes, self._bytes)
            return value

    def _evict_to(self, limit: float, *, counter: str) -> int:
        """Drop LRU entries until at most ``limit`` bytes remain."""
        freed = 0
        while self._bytes > limit and self._entries:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self._bytes -= nbytes
            freed += nbytes
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        return freed

    # ------------------------------------------------------------------
    def shed(self, want_bytes: float) -> int:
        """Free at least ``want_bytes`` if possible; returns bytes freed.

        Called under KV-allocation pressure: cached dense weights are the
        one thing on the device that is safe to drop (they rebuild from
        the resident packed codes), so they go *before* the degradation
        ladder shrinks decode groups or replans.
        """
        with self._lock:
            target = max(0.0, self._bytes - float(want_bytes))
            return self._evict_to(target, counter="sheds")

    def shrink(self, new_budget_bytes: float) -> int:
        """Lower (or raise) the budget and evict down to it; bytes freed."""
        if new_budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        with self._lock:
            self.budget_bytes = float(new_budget_bytes)
            return self._evict_to(self.budget_bytes, counter="evictions")

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
