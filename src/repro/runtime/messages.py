"""Messages exchanged between the master engine and stage workers.

The wire protocol mirrors the paper's runtime (Fig. 6): hidden-state
activations flow stage to stage; the master injects embedded prompts and
receives final hidden states to turn into logits; control messages merge
prefill micro-batches into decode groups (hybrid micro-batch sizing) and
shut the pipeline down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = [
    "ActivationMessage",
    "BatchedDecodeMessage",
    "MergeMessage",
    "ReleaseMessage",
    "ShutdownMessage",
    "FailureMessage",
]


@dataclass
class ActivationMessage:
    """A micro-batch's hidden states entering a stage.

    Attributes
    ----------
    microbatch_id:
        Cache-unit id (prefill micro-batch id, or merged group id after a
        :class:`MergeMessage`).
    phase:
        ``"prefill"`` or ``"decode"``.
    start:
        Absolute position of the first token in ``hidden`` (0 for
        prefill, current context length for decode steps).
    hidden:
        ``(batch, q, hidden_size)`` activations.
    reserve:
        KV slots to pre-allocate on first contact (prefill only).
    """

    microbatch_id: int
    phase: Literal["prefill", "decode"]
    start: int
    hidden: np.ndarray
    reserve: int = 0


@dataclass
class BatchedDecodeMessage:
    """One fused decode iteration for several independent requests.

    The continuous scheduler stacks every in-flight request's next-token
    hidden state into one ``(B, 1, hidden_size)`` tensor so each stage
    runs a single GEMM per layer against the shared dequant-cached
    weights instead of ``B`` batch-1 GEMVs.  Attention stays ragged:
    ``starts[i]`` is request ``i``'s current context length, and each
    stage reads/writes that request's own KV cache unit.

    Attributes
    ----------
    unit_ids:
        Cache-unit id per batch row, length ``B``.
    starts:
        ``(B,)`` int64 absolute position of each row's token (= tokens
        already in that unit's KV cache).
    hidden:
        ``(B, 1, hidden_size)`` activations.
    """

    unit_ids: tuple[int, ...]
    starts: np.ndarray
    hidden: np.ndarray


@dataclass
class MergeMessage:
    """Merge prefill cache units into one decode group (regrouping step
    of the hybrid micro-batch sizing)."""

    group_id: int
    member_ids: tuple[int, ...]


@dataclass
class ReleaseMessage:
    """Free finished cache units on every stage (continuous batching).

    The iteration-level scheduler retires a request the moment its last
    token is sampled; this message rides the data path so each stage
    drops the unit's KV slots in message order (never racing an
    in-flight activation for the same unit) and forwards it downstream.
    The copy arriving at the master's tail queue serves as the
    all-stages-freed acknowledgement and is otherwise ignored.
    """

    unit_ids: tuple[int, ...]


@dataclass
class ShutdownMessage:
    """Propagates through the pipeline, stopping each worker in turn."""


@dataclass
class FailureMessage:
    """A stage crashed.

    Emitted by the failing worker on its outbound queue and forwarded
    by every downstream stage so the master's collector unblocks
    immediately (the upstream direction is covered by the shared
    control-plane abort flag that all workers poll).
    """

    stage_idx: int
    error: str
