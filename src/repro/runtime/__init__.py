"""Distributed serving runtime: master engine, stage workers, loaders."""

from .engine import PipelineRuntime, RuntimeStats
from .kvcache import StageKVManager
from .loader import LoadTimeline, StageLoad, load_stage_weights, simulate_loading
from .messages import ActivationMessage, MergeMessage, ShutdownMessage
from .microbatch import MicroBatchManager
from .worker import StageWorker

__all__ = [
    "PipelineRuntime",
    "RuntimeStats",
    "StageKVManager",
    "StageLoad",
    "load_stage_weights",
    "LoadTimeline",
    "simulate_loading",
    "ActivationMessage",
    "MergeMessage",
    "ShutdownMessage",
    "MicroBatchManager",
    "StageWorker",
]
