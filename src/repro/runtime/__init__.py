"""Distributed serving runtime: master engine, stage workers, loaders,
fault injection, supervised recovery, and the hot-path dequantized-weight
cache."""

from .dequant_cache import DequantCache, DequantCacheStats
from .engine import (
    PipelineControl,
    PipelineRuntime,
    RuntimeStats,
    StageFailureError,
    SupervisionConfig,
)
from .faults import (
    FaultInjector,
    InjectedFault,
    KVAllocationError,
    KVAllocPressure,
    MessageCorruption,
    MessageDrop,
    PipelineStallError,
    StageCrash,
    Straggler,
)
from .kvcache import StageKVManager
from .loader import (
    LoadTimeline,
    QuantizedStageLayer,
    StageLoad,
    load_stage_weights,
    simulate_loading,
)
from .messages import (
    ActivationMessage,
    FailureMessage,
    MergeMessage,
    ReleaseMessage,
    ShutdownMessage,
)
from .microbatch import ContinuousLedger, MicroBatchManager
from .replan import (
    DriftConfig,
    DriftDetector,
    DriftEstimate,
    MigrationController,
    MigrationRecord,
    make_search_replanner,
    workload_refit_replanner,
)
from .scheduler import (
    ContinuousScheduler,
    RequestRecord,
    ServeReport,
    ServeRequest,
    requests_from_arrivals,
)
from .worker import StageWorker

__all__ = [
    "PipelineRuntime",
    "RuntimeStats",
    "SupervisionConfig",
    "PipelineControl",
    "StageFailureError",
    "FaultInjector",
    "InjectedFault",
    "KVAllocationError",
    "PipelineStallError",
    "StageCrash",
    "Straggler",
    "MessageDrop",
    "MessageCorruption",
    "KVAllocPressure",
    "StageKVManager",
    "DequantCache",
    "DequantCacheStats",
    "StageLoad",
    "QuantizedStageLayer",
    "load_stage_weights",
    "LoadTimeline",
    "simulate_loading",
    "ActivationMessage",
    "MergeMessage",
    "ReleaseMessage",
    "ShutdownMessage",
    "FailureMessage",
    "MicroBatchManager",
    "ContinuousLedger",
    "DriftConfig",
    "DriftDetector",
    "DriftEstimate",
    "MigrationController",
    "MigrationRecord",
    "workload_refit_replanner",
    "make_search_replanner",
    "ContinuousScheduler",
    "ServeRequest",
    "RequestRecord",
    "ServeReport",
    "requests_from_arrivals",
    "StageWorker",
]
