"""Iteration-level (continuous-batching) online scheduler.

Runs an admission queue over the real :class:`~repro.runtime.engine
.PipelineRuntime`: requests arrive over (virtual) time, are admitted into
the in-flight group at token boundaries whenever the planner's per-stage
KV accounting says they fit, run prefill while everything else keeps
decoding (a rolling hybrid mix of phases), and retire the moment their
last token is sampled — a :class:`~repro.runtime.messages.ReleaseMessage`
rides the data path so every stage frees the request's KV slots
immediately and the next queued request can take them over at the very
next iteration.  This is the ORCA-style counterpart of the paper's
offline two-phase schedule.

Fused batched decode is the default execution mode: at each token
boundary every in-flight decode request's single-token activation is
stacked into one ``(B, 1, h)`` ragged batch, each stage runs one
QKV/MLP GEMM per layer against the shared dequant-cached weights
(amortizing the weight stream over the whole batch — the dominant
decode cost), attention stays ragged over per-request KV units, and the
master samples all ``B`` next tokens from one stacked logit GEMM.
Requests still own individual batch-1 cache units, so admission,
retirement, migration and replay are unchanged.

Equality contract: fused greedy *token streams* equal the per-request
oracle (``decode_batching="per-request"``) and the single-process
``generate(model, prompt[None], n)`` reference.  The guarantee is at
argmax level, not logit bytes: BLAS batch-1 matvec kernels round
differently from rows of a batched matmul (~1e-14 relative drift), so
logits can differ in their last bits while every argmax — and hence
every token — agrees; ties are impossible to mis-break because all
samplers share :func:`repro.ops.greedy_pick`'s first-index rule.  The
per-request mode remains selectable as the bitwise single-process
reference path (and is what migration KV replay always uses).

``policy="wave"`` emulates the offline baseline under the same
per-request execution: admission only into an empty system, every member
padded to the wave's maxima (KV reserved at ``s_max + n_max``, decode run
for ``n_max`` tokens even for requests that finished early), memory
freed only when the whole wave drains.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

import numpy as np

from .. import stats
from ..core.plan import ExecutionPlan
from ..cost.stagecosts import StageCostModel
from ..ops import greedy_pick
from ..workload.traces import RequestArrival
from .engine import PipelineRuntime, StageFailureError
from .messages import (
    ActivationMessage,
    BatchedDecodeMessage,
    MergeMessage,
    ReleaseMessage,
)
from .microbatch import ContinuousLedger
from .replan import DriftConfig, DriftDetector, MigrationController, Replanner

__all__ = [
    "ServeRequest",
    "RequestRecord",
    "ServeReport",
    "ContinuousScheduler",
    "requests_from_arrivals",
]


@dataclass(frozen=True)
class ServeRequest:
    """One online request: a prompt, a generation budget, an arrival time."""

    request_id: int
    prompt: np.ndarray          #: ``(s,)`` int64 token ids
    gen_len: int                #: tokens to generate (>= 1)
    arrival: float = 0.0        #: seconds since trace start

    def __post_init__(self) -> None:
        p = np.asarray(self.prompt)
        if p.ndim != 1 or p.size == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        if self.gen_len <= 0:
            raise ValueError("gen_len must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")

    @property
    def prompt_len(self) -> int:
        """Prompt tokens."""
        return int(np.asarray(self.prompt).size)


@dataclass
class RequestRecord:
    """Per-request outcome: tokens plus the serving timeline (virtual s)."""

    request_id: int
    prompt_len: int
    gen_len: int
    arrival: float
    admit_time: float = 0.0      #: when the scheduler admitted it
    first_token_time: float = 0.0  #: when its prefill token was sampled
    finish_time: float = 0.0     #: when its last token was sampled
    rejected: bool = False       #: could never fit, even alone
    tokens: np.ndarray | None = None  #: ``(gen_len,)`` generated ids

    @property
    def latency(self) -> float:
        """Arrival -> last token (seconds)."""
        return self.finish_time - self.arrival

    @property
    def ttft(self) -> float:
        """Arrival -> first token (seconds)."""
        return self.first_token_time - self.arrival

    @property
    def queue_delay(self) -> float:
        """Arrival -> admission (seconds)."""
        return self.admit_time - self.arrival


@dataclass
class ServeReport:
    """Aggregate outcome of one trace replay."""

    policy: str
    records: list[RequestRecord] = field(default_factory=list)
    makespan: float = 0.0        #: trace start -> last completion (virtual s)
    # --- reconfiguration counters (live replanning / recovery) ---------
    drift_triggers: int = 0      #: drift-detector firings during the replay
    migrations: int = 0          #: live plan switches executed
    replans: int = 0             #: migrations that adopted a *new* plan
    crash_recoveries: int = 0    #: stage failures recovered in-flight
    quiesce_seconds: float = 0.0  #: virtual seconds admission was paused
    replayed_tokens: int = 0     #: tokens recomputed to rebuild KV state
    replay_divergences: int = 0  #: replayed samples differing from record

    @property
    def completed(self) -> list[RequestRecord]:
        """Records that finished (arrival order)."""
        return [r for r in self.records if not r.rejected]

    @property
    def rejected(self) -> list[RequestRecord]:
        """Records that could never be admitted."""
        return [r for r in self.records if r.rejected]

    @property
    def generated_tokens(self) -> int:
        """Total tokens produced across completed requests."""
        return int(sum(r.gen_len for r in self.completed))

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated tokens per second of makespan."""
        return self.generated_tokens / self.makespan if self.makespan > 0 else 0.0

    def _latencies(self) -> list[float]:
        return [r.latency for r in self.completed]

    def latency_percentile(self, q: float) -> float:
        """Request-latency percentile (seconds; 0 when nothing completed)."""
        return stats.percentile(self._latencies(), q, empty=0.0)

    @property
    def latency_p50(self) -> float:
        """Median completion latency."""
        return self.latency_percentile(50)

    @property
    def latency_p95(self) -> float:
        """95th-percentile completion latency."""
        return self.latency_percentile(95)

    @property
    def latency_p99(self) -> float:
        """99th-percentile completion latency."""
        return self.latency_percentile(99)

    @property
    def ttft_mean(self) -> float:
        """Mean time-to-first-token across completed requests."""
        return stats.mean([r.ttft for r in self.completed], empty=0.0)

    @property
    def ttft_p95(self) -> float:
        """95th-percentile time-to-first-token."""
        return stats.percentile([r.ttft for r in self.completed], 95, empty=0.0)


def requests_from_arrivals(
    arrivals: Iterable[RequestArrival],
    vocab_size: int,
    *,
    seed: int = 0,
) -> list[ServeRequest]:
    """Materialize arrival records into concrete prompts.

    Token ids are drawn deterministically from ``seed``, so the same
    trace replayed against the runtime and against the single-process
    reference sees identical prompts — the byte-identity check depends
    on it.
    """
    rng = np.random.default_rng(seed)
    out: list[ServeRequest] = []
    for i, a in enumerate(arrivals):
        prompt = rng.integers(0, vocab_size, size=a.prompt_len, dtype=np.int64)
        out.append(
            ServeRequest(
                request_id=i, prompt=prompt, gen_len=a.gen_len, arrival=a.arrival
            )
        )
    return out


@dataclass
class _Active:
    """In-flight request state (scheduler-internal)."""

    unit_id: int
    req: ServeRequest
    record: RequestRecord
    tokens: list[int] = field(default_factory=list)
    #: decode passes still owed (wave mode pads this to the wave max)
    decode_budget: int = 0
    #: KV reservation (tokens) its prefill carried — replays reuse it
    reserve: int = 0


class ContinuousScheduler:
    """Admission queue + iteration-level execution over a live runtime.

    Parameters
    ----------
    runtime:
        A started :class:`PipelineRuntime`.  The scheduler drives its
        stage queues directly (per-request batch-1 activations); the
        engine's offline ``generate`` path is untouched and can still be
        used on the same runtime afterwards.
    policy:
        ``"continuous"`` (iteration-level admission and eager
        retirement) or ``"wave"`` (the offline baseline: gang admission
        into an empty system, padded decode, drain before re-admitting).
    max_inflight:
        Optional hard cap on concurrently admitted requests on top of
        the memory model (``None`` = memory-limited only).
    decode_batching:
        ``"fused"`` (default) stacks all in-flight decode requests into
        one ragged batch per iteration — one GEMM per stage per layer;
        ``"per-request"`` runs each request as its own batch-1 message,
        the bitwise single-process reference path kept as the equality
        oracle.
    time_scale:
        Multiplier applied to request arrival times; ``0.0`` replays the
        whole trace as if it arrived at once.  Arrival gaps larger than
        the time already spent computing are *jumped* by a virtual
        clock, so replays never sleep.
    drift:
        Optional :class:`~repro.runtime.replan.DriftConfig` enabling the
        drift detector (continuous policy only).  Triggers consult
        ``replanner``; a migration is executed at the next token
        boundary without dropping traffic.
    replanner:
        ``(plan, estimate) -> new plan | None`` callback consulted on
        drift triggers (e.g. :func:`~repro.runtime.replan
        .workload_refit_replanner` or :func:`~repro.runtime.replan
        .make_search_replanner`).

    Stage failures under the continuous policy are recovered in-flight
    through the same :class:`~repro.runtime.replan.MigrationController`
    (crash is a forced same-plan migration; permanent losses escalate to
    ``replan_after_failure`` when the runtime's supervision allows),
    bounded by the runtime's ``SupervisionConfig``.
    """

    def __init__(
        self,
        runtime: PipelineRuntime,
        *,
        policy: Literal["continuous", "wave"] = "continuous",
        max_inflight: int | None = None,
        time_scale: float = 1.0,
        decode_batching: Literal["fused", "per-request"] = "fused",
        drift: DriftConfig | None = None,
        replanner: Replanner | None = None,
    ) -> None:
        if policy not in ("continuous", "wave"):
            raise ValueError(f"unknown policy {policy!r}")
        if decode_batching not in ("fused", "per-request"):
            raise ValueError(f"unknown decode_batching {decode_batching!r}")
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        if drift is not None and policy != "continuous":
            raise ValueError("drift replanning requires the continuous policy")
        self.rt = runtime
        self.policy = policy
        self.max_inflight = max_inflight
        self.time_scale = time_scale
        self.decode_batching = decode_batching
        self._wsb_plan: ExecutionPlan | None = None  # weight-bytes memo key
        self._wsb: float = 0.0
        self.ledger = ContinuousLedger(runtime.plan.num_stages)
        # Planner memory model, shared with the planner and simulators:
        # per-stage headroom nets out the dequant caches' actual byte
        # budgets, and per-request charges come straight from the cost
        # model's KV accounting.
        self.cost = StageCostModel(runtime.plan, cfg=runtime.cfg)
        self.headroom = self.cost.kv_headroom(
            [c.budget_bytes for c in runtime.dequant_caches]
        )
        self._t0: float | None = None
        self._offset = 0.0
        # --- live replanning / recovery -------------------------------
        self.replanner = replanner
        self._detector = DriftDetector(drift) if drift is not None else None
        self.controller = MigrationController(self)
        self.drift_triggers = 0
        self.migrations = 0
        self.replans = 0
        self.crash_recoveries = 0
        self.quiesce_seconds = 0.0
        self.replayed_tokens = 0
        self.replay_divergences = 0
        self._pending_plan: ExecutionPlan | None = None
        self._crash_retries = 0
        self._active: list[_Active] = []
        self._report: ServeReport | None = None
        self._arrival_schedule: list[tuple[float, int, int]] = []
        self._arrival_ptr = 0

    @property
    def detector(self) -> DriftDetector | None:
        """The drift detector, when drift replanning is enabled."""
        return self._detector

    def request_migration(self, new_plan: ExecutionPlan) -> None:
        """Ask for a migration to ``new_plan`` at the next token boundary.

        Safe to call from a callback or another thread while
        :meth:`serve` is running; the switch happens between iterations
        (the quiesce point), carries all in-flight requests across, and
        drops nothing.
        """
        if self.policy != "continuous":
            raise ValueError("live migration requires the continuous policy")
        self._pending_plan = new_plan

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------
    def _now(self) -> float:
        assert self._t0 is not None
        return (time.perf_counter() - self._t0) + self._offset

    def _jump_to(self, t: float) -> float:
        """Advance the virtual clock over an idle gap; returns new now."""
        now = self._now()
        if t > now:
            self._offset += t - now
            now = t
        return now

    def _eff_arrival(self, req: ServeRequest) -> float:
        return req.arrival * self.time_scale

    # ------------------------------------------------------------------
    # Pipeline I/O (batch-1 prefill/replay; fused or batch-1 decode)
    # ------------------------------------------------------------------
    def _send_prefill(self, a: _Active, reserve: int) -> None:
        x = self.rt.reference._embed(np.asarray(a.req.prompt)[None, :], 0)
        self.rt.head.put(
            ActivationMessage(
                microbatch_id=a.unit_id, phase="prefill", start=0,
                hidden=x, reserve=reserve,
            )
        )
        self.rt.stats.prefill_tokens += a.req.prompt_len

    def _send_decode(self, a: _Active) -> None:
        start = a.req.prompt_len + len(a.tokens) - 1
        x = self.rt.reference._embed(
            np.array([[a.tokens[-1]]], dtype=np.int64), start
        )
        self.rt.head.put(
            ActivationMessage(
                microbatch_id=a.unit_id, phase="decode", start=start, hidden=x
            )
        )

    def _send_batched_decode(self, going: list[_Active]) -> None:
        """Stack every decoding request's next token into one message.

        Row order is ``going`` order; the returned batched hidden states
        keep it, and tokens are scattered back by unit id.
        """
        tokens = np.array([[a.tokens[-1]] for a in going], dtype=np.int64)
        starts = np.array(
            [a.req.prompt_len + len(a.tokens) - 1 for a in going], dtype=np.int64
        )
        x = self.rt.reference._embed_ragged(tokens, starts)
        self.rt.head.put(
            BatchedDecodeMessage(
                unit_ids=tuple(a.unit_id for a in going), starts=starts, hidden=x
            )
        )

    def _send_replay_decode(self, a: _Active, k: int) -> None:
        """Replay decode step ``k``: feed the *recorded* token ``k-1``.

        Mirrors the shapes of the original decode exactly (batch-1, same
        position), which is what keeps a migration's rebuilt KV caches
        bit-identical to the lost ones under a bit-preserving plan.
        """
        start = a.req.prompt_len + k - 1
        x = self.rt.reference._embed(
            np.array([[a.tokens[k - 1]]], dtype=np.int64), start
        )
        self.rt.head.put(
            ActivationMessage(
                microbatch_id=a.unit_id, phase="decode", start=start, hidden=x
            )
        )

    def _collect(self, count: int) -> dict[int, ActivationMessage]:
        out: dict[int, ActivationMessage] = {}
        while len(out) < count:
            msg = self.rt._next_message(f"activation {len(out) + 1}/{count}")
            if isinstance(msg, (MergeMessage, ReleaseMessage)):
                continue  # stray control acks; not activations
            out[msg.microbatch_id] = msg
        return out

    def _collect_mixed(
        self, prefill_count: int, *, batched: bool
    ) -> tuple[dict[int, ActivationMessage], BatchedDecodeMessage | None]:
        """Drain one iteration's results: per-unit prefill activations
        plus (optionally) the single fused decode message."""
        outs: dict[int, ActivationMessage] = {}
        fused: BatchedDecodeMessage | None = None
        need = prefill_count + (1 if batched else 0)
        got = 0
        while got < need:
            msg = self.rt._next_message(f"iteration result {got + 1}/{need}")
            if isinstance(msg, (MergeMessage, ReleaseMessage)):
                continue  # stray control acks; not activations
            if isinstance(msg, BatchedDecodeMessage):
                fused = msg
            else:
                outs[msg.microbatch_id] = msg
            got += 1
        return outs, fused

    def _release(self, unit_ids: Sequence[int]) -> None:
        """Free finished units on every stage and wait for the ack.

        Called at an iteration boundary (pipeline idle), so waiting for
        the release to come out the tail is deterministic — after this
        returns, every stage's ``current_bytes`` has already dropped.
        """
        if not unit_ids:
            return
        self.rt.head.put(ReleaseMessage(unit_ids=tuple(unit_ids)))
        while True:
            msg = self.rt._next_message("release ack")
            if isinstance(msg, ReleaseMessage):
                break
        for uid in unit_ids:
            self.ledger.release(uid)

    def _sample(self, a: _Active, msg: ActivationMessage) -> int:
        """Greedy next token from this request's own logits.

        Greedy-only by design: argmax is rng-free, so a request's stream
        cannot depend on how many co-batched neighbours consumed random
        draws before it.  Routed through the shared
        :func:`~repro.ops.greedy_pick` tie-break rule.
        """
        logits = self.rt._logits_last(msg.hidden)
        return int(greedy_pick(logits)[0])

    def _weight_stream_bytes(self) -> float:
        """Packed weight bytes one decode iteration streams across all
        stages (memoized per plan) — the per-extra-request saving the
        fused counters credit."""
        plan = self.rt.plan
        if self._wsb_plan is not plan:
            cfg = self.rt.cfg
            self._wsb = float(
                sum(
                    cfg.layer_weight_bytes(bits)
                    for sp in plan.stages
                    for bits in sp.layer_bits
                )
            )
            self._wsb_plan = plan
        return self._wsb

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_continuous(
        self, pending: deque, active: list[_Active], now: float,
        report: ServeReport,
    ) -> list[_Active]:
        """FIFO head-of-line admission at a token boundary."""
        newly: list[_Active] = []
        while pending:
            rec: RequestRecord = pending[0][1]
            req: ServeRequest = pending[0][0]
            if self._eff_arrival(req) > now:
                break
            if (
                self.max_inflight is not None
                and len(active) + len(newly) >= self.max_inflight
            ):
                break
            charge = self.cost.request_kv_bytes(req.prompt_len, req.gen_len)
            if not self.ledger.fits(charge, self.headroom):
                if not active and not newly:
                    # alone in an empty system and still does not fit:
                    # it never will — reject gracefully instead of
                    # wedging the queue forever
                    pending.popleft()
                    rec.rejected = True
                    report.records.append(rec)
                    continue
                break  # head-of-line blocks until something retires
            pending.popleft()
            uid = self.ledger.admit(charge)
            rec.admit_time = now
            a = _Active(unit_id=uid, req=req, record=rec,
                        decode_budget=req.gen_len - 1)
            newly.append(a)
        return newly

    def _admit_wave(
        self, pending: deque, active: list[_Active], now: float,
        report: ServeReport,
    ) -> list[_Active]:
        """Gang admission into an empty system, padded to wave maxima."""
        if active:
            return []
        newly: list[_Active] = []
        members: list[ServeRequest] = []
        while pending:
            req, rec = pending[0]
            if self._eff_arrival(req) > now:
                break
            if self.max_inflight is not None and len(members) >= self.max_inflight:
                break
            trial = members + [req]
            s_max = max(r.prompt_len for r in trial)
            n_max = max(r.gen_len for r in trial)
            # every member re-padded to the new maxima — the offline
            # uniform (s, n) reservation
            total = np.zeros(len(self.headroom))
            for r in trial:
                total += self.cost.request_kv_bytes(
                    r.prompt_len, (s_max - r.prompt_len) + n_max
                )
            if np.any(total > self.headroom + 1e-9):
                if not members:
                    pending.popleft()
                    rec.rejected = True
                    report.records.append(rec)
                    continue
                break
            pending.popleft()
            members.append(req)
            rec.admit_time = now
            newly.append(_Active(unit_id=-1, req=req, record=rec))
        if newly:
            s_max = max(a.req.prompt_len for a in newly)
            n_max = max(a.req.gen_len for a in newly)
            for a in newly:
                reserve = (s_max - a.req.prompt_len) + n_max
                a.unit_id = self.ledger.admit(
                    self.cost.request_kv_bytes(a.req.prompt_len, reserve)
                )
                # padded: every member decodes for the wave's n_max
                a.decode_budget = n_max - 1
        return newly

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Replay a trace; returns per-request records + aggregates.

        A :class:`StageFailureError` anywhere fails the replay cleanly
        (online serving has no batch to retry — lost requests belong to
        a higher-level retry policy), raising ``RuntimeError``.
        """
        report = ServeReport(policy=self.policy)
        if not requests:
            return report
        ordered = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        pending: deque = deque(
            (
                req,
                RequestRecord(
                    request_id=req.request_id,
                    prompt_len=req.prompt_len,
                    gen_len=req.gen_len,
                    arrival=self._eff_arrival(req),
                ),
            )
            for req in ordered
        )
        active: list[_Active] = []
        self._active = active
        self._report = report
        self._arrival_schedule = [
            (self._eff_arrival(r), r.prompt_len, r.gen_len) for r in ordered
        ]
        self._arrival_ptr = 0
        self._crash_retries = 0
        self._t0 = time.perf_counter()
        self._offset = 0.0
        try:
            self._loop(pending, active, report)
        except StageFailureError as err:
            self.rt._fail_cleanly(err)  # raises RuntimeError
        report.makespan = self._now()
        report.records.sort(key=lambda r: r.request_id)
        report.drift_triggers = self.drift_triggers
        report.migrations = self.migrations
        report.replans = self.replans
        report.crash_recoveries = self.crash_recoveries
        report.quiesce_seconds = self.quiesce_seconds
        report.replayed_tokens = self.replayed_tokens
        report.replay_divergences = self.replay_divergences
        self._publish_stats(report)
        return report

    def _loop(
        self, pending: deque, active: list[_Active], report: ServeReport
    ) -> None:
        admit = (
            self._admit_continuous
            if self.policy == "continuous"
            else self._admit_wave
        )
        while pending or active:
            now = self._now()
            if not active and pending:
                # idle gap: jump the virtual clock to the next arrival
                head_arrival = self._eff_arrival(pending[0][0])
                now = self._jump_to(head_arrival)
            self._feed_detector(now)
            newly = admit(pending, active, now, report)
            if not newly and not active:
                continue  # everything at the head was rejected
            try:
                self._iteration(active, newly, report)
                self._boundary()
            except StageFailureError as err:
                self._recover(err)

    def _iteration(
        self, active: list[_Active], newly: list[_Active],
        report: ServeReport,
    ) -> None:
        """One token boundary: prefill the newcomers, decode everyone else.

        Newly admitted requests join ``active`` *before* any pipeline
        I/O, so a mid-iteration failure can never orphan them — the
        recovery path sees every admitted request.  Requests with no
        tokens yet (fresh admissions, or admissions whose prefill was
        lost to a crash) are prefilled; the rest decode.
        """
        if newly and self.policy == "wave":
            s_max = max(x.req.prompt_len for x in newly)
            for a in newly:  # (s_max - s_i) + n_max
                a.reserve = a.decode_budget + 1 + (s_max - a.req.prompt_len)
        else:
            for a in newly:
                a.reserve = a.req.gen_len
        active.extend(newly)
        fresh = [a for a in active if not a.tokens]
        going = [a for a in active if a.tokens]
        for a in fresh:
            self._send_prefill(a, a.reserve)
        fused: BatchedDecodeMessage | None = None
        if going and self.decode_batching == "fused":
            self._send_batched_decode(going)
            outs, fused = self._collect_mixed(len(fresh), batched=True)
        else:
            for a in going:
                self._send_decode(a)
            outs = self._collect(len(active))
        now = self._now()
        finished: list[_Active] = []
        for a in fresh:
            tok = self._sample(a, outs[a.unit_id])
            a.tokens.append(tok)
            a.record.first_token_time = now
            if a.req.gen_len == 1:
                a.record.finish_time = now
            self.rt.stats.tokens_generated += 1
        if fused is not None:
            # one stacked logit GEMM for the whole decode batch, then a
            # per-request scatter of the sampled tokens
            stats = self.rt.stats
            stats.fused_iterations += 1
            stats.fused_batch_sum += len(going)
            stats.fused_batch_max = max(stats.fused_batch_max, len(going))
            stats.fused_weight_bytes_saved += (
                (len(going) - 1) * self._weight_stream_bytes()
            )
            toks = greedy_pick(self.rt._logits_last(fused.hidden))
            row = {uid: i for i, uid in enumerate(fused.unit_ids)}
            picks = [(a, int(toks[row[a.unit_id]])) for a in going]
        else:
            picks = [(a, self._sample(a, outs[a.unit_id])) for a in going]
        for a, tok in picks:
            a.decode_budget -= 1
            self.rt.stats.decode_tokens += 1
            self.rt.stats.tokens_generated += 1
            if len(a.tokens) < a.req.gen_len:
                a.tokens.append(tok)
                if len(a.tokens) == a.req.gen_len:
                    a.record.finish_time = now  # wave keeps padding past this
        for a in active:
            if a.decode_budget <= 0:
                finished.append(a)
        if finished:
            self._release([a.unit_id for a in finished])
            for a in finished:
                active.remove(a)
                a.record.tokens = np.array(a.tokens, dtype=np.int64)
                if a.record.finish_time == 0.0:  # pragma: no cover - guard
                    a.record.finish_time = now
                report.records.append(a.record)

    # ------------------------------------------------------------------
    # Live replanning / recovery (all at token boundaries)
    # ------------------------------------------------------------------
    def _feed_detector(self, now: float) -> None:
        """Stream arrivals that have happened by ``now`` to the detector."""
        if self._detector is None:
            return
        sched = self._arrival_schedule
        while self._arrival_ptr < len(sched) and sched[self._arrival_ptr][0] <= now:
            t, s, n = sched[self._arrival_ptr]
            self._detector.observe_arrival(t, s, n)
            self._arrival_ptr += 1

    def _occupancy(self) -> float:
        """Max per-stage KV usage fraction under the current headroom."""
        headroom = np.asarray(self.headroom, dtype=np.float64)
        used = self.ledger.used_bytes
        mask = headroom > 0
        if not mask.any():
            return 1.0 if used.any() else 0.0
        return float(np.max(used[mask] / headroom[mask]))

    def _boundary(self) -> None:
        """Quiesce point between iterations: migrations happen here."""
        if self._pending_plan is not None:
            plan, self._pending_plan = self._pending_plan, None
            before = self.rt.plan
            self.controller.migrate(plan, reason="manual")
            if self.rt.plan is not before:  # a new plan was adopted
                self.replans += 1
            if self._detector is not None:
                self._detector.rebaseline(self._now())
        if self._detector is None:
            return
        now = self._now()
        self._detector.observe_occupancy(now, self._occupancy())
        est = self._detector.poll(now)
        if est is None:
            return
        self.drift_triggers += 1
        self.rt.stats.drift_triggers += 1
        if self.replanner is None:
            return
        new_plan = self.replanner(self.rt.plan, est)
        if new_plan is None:
            return
        self.controller.migrate(new_plan, reason=est.reason)
        self.replans += 1
        self._detector.rebaseline(self._now())

    def _recover(self, err: StageFailureError) -> None:
        """Crash ladder at a token boundary, through the migration path.

        Retry (forced same-plan migration: rebuild workers from cached
        shards, replay in-flight KV) up to ``max_retries``; then, when
        supervision allows, adopt the bit-preserving
        ``replan_after_failure`` plan for the surviving devices.  Every
        rung carries the in-flight requests across — nothing is dropped.
        """
        sup = self.rt.supervision
        if self.policy != "continuous" or not sup.enable_recovery:
            raise err
        while True:
            self._crash_retries += 1
            escalate = self._crash_retries > sup.max_retries
            if escalate and not (
                sup.replan_on_permanent_failure
                and err.stage_idx is not None
                and self.rt.plan.num_stages > 1
                and self.rt.stats.replans < sup.max_replans
            ):
                raise err
            try:
                if escalate:
                    from ..core.api import replan_after_failure

                    new_plan = replan_after_failure(self.rt.plan, err.stage_idx)
                    if self.rt.injector is not None:
                        self.rt.injector.retire_stage(err.stage_idx)
                    if self._detector is not None:
                        self._detector.observe_device_loss(
                            self._now(), err.stage_idx
                        )
                    self.controller.migrate(
                        new_plan,
                        reason=f"crash:stage{err.stage_idx}",
                        force_restart=True,
                    )
                    self.rt.stats.replans += 1
                    self.replans += 1
                    self._crash_retries = 0
                else:
                    self.rt.stats.retries += 1
                    self.controller.migrate(
                        None, reason=f"crash-retry:stage{err.stage_idx}",
                        force_restart=True,
                    )
            except StageFailureError as again:
                # the recovery replay itself was hit (crash racing the
                # migration): charge another rung and go around
                err = again
                continue
            self.crash_recoveries += 1
            if self._detector is not None:
                self._detector.rebaseline(self._now())
            return

    def _publish_stats(self, report: ServeReport) -> None:
        """Mirror per-request metrics onto the runtime's ``RuntimeStats``."""
        stats = self.rt.stats
        for r in report.completed:
            stats.request_latencies.append(r.latency)
            stats.request_ttfts.append(r.ttft)
