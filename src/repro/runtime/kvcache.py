"""Per-stage KV-cache management.

Each stage worker owns one :class:`StageKVCache` per live cache unit
(prefill micro-batch or merged decode group), pre-allocated at ``s + n``
slots exactly like the paper's runtime (Sec. 5: pre-allocated KV cache).
The manager also keeps a byte ledger so tests can assert the runtime's
peak KV memory matches the analytical cost model.

An optional ``alloc_guard`` callable is consulted with the requested
byte count before every allocation (including the transient copy a
merge makes); it may raise
:class:`~repro.runtime.faults.KVAllocationError` to model memory
pressure — the hook the fault injector uses to drive the runtime's
degrade-and-replan ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..models.transformer import KVCache

__all__ = ["StageKVManager"]


@dataclass
class StageKVManager:
    """Allocates, merges and frees KV caches for one pipeline stage."""

    num_layers: int
    hidden_size: int
    caches: dict[int, KVCache] = field(default_factory=dict)
    peak_bytes: float = 0.0
    alloc_guard: Callable[[float], None] | None = None
    released_units: int = 0      #: units freed eagerly via :meth:`release`
    released_bytes: float = 0.0  #: bytes returned by those releases

    def _track(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def _check_guard(self, requested_bytes: float) -> None:
        if self.alloc_guard is not None:
            self.alloc_guard(requested_bytes)

    @property
    def current_bytes(self) -> float:
        """Live KV bytes across all cache units."""
        return float(
            sum(c.k.nbytes + c.v.nbytes for c in self.caches.values())
        )

    def allocate(self, unit_id: int, batch: int, max_len: int) -> KVCache:
        """Pre-allocate a cache unit (idempotent per id)."""
        if unit_id in self.caches:
            return self.caches[unit_id]
        # k + v, float64 — checked against the guard before committing
        requested = 2.0 * self.num_layers * batch * max_len * self.hidden_size * 8
        self._check_guard(requested)
        cache = KVCache.allocate(self.num_layers, batch, max_len, self.hidden_size)
        self.caches[unit_id] = cache
        self._track()
        return cache

    def get(self, unit_id: int) -> KVCache:
        """Fetch a unit's cache; KeyError if never allocated."""
        try:
            return self.caches[unit_id]
        except KeyError:
            raise KeyError(f"no KV cache for unit {unit_id}") from None

    def merge(self, group_id: int, member_ids: tuple[int, ...]) -> KVCache:
        """Concatenate member units along the batch axis into one group.

        Members are concatenated in ascending unit-id order regardless of
        the order ``member_ids`` arrives in — unit ids are assigned in
        global-batch order, so this keeps the merged rows aligned with
        the master's batch slices even if control messages are reordered.

        All members must be at the same fill ``length`` (they are — the
        offline task pads prompts to a uniform ``s``).  Members are freed
        after merging, so peak memory is ~2x the group transiently, which
        the ledger records faithfully.
        """
        members = [self.get(m) for m in sorted(member_ids)]
        lengths = {m.length for m in members}
        if len(lengths) != 1:
            raise ValueError(f"cannot merge units at different lengths: {lengths}")
        self._check_guard(float(sum(m.k.nbytes + m.v.nbytes for m in members)))
        k = np.concatenate([m.k for m in members], axis=1)
        v = np.concatenate([m.v for m in members], axis=1)
        merged = KVCache(k=k, v=v, length=members[0].length)
        self.caches[group_id] = merged
        self._track()
        for m in member_ids:
            if m != group_id:
                del self.caches[m]
        return merged

    def release(self, unit_id: int) -> float:
        """Eagerly free a finished unit's slots; returns the bytes freed.

        Unlike :meth:`free` this is the continuous-batching retirement
        path: it keeps an accounting of how much memory came back, so the
        scheduler's admission control (and the tests) can confirm that
        ``current_bytes`` actually drops the moment a request finishes
        instead of waiting for the end-of-batch :meth:`free_all`.
        Idempotent — releasing an unknown or already-freed unit returns
        ``0.0``.
        """
        cache = self.caches.pop(unit_id, None)
        if cache is None:
            return 0.0
        freed = float(cache.k.nbytes + cache.v.nbytes)
        self.released_units += 1
        self.released_bytes += freed
        return freed

    def free(self, unit_id: int) -> None:
        """Drop one unit (idempotent)."""
        self.caches.pop(unit_id, None)

    def free_all(self) -> None:
        """Drop every unit (between batches)."""
        self.caches.clear()
