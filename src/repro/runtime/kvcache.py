"""Per-stage KV-cache management, with optional KV4/KV8 packing.

Each stage worker owns one cache unit per live prefill micro-batch or
merged decode group, pre-allocated at ``s + n`` slots exactly like the
paper's runtime (Sec. 5: pre-allocated KV cache).  The manager also
keeps a byte ledger so tests can assert the runtime's peak KV memory
matches the analytical cost model.

When a plan assigns a stage ``kv_bits`` below 16, the stage stores its
keys/values *packed*: signed codes quantized with one scale per
(token, head group), bit-packed into a uint8 stream via the same
:func:`~repro.quant.kernels.pack_codes` machinery the weight shards use.
Attention reads dequantize on the fly, so the resident footprint is the
real ``hidden * kv_bits / 8`` bytes per token (plus one float64 scale
per head) — the quantity the planner's admission ledger charges.

Two reference paths pin the numerics:

* :func:`kv_fake_quant` — quantize+dequantize without packing; the
  oracle a packed cache's :meth:`~QuantizedKVCache.read` must match
  bit-exactly (packing is lossless on codes).
* :class:`FakeQuantKVCache` — a drop-in :class:`KVCache` that fake-
  quantizes on append, used by ``TinyDecoderLM.prefill(kv_bits=...)``
  to produce single-process reference tokens for the runtime tests.

An optional ``alloc_guard`` callable is consulted with the requested
byte count before every allocation (including the transient copy a
merge makes); it may raise
:class:`~repro.runtime.faults.KVAllocationError` to model memory
pressure — the hook the fault injector uses to drive the runtime's
degrade-and-replan ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..models.transformer import KVCache
from ..quant.kernels import pack_codes, unpack_codes
from ..quant.quantizer import qmax_for_bits

__all__ = [
    "StageKVManager",
    "BatchedKVView",
    "QuantizedKVCache",
    "FakeQuantKVCache",
    "quantize_kv",
    "dequantize_kv",
    "kv_fake_quant",
    "packed_kv_nbytes",
]


# ----------------------------------------------------------------------
# KV quantization primitives
# ----------------------------------------------------------------------

def _head_groups(x: np.ndarray, num_heads: int) -> np.ndarray:
    hidden = x.shape[-1]
    if num_heads <= 0 or hidden % num_heads:
        raise ValueError(f"hidden {hidden} not divisible into {num_heads} heads")
    return x.reshape(*x.shape[:-1], num_heads, hidden // num_heads)


def quantize_kv(
    x: np.ndarray, kv_bits: int, num_heads: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-(token, head) quantization of K/V activations.

    ``x`` is ``(..., hidden)``; each trailing row is split into
    ``num_heads`` groups and every group gets its own absmax scale —
    the KV granularity QServe-style serving uses, fine enough that one
    outlier channel cannot blow up a whole token.  Returns int16 codes
    shaped like ``x`` and float64 scales shaped ``(..., num_heads)``.
    All-zero groups get scale 1.0 so dequantization is exact for them.
    """
    x = np.asarray(x, dtype=np.float64)
    qmax = qmax_for_bits(kv_bits)
    grouped = _head_groups(x, num_heads)
    scales = np.abs(grouped).max(axis=-1) / qmax
    scales[scales == 0.0] = 1.0
    codes = np.clip(np.rint(grouped / scales[..., None]), -qmax, qmax)
    return codes.astype(np.int16).reshape(x.shape), scales


def dequantize_kv(codes: np.ndarray, scales: np.ndarray, num_heads: int = 1) -> np.ndarray:
    """Inverse of :func:`quantize_kv`: ``codes * scale`` per head group."""
    grouped = _head_groups(np.asarray(codes, dtype=np.float64), num_heads)
    return (grouped * scales[..., None]).reshape(codes.shape)


def kv_fake_quant(x: np.ndarray, kv_bits: int, num_heads: int = 1) -> np.ndarray:
    """Quantize-dequantize round trip — the packed path's numeric oracle."""
    if kv_bits >= 16:
        return np.asarray(x, dtype=np.float64)
    codes, scales = quantize_kv(x, kv_bits, num_heads)
    return dequantize_kv(codes, scales, num_heads)


def packed_kv_nbytes(
    num_layers: int,
    batch: int,
    max_len: int,
    hidden: int,
    kv_bits: int,
    num_heads: int = 1,
) -> float:
    """Resident bytes of one packed cache unit (codes + scales, K and V)."""
    code_bytes = 2.0 * num_layers * batch * max_len * (hidden * kv_bits // 8)
    scale_bytes = 2.0 * num_layers * batch * max_len * num_heads * 8
    return code_bytes + scale_bytes


# ----------------------------------------------------------------------
# Cache variants
# ----------------------------------------------------------------------

@dataclass
class FakeQuantKVCache(KVCache):
    """fp16-layout cache that fake-quantizes every append.

    Same dense float64 storage as :class:`KVCache` (no memory savings) —
    this is the *reference* serving path: what attention reads here is
    exactly what a packed cache dequantizes to, so end-to-end token
    streams from this cache define correctness for the packed runtime.
    """

    kv_bits: int = 8
    num_heads: int = 1

    @classmethod
    def allocate_quant(
        cls,
        num_layers: int,
        batch: int,
        max_len: int,
        hidden: int,
        *,
        kv_bits: int,
        num_heads: int = 1,
    ) -> "FakeQuantKVCache":
        shape = (num_layers, batch, max_len, hidden)
        return cls(
            k=np.zeros(shape), v=np.zeros(shape), length=0,
            kv_bits=kv_bits, num_heads=num_heads,
        )

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray, start: int) -> None:
        super().append(
            layer,
            kv_fake_quant(k_new, self.kv_bits, self.num_heads),
            kv_fake_quant(v_new, self.kv_bits, self.num_heads),
            start,
        )


@dataclass
class QuantizedKVCache:
    """Bit-packed KV cache: uint8 code stream + per-(token, head) scales.

    Codes are packed little-endian at ``kv_bits`` per value, so each
    token row occupies exactly ``hidden * kv_bits / 8`` bytes
    (``hidden * kv_bits`` must be byte-aligned — true for KV4/KV8 with
    any even hidden size).  Implements the same protocol as
    :class:`KVCache` (``append`` / ``read`` / ``max_len`` /
    ``kv_nbytes`` / ``length``), so attention and the stage manager use
    it interchangeably; ``read`` returns dense float64 arrays that are
    bit-exact equal to :func:`kv_fake_quant` of what was appended.
    """

    k_codes: np.ndarray   #: (num_layers, batch, max_len, hidden*kv_bits//8) uint8
    v_codes: np.ndarray
    k_scales: np.ndarray  #: (num_layers, batch, max_len, num_heads) float64
    v_scales: np.ndarray
    hidden_size: int
    kv_bits: int
    num_heads: int = 1
    length: int = 0

    @classmethod
    def allocate(
        cls,
        num_layers: int,
        batch: int,
        max_len: int,
        hidden: int,
        *,
        kv_bits: int,
        num_heads: int = 1,
    ) -> "QuantizedKVCache":
        if kv_bits >= 16 or kv_bits <= 0:
            raise ValueError(f"packed KV needs 0 < kv_bits < 16, got {kv_bits}")
        if (hidden * kv_bits) % 8:
            raise ValueError(
                f"hidden*kv_bits must be byte-aligned, got {hidden}x{kv_bits}"
            )
        if num_heads <= 0 or hidden % num_heads:
            raise ValueError(f"hidden {hidden} not divisible into {num_heads} heads")
        code_shape = (num_layers, batch, max_len, hidden * kv_bits // 8)
        scale_shape = (num_layers, batch, max_len, num_heads)
        return cls(
            k_codes=np.zeros(code_shape, dtype=np.uint8),
            v_codes=np.zeros(code_shape, dtype=np.uint8),
            k_scales=np.ones(scale_shape),
            v_scales=np.ones(scale_shape),
            hidden_size=hidden,
            kv_bits=kv_bits,
            num_heads=num_heads,
        )

    @property
    def max_len(self) -> int:
        """Reserved KV slots per sequence."""
        return self.k_codes.shape[2]

    @property
    def kv_nbytes(self) -> float:
        """Resident bytes: packed codes plus scales, K and V."""
        return float(
            self.k_codes.nbytes + self.v_codes.nbytes
            + self.k_scales.nbytes + self.v_scales.nbytes
        )

    def _pack(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        codes, scales = quantize_kv(x, self.kv_bits, self.num_heads)
        batch, q = codes.shape[0], codes.shape[1]
        packed = pack_codes(codes, self.kv_bits).reshape(
            batch, q, self.hidden_size * self.kv_bits // 8
        )
        return packed, scales

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray, start: int) -> None:
        """Quantize, pack and store new K/V rows at position ``start``."""
        q = k_new.shape[1]
        if start + q > self.max_len:
            raise ValueError("KV cache overflow: reserve s + n slots up front")
        kp, ks = self._pack(k_new)
        vp, vs = self._pack(v_new)
        self.k_codes[layer, :, start : start + q] = kp
        self.v_codes[layer, :, start : start + q] = vp
        self.k_scales[layer, :, start : start + q] = ks
        self.v_scales[layer, :, start : start + q] = vs

    def _unpack(self, packed: np.ndarray, scales: np.ndarray) -> np.ndarray:
        batch, total = packed.shape[0], packed.shape[1]
        codes = unpack_codes(
            np.ascontiguousarray(packed).ravel(),
            self.kv_bits,
            batch * total * self.hidden_size,
        ).reshape(batch, total, self.hidden_size)
        return dequantize_kv(codes, scales, self.num_heads)

    def read(self, layer: int, total: int) -> tuple[np.ndarray, np.ndarray]:
        """Dequantized K/V rows ``0 .. total`` as dense float64 arrays."""
        return (
            self._unpack(self.k_codes[layer, :, :total], self.k_scales[layer, :, :total]),
            self._unpack(self.v_codes[layer, :, :total], self.v_scales[layer, :, :total]),
        )


# ----------------------------------------------------------------------
# Batched ragged view (fused decode)
# ----------------------------------------------------------------------

class BatchedKVView:
    """Ragged batch view over ``B`` independent batch-1 cache units.

    The fused decode path stacks one token from every in-flight request
    into a single ``(B, 1, h)`` activation; this view is the matching
    KV adapter: :meth:`append` scatters row ``i``'s new K/V into unit
    ``i`` at its own position ``starts[i]``, and :meth:`read_padded`
    gathers every unit's history into ``(B, Tmax, h)`` arrays padded to
    the batch max context.

    All storage stays inside the per-request cache units — the view owns
    nothing, so requests keep retiring/migrating individually.  The
    batched paths are *bit-exact* per request against the batch-1
    ``append``/``read`` they replace:

    * quantize+pack over the stacked rows is row-independent (per-token
      absmax scales; each token row is a whole number of packed bytes);
    * one big ``unpack_codes``/``dequantize_kv`` call is elementwise,
      so each request's slice equals its own small-call result;
    * padded slots hold code 0 / scale 1.0 (dense: literal zeros) and
      dequantize to exactly ``0.0`` — the ragged attention mask relies
      on that to keep padding out of the softmax.

    All units must be batch-1 and share storage parameters (true within
    one stage: kv_bits is a per-stage plan value).
    """

    def __init__(self, caches: list[KVCache], starts: np.ndarray) -> None:
        if not caches:
            raise ValueError("batched view needs at least one cache unit")
        self.caches = list(caches)
        self.starts = np.asarray(starts, dtype=np.int64)
        if self.starts.shape != (len(self.caches),):
            raise ValueError("starts must have one entry per cache unit")
        first = self.caches[0]
        self.packed = isinstance(first, QuantizedKVCache)
        if self.packed:
            self.hidden_size = first.hidden_size
            self.kv_bits = first.kv_bits
            self.num_heads = first.num_heads
        else:
            self.hidden_size = first.k.shape[-1]
            self.kv_bits = 16
            self.num_heads = getattr(first, "num_heads", 1)
        for c, s in zip(self.caches, self.starts):
            if type(c) is not type(first):
                raise ValueError("all cache units must share one storage type")
            batch = (c.k_codes if self.packed else c.k).shape[1]
            if batch != 1:
                raise ValueError("batched view expects batch-1 cache units")
            if s + 1 > c.max_len:
                raise ValueError("KV cache overflow: reserve s + n slots up front")
        self.totals = self.starts + 1
        self.total_max = int(self.totals.max())

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Scatter ``(B, 1, h)`` new K/V rows, one per unit, at ``starts``."""
        first = self.caches[0]
        if self.packed:
            # one vectorized quantize+pack over the whole batch, then a
            # cheap per-unit byte scatter — row-independent, so each
            # unit's stored bytes equal its own batch-1 append
            kp, ks = first._pack(k_new)
            vp, vs = first._pack(v_new)
            for i, c in enumerate(self.caches):
                s = self.starts[i]
                c.k_codes[layer, 0, s] = kp[i, 0]
                c.v_codes[layer, 0, s] = vp[i, 0]
                c.k_scales[layer, 0, s] = ks[i, 0]
                c.v_scales[layer, 0, s] = vs[i, 0]
        else:
            if isinstance(first, FakeQuantKVCache):
                k_new = kv_fake_quant(k_new, first.kv_bits, first.num_heads)
                v_new = kv_fake_quant(v_new, first.kv_bits, first.num_heads)
            for i, c in enumerate(self.caches):
                s = self.starts[i]
                c.k[layer, 0, s] = k_new[i, 0]
                c.v[layer, 0, s] = v_new[i, 0]

    def _gather_packed(self, layer: int, which: str) -> np.ndarray:
        h, bits, nh = self.hidden_size, self.kv_bits, self.num_heads
        row_bytes = h * bits // 8
        batch, total = len(self.caches), self.total_max
        # pad slots must decode to exactly 0.0: the packed bitstream is
        # biased (+qmax), so the zero-code byte pattern repeats qmax in
        # every bits-wide lane, and scale 1.0 maps code 0 -> value 0.0
        qmax = (1 << (bits - 1)) - 1
        fill = 0
        for lane in range(8 // bits):
            fill |= qmax << (lane * bits)
        packed = np.full((batch, total, row_bytes), fill, dtype=np.uint8)
        scales = np.ones((batch, total, nh))
        codes_name, scales_name = which + "_codes", which + "_scales"
        for i, c in enumerate(self.caches):
            t = self.totals[i]
            packed[i, :t] = getattr(c, codes_name)[layer, 0, :t]
            scales[i, :t] = getattr(c, scales_name)[layer, 0, :t]
        codes = unpack_codes(
            packed.ravel(), bits, batch * total * h
        ).reshape(batch, total, h)
        return dequantize_kv(codes, scales, nh)

    def read_padded(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V histories as ``(B, Tmax, h)``, zero-padded past each length."""
        if self.packed:
            return self._gather_packed(layer, "k"), self._gather_packed(layer, "v")
        batch, total = len(self.caches), self.total_max
        k = np.zeros((batch, total, self.hidden_size))
        v = np.zeros((batch, total, self.hidden_size))
        for i, c in enumerate(self.caches):
            t = self.totals[i]
            k[i, :t] = c.k[layer, 0, :t]
            v[i, :t] = c.v[layer, 0, :t]
        return k, v

    def commit_lengths(self) -> None:
        """Mark every unit's new fill length (end of the iteration)."""
        for c, t in zip(self.caches, self.totals):
            c.length = int(t)


# ----------------------------------------------------------------------
# Stage manager
# ----------------------------------------------------------------------

@dataclass
class StageKVManager:
    """Allocates, merges and frees KV caches for one pipeline stage.

    ``kv_bits`` below 16 switches every unit this stage allocates to the
    packed :class:`QuantizedKVCache`; the guard then sees the *packed*
    byte counts, which is exactly how KV4 turns into admission headroom
    under a fixed cache budget.
    """

    num_layers: int
    hidden_size: int
    caches: dict[int, KVCache] = field(default_factory=dict)
    peak_bytes: float = 0.0
    alloc_guard: Callable[[float], None] | None = None
    kv_bits: int = 16
    num_heads: int = 1
    released_units: int = 0      #: units freed eagerly via :meth:`release`
    released_bytes: float = 0.0  #: bytes returned by those releases

    def _track(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def _check_guard(self, requested_bytes: float) -> None:
        if self.alloc_guard is not None:
            self.alloc_guard(requested_bytes)

    @property
    def current_bytes(self) -> float:
        """Live KV bytes across all cache units."""
        return float(sum(c.kv_nbytes for c in self.caches.values()))

    def allocate(self, unit_id: int, batch: int, max_len: int) -> KVCache:
        """Pre-allocate a cache unit (idempotent per id)."""
        if unit_id in self.caches:
            return self.caches[unit_id]
        if self.kv_bits >= 16:
            # k + v, float64 — checked against the guard before committing
            requested = 2.0 * self.num_layers * batch * max_len * self.hidden_size * 8
            self._check_guard(requested)
            cache = KVCache.allocate(self.num_layers, batch, max_len, self.hidden_size)
        else:
            requested = packed_kv_nbytes(
                self.num_layers, batch, max_len, self.hidden_size,
                self.kv_bits, self.num_heads,
            )
            self._check_guard(requested)
            cache = QuantizedKVCache.allocate(
                self.num_layers, batch, max_len, self.hidden_size,
                kv_bits=self.kv_bits, num_heads=self.num_heads,
            )
        self.caches[unit_id] = cache
        self._track()
        return cache

    def get(self, unit_id: int) -> KVCache:
        """Fetch a unit's cache; KeyError if never allocated."""
        try:
            return self.caches[unit_id]
        except KeyError:
            raise KeyError(f"no KV cache for unit {unit_id}") from None

    def batch_view(self, unit_ids: tuple[int, ...], starts: np.ndarray) -> BatchedKVView:
        """A :class:`BatchedKVView` over the given units (fused decode)."""
        return BatchedKVView([self.get(u) for u in unit_ids], starts)

    def merge(self, group_id: int, member_ids: tuple[int, ...]) -> KVCache:
        """Concatenate member units along the batch axis into one group.

        Members are concatenated in ascending unit-id order regardless of
        the order ``member_ids`` arrives in — unit ids are assigned in
        global-batch order, so this keeps the merged rows aligned with
        the master's batch slices even if control messages are reordered.

        All members must be at the same fill ``length`` (they are — the
        offline task pads prompts to a uniform ``s``).  Members are freed
        after merging, so peak memory is ~2x the group transiently, which
        the ledger records faithfully.  Packed units concatenate their
        code and scale tensors directly — no dequantize/requantize, so
        merging never perturbs stored values.
        """
        members = [self.get(m) for m in sorted(member_ids)]
        lengths = {m.length for m in members}
        if len(lengths) != 1:
            raise ValueError(f"cannot merge units at different lengths: {lengths}")
        self._check_guard(float(sum(m.kv_nbytes for m in members)))
        first = members[0]
        if isinstance(first, QuantizedKVCache):
            merged: KVCache = QuantizedKVCache(
                k_codes=np.concatenate([m.k_codes for m in members], axis=1),
                v_codes=np.concatenate([m.v_codes for m in members], axis=1),
                k_scales=np.concatenate([m.k_scales for m in members], axis=1),
                v_scales=np.concatenate([m.v_scales for m in members], axis=1),
                hidden_size=first.hidden_size,
                kv_bits=first.kv_bits,
                num_heads=first.num_heads,
                length=first.length,
            )
        else:
            merged = KVCache(
                k=np.concatenate([m.k for m in members], axis=1),
                v=np.concatenate([m.v for m in members], axis=1),
                length=first.length,
            )
        self.caches[group_id] = merged
        self._track()
        for m in member_ids:
            if m != group_id:
                del self.caches[m]
        return merged

    def release(self, unit_id: int) -> float:
        """Eagerly free a finished unit's slots; returns the bytes freed.

        Unlike :meth:`free` this is the continuous-batching retirement
        path: it keeps an accounting of how much memory came back, so the
        scheduler's admission control (and the tests) can confirm that
        ``current_bytes`` actually drops the moment a request finishes
        instead of waiting for the end-of-batch :meth:`free_all`.
        Idempotent — releasing an unknown or already-freed unit returns
        ``0.0``.
        """
        cache = self.caches.pop(unit_id, None)
        if cache is None:
            return 0.0
        freed = float(cache.kv_nbytes)
        self.released_units += 1
        self.released_bytes += freed
        return freed

    def free(self, unit_id: int) -> None:
        """Drop one unit (idempotent)."""
        self.caches.pop(unit_id, None)

    def free_all(self) -> None:
        """Drop every unit (between batches)."""
        self.caches.clear()
