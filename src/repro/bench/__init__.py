"""Benchmark-harness helpers: table rendering, persistence, reporting."""

from .tables import RESULTS_DIR, format_table, print_table, save_results
from .report import build_report, load_results, write_report

__all__ = [
    "format_table",
    "print_table",
    "save_results",
    "RESULTS_DIR",
    "build_report",
    "load_results",
    "write_report",
]
