"""Benchmark-harness helpers: table formatting and result persistence.

Every benchmark regenerating a paper table/figure uses these to print a
paper-style table to stdout and to drop a JSON record under
``benchmarks/results/`` so EXPERIMENTS.md can cite measured numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "print_table", "save_results", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as a fixed-width text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = list(columns or rows[0].keys())

    def fmt(v: Any) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    rendered = [[fmt(r.get(c)) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with a leading blank line."""
    print("\n" + format_table(rows, columns=columns, title=title))


def save_results(name: str, payload: Any) -> Path:
    """Persist an experiment's rows under benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path
