"""Consolidated experiment report from ``benchmarks/results/*.json``.

After ``pytest benchmarks/ --benchmark-only`` has populated the results
directory, :func:`build_report` renders one markdown document with every
reproduced table/figure — the machine-generated companion to the
hand-written analysis in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .tables import RESULTS_DIR, format_table

__all__ = ["load_results", "build_report", "write_report"]

#: result-file stem -> section heading, in paper order.
SECTIONS: list[tuple[str, str]] = [
    ("fig1_cluster_trace", "Fig. 1 — fleet composition & utilization"),
    ("fig3_phase_decomposition", "Fig. 3 — phase time decomposition"),
    ("fig4_quality_vs_bitwidth", "Fig. 4 — quality vs bitwidth (surrogate)"),
    ("fig4_tiny_kl", "Fig. 4 — real KL on the tiny model"),
    ("table1_layer_sensitivity", "Table 1 — layer-range sensitivity"),
    ("fig5_kernel_times", "Fig. 5 — kernel times vs precision & batch"),
    ("fig7_cost_model_fidelity", "Fig. 7 — cost-model fidelity"),
    *[(f"table4_cluster{c}", f"Table 4 — cluster {c}") for c in range(1, 9)],
    *[(f"table5_cluster{c}", f"Table 5 — cluster {c}") for c in (9, 10, 11)],
    ("table5_gain_comparison", "Table 5 — hetero vs homo gain"),
    ("table6_indicator", "Table 6 — indicator effectiveness"),
    *[(f"table7_cluster{c}", f"Table 7 — cluster {c} (short prompts)") for c in (1, 4, 6)],
    ("table7_cluster4_gain", "Table 7 — cluster-4 gain vs prompt length"),
    *[(f"table8_cluster{c}", f"Table 8 — optimizer scaling, cluster {c}") for c in (3, 4, 6, 10)],
    ("fig8_theta_cluster9", "Fig. 8 — theta sweep, cluster 9"),
    ("fig8_theta_cluster5", "Fig. 8 — theta sweep, cluster 5"),
    *[(f"fig9_cluster{c}", f"Fig. 9 — vs adabits, cluster {c}") for c in (3, 4, 5, 6, 9)],
    ("table10_solver_overhead", "Table 10 — solver overhead"),
    ("table10_three_node", "Table 10 — three-node data point"),
    ("ablation_phase_cluster3", "Ablation — phase awareness, cluster 3"),
    ("ablation_phase_cluster4", "Ablation — phase awareness, cluster 4"),
    ("ablation_microbatch_cluster1", "Ablation — hybrid micro-batch, cluster 1"),
    ("ablation_microbatch_cluster3", "Ablation — hybrid micro-batch, cluster 3"),
    ("ablation_memory_terms", "Ablation — memory-model terms"),
    ("ext_tensor_parallel", "Extension — tensor parallelism"),
    ("ext_heterogeneity_sweep", "Extension — gain vs cluster heterogeneity"),
]


def load_results(results_dir: Path | None = None) -> dict[str, Any]:
    """All result payloads keyed by file stem."""
    d = results_dir or RESULTS_DIR
    out: dict[str, Any] = {}
    if not d.exists():
        return out
    for path in sorted(d.glob("*.json")):
        try:
            out[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
    return out


def _render(payload: Any) -> str:
    if isinstance(payload, list) and payload and isinstance(payload[0], dict):
        return "```\n" + format_table(payload) + "\n```"
    if isinstance(payload, dict):
        rows = [{"key": k, "value": v} for k, v in payload.items()]
        return "```\n" + format_table(rows) + "\n```"
    return f"```\n{payload}\n```"


def build_report(results_dir: Path | None = None) -> str:
    """Markdown report of every available reproduced experiment."""
    results = load_results(results_dir)
    lines = [
        "# LLM-PQ reproduction — measured results",
        "",
        f"{len(results)} result files; regenerate with "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    covered = set()
    for stem, title in SECTIONS:
        if stem not in results:
            continue
        covered.add(stem)
        lines += [f"## {title}", "", _render(results[stem]), ""]
    extras = sorted(set(results) - covered)
    for stem in extras:
        lines += [f"## {stem}", "", _render(results[stem]), ""]
    return "\n".join(lines)


def write_report(path: str | Path, results_dir: Path | None = None) -> Path:
    """Render :func:`build_report` to ``path`` and return it."""
    out = Path(path)
    out.write_text(build_report(results_dir))
    return out
