"""Model zoo: the OPT and BLOOM families the paper evaluates.

Architecture numbers are taken from the public model cards (OPT:
Zhang et al. 2022, Table 1; BLOOM: Scao et al. 2022).  OPT uses learned
position embeddings (max 2048) and untied LM head weights in the 350m+
configurations are actually tied — we follow the HF checkpoints: tied.
BLOOM uses ALiBi, so it has no position table.
"""

from __future__ import annotations

from .config import ModelConfig

__all__ = ["MODEL_REGISTRY", "get_model", "list_models", "register_model"]

MODEL_REGISTRY: dict[str, ModelConfig] = {}


def register_model(cfg: ModelConfig) -> ModelConfig:
    """Add ``cfg`` to the zoo (idempotent; conflicting re-registration errors)."""
    existing = MODEL_REGISTRY.get(cfg.name)
    if existing is not None and existing != cfg:
        raise ValueError(f"model {cfg.name!r} already registered differently")
    MODEL_REGISTRY[cfg.name] = cfg
    return cfg


def get_model(name: str) -> ModelConfig:
    """Look up an architecture by name, e.g. ``get_model("opt-30b")``."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None


def list_models() -> list[str]:
    """Sorted names of all registered architectures."""
    return sorted(MODEL_REGISTRY)


def _opt(name: str, layers: int, hidden: int, heads: int) -> None:
    register_model(
        ModelConfig(
            name=name,
            num_layers=layers,
            hidden_size=hidden,
            num_heads=heads,
            ffn_dim=4 * hidden,
            vocab_size=50272,
            max_position_embeddings=2048,
            tie_word_embeddings=True,
        )
    )


def _bloom(name: str, layers: int, hidden: int, heads: int) -> None:
    register_model(
        ModelConfig(
            name=name,
            num_layers=layers,
            hidden_size=hidden,
            num_heads=heads,
            ffn_dim=4 * hidden,
            vocab_size=250880,
            max_position_embeddings=0,  # ALiBi
            tie_word_embeddings=True,
        )
    )


_opt("opt-125m", 12, 768, 12)
_opt("opt-350m", 24, 1024, 16)
_opt("opt-1.3b", 24, 2048, 32)
_opt("opt-2.7b", 32, 2560, 32)
_opt("opt-6.7b", 32, 4096, 32)
_opt("opt-13b", 40, 5120, 40)
_opt("opt-30b", 48, 7168, 56)
_opt("opt-66b", 64, 9216, 72)
_opt("opt-175b", 96, 12288, 96)

_bloom("bloom-560m", 24, 1024, 16)
_bloom("bloom-1b7", 24, 2048, 16)
_bloom("bloom-3b", 30, 2560, 32)
_bloom("bloom-7b1", 30, 4096, 32)
_bloom("bloom-176b", 70, 14336, 112)

# A deliberately tiny config for *runnable* end-to-end experiments with
# the NumPy transformer (quality measurements, runtime tests).
register_model(
    ModelConfig(
        name="tiny-8l",
        num_layers=8,
        hidden_size=64,
        num_heads=4,
        ffn_dim=256,
        vocab_size=512,
        max_position_embeddings=256,
        tie_word_embeddings=True,
    )
)

register_model(
    ModelConfig(
        name="tiny-bloom-4l",
        num_layers=4,
        hidden_size=32,
        num_heads=2,
        ffn_dim=128,
        vocab_size=128,
        max_position_embeddings=0,  # ALiBi, like the BLOOM family
        tie_word_embeddings=True,
    )
)

register_model(
    ModelConfig(
        name="tiny-4l",
        num_layers=4,
        hidden_size=32,
        num_heads=2,
        ffn_dim=128,
        vocab_size=128,
        max_position_embeddings=128,
        tie_word_embeddings=True,
    )
)
