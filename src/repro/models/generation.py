"""Generative inference loop for the NumPy model (Fig. 2's two phases)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ops import greedy_pick
from .transformer import TinyDecoderLM

__all__ = ["GenerationResult", "generate"]


@dataclass(frozen=True)
class GenerationResult:
    """Output of :func:`generate`.

    Attributes
    ----------
    tokens:
        Generated tokens, ``(batch, n)``.
    prefill_logits:
        Last-position prompt logits, ``(batch, vocab)``.
    """

    tokens: np.ndarray
    prefill_logits: np.ndarray


def generate(
    model: TinyDecoderLM,
    prompts: np.ndarray,
    num_tokens: int,
    *,
    greedy: bool = True,
    seed: int = 0,
    kv_bits: int = 16,
) -> GenerationResult:
    """Run prefill once, then ``num_tokens`` decode steps.

    Follows the paper's offline-task setup (Sec. 6.1 / ORCA protocol):
    EOS is never emitted early — generation always runs the full
    ``num_tokens`` steps.

    ``kv_bits`` below 16 serves the whole run through the fake-quant KV
    reference path — the oracle for the packed pipeline runtime.
    """
    prompts = np.asarray(prompts)
    if prompts.ndim != 2:
        raise ValueError("prompts must be (batch, s)")
    if num_tokens < 0:
        raise ValueError("num_tokens must be non-negative")
    rng = np.random.default_rng(seed)

    # only the last prompt position feeds generation — skip the
    # (batch, s, vocab) projection the "all" mode would throw away
    logits, cache = model.prefill(
        prompts, reserve=num_tokens, logits="last", kv_bits=kv_bits
    )
    last = logits[:, -1]
    out = np.empty((prompts.shape[0], num_tokens), dtype=np.int64)
    cur = _pick(last, greedy, rng)
    for t in range(num_tokens):
        out[:, t] = cur
        if t == num_tokens - 1:
            break
        step_logits = model.decode_step(cur, cache)
        cur = _pick(step_logits, greedy, rng)
    if num_tokens == 0:
        out = out.reshape(prompts.shape[0], 0)
    return GenerationResult(tokens=out, prefill_logits=last)


def _pick(logits: np.ndarray, greedy: bool, rng: np.random.Generator) -> np.ndarray:
    if greedy:
        # shared first-index tie-break rule (see repro.ops.greedy_pick)
        return greedy_pick(logits)
    z = logits - logits.max(axis=-1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=-1, keepdims=True)
    return np.array([rng.choice(p.shape[1], p=row) for row in p])
