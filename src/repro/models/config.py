"""Architecture metadata for decoder-only LLMs (OPT / BLOOM families).

Everything the cost models need — parameter counts, FLOP counts, KV-cache
sizes — derives from a handful of public architecture numbers captured in
:class:`ModelConfig`.  The symbols follow the paper's notation (Table 2):
``h1`` is the hidden dimension, ``v`` the prompt length, ``b`` the batch
size, ``t`` the bitwidth.

FLOP accounting for one decoder layer processing ``q`` query tokens
against a context of ``c`` total tokens (per sequence):

====================  =========================
QKV projections       ``6 * q * h1**2``
attention scores+mix  ``4 * q * c * h1``
output projection     ``2 * q * h1**2``
MLP (two matmuls)     ``2 * q * h1 * ffn * 2``
====================  =========================

Prefill sets ``q = c = s`` (prompt length); each decode step sets
``q = 1`` and ``c`` = current context length.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelConfig", "LayerShape"]


@dataclass(frozen=True)
class LayerShape:
    """Shapes of the weight matrices inside one decoder layer.

    Each entry is ``(rows, cols)`` of a dense weight; quantization theory
    (Theorem 1) consumes these as ``D_W`` (input dimension) per operator.
    """

    hidden: int
    ffn: int

    @property
    def operators(self) -> dict[str, tuple[int, int]]:
        """Name -> (rows, cols) of each dense weight."""
        h, f = self.hidden, self.ffn
        return {
            "q_proj": (h, h),
            "k_proj": (h, h),
            "v_proj": (h, h),
            "out_proj": (h, h),
            "fc1": (h, f),
            "fc2": (f, h),
        }

    @property
    def linear_params(self) -> int:
        """Total parameters across the dense operators."""
        return sum(r * c for r, c in self.operators.values())


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer architecture description.

    Attributes
    ----------
    name:
        Canonical key, e.g. ``"opt-30b"``.
    num_layers:
        Number of decoder layers (``L`` in the paper).
    hidden_size:
        Model width ``h1``.
    num_heads:
        Attention heads; must divide ``hidden_size``.
    ffn_dim:
        MLP inner width (4x hidden for both OPT and BLOOM).
    vocab_size:
        Token vocabulary (``vocab_s``).
    max_position_embeddings:
        Learned position table length; 0 for ALiBi models (BLOOM).
    tie_word_embeddings:
        Whether the LM head reuses the token-embedding matrix.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_dim: int
    vocab_size: int
    max_position_embeddings: int = 2048
    tie_word_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0:
            raise ValueError(f"{self.name}: layers and hidden must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(f"{self.name}: heads must divide hidden size")

    # ------------------------------------------------------------------
    # Parameter counts
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head attention width."""
        return self.hidden_size // self.num_heads

    @property
    def layer_shape(self) -> LayerShape:
        """Dense-operator shapes of one decoder layer."""
        return LayerShape(hidden=self.hidden_size, ffn=self.ffn_dim)

    @property
    def params_per_layer(self) -> int:
        """Parameters in one decoder layer (linears + biases + 2 LN)."""
        h, f = self.hidden_size, self.ffn_dim
        linears = self.layer_shape.linear_params
        biases = 4 * h + f + h  # qkv/out biases + fc1/fc2 biases
        layernorms = 2 * 2 * h
        return linears + biases + layernorms

    @property
    def embedding_params(self) -> int:
        """Token + position embedding parameters (the model 'head')."""
        tok = self.vocab_size * self.hidden_size
        pos = self.max_position_embeddings * self.hidden_size
        return tok + pos

    @property
    def lm_head_params(self) -> int:
        """Output projection to the vocabulary (the model 'tail')."""
        if self.tie_word_embeddings:
            return 0
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Whole-model parameter count."""
        return (
            self.num_layers * self.params_per_layer
            + self.embedding_params
            + self.lm_head_params
            + 2 * self.hidden_size  # final layer norm
        )

    # ------------------------------------------------------------------
    # FLOP counts (per whole batch)
    # ------------------------------------------------------------------
    def layer_flops(self, batch: int, q: int, context: int) -> float:
        """FLOPs of one decoder layer for ``batch`` sequences.

        ``q`` query tokens each attend to ``context`` total tokens.
        """
        if batch < 0 or q < 0 or context < 0:
            raise ValueError("batch/q/context must be non-negative")
        h, f = self.hidden_size, self.ffn_dim
        proj = 8.0 * q * h * h  # QKV (6qh^2) + out (2qh^2)
        attn = 4.0 * q * context * h
        mlp = 4.0 * q * h * f
        return batch * (proj + attn + mlp)

    def prefill_layer_flops(self, batch: int, prompt_len: int) -> float:
        """One layer's prefill FLOPs (q = c = prompt length)."""
        return self.layer_flops(batch, prompt_len, prompt_len)

    def decode_layer_flops(self, batch: int, context: int) -> float:
        """One layer's FLOPs for a single decode step at ``context``."""
        return self.layer_flops(batch, 1, context)

    def embedding_flops(self, batch: int, q: int) -> float:
        """Logit-projection FLOPs (embedding lookup itself is free)."""
        return 2.0 * batch * q * self.hidden_size * self.vocab_size

    # ------------------------------------------------------------------
    # Memory-traffic helpers (MOPs in the paper's terminology)
    # ------------------------------------------------------------------
    def kv_bytes_per_token_per_layer(self, kv_bits: int = 16) -> float:
        """Bytes of K+V cache one token adds at one layer."""
        return 2.0 * self.hidden_size * kv_bits / 8.0

    def activation_bytes(self, batch: int, q: int, act_bits: int = 16) -> float:
        """Bytes of one hidden-state tensor (the inter-stage activation)."""
        return batch * q * self.hidden_size * act_bits / 8.0

    def layer_weight_bytes(self, bits: int) -> float:
        """Weight bytes of one decoder layer at the given bitwidth.

        Sub-16-bit layers carry per-channel FP16 scale/zero metadata for
        every linear operator; layer norms and biases stay FP16.
        """
        shape = self.layer_shape
        linear_bytes = shape.linear_params * bits / 8.0
        meta = 0.0
        if bits < 16:
            # scale + zero point per output channel, FP16 each.
            meta = sum(2 * 2 * cols for _, cols in shape.operators.values())
        other = (self.params_per_layer - shape.linear_params) * 2.0
        return linear_bytes + meta + other

    def embedding_weight_bytes(self, bits: int = 16) -> float:
        """Embedding + LM head bytes (kept FP16 in the paper's runtime)."""
        del bits  # embeddings are never quantized
        params = self.embedding_params + self.lm_head_params + 2 * self.hidden_size
        return params * 2.0
