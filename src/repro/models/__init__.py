"""Model substrate: architecture metadata, runnable NumPy LLM, corpora."""

from .config import LayerShape, ModelConfig
from .registry import MODEL_REGISTRY, get_model, list_models, register_model
from .transformer import (
    KVCache,
    LayerWeights,
    TinyDecoderLM,
    attention_forward,
    decoder_block,
    init_weights,
)
from .generation import GenerationResult, generate
from .corpus import SyntheticCorpus, calibration_batch, make_corpus

__all__ = [
    "ModelConfig",
    "LayerShape",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "register_model",
    "TinyDecoderLM",
    "KVCache",
    "LayerWeights",
    "init_weights",
    "GenerationResult",
    "generate",
    "SyntheticCorpus",
    "make_corpus",
    "calibration_batch",
]
