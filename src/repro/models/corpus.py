"""Synthetic evaluation corpora for the NumPy model.

The paper measures perplexity on WikiText2 / PTB / C4.  Offline we cannot
ship those, so we generate token streams with realistic statistics: a
Zipfian unigram distribution overlaid with a first-order Markov structure
(real text is highly predictable locally), produced deterministically from
a seed.  Models are *evaluated* on these streams — relative quality across
quantization schemes is what the experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticCorpus", "make_corpus", "calibration_batch"]


@dataclass(frozen=True)
class SyntheticCorpus:
    """Token matrix ``(num_seqs, seq_len)`` plus its generator params."""

    name: str
    tokens: np.ndarray
    vocab_size: int

    @property
    def num_sequences(self) -> int:
        """Rows of the token matrix."""
        return int(self.tokens.shape[0])

    @property
    def seq_len(self) -> int:
        """Tokens per sequence."""
        return int(self.tokens.shape[1])


def _zipf_probs(vocab: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    p = ranks**-alpha
    # break ties so different corpora differ
    p *= rng.uniform(0.9, 1.1, size=vocab)
    return p / p.sum()


def make_corpus(
    vocab_size: int,
    *,
    num_seqs: int = 16,
    seq_len: int = 64,
    alpha: float = 1.1,
    markov_weight: float = 0.6,
    seed: int = 0,
    name: str = "synthetic",
) -> SyntheticCorpus:
    """Zipf + Markov token streams.

    ``markov_weight`` interpolates between pure unigram sampling (0) and
    fully transition-driven sampling (1).  Higher values make the stream
    more learnable/predictable, mimicking natural text.
    """
    if vocab_size < 4:
        raise ValueError("vocab_size too small")
    if not 0.0 <= markov_weight <= 1.0:
        raise ValueError("markov_weight in [0, 1]")
    rng = np.random.default_rng(seed)
    unigram = _zipf_probs(vocab_size, alpha, rng)

    # Sparse Markov structure: each token prefers a small successor set.
    fanout = min(8, vocab_size)
    successors = rng.integers(0, vocab_size, size=(vocab_size, fanout))
    succ_probs = rng.dirichlet(np.ones(fanout), size=vocab_size)

    toks = np.empty((num_seqs, seq_len), dtype=np.int64)
    toks[:, 0] = rng.choice(vocab_size, size=num_seqs, p=unigram)
    for t in range(1, seq_len):
        prev = toks[:, t - 1]
        use_markov = rng.random(num_seqs) < markov_weight
        # Markov choice: pick a successor slot per sequence
        slot = np.array(
            [rng.choice(fanout, p=succ_probs[p]) for p in prev], dtype=np.int64
        )
        markov_next = successors[prev, slot]
        unigram_next = rng.choice(vocab_size, size=num_seqs, p=unigram)
        toks[:, t] = np.where(use_markov, markov_next, unigram_next)
    return SyntheticCorpus(name=name, tokens=toks, vocab_size=vocab_size)


def calibration_batch(
    vocab_size: int, *, batch: int = 8, seq_len: int = 32, seed: int = 1234
) -> np.ndarray:
    """Calibration prompts for quantization statistics (the paper uses 128
    random 2048-token C4 segments; we scale down proportionally)."""
    corpus = make_corpus(
        vocab_size, num_seqs=batch, seq_len=seq_len, seed=seed, name="calibration"
    )
    return corpus.tokens
