"""A runnable decoder-only transformer in pure NumPy.

This is the *real* model substrate: everything the quality experiments
measure (quantization error, perplexity deltas, layer sensitivity,
Theorem-1 variance bounds) runs through genuine forward passes of this
implementation with genuinely quantized weights.  It mirrors the OPT
block structure (pre-LN, learned position embeddings, GELU MLP) scaled
down to laptop size via the ``tiny-*`` configs.

Weight layout per layer ``i`` (all ``float64`` for numeric headroom):

======================  =========================
``ln1.g / ln1.b``       pre-attention LayerNorm
``q/k/v/out`` (+ bias)  attention projections
``ln2.g / ln2.b``       pre-MLP LayerNorm
``fc1 / fc2`` (+ bias)  MLP
======================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .config import ModelConfig

__all__ = [
    "LayerWeights",
    "TinyDecoderLM",
    "KVCache",
    "init_weights",
    "fused_qkv",
    "batched_decode_attention",
    "batched_decode_block",
]


@dataclass
class LayerWeights:
    """Dense weights of one decoder layer."""

    ln1_g: np.ndarray
    ln1_b: np.ndarray
    wq: np.ndarray
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray
    fc1: np.ndarray
    bfc1: np.ndarray
    fc2: np.ndarray
    bfc2: np.ndarray

    def linear_weights(self) -> dict[str, np.ndarray]:
        """The quantizable dense matrices, keyed like LayerShape.operators."""
        return {
            "q_proj": self.wq,
            "k_proj": self.wk,
            "v_proj": self.wv,
            "out_proj": self.wo,
            "fc1": self.fc1,
            "fc2": self.fc2,
        }

    def replace_linears(self, new: Mapping[str, np.ndarray]) -> "LayerWeights":
        """Copy of this layer with some dense matrices swapped out."""
        out = LayerWeights(
            ln1_g=self.ln1_g, ln1_b=self.ln1_b,
            wq=new.get("q_proj", self.wq), bq=self.bq,
            wk=new.get("k_proj", self.wk), bk=self.bk,
            wv=new.get("v_proj", self.wv), bv=self.bv,
            wo=new.get("out_proj", self.wo), bo=self.bo,
            ln2_g=self.ln2_g, ln2_b=self.ln2_b,
            fc1=new.get("fc1", self.fc1), bfc1=self.bfc1,
            fc2=new.get("fc2", self.fc2), bfc2=self.bfc2,
        )
        return out


@dataclass
class KVCache:
    """Pre-allocated per-layer key/value cache.

    Shapes: ``(num_layers, batch, max_len, hidden)``.  ``length`` tracks
    how many positions are filled; the runtime reserves ``s + n`` slots up
    front exactly like the paper's serving system.
    """

    k: np.ndarray
    v: np.ndarray
    length: int = 0

    @classmethod
    def allocate(cls, num_layers: int, batch: int, max_len: int, hidden: int) -> "KVCache":
        """Zero-filled pre-allocated cache of the given capacity."""
        shape = (num_layers, batch, max_len, hidden)
        return cls(k=np.zeros(shape), v=np.zeros(shape), length=0)

    @property
    def max_len(self) -> int:
        """Reserved KV slots per sequence."""
        return self.k.shape[2]

    @property
    def kv_nbytes(self) -> float:
        """Resident bytes of this cache's K/V storage."""
        return float(self.k.nbytes + self.v.nbytes)

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray, start: int) -> None:
        """Write new K/V rows at absolute position ``start``."""
        q = k_new.shape[1]
        if start + q > self.max_len:
            raise ValueError("KV cache overflow: reserve s + n slots up front")
        self.k[layer, :, start : start + q] = k_new
        self.v[layer, :, start : start + q] = v_new

    def read(self, layer: int, total: int) -> tuple[np.ndarray, np.ndarray]:
        """K/V rows ``0 .. total`` of ``layer`` as dense ``(batch, total,
        hidden)`` arrays.  The fp16-baseline cache returns zero-copy views;
        packed subclasses dequantize on read."""
        return self.k[layer, :, :total], self.v[layer, :, :total]


def fused_qkv(lw: LayerWeights) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated ``[wq|wk|wv]`` weight and bias for one fused GEMM.

    Column-block concatenation leaves every output column's dot product
    untouched, so the fused projection is bit-identical to three separate
    GEMMs — it just makes one BLAS call instead of three.  The fused
    arrays are memoized on the (mutable) ``LayerWeights`` instance;
    weight surgery always builds fresh instances, so the memo cannot go
    stale.
    """
    cached = getattr(lw, "_fused_qkv", None)
    if cached is None:
        cached = (
            np.concatenate((lw.wq, lw.wk, lw.wv), axis=1),
            np.concatenate((lw.bq, lw.bk, lw.bv)),
        )
        lw._fused_qkv = cached
    return cached


def _layernorm(x: np.ndarray, g: np.ndarray, b: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * g + b


_GELU_C = np.sqrt(2.0 / np.pi)


def _gelu(x: np.ndarray) -> np.ndarray:
    # x * x * x instead of x**3: same tanh approximation, but npy pow on
    # float64 arrays is ~10x the cost of two multiplies and this op sits
    # on the per-token decode path
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * (x * x * x))))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return e / e.sum(axis=axis, keepdims=True)


def init_weights(cfg: ModelConfig, seed: int = 0) -> tuple[np.ndarray, np.ndarray, list[LayerWeights], np.ndarray, np.ndarray]:
    """Random-but-stable initialization (scaled normal, OPT-style).

    Returns ``(embed_tokens, embed_positions, layers, final_ln_g, final_ln_b)``.
    """
    rng = np.random.default_rng(seed)
    h, f = cfg.hidden_size, cfg.ffn_dim
    std = 0.02
    # residual-branch scaling keeps deep stacks stable
    res_std = std / np.sqrt(2.0 * cfg.num_layers)

    embed_tokens = rng.normal(0, std, size=(cfg.vocab_size, h))
    n_pos = max(cfg.max_position_embeddings, 1)
    embed_positions = rng.normal(0, std, size=(n_pos, h))

    layers: list[LayerWeights] = []
    for _ in range(cfg.num_layers):
        layers.append(
            LayerWeights(
                ln1_g=np.ones(h), ln1_b=np.zeros(h),
                wq=rng.normal(0, std, (h, h)), bq=np.zeros(h),
                wk=rng.normal(0, std, (h, h)), bk=np.zeros(h),
                wv=rng.normal(0, std, (h, h)), bv=np.zeros(h),
                wo=rng.normal(0, res_std, (h, h)), bo=np.zeros(h),
                ln2_g=np.ones(h), ln2_b=np.zeros(h),
                fc1=rng.normal(0, std, (h, f)), bfc1=np.zeros(f),
                fc2=rng.normal(0, res_std, (f, h)), bfc2=np.zeros(h),
            )
        )
    return embed_tokens, embed_positions, layers, np.ones(h), np.zeros(h)


def alibi_slopes(num_heads: int) -> np.ndarray:
    """ALiBi per-head slopes (Press et al.): geometric in ``2^(-8/n)``.

    BLOOM uses these linear attention biases instead of learned position
    embeddings.  For non-power-of-two head counts the standard
    interpolation scheme is applied.
    """
    def pow2_slopes(n: int) -> list[float]:
        start = 2.0 ** (-(2.0 ** -(np.log2(n) - 3)))
        return [start * (start**i) for i in range(n)]

    if num_heads < 1:
        raise ValueError("num_heads must be positive")
    n = 2 ** int(np.floor(np.log2(num_heads)))
    slopes = pow2_slopes(n)
    if n < num_heads:
        extra = pow2_slopes(2 * n)[0::2][: num_heads - n]
        slopes += extra
    return np.asarray(slopes)


def attention_forward(
    cfg: ModelConfig,
    lw: LayerWeights,
    x: np.ndarray,
    cache: KVCache,
    cache_layer: int,
    start: int,
    recorder=None,
) -> np.ndarray:
    """Multi-head attention for ``q`` new tokens at absolute positions
    ``start .. start+q`` against everything already in ``cache``.

    Standalone so pipeline-stage shards (which hold only a slice of the
    model) run the byte-identical computation as :class:`TinyDecoderLM`.
    Models with ``max_position_embeddings == 0`` (the BLOOM family) use
    ALiBi biases instead of learned positions.
    """
    batch, q, h = x.shape
    nh, hd = cfg.num_heads, cfg.hidden_size // cfg.num_heads

    if recorder is not None:
        recorder(cache_layer, "q_proj", x)
        recorder(cache_layer, "k_proj", x)
        recorder(cache_layer, "v_proj", x)
    # one fused QKV GEMM on the flattened (batch*q, h) tokens: a 3-D
    # ndarray @ 2-D matmul loops a GEMM per batch row, which is the slow
    # shape decode hits (q == 1), so flatten once and split by columns
    wqkv, bqkv = fused_qkv(lw)
    qkv = x.reshape(batch * q, h) @ wqkv
    qkv += bqkv
    qkv = qkv.reshape(batch, q, 3 * h)
    qp, kp, vp = qkv[..., :h], qkv[..., h : 2 * h], qkv[..., 2 * h :]
    cache.append(cache_layer, kp, vp, start)
    total = start + q
    k_all, v_all = cache.read(cache_layer, total)

    qh = qp.reshape(batch, q, nh, hd).transpose(0, 2, 1, 3)
    kh = k_all.reshape(batch, total, nh, hd).transpose(0, 2, 3, 1)
    vh = v_all.reshape(batch, total, nh, hd).transpose(0, 2, 1, 3)
    scores = (qh @ kh) / np.sqrt(hd)

    pos_q = start + np.arange(q)[:, None]
    pos_k = np.arange(total)[None, :]
    if cfg.max_position_embeddings == 0:
        # ALiBi: penalize attention linearly in key distance, per head
        dist = (pos_q - pos_k).astype(np.float64)  # (q, total), >=0 causal
        bias = -alibi_slopes(nh)[:, None, None] * dist[None]
        scores = scores + bias[None]
    scores = np.where(pos_k <= pos_q, scores, -1e30)
    attn = _softmax(scores, axis=-1)
    mixed = (attn @ vh).transpose(0, 2, 1, 3).reshape(batch, q, h)
    if recorder is not None:
        recorder(cache_layer, "out_proj", mixed)
    out = mixed.reshape(batch * q, h) @ lw.wo
    out += lw.bo
    return out.reshape(batch, q, h)


def batched_decode_attention(
    cfg: ModelConfig,
    lw: LayerWeights,
    x: np.ndarray,
    kv,
    cache_layer: int,
    starts: np.ndarray,
) -> np.ndarray:
    """Ragged-length attention for one fused decode iteration.

    ``x`` stacks ``B`` independent requests' single-token activations as
    ``(B, 1, h)``; row ``i`` sits at absolute position ``starts[i]`` of
    its own sequence.  ``kv`` is a batched cache view (duck-typed, e.g.
    :class:`repro.runtime.kvcache.BatchedKVView`) exposing

    * ``append(layer, k_new, v_new)`` — scatter row ``i``'s new K/V at
      ``starts[i]`` of request ``i``'s cache unit, and
    * ``read_padded(layer)`` — ``(B, Tmax, h)`` K/V padded to the batch
      max context with exact-zero rows past each request's length.

    Padding never leaks into the output: masked scores are ``-1e30`` so
    their softmax weights underflow to exactly ``0.0``, and the padded
    V rows those zero weights multiply are themselves exact zeros.  The
    QKV/out projections run as one stacked GEMM over all ``B`` rows —
    the whole point of fusing — which is *not* bitwise row-stable
    against ``B`` separate batch-1 GEMVs; equality with the per-request
    oracle is therefore asserted at token-stream level (argmax), not on
    logit bytes.
    """
    batch, q, h = x.shape
    if q != 1:
        raise ValueError("batched decode processes one token per request")
    nh, hd = cfg.num_heads, cfg.hidden_size // cfg.num_heads

    wqkv, bqkv = fused_qkv(lw)
    qkv = x.reshape(batch, h) @ wqkv
    qkv += bqkv
    qp, kp, vp = qkv[:, :h], qkv[:, h : 2 * h], qkv[:, 2 * h :]
    kv.append(cache_layer, kp.reshape(batch, 1, h), vp.reshape(batch, 1, h))
    k_all, v_all = kv.read_padded(cache_layer)
    total = k_all.shape[1]

    qh = qp.reshape(batch, 1, nh, hd).transpose(0, 2, 1, 3)
    kh = k_all.reshape(batch, total, nh, hd).transpose(0, 2, 3, 1)
    vh = v_all.reshape(batch, total, nh, hd).transpose(0, 2, 1, 3)
    scores = (qh @ kh) / np.sqrt(hd)

    starts = np.asarray(starts, dtype=np.int64)
    pos_k = np.arange(total)[None, :]
    if cfg.max_position_embeddings == 0:
        # ALiBi: per-request key distance is start_i - pos_k
        dist = (starts[:, None] - pos_k).astype(np.float64)
        scores = scores + (
            -alibi_slopes(nh)[None, :, None, None] * dist[:, None, None, :]
        )
    keep = pos_k <= starts[:, None]
    scores = np.where(keep[:, None, None, :], scores, -1e30)
    attn = _softmax(scores, axis=-1)
    mixed = (attn @ vh).transpose(0, 2, 1, 3).reshape(batch, 1, h)
    out = mixed.reshape(batch, h) @ lw.wo
    out += lw.bo
    return out.reshape(batch, 1, h)


def batched_decode_block(
    cfg: ModelConfig,
    lw: LayerWeights,
    x: np.ndarray,
    kv,
    cache_layer: int,
    starts: np.ndarray,
) -> np.ndarray:
    """One pre-LN decoder block over a fused ragged decode batch.

    Same structure as :func:`decoder_block` with ``q == 1`` but all
    ``B`` requests share each GEMM; attention is ragged per request.
    """
    a = batched_decode_attention(
        cfg, lw, _layernorm(x, lw.ln1_g, lw.ln1_b), kv, cache_layer, starts
    )
    x = x + a
    h1 = _layernorm(x, lw.ln2_g, lw.ln2_b)
    batch, q, h = x.shape
    z1 = h1.reshape(batch * q, h) @ lw.fc1
    z1 += lw.bfc1
    h2 = _gelu(z1)
    m = h2 @ lw.fc2
    m += lw.bfc2
    return x + m.reshape(batch, q, h)


def decoder_block(
    cfg: ModelConfig,
    lw: LayerWeights,
    x: np.ndarray,
    cache: KVCache,
    cache_layer: int,
    start: int,
    recorder=None,
) -> np.ndarray:
    """One full pre-LN decoder block (attention + MLP with residuals)."""
    a = attention_forward(
        cfg, lw, _layernorm(x, lw.ln1_g, lw.ln1_b), cache, cache_layer, start, recorder
    )
    x = x + a
    h1 = _layernorm(x, lw.ln2_g, lw.ln2_b)
    if recorder is not None:
        recorder(cache_layer, "fc1", h1)
    batch, q, h = x.shape
    z1 = h1.reshape(batch * q, h) @ lw.fc1
    z1 += lw.bfc1
    h2 = _gelu(z1)
    if recorder is not None:
        recorder(cache_layer, "fc2", h2.reshape(batch, q, -1))
    m = h2 @ lw.fc2
    m += lw.bfc2
    return x + m.reshape(batch, q, h)


class TinyDecoderLM:
    """Decoder-only LM with pre-allocated KV cache and two-phase inference.

    Use :meth:`prefill` once per batch and then :meth:`decode_step`
    repeatedly — exactly the generative-serving pattern of Fig. 2.
    """

    def __init__(self, cfg: ModelConfig, seed: int = 0) -> None:
        if cfg.hidden_size > 1024 or cfg.num_layers > 48:
            raise ValueError(
                f"{cfg.name} is too large to run in NumPy; use the cost models"
            )
        self.cfg = cfg
        (
            self.embed_tokens,
            self.embed_positions,
            self.layers,
            self.final_ln_g,
            self.final_ln_b,
        ) = init_weights(cfg, seed)

    # ------------------------------------------------------------------
    # Weight surgery (used by the quantization experiments)
    # ------------------------------------------------------------------
    def clone(self) -> "TinyDecoderLM":
        """Deep-copied model (for weight surgery without aliasing)."""
        import copy

        return copy.deepcopy(self)

    def apply_to_layer(self, layer_idx: int, fn) -> None:
        """Replace layer ``layer_idx``'s dense matrices with ``fn(name, W)``."""
        layer = self.layers[layer_idx]
        new = {name: fn(name, w) for name, w in layer.linear_weights().items()}
        self.layers[layer_idx] = layer.replace_linears(new)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def _block(
        self, layer_idx: int, x: np.ndarray, cache: KVCache, start: int, recorder=None
    ) -> np.ndarray:
        return decoder_block(
            self.cfg, self.layers[layer_idx], x, cache, layer_idx, start, recorder
        )

    def _embed(self, tokens: np.ndarray, start: int) -> np.ndarray:
        x = self.embed_tokens[tokens]
        if self.cfg.max_position_embeddings > 0:
            pos = start + np.arange(tokens.shape[1])
            x = x + self.embed_positions[pos]
        return x

    def _embed_ragged(self, tokens: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Embed ``(B, 1)`` next tokens at per-request positions ``starts``.

        Elementwise per row, so bitwise identical to ``B`` separate
        ``_embed(tokens[i:i+1], starts[i])`` calls.
        """
        x = self.embed_tokens[tokens]
        if self.cfg.max_position_embeddings > 0:
            x = x + self.embed_positions[np.asarray(starts)][:, None, :]
        return x

    def _logits(self, x: np.ndarray) -> np.ndarray:
        x = _layernorm(x, self.final_ln_g, self.final_ln_b)
        batch, q, h = x.shape
        out = x.reshape(batch * q, h) @ self.embed_tokens.T
        return out.reshape(batch, q, -1)

    def prefill(
        self,
        tokens: np.ndarray,
        *,
        reserve: int = 0,
        logits: str = "all",
        kv_bits: int = 16,
    ) -> tuple[np.ndarray | None, KVCache]:
        """Process prompts; returns logits and the filled KV cache.

        ``reserve`` extra KV slots are pre-allocated for decoding — the
        paper's runtime reserves ``s + n`` up front to avoid reallocation.

        ``kv_bits`` below 16 serves the KV cache through the fake-quant
        reference path (per-token, per-head scales) — the single-process
        oracle the packed runtime caches are asserted bit-identical to.

        ``logits`` selects how much of the ``(batch, s, vocab)`` logit
        tensor to materialize:

        * ``"all"`` — every position (teacher forcing / perplexity);
        * ``"last"`` — only the final position, shape ``(batch, 1,
          vocab)``: what generation actually consumes, skipping the
          ``(batch, s, vocab)`` projection it would throw away;
        * ``"none"`` — no logits at all (cache warm-up), returns ``None``.
        """
        if logits not in ("all", "last", "none"):
            raise ValueError(f"logits must be 'all', 'last' or 'none', got {logits!r}")
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError("tokens must be (batch, seq)")
        batch, s = tokens.shape
        if kv_bits >= 16:
            cache = KVCache.allocate(
                self.cfg.num_layers, batch, s + reserve, self.cfg.hidden_size
            )
        else:
            # runtime import: repro.runtime.kvcache imports this module
            from ..runtime.kvcache import FakeQuantKVCache

            cache = FakeQuantKVCache.allocate_quant(
                self.cfg.num_layers, batch, s + reserve, self.cfg.hidden_size,
                kv_bits=kv_bits, num_heads=self.cfg.num_heads,
            )
        x = self._embed(tokens, 0)
        for i in range(self.cfg.num_layers):
            x = self._block(i, x, cache, 0)
        cache.length = s
        if logits == "none":
            return None, cache
        if logits == "last":
            return self._logits(x[:, -1:]), cache
        return self._logits(x), cache

    def capture_activation_stats(self, tokens: np.ndarray) -> dict[tuple[int, str], tuple[float, float]]:
        """Calibration pass: per-(layer, operator) input mean and variance.

        Used by the variance indicator (Prop. 2) to evaluate ``G(X_o)``.
        Returns ``{(layer_idx, op_name): (mean, var)}``.
        """
        tokens = np.asarray(tokens)
        batch, s = tokens.shape
        cache = KVCache.allocate(self.cfg.num_layers, batch, s, self.cfg.hidden_size)
        stats: dict[tuple[int, str], tuple[float, float]] = {}

        def recorder(layer: int, op: str, x: np.ndarray) -> None:
            stats[(layer, op)] = (float(x.mean()), float(x.var()))

        x = self._embed(tokens, 0)
        for i in range(self.cfg.num_layers):
            x = self._block(i, x, cache, 0, recorder)
        return stats

    def decode_step(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """One decode step: ``tokens`` is ``(batch,)``; returns ``(batch, vocab)``."""
        tokens = np.asarray(tokens).reshape(-1, 1)
        start = cache.length
        x = self._embed(tokens, start)
        for i in range(self.cfg.num_layers):
            x = self._block(i, x, cache, start)
        cache.length = start + 1
        return self._logits(x)[:, 0]

    # ------------------------------------------------------------------
    def forward_full(self, tokens: np.ndarray) -> np.ndarray:
        """Teacher-forced full forward (for perplexity): logits for all pos."""
        logits, _ = self.prefill(np.asarray(tokens), logits="all")
        return logits

    def nll(self, tokens: np.ndarray) -> float:
        """Mean next-token negative log-likelihood over a token matrix."""
        tokens = np.asarray(tokens)
        logits = self.forward_full(tokens)
        logp = logits - _log_sum_exp(logits)
        tgt = tokens[:, 1:]
        batch_idx = np.arange(tokens.shape[0])[:, None]
        pos_idx = np.arange(tokens.shape[1] - 1)[None, :]
        picked = logp[batch_idx, pos_idx, tgt]
        return float(-picked.mean())

    def perplexity(self, tokens: np.ndarray) -> float:
        """``exp`` of the mean next-token NLL over ``tokens``."""
        return float(np.exp(self.nll(tokens)))


def _log_sum_exp(x: np.ndarray) -> np.ndarray:
    m = x.max(axis=-1, keepdims=True)
    return m + np.log(np.exp(x - m).sum(axis=-1, keepdims=True))
