"""Command-line entry points mirroring the paper's Sec.-5 commands.

``llmpq-algo``
    Plan generation: model + cluster + workload + theta in, strategy
    JSON out (the paper's ``llmpq-algo --model-name ... --theta ...``).

``llmpq-dist``
    Strategy execution: loads a strategy file and serves it — on the
    simulated cluster for big models, and on the real thread-pipelined
    NumPy runtime for ``tiny-*`` models.  ``--fault-spec`` (or the
    ``REPRO_FAULTS`` environment variable) injects deterministic faults
    into the real runtime to exercise the recovery path.

``llmpq-serve``
    Online serving: replays an arrival trace (Poisson, bursty, diurnal,
    or Pareto heavy-tailed) against a strategy — iteration-level
    continuous batching (or the wave baseline) on the real runtime for
    ``tiny-*`` models, and on the online simulator for big models.
    ``--replan-on-drift`` watches the stream for workload drift and
    live-migrates the pipeline to a refitted plan without dropping
    traffic.

All commands report user mistakes (missing files, malformed JSON,
unknown models, mismatched omega tables) as one-line errors with a
non-zero exit code instead of tracebacks.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .core.api import evaluate_plan, plan_llmpq
from .core.plan import ExecutionPlan
from .hardware.cluster import Cluster, make_cluster, paper_cluster
from .hardware.gpu import list_gpus
from .models.registry import get_model, list_models
from .workload.spec import Workload

__all__ = ["algo_main", "dist_main", "serve_main"]


def _fail(msg: str, code: int = 2) -> int:
    print(f"error: {msg}", file=sys.stderr)
    return code


def _build_cluster(args: argparse.Namespace) -> Cluster:
    if args.cluster is not None:
        return paper_cluster(args.cluster)
    if not args.device_names:
        raise SystemExit("either --cluster or --device-names is required")
    if len(args.device_names) != len(args.device_numbers):
        raise SystemExit("--device-names and --device-numbers must align")
    return make_cluster(list(zip(args.device_names, args.device_numbers)))


def _load_indicator(path: str, model_name: str):
    """Validate and load an ``--omega_file`` indicator, or exit friendly."""
    from .quant.indicator import IndicatorTable

    try:
        indicator = IndicatorTable.from_json(path)
    except FileNotFoundError:
        raise SystemExit(f"error: omega file not found: {path}")
    except (json.JSONDecodeError, KeyError, ValueError, TypeError) as e:
        raise SystemExit(f"error: invalid omega file {path}: {e}")
    cfg = get_model(model_name)
    if indicator.num_layers != cfg.num_layers:
        raise SystemExit(
            f"error: omega file {path} covers {indicator.num_layers} layers "
            f"but {model_name} has {cfg.num_layers} — infeasible indicator"
        )
    return indicator


def algo_main(argv: list[str] | None = None) -> int:
    """``llmpq-algo``: generate a strategy file for a model/cluster/workload."""
    p = argparse.ArgumentParser(
        prog="llmpq-algo", description="LLM-PQ plan generation"
    )
    p.add_argument("--model-name", required=True, choices=list_models())
    p.add_argument("--cluster", type=int, default=None,
                   help="paper cluster id 1..11 (Table 3)")
    p.add_argument("--device-names", nargs="*", default=None, choices=list_gpus())
    p.add_argument("--device-numbers", nargs="*", type=int, default=None)
    p.add_argument("--global-bz", type=int, default=32, help="global batch size")
    p.add_argument("--s", type=int, default=512, help="prompt length")
    p.add_argument("--n", type=int, default=100, help="tokens to generate")
    p.add_argument("--theta", type=float, default=1.0, help="quality scalar")
    p.add_argument("--group", type=int, default=1, help="layer group size")
    p.add_argument("--omega-file", "--omega_file", dest="omega_file", default=None,
                   help="indicator JSON (from IndicatorTable.to_json); "
                        "defaults to the synthetic Prop.-2 indicator")
    p.add_argument("--shaq-efficient", action="store_true", dest="heuristic",
                   help="use the bitwidth-transfer heuristic (faster)")
    p.add_argument("--time-limit", type=float, default=60.0,
                   help="ILP solver time limit, seconds")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes for candidate ILP solves "
                        "(same plan at any value; >1 parallelizes)")
    p.add_argument("--kv-bits", choices=["auto", "4", "8", "16"], default="16",
                   help="KV-cache bitwidth: 8/4 plan with quantized KV "
                        "(less memory, faster decode, more admission "
                        "headroom); 'auto' searches the levels and refines "
                        "per stage under theta")
    p.add_argument("--cost-source", choices=["kernels", "model"],
                   default="kernels",
                   help="stage-time source for the predicted report: "
                        "ground-truth roofline kernels, or the planner's "
                        "fitted latency model (shows planner-view numbers)")
    p.add_argument("-o", "--output", default="strategy.json",
                   help="strategy file to write")
    args = p.parse_args(argv)

    cluster = _build_cluster(args)
    workload = Workload(prompt_len=args.s, gen_len=args.n, global_batch=args.global_bz)
    indicator = None
    if args.omega_file:
        indicator = _load_indicator(args.omega_file, args.model_name)
    print(f"planning {args.model_name} on {cluster.describe()}", file=sys.stderr)
    if args.jobs < 1:
        return _fail("--jobs must be >= 1")
    kv_bits = args.kv_bits if args.kv_bits == "auto" else int(args.kv_bits)
    result = plan_llmpq(
        args.model_name, cluster, workload,
        theta=args.theta, group_size=args.group,
        use_heuristic=args.heuristic, ilp_time_limit=args.time_limit,
        indicator=indicator, n_jobs=args.jobs, kv_bits=kv_bits,
    )
    if result.stats is not None:
        print(result.stats.describe(), file=sys.stderr)
    if result.plan is None:
        print("no feasible plan found", file=sys.stderr)
        return 1
    result.plan.to_json(args.output)
    report = evaluate_plan(
        result.plan, cluster, solve_seconds=result.total_seconds,
        cost_source=args.cost_source,
    )
    print(result.plan.describe())
    print(
        f"predicted: latency {report.latency:.2f}s, "
        f"throughput {report.throughput:.2f} tok/s, "
        f"ppl {report.perplexity:.2f}, solve {result.total_seconds:.1f}s"
    )
    print(f"strategy written to {args.output}")
    return 0


def _load_plan(path: str) -> ExecutionPlan:
    """Load a strategy file with friendly diagnostics (SystemExit on error)."""
    try:
        return ExecutionPlan.from_json(path)
    except FileNotFoundError:
        raise SystemExit(f"error: strategy file not found: {path}")
    except IsADirectoryError:
        raise SystemExit(f"error: strategy path is a directory: {path}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"error: strategy file {path} is not valid JSON: {e}")
    except KeyError as e:
        raise SystemExit(
            f"error: strategy file {path} is invalid or names an unknown "
            f"model/GPU: {e}"
        )
    except (ValueError, TypeError) as e:
        raise SystemExit(f"error: strategy file {path} is invalid: {e}")


def dist_main(argv: list[str] | None = None) -> int:
    """``llmpq-dist``: validate and serve a strategy file."""
    from .runtime.faults import FaultInjector

    p = argparse.ArgumentParser(
        prog="llmpq-dist", description="LLM-PQ strategy execution"
    )
    p.add_argument("--strat-file-name", "--strat_file_name", dest="strategy",
                   required=True, help="strategy JSON from llmpq-algo")
    p.add_argument("--cluster", type=int, default=None,
                   help="paper cluster id to serve on (defaults to plan devices)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-spec", default=None,
                   help="deterministic fault injection spec for the real "
                        "runtime, e.g. 'crash:stage=1,at=5;slow:stage=0,"
                        "delay=0.01' (overrides $REPRO_FAULTS)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault injector's randomness")
    p.add_argument("--no-recovery", action="store_true",
                   help="fail fast on stage crashes instead of recovering")
    p.add_argument("--dequant-cache-mb", type=float, default=None,
                   help="per-stage dequantized-weight cache budget in MiB "
                        "(default: auto-size from the memory model's slack; "
                        "0 disables caching and rebuilds dense weights per "
                        "microbatch)")
    args = p.parse_args(argv)

    plan = _load_plan(args.strategy)
    cfg = get_model(plan.model_name)

    if args.cluster is not None:
        cluster = paper_cluster(args.cluster)
    else:
        counts: dict[str, int] = {}
        for st in plan.stages:
            counts[st.device.type_name] = counts.get(st.device.type_name, 0) + 1
        cluster = make_cluster(list(counts.items()))

    from .core.validate import validate_plan

    report = validate_plan(plan, cluster)
    if report.issues:
        print(report.describe(), file=sys.stderr)
    if not report.ok:
        return 2

    if plan.model_name.startswith("tiny-"):
        # real execution on the thread-pipelined runtime
        from .models.transformer import TinyDecoderLM
        from .runtime.engine import PipelineRuntime, SupervisionConfig

        injector = None
        if args.fault_spec:
            try:
                injector = FaultInjector.from_spec(args.fault_spec, seed=args.fault_seed)
            except ValueError as e:
                return _fail(f"invalid --fault-spec: {e}")
        else:
            try:
                injector = FaultInjector.from_env()
            except ValueError as e:
                return _fail(f"invalid $REPRO_FAULTS: {e}")

        supervision = SupervisionConfig(enable_recovery=not args.no_recovery)
        ref = TinyDecoderLM(cfg, seed=args.seed)
        rng = np.random.default_rng(args.seed)
        prompts = rng.integers(
            0, cfg.vocab_size,
            size=(plan.workload.global_batch, plan.workload.prompt_len),
        )
        try:
            with PipelineRuntime(
                ref, plan, fault_injector=injector, supervision=supervision,
                dequant_cache_mb=args.dequant_cache_mb,
            ) as rt:
                tokens = rt.generate(prompts, plan.workload.gen_len)
        except RuntimeError as e:
            return _fail(f"serving failed: {e}", code=3)
        print(
            f"generated {tokens.size} tokens in {rt.stats.total_seconds:.3f}s "
            f"({tokens.size / rt.stats.total_seconds:.1f} tok/s wall)"
        )
        st = rt.stats
        print(
            f"hot path: prefill {st.prefill_tokens_per_s:.1f} tok/s, "
            f"decode {st.decode_tokens_per_s:.1f} tok/s; dequant cache "
            f"{st.dequant_cache_hits} hits / {st.dequant_cache_misses} misses "
            f"({st.dequant_cache_evictions} evictions, "
            f"{st.dequant_cache_sheds} sheds, "
            f"{st.dequant_build_seconds:.3f}s rebuilding, "
            f"budget {st.dequant_cache_budget_bytes / 2**20:.1f} MiB)"
        )
        if st.request_latencies:
            print(
                f"requests: latency p50 {st.latency_p50:.3f}s / "
                f"p95 {st.latency_p95:.3f}s / p99 {st.latency_p99:.3f}s; "
                f"ttft mean {st.ttft_mean:.3f}s (p95 {st.ttft_p95:.3f}s)"
            )
        if st.fused_iterations:
            print(
                f"fused decode: {st.fused_iterations} iterations, batch mean "
                f"{st.fused_batch_mean:.2f} / max {st.fused_batch_max}; "
                f"weight stream saved "
                f"{st.fused_weight_bytes_saved / 2**20:.1f} MiB"
            )
        if injector is not None or st.retries or st.replans or st.degrade_events:
            print(
                f"recovery: {st.retries} retries, {st.stage_restarts} stage "
                f"restarts, {st.degrade_events} degrades, {st.replans} replans, "
                f"{st.recovery_seconds:.3f}s recovering"
            )
        if rt.plan is not rt.original_plan:
            print("downgraded plan after device loss:", file=sys.stderr)
            print(rt.plan.describe(), file=sys.stderr)
        return 0

    outcome = evaluate_plan(plan, cluster)
    print(plan.describe())
    print(
        f"simulated: latency {outcome.latency:.2f}s, "
        f"throughput {outcome.throughput:.2f} tok/s, ppl {outcome.perplexity:.2f}"
    )
    return 0 if outcome.feasible else 1


def _sample_trace(args: argparse.Namespace, max_prompt: int, max_gen: int):
    """Draw the requested arrival process from ``workload.traces``.

    ``--trace-file`` replays a saved trace instead of sampling;
    ``--save-trace`` persists whatever was sampled for later replay.
    """
    from .workload.traces import (
        load_trace,
        sample_bursty_arrivals,
        sample_diurnal_arrivals,
        sample_pareto_arrivals,
        sample_poisson_arrivals,
        save_trace,
    )

    if getattr(args, "trace_file", None):
        try:
            return load_trace(args.trace_file)
        except (OSError, ValueError) as e:
            raise SystemExit(f"error: cannot load --trace-file: {e}") from e
    sampler = {
        "poisson": sample_poisson_arrivals,
        "bursty": sample_bursty_arrivals,
        "diurnal": sample_diurnal_arrivals,
        "pareto": sample_pareto_arrivals,
    }[args.trace]
    trace = sampler(
        args.rate, args.duration, seed=args.seed,
        max_prompt=max_prompt, max_gen=max_gen,
    )
    if getattr(args, "save_trace", None):
        save_trace(trace, args.save_trace)
    return trace


def _fleet_pool_labels(n: int, disaggregate: bool) -> list[str]:
    """Pool label per replica id: all-general, or alternating
    prefill/decode when the fleet is disaggregated."""
    from .fleet import POOL_DECODE, POOL_GENERAL, POOL_PREFILL

    if not disaggregate:
        return [POOL_GENERAL] * n
    return [POOL_PREFILL if i % 2 == 0 else POOL_DECODE for i in range(n)]


def _emit_fleet(report, json_path: str | None) -> int:
    """Print the fleet outcome; optionally persist the full report."""
    print(report.summary())
    for r in report.replica_results:
        print(
            f"  replica {r.replica_id} [{r.pool}]: {r.routed} routed, "
            f"{r.completed} completed, {r.rejected} rejected, "
            f"{r.gpu_seconds / 3600.0:.3f} GPU-h"
        )
    for e in report.scale_events:
        print(
            f"  t={e.at:.1f}s {e.pool}: {e.action} replica {e.replica_id} "
            f"(rho={e.utilization:.2f}, active={e.active_after})"
        )
    if json_path:
        with open(json_path, "w") as f:
            json.dump(report.to_json(), f, indent=2)
    return 0 if report.completed else 1


def serve_main(argv: list[str] | None = None) -> int:
    """``llmpq-serve``: replay an arrival trace against a strategy online."""
    p = argparse.ArgumentParser(
        prog="llmpq-serve", description="LLM-PQ online trace replay"
    )
    p.add_argument("--strat-file-name", "--strat_file_name", dest="strategy",
                   required=True, help="strategy JSON from llmpq-algo")
    p.add_argument("--cluster", type=int, default=None,
                   help="paper cluster id to serve on (defaults to plan devices)")
    p.add_argument("--rate", type=float, default=2.0,
                   help="Poisson arrival rate, requests/s")
    p.add_argument("--duration", type=float, default=30.0,
                   help="trace duration, seconds")
    p.add_argument("--trace", choices=["poisson", "bursty", "diurnal", "pareto"],
                   default="poisson",
                   help="arrival process: homogeneous Poisson, periodic "
                        "bursts, a sinusoidal diurnal cycle, or Pareto "
                        "heavy-tailed lengths")
    p.add_argument("--trace-file", default=None,
                   help="replay a saved arrival trace (JSON from "
                        "--save-trace) instead of sampling; --trace/--rate/"
                        "--duration/--seed are ignored")
    p.add_argument("--save-trace", default=None,
                   help="write the sampled trace to this JSON file for "
                        "exact replay via --trace-file")
    p.add_argument("--policy", choices=["continuous", "wave"],
                   default="continuous",
                   help="iteration-level continuous batching, or the "
                        "wave (offline-style gang) baseline")
    p.add_argument("--engine",
                   choices=["analytic", "des", "reference", "reference-des"],
                   default="analytic",
                   help="simulator backend: the vectorized event-batch "
                        "engine with analytic or DES iteration pricing, or "
                        "the scalar reference oracle it is checked against")
    p.add_argument("--cost-source", choices=["kernels", "model"],
                   default="kernels",
                   help="stage-time source for the simulator path: "
                        "ground-truth roofline kernels, or a latency model "
                        "fitted on the fly (ignored for tiny-* real runtime)")
    p.add_argument("--kv-bits", choices=["auto", "4", "8", "16"], default="auto",
                   help="override every stage's KV-cache bitwidth at serve "
                        "time ('auto' keeps the per-stage values from the "
                        "strategy file)")
    p.add_argument("--decode-batching", choices=["fused", "per-request"],
                   default="fused",
                   help="decode execution mode: fused ragged batching "
                        "(one GEMM per stage per iteration across all "
                        "in-flight requests; the default) or the "
                        "per-request batch-1 oracle path")
    p.add_argument("--seed", type=int, default=0,
                   help="single seed for every stochastic component: trace "
                        "samplers, request token generators, and the fault "
                        "injector")
    p.add_argument("--fault-spec", default=None,
                   help="deterministic fault injection spec for the real "
                        "runtime (tiny-* models), e.g. 'crash:stage=1,at=5'; "
                        "seeded from --seed")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="hard concurrency cap on top of the memory model")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="arrival-time multiplier for real-runtime replay "
                        "(0 = the whole trace arrives at once)")
    p.add_argument("--max-prompt", type=int, default=None,
                   help="clip sampled prompt lengths (default: the plan's s)")
    p.add_argument("--max-gen", type=int, default=None,
                   help="clip sampled generation lengths (default: the plan's n)")
    p.add_argument("--replan-on-drift", action="store_true",
                   help="watch the trace for workload drift and migrate the "
                        "running pipeline to a refitted plan at a token "
                        "boundary, without dropping traffic (continuous "
                        "policy only)")
    p.add_argument("--drift-window", type=float, default=10.0,
                   help="drift-detector observation window, virtual seconds")
    p.add_argument("--drift-threshold", type=float, default=0.5,
                   help="relative deviation from the baseline that counts "
                        "as drift")
    p.add_argument("--drift-hysteresis", type=int, default=2,
                   help="consecutive drifted windows before a re-solve fires")
    p.add_argument("--drift-cooldown", type=float, default=30.0,
                   help="minimum seconds between drift triggers")
    g = p.add_argument_group("fleet", "multi-replica serving")
    g.add_argument("--replicas", type=int, default=1,
                   help="serve through a fleet of this many identical "
                        "replicas of the strategy (1 = the classic "
                        "single-pipeline path)")
    g.add_argument("--router",
                   choices=["round-robin", "least-loaded", "ttft", "prefix"],
                   default="round-robin",
                   help="fleet request-routing policy")
    g.add_argument("--autoscale", action="store_true",
                   help="scale the replica pools up/down from windowed "
                        "utilization (starts with --autoscale-min-active "
                        "replicas active, the rest in idle reserve)")
    g.add_argument("--autoscale-window", type=float, default=10.0,
                   help="utilization window, virtual seconds")
    g.add_argument("--autoscale-high", type=float, default=0.85,
                   help="scale-up utilization threshold")
    g.add_argument("--autoscale-low", type=float, default=0.30,
                   help="scale-down utilization threshold")
    g.add_argument("--autoscale-hysteresis", type=int, default=2,
                   help="consecutive windows beyond a threshold before acting")
    g.add_argument("--autoscale-cooldown", type=float, default=60.0,
                   help="minimum seconds between scale actions per pool")
    g.add_argument("--autoscale-min-active", type=int, default=1,
                   help="replicas active at start and floor for scale-down")
    g.add_argument("--disaggregate", action="store_true",
                   help="split the replicas into prefill/decode pools "
                        "(even ids prefill, odd ids decode; needs "
                        "--replicas >= 2)")
    g.add_argument("--slo-ttft", type=float, default=None,
                   help="TTFT SLO in seconds: report fleet attainment")
    g.add_argument("--slo-tpot", type=float, default=None,
                   help="per-output-token SLO in seconds: report attainment")
    g.add_argument("--fleet-json", default=None,
                   help="write the fleet report (per-replica stats, scale "
                        "events) to this JSON file")
    args = p.parse_args(argv)

    if args.trace_file is None and (args.rate <= 0 or args.duration <= 0):
        return _fail("--rate and --duration must be positive")
    if args.replan_on_drift and args.policy != "continuous":
        return _fail("--replan-on-drift requires --policy continuous")
    if args.engine.startswith("reference") and args.policy != "continuous":
        return _fail("the reference engine requires --policy continuous")
    drift = None
    if args.replan_on_drift:
        from .runtime.replan import DriftConfig

        try:
            drift = DriftConfig(
                window=args.drift_window,
                threshold=args.drift_threshold,
                hysteresis=args.drift_hysteresis,
                cooldown=args.drift_cooldown,
            )
        except ValueError as e:
            return _fail(f"invalid drift settings: {e}")
    fleet_mode = args.replicas > 1 or args.autoscale
    if args.replicas < 1:
        return _fail("--replicas must be >= 1")
    if args.disaggregate and args.replicas < 2:
        return _fail("--disaggregate needs --replicas >= 2")
    if fleet_mode and args.policy != "continuous":
        return _fail("fleet serving requires --policy continuous")
    if args.autoscale and args.autoscale_min_active > args.replicas:
        return _fail("--autoscale-min-active cannot exceed --replicas")
    autoscale_cfg = None
    if args.autoscale:
        from .fleet import AutoscaleConfig

        try:
            autoscale_cfg = AutoscaleConfig(
                window=args.autoscale_window,
                high=args.autoscale_high,
                low=args.autoscale_low,
                hysteresis=args.autoscale_hysteresis,
                cooldown=args.autoscale_cooldown,
                min_active=args.autoscale_min_active,
            )
        except ValueError as e:
            return _fail(f"invalid autoscale settings: {e}")
    plan = _load_plan(args.strategy)
    if args.kv_bits != "auto":
        plan = plan.with_kv_bits(int(args.kv_bits))
        # the override supersedes the strategy's plan-global legacy knob
        plan.meta["kv_bits"] = int(args.kv_bits)
    cfg = get_model(plan.model_name)
    max_prompt = args.max_prompt or plan.workload.prompt_len
    max_gen = args.max_gen or plan.workload.gen_len

    if plan.model_name.startswith("tiny-"):
        # real execution: the continuous scheduler over the pipeline runtime
        from .models.transformer import TinyDecoderLM
        from .runtime.engine import PipelineRuntime
        from .runtime.scheduler import ContinuousScheduler, requests_from_arrivals

        arrivals = _sample_trace(args, max_prompt, max_gen)
        if not arrivals:
            return _fail("trace is empty — raise --rate or --duration")
        requests = requests_from_arrivals(arrivals, cfg.vocab_size, seed=args.seed)
        ref = TinyDecoderLM(cfg, seed=args.seed)
        replanner = None
        if drift is not None:
            from .runtime.replan import workload_refit_replanner

            replanner = workload_refit_replanner

        def make_injector(seed: int):
            if not args.fault_spec:
                return None
            from .runtime.faults import FaultInjector

            return FaultInjector.from_spec(args.fault_spec, seed=seed)

        try:
            make_injector(args.seed)
        except ValueError as e:
            return _fail(f"invalid --fault-spec: {e}")

        if fleet_mode:
            from .fleet import FleetAutoscaler, RuntimeReplica, serve_fleet_runtime

            pools = _fleet_pool_labels(args.replicas, args.disaggregate)
            reps = [
                RuntimeReplica(
                    i, ref, plan, pool=pools[i], policy=args.policy,
                    max_inflight=args.max_inflight,
                    time_scale=args.time_scale,
                    decode_batching=args.decode_batching,
                    drift=drift, replanner=replanner,
                    fault_injector=make_injector(args.seed + i),
                )
                for i in range(args.replicas)
            ]
            autoscaler = FleetAutoscaler(autoscale_cfg) if autoscale_cfg else None
            active = (
                list(range(args.autoscale_min_active)) if autoscale_cfg else None
            )
            try:
                freport = serve_fleet_runtime(
                    reps, requests, router=args.router, autoscaler=autoscaler,
                    active=active, slo_ttft=args.slo_ttft,
                    slo_tpot=args.slo_tpot,
                )
            except RuntimeError as e:
                return _fail(f"serving failed: {e}", code=3)
            return _emit_fleet(freport, args.fleet_json)

        try:
            with PipelineRuntime(
                ref, plan, fault_injector=make_injector(args.seed)
            ) as rt:
                sched = ContinuousScheduler(
                    rt, policy=args.policy,
                    max_inflight=args.max_inflight,
                    time_scale=args.time_scale,
                    decode_batching=args.decode_batching,
                    drift=drift, replanner=replanner,
                )
                report = sched.serve(requests)
        except RuntimeError as e:
            return _fail(f"serving failed: {e}", code=3)
        print(
            f"[{report.policy}] {len(report.completed)} completed, "
            f"{len(report.rejected)} rejected in {report.makespan:.2f}s | "
            f"{report.throughput_tokens_per_s:.1f} tok/s"
        )
        print(
            f"requests: latency p50 {report.latency_p50:.3f}s / "
            f"p95 {report.latency_p95:.3f}s / p99 {report.latency_p99:.3f}s; "
            f"ttft mean {report.ttft_mean:.3f}s (p95 {report.ttft_p95:.3f}s)"
        )
        st = rt.stats
        print(
            f"decode batching [{args.decode_batching}]: "
            f"{st.fused_iterations} fused iterations, batch mean "
            f"{st.fused_batch_mean:.2f} / max {st.fused_batch_max}; "
            f"weight stream saved {st.fused_weight_bytes_saved / 2**20:.1f} MiB"
        )
        if args.replan_on_drift or report.migrations or report.crash_recoveries:
            print(
                f"reconfig: {report.drift_triggers} drift triggers, "
                f"{report.migrations} migrations ({report.replans} replans), "
                f"{report.crash_recoveries} crash recoveries; quiesce "
                f"{report.quiesce_seconds:.3f}s, {report.replayed_tokens} "
                f"tokens replayed ({report.replay_divergences} divergences)"
            )
        return 0 if report.completed else 1

    # simulated execution for big models
    from .sim.online import simulate_online

    if args.cluster is not None:
        cluster = paper_cluster(args.cluster)
    else:
        counts: dict[str, int] = {}
        for st in plan.stages:
            counts[st.device.type_name] = counts.get(st.device.type_name, 0) + 1
        cluster = make_cluster(list(counts.items()))
    trace = _sample_trace(args, max_prompt, max_gen)
    if not trace:
        return _fail("trace is empty — raise --rate or --duration")
    latency_model = None
    if args.cost_source == "model":
        from .cost.profiler import build_latency_model

        latency_model = build_latency_model(
            sorted({d.type_name for d in cluster.devices}), cfg
        )
    replanner = None
    if drift is not None:
        from .runtime.replan import make_search_replanner

        replanner = make_search_replanner(cluster, latency_model=latency_model)

    if fleet_mode:
        from .fleet import FleetAutoscaler, SimReplica, serve_fleet

        pools = _fleet_pool_labels(args.replicas, args.disaggregate)
        reps = [
            SimReplica(
                i, plan, cluster, pool=pools[i],
                max_batch=args.max_inflight, engine=args.engine,
                source=args.cost_source, latency_model=latency_model,
                decode_batching=args.decode_batching,
                drift=drift, replanner=replanner,
            )
            for i in range(args.replicas)
        ]
        autoscaler = FleetAutoscaler(autoscale_cfg) if autoscale_cfg else None
        active = (
            list(range(args.autoscale_min_active)) if autoscale_cfg else None
        )
        freport = serve_fleet(
            reps, trace, router=args.router, autoscaler=autoscaler,
            active=active, slo_ttft=args.slo_ttft, slo_tpot=args.slo_tpot,
        )
        return _emit_fleet(freport, args.fleet_json)

    res = simulate_online(
        plan, cluster, trace,
        max_batch=args.max_inflight, policy=args.policy, engine=args.engine,
        source=args.cost_source, latency_model=latency_model,
        decode_batching=args.decode_batching,
        drift=drift, replanner=replanner,
    )
    print(res.summary())
    return 0 if res.completed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(algo_main())
