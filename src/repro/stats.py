"""Shared latency/percentile helpers.

Every layer that summarizes per-request samples (the analytic online
simulator, the vectorized trace engine, the real runtime's
:class:`~repro.runtime.engine.RuntimeStats`, and the scheduler's
:class:`~repro.runtime.scheduler.ServeReport`) previously carried its own
copy of the same three lines of ``np.percentile`` math, each with a
slightly different empty-sample convention.  This module is the single
home for that arithmetic.

Two conventions coexist on purpose and are preserved exactly:

* **Simulator results** (:class:`~repro.sim.online.OnlineResult`) read an
  empty sample as *unbounded* latency — ``inf`` — because "nothing was
  admitted" means the SLO is violated, not met for free.
* **Runtime reports** (``ServeReport``/``RuntimeStats``) read an empty
  sample as ``0.0`` — "no data yet" on a live counter dashboard.

Callers pick the convention through the ``empty`` keyword; both helpers
are NaN-safe (NaN samples are dropped before the percentile is taken,
and an all-NaN sample counts as empty).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["quantile", "percentile", "mean"]


def _as_clean_array(values: "np.ndarray | Iterable[float]") -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    # Only pay the filtering pass when NaNs are actually present so the
    # common clean path stays bit-identical to plain np.quantile.
    if arr.size and np.isnan(arr).any():
        arr = arr[~np.isnan(arr)]
    return arr


def quantile(
    values: "np.ndarray | Iterable[float]",
    q: float,
    *,
    empty: float = float("inf"),
) -> float:
    """Quantile of ``values`` with ``q`` in ``[0, 1]``.

    Empty (or all-NaN) samples return ``empty`` instead of tripping
    numpy's empty-slice warning and returning NaN.
    """
    arr = _as_clean_array(values)
    if arr.size == 0:
        return float(empty)
    return float(np.quantile(arr, q))


def percentile(
    values: "np.ndarray | Iterable[float]",
    q: float,
    *,
    empty: float = 0.0,
) -> float:
    """Percentile of ``values`` with ``q`` in ``[0, 100]``.

    Empty (or all-NaN) samples return ``empty``.
    """
    arr = _as_clean_array(values)
    if arr.size == 0:
        return float(empty)
    return float(np.percentile(arr, q))


def mean(
    values: "np.ndarray | Iterable[float]",
    *,
    empty: float = 0.0,
) -> float:
    """NaN/empty-safe arithmetic mean."""
    arr = _as_clean_array(values)
    if arr.size == 0:
        return float(empty)
    return float(arr.mean())
