"""Replica facade: one plan, one cost model, one serving state.

A :class:`PipelineReplica` is the unit the fleet layer schedules over.
It owns exactly one :class:`~repro.cost.stagecosts.StageCostModel` (the
single pricing authority for its plan) and hides which execution backend
sits behind it:

* :class:`SimReplica` — the analytic/trace-engine simulator: a
  :func:`~repro.sim.online.simulate_online` run over the replica's
  assigned sub-trace, byte-identical to calling the simulator directly;
* :class:`RuntimeReplica` — a real tiny-model pipeline: a
  :class:`~repro.runtime.scheduler.ContinuousScheduler` over a
  :class:`~repro.runtime.engine.PipelineRuntime`, with the scheduler's
  admission ledger, headroom view, drift detector, and migration
  controller all scoped to this replica.

Both expose the same *routing views* — approximate prefill/service-time
and KV token-budget estimates the router and autoscaler consult.  The
estimates are deliberately coarse (single-server queue arithmetic at a
reference batch); the replica's own admission control stays exact, so a
bad estimate costs queueing delay, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cost.stagecosts import StageCostModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.plan import ExecutionPlan
    from ..cost.latency import LatencyModel
    from ..hardware.cluster import Cluster
    from ..models.transformer import TinyDecoderLM
    from ..runtime.faults import FaultInjector
    from ..runtime.replan import DriftConfig, Replanner
    from ..runtime.scheduler import ServeReport, ServeRequest
    from ..sim.online import OnlineResult

__all__ = [
    "POOL_GENERAL",
    "POOL_PREFILL",
    "POOL_DECODE",
    "POOLS",
    "ReplicaResult",
    "PipelineReplica",
    "SimReplica",
    "RuntimeReplica",
]

#: pool labels for prefill/decode disaggregation: a ``prefill`` pool
#: serves prompt-dominated requests, a ``decode`` pool serves
#: generation-dominated ones, ``general`` serves anything
POOL_GENERAL = "general"
POOL_PREFILL = "prefill"
POOL_DECODE = "decode"
POOLS = (POOL_GENERAL, POOL_PREFILL, POOL_DECODE)

#: reference decode batch for the routing-time service-rate estimate
_REF_BATCH = 8


@dataclass(frozen=True)
class ReplicaResult:
    """One replica's outcome over its assigned share of the trace."""

    replica_id: int
    pool: str
    routed: int                 #: requests the router assigned here
    completed: int
    rejected: int
    generated_tokens: int
    makespan: float             #: absolute trace-clock seconds
    latencies: np.ndarray       #: per-request completion latencies (s)
    ttfts: np.ndarray           #: per-request time-to-first-token (s)
    tpots: np.ndarray           #: per-request mean time-per-output-token (s)
    online: "OnlineResult | None" = None   #: simulator replicas
    report: "ServeReport | None" = None    #: runtime replicas
    gpu_seconds: float = 0.0    #: device-seconds this replica was provisioned


class PipelineReplica:
    """One independently planned pipeline behind a uniform serving facade.

    Subclasses provide :meth:`serve`; the base class owns the plan, the
    pool label, the replica-scoped cost model, and the approximate
    routing views derived from it.
    """

    def __init__(
        self,
        replica_id: int,
        plan: "ExecutionPlan",
        cost: StageCostModel,
        *,
        pool: str = POOL_GENERAL,
    ) -> None:
        if pool not in POOLS:
            raise ValueError(f"unknown pool {pool!r} (expected one of {POOLS})")
        self.replica_id = int(replica_id)
        self.plan = plan
        self.pool = pool
        #: the replica's single pricing authority — admission headroom,
        #: per-request KV charges, and iteration times all come from here
        self.cost = cost
        #: quiesce-and-drain flag: a draining replica finishes what it
        #: holds but the router routes nothing new to it
        self.draining = False
        self._prefill_cache: dict[int, float] = {}
        self._tpot_ref: float | None = None

    # -- routing views (approximate by design) --------------------------
    @property
    def num_devices(self) -> int:
        """Devices this replica occupies while provisioned."""
        return self.plan.num_stages

    @property
    def headroom(self) -> np.ndarray:
        """Per-stage KV byte pool under the planner's memory model."""
        return self.cost.kv_headroom()

    @property
    def token_budget(self) -> int:
        """Approximate concurrent token capacity (linear-KV estimate)."""
        kvc = self.cost.request_kv_bytes_batch(np.ones(1, dtype=np.int64))[0]
        hb = self.headroom
        budget = None
        for j in range(kvc.size):
            if kvc[j] <= 0:
                continue
            tj = int(hb[j] // kvc[j])
            budget = tj if budget is None else min(budget, tj)
        return budget if budget is not None else 1 << 30

    def prefill_seconds(self, prompt_len: int) -> float:
        """Estimated batch-1 prefill latency for ``prompt_len`` tokens."""
        s = int(prompt_len)
        hit = self._prefill_cache.get(s)
        if hit is None:
            hit = float(self.cost.unit_prefill_times(s).sum())
            self._prefill_cache[s] = hit
        return hit

    def tpot_seconds(self) -> float:
        """Estimated per-request time-per-output-token at a reference
        batch, at the plan workload's typical context."""
        if self._tpot_ref is None:
            w = self.plan.workload
            ctx = float(w.prompt_len + w.gen_len / 2.0)
            row = self.cost.unit_decode_times(_REF_BATCH, ctx)
            self._tpot_ref = float(row.sum()) / _REF_BATCH
        return self._tpot_ref

    def service_seconds(self, prompt_len: int, gen_len: int) -> float:
        """Estimated end-to-end service time of one request (no queueing)."""
        return self.prefill_seconds(prompt_len) + gen_len * self.tpot_seconds()

    # -- serving --------------------------------------------------------
    def serve(self, work) -> ReplicaResult:  # pragma: no cover - interface
        raise NotImplementedError


def _tpots_from_samples(
    sink: dict, gen_lens: np.ndarray
) -> np.ndarray:
    """Join completion-order latency/ttft samples back to requests and
    derive per-request mean time-per-output-token."""
    lat_idx = sink.get("lat_idx")
    tt_idx = sink.get("tt_idx")
    if lat_idx is None or tt_idx is None or lat_idx.size == 0:
        return np.empty(0)
    n = int(gen_lens.size)
    lat_by = np.full(n, np.nan)
    tt_by = np.full(n, np.nan)
    lat_by[lat_idx] = sink["latencies"]
    tt_by[tt_idx] = sink["ttfts"]
    done = ~np.isnan(lat_by) & ~np.isnan(tt_by)
    decode_tokens = np.maximum(gen_lens[done] - 1, 1)
    return (lat_by[done] - tt_by[done]) / decode_tokens


class SimReplica(PipelineReplica):
    """Analytic / trace-engine simulator replica.

    ``serve`` runs the continuous policy through
    :func:`~repro.sim.online.simulate_online` with this replica's own
    cost model — for a single replica receiving the whole trace this is
    byte-identical to calling the simulator directly, which is the
    1-replica fleet equivalence guarantee.
    """

    def __init__(
        self,
        replica_id: int,
        plan: "ExecutionPlan",
        cluster: "Cluster",
        *,
        pool: str = POOL_GENERAL,
        max_batch: int | None = None,
        engine: str = "analytic",
        source: str = "kernels",
        latency_model: "LatencyModel | None" = None,
        decode_batching: str | None = None,
        drift: "DriftConfig | None" = None,
        replanner: "Replanner | None" = None,
        force_general: bool = False,
    ) -> None:
        cost = StageCostModel(
            plan, cluster, source=source, latency_model=latency_model,
            decode_batching=decode_batching or "fused",
        )
        super().__init__(replica_id, plan, cost, pool=pool)
        self.cluster = cluster
        self.max_batch = max_batch
        self.engine = engine
        self.source = source
        self.latency_model = latency_model
        self.drift = drift
        self.replanner = replanner
        self.force_general = force_general

    def serve(self, trace) -> ReplicaResult:
        from ..sim.online import simulate_online
        from ..sim.trace_engine import trace_columns

        sink: dict = {}
        res = simulate_online(
            self.plan, self.cluster, trace,
            max_batch=self.max_batch, policy="continuous",
            engine=self.engine, source=self.source,
            latency_model=self.latency_model, cost_model=self.cost,
            drift=self.drift, replanner=self.replanner,
            force_general=self.force_general, sample_sink=sink,
        )
        _, _, sgen = trace_columns(trace)
        makespan = res.makespan if np.isfinite(res.makespan) else 0.0
        lat_idx = sink.get("lat_idx")
        tokens = (
            int(sgen[lat_idx].sum())
            if lat_idx is not None and lat_idx.size
            else 0
        )
        return ReplicaResult(
            replica_id=self.replica_id,
            pool=self.pool,
            routed=len(trace),
            completed=res.completed,
            rejected=res.rejected,
            generated_tokens=tokens,
            makespan=makespan,
            latencies=sink["latencies"],
            ttfts=sink["ttfts"],
            tpots=_tpots_from_samples(sink, sgen),
            online=res,
        )


class RuntimeReplica(PipelineReplica):
    """Real tiny-model replica: scheduler + pipeline runtime, replica-scoped.

    Each ``serve`` call brings up a fresh
    :class:`~repro.runtime.engine.PipelineRuntime` for this replica's
    plan and drives it with a
    :class:`~repro.runtime.scheduler.ContinuousScheduler`, so the
    admission ledger, the dequant-aware headroom view, the drift
    detector, and the migration controller all live inside the replica —
    several replicas are safely constructible (and servable) in one
    process.  The shared reference model is read-only.
    """

    def __init__(
        self,
        replica_id: int,
        reference: "TinyDecoderLM",
        plan: "ExecutionPlan",
        *,
        pool: str = POOL_GENERAL,
        policy: str = "continuous",
        max_inflight: int | None = None,
        time_scale: float = 1.0,
        decode_batching: str = "fused",
        drift: "DriftConfig | None" = None,
        replanner: "Replanner | None" = None,
        fault_injector: "FaultInjector | None" = None,
        dequant_cache_mb: float | None = None,
    ) -> None:
        from ..hardware.cluster import make_cluster

        # Routing views need link/kernel pricing, which the scheduler's
        # cfg-scoped model cannot provide — derive a cluster from the
        # plan's own devices, exactly like the CLI does for strategy
        # files.  Estimates only; the scheduler's admission stays exact.
        counts: dict[str, int] = {}
        for st in plan.stages:
            counts[st.device.type_name] = counts.get(st.device.type_name, 0) + 1
        cost = StageCostModel(plan, make_cluster(list(counts.items())))
        super().__init__(replica_id, plan, cost, pool=pool)
        self.reference = reference
        self.policy = policy
        self.max_inflight = max_inflight
        self.time_scale = time_scale
        self.decode_batching = decode_batching
        self.drift = drift
        self.replanner = replanner
        self.fault_injector = fault_injector
        self.dequant_cache_mb = dequant_cache_mb
        #: the last serve's scheduler — exposes this replica's ledger,
        #: headroom, detector, and migration controller
        self.scheduler = None
        self.runtime_stats = None

    # facade views over the replica-scoped serving internals -----------
    @property
    def ledger(self):
        """This replica's admission ledger (after a serve)."""
        return None if self.scheduler is None else self.scheduler.ledger

    @property
    def detector(self):
        """This replica's drift detector (when drift is enabled)."""
        return None if self.scheduler is None else self.scheduler.detector

    @property
    def controller(self):
        """This replica's migration controller (after a serve)."""
        return None if self.scheduler is None else self.scheduler.controller

    def serve(self, requests: "Sequence[ServeRequest]") -> ReplicaResult:
        from ..runtime.engine import PipelineRuntime
        from ..runtime.scheduler import ContinuousScheduler

        with PipelineRuntime(
            self.reference, self.plan,
            fault_injector=self.fault_injector,
            dequant_cache_mb=self.dequant_cache_mb,
        ) as rt:
            sched = ContinuousScheduler(
                rt, policy=self.policy,
                max_inflight=self.max_inflight,
                time_scale=self.time_scale,
                decode_batching=self.decode_batching,
                drift=self.drift, replanner=self.replanner,
            )
            report = sched.serve(list(requests))
            self.scheduler = sched
            self.runtime_stats = rt.stats
        completed = report.completed
        lat = np.array([r.latency for r in completed])
        tt = np.array([r.ttft for r in completed])
        decode_tokens = np.array(
            [max(r.gen_len - 1, 1) for r in completed], dtype=np.float64
        )
        tpots = (lat - tt) / decode_tokens if lat.size else np.empty(0)
        return ReplicaResult(
            replica_id=self.replica_id,
            pool=self.pool,
            routed=len(requests),
            completed=len(completed),
            rejected=len(report.rejected),
            generated_tokens=report.generated_tokens,
            makespan=report.makespan,
            latencies=lat,
            ttfts=tt,
            tpots=tpots,
            report=report,
        )
