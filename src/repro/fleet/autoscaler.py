"""Coordinated per-pool autoscaling from windowed load signals.

The :class:`FleetAutoscaler` watches each replica pool (``prefill`` /
``decode`` / ``general``) through tumbling windows of the routed
traffic, exactly the way the drift detector watches a single pipeline —
each pool embeds a :class:`~repro.runtime.replan.DriftDetector` whose
windowed arrival statistics double as the workload estimate used to
plan freshly scaled-up replicas.

The scaling signal is *offered load*: the sum of routed requests'
estimated service seconds over a window, divided by the window times the
number of active replicas — an M/M/N-style utilization ``rho``.  When
``rho`` stays above ``high`` for ``hysteresis`` consecutive windows (and
the cooldown has elapsed) the pool scales up: reuse a previously drained
slot, activate an idle pre-planned slot, or — when a ``replica_factory``
is given — plan a brand-new replica on idle hardware via the planner's
search engine.  When ``rho`` stays below ``low`` the pool scales down by
quiesce-and-drain: the highest-id active replica stops receiving new
requests and finishes what it holds, the same discipline the migration
path uses to pause a single pipeline.

Everything runs on the virtual trace clock inside the fleet's single
routing pass, so decisions are deterministic and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..runtime.replan import DriftConfig, DriftDetector

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..runtime.replan import DriftEstimate
    from .replica import PipelineReplica

__all__ = ["AutoscaleConfig", "ScaleEvent", "FleetAutoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Per-pool scaling thresholds (virtual-clock seconds)."""

    window: float = 10.0       #: tumbling utilization window
    high: float = 0.85         #: rho above this counts toward scale-up
    low: float = 0.30          #: rho below this counts toward scale-down
    hysteresis: int = 2        #: consecutive windows before acting
    cooldown: float = 60.0     #: min seconds between scale actions per pool
    min_active: int = 1        #: never drain a pool below this
    provision_seconds: float = 0.0  #: delay before a scaled-up replica serves

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.low < self.high:
            raise ValueError("need 0 < low < high")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_active < 0:
            raise ValueError("min_active must be >= 0")
        if self.provision_seconds < 0:
            raise ValueError("provision_seconds must be >= 0")


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling action, logged for the fleet report."""

    at: float            #: virtual time of the decision
    pool: str
    action: str          #: ``"scale-up"`` or ``"scale-down"``
    replica_id: int
    active_after: int    #: pool's active replica count after the action
    utilization: float   #: the rho that drove the decision
    reason: str


class _PoolState:
    """One pool's windowed accounting and active set."""

    def __init__(
        self,
        name: str,
        replicas: "list[PipelineReplica]",
        active: "list[PipelineReplica]",
        config: AutoscaleConfig,
    ) -> None:
        self.name = name
        self.slots = list(replicas)          # id order, grows via factory
        self.active = list(active)           # id order
        act = {r.replica_id for r in active}
        self.idle = [r for r in self.slots if r.replica_id not in act]
        self.drained: "list[PipelineReplica]" = []
        self.demand = 0.0                    # service-seconds this window
        self.win_end = config.window
        self.streak_high = 0
        self.streak_low = 0
        self.last_scale = -float("inf")
        # DriftDetector reuse: its windowed arrival statistics feed the
        # workload estimate handed to the planner on factory scale-ups
        self.detector = DriftDetector(DriftConfig(
            window=config.window,
            threshold=float("inf"),  # never fires; estimates only
            hysteresis=config.hysteresis,
            cooldown=config.cooldown,
            min_requests=1,
        ))
        #: activation spans per replica id: [(start, end-or-None), ...]
        self.spans: dict[int, list[list[float]]] = {
            r.replica_id: [[0.0, None]] for r in active
        }


class FleetAutoscaler:
    """Scales each replica pool independently from its routed traffic."""

    def __init__(
        self,
        config: AutoscaleConfig | None = None,
        *,
        replica_factory: "Callable[[str, DriftEstimate], PipelineReplica | None] | None" = None,
    ) -> None:
        self.config = config or AutoscaleConfig()
        self.replica_factory = replica_factory
        self.events: list[ScaleEvent] = []
        self._pools: dict[str, _PoolState] = {}
        self._pending: list[tuple[float, _PoolState, "PipelineReplica"]] = []

    # -- wiring ---------------------------------------------------------
    def bind(
        self,
        pools: "dict[str, list[PipelineReplica]]",
        active: "dict[str, list[PipelineReplica]]",
    ) -> None:
        """Attach the fleet's pools (all slots) and their active subsets."""
        self._pools = {
            name: _PoolState(name, reps, active.get(name, reps), self.config)
            for name, reps in pools.items()
        }

    def active(self, pool: str) -> "list[PipelineReplica]":
        """Currently routable replicas of ``pool`` (id order)."""
        st = self._pools[pool]
        return [r for r in st.active if not r.draining]

    def pool_of(self, name: str) -> "list[PipelineReplica]":
        return self._pools[name].slots

    def all_replicas(self) -> "list[PipelineReplica]":
        """Every slot across pools, including factory-built ones (id order)."""
        out = [r for st in self._pools.values() for r in st.slots]
        return sorted(out, key=lambda r: r.replica_id)

    # -- signals --------------------------------------------------------
    def observe(
        self,
        t: float,
        pool: str,
        prompt_len: int,
        gen_len: int,
        service_seconds: float,
    ) -> None:
        """Account one routed request against its pool's open window."""
        st = self._pools[pool]
        st.demand += service_seconds
        st.detector.observe_arrival(t, prompt_len, gen_len)

    # -- decisions ------------------------------------------------------
    def advance(self, now: float) -> list[ScaleEvent]:
        """Close every window ending before ``now``; apply scale actions."""
        fired: list[ScaleEvent] = []
        if self._pending:
            still = []
            for avail_at, st, rep in self._pending:
                if now >= avail_at:
                    self._activate(st, rep, avail_at)
                else:
                    still.append((avail_at, st, rep))
            self._pending = still
        for st in self._pools.values():
            while now >= st.win_end:
                end = st.win_end
                fired.extend(self._close_window(st, end))
                st.win_end = end + self.config.window
        if fired:
            self.events.extend(fired)
        return fired

    def _close_window(self, st: _PoolState, end: float) -> list[ScaleEvent]:
        cfg = self.config
        n_active = len([r for r in st.active if not r.draining])
        if n_active > 0:
            rho = st.demand / (cfg.window * n_active)
        else:
            rho = float("inf") if st.demand > 0 else 0.0
        st.demand = 0.0
        st.detector.poll(end)  # close its windows; estimates stay fresh

        if rho > cfg.high:
            st.streak_high += 1
            st.streak_low = 0
        elif rho < cfg.low:
            st.streak_low += 1
            st.streak_high = 0
        else:
            st.streak_high = st.streak_low = 0

        out: list[ScaleEvent] = []
        cool = end - st.last_scale >= cfg.cooldown
        if st.streak_high >= cfg.hysteresis and cool:
            rep = self._acquire(st, end)
            if rep is not None:
                st.streak_high = 0
                st.last_scale = end
                avail = end + cfg.provision_seconds
                if cfg.provision_seconds > 0:
                    self._pending.append((avail, st, rep))
                else:
                    self._activate(st, rep, end)
                out.append(ScaleEvent(
                    at=end, pool=st.name, action="scale-up",
                    replica_id=rep.replica_id,
                    active_after=len(st.active) + len(
                        [1 for _, s, _ in self._pending if s is st]
                    ),
                    utilization=rho,
                    reason=f"rho>{cfg.high:g} x{cfg.hysteresis}",
                ))
        elif (
            st.streak_low >= cfg.hysteresis
            and cool
            and len([r for r in st.active if not r.draining]) > cfg.min_active
        ):
            rep = max(
                (r for r in st.active if not r.draining),
                key=lambda r: r.replica_id,
            )
            rep.draining = True
            st.active = [r for r in st.active if r is not rep]
            st.drained.append(rep)
            spans = st.spans.setdefault(rep.replica_id, [[end, None]])
            if spans and spans[-1][1] is None:
                spans[-1][1] = end
            st.streak_low = 0
            st.last_scale = end
            out.append(ScaleEvent(
                at=end, pool=st.name, action="scale-down",
                replica_id=rep.replica_id,
                active_after=len(st.active),
                utilization=rho,
                reason=f"rho<{cfg.low:g} x{cfg.hysteresis}",
            ))
        return out

    def _acquire(
        self, st: _PoolState, end: float
    ) -> "PipelineReplica | None":
        """Find capacity to scale up: reuse a drained slot, wake an idle
        pre-planned slot, or plan a new replica on idle hardware."""
        if st.drained:
            rep = st.drained.pop(0)
            rep.draining = False
            return rep
        if st.idle:
            return st.idle.pop(0)
        if self.replica_factory is not None:
            est = st.detector.estimate(end, reason=f"autoscale:{st.name}")
            rep = self.replica_factory(st.name, est)
            if rep is not None:
                st.slots.append(rep)
                return rep
        return None

    def _activate(
        self, st: _PoolState, rep: "PipelineReplica", at: float
    ) -> None:
        rep.draining = False
        st.active.append(rep)
        st.active.sort(key=lambda r: r.replica_id)
        st.spans.setdefault(rep.replica_id, []).append([at, None])

    # -- accounting -----------------------------------------------------
    def activation_spans(self) -> dict[int, list[list[float]]]:
        """Replica id -> [[start, end-or-None], ...] across all pools."""
        out: dict[int, list[list[float]]] = {}
        for st in self._pools.values():
            for rid, spans in st.spans.items():
                out[rid] = spans
        return out
