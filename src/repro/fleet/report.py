"""Fleet-level aggregation: SLO attainment vs. provisioned cost.

Pools the exact per-request latency/TTFT/TPOT samples from every
replica (no percentile-of-percentiles approximations) and prices the
fleet in GPU-seconds from the autoscaler's activation spans, so the
headline trade-off — p99 TTFT/TPOT SLO attainment against provisioned
cost — is computed from first-class data.

SLO attainment is honest: a request that was rejected (or never served
because its pool was empty) counts as a violation, not a free pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .. import stats

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .autoscaler import ScaleEvent
    from .replica import ReplicaResult

__all__ = ["FleetReport"]


def _pool(parts: "list[np.ndarray]") -> np.ndarray:
    parts = [p for p in parts if p.size]
    if not parts:
        return np.empty(0)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet trace replay."""

    router: str
    autoscaled: bool
    n_requests: int
    completed: int
    rejected: int               #: router rejections + replica rejections
    makespan: float             #: first arrival epoch -> last completion
    generated_tokens: int
    gpu_seconds: float          #: sum over replicas of provisioned time x devices
    replica_results: tuple["ReplicaResult", ...]
    scale_events: tuple["ScaleEvent", ...] = ()
    slo_ttft: float | None = None   #: TTFT SLO threshold (seconds)
    slo_tpot: float | None = None   #: per-output-token SLO threshold (seconds)
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    ttfts: np.ndarray = field(default_factory=lambda: np.empty(0))
    tpots: np.ndarray = field(default_factory=lambda: np.empty(0))

    @classmethod
    def build(
        cls,
        results: "list[ReplicaResult]",
        *,
        router: str,
        autoscaled: bool,
        n_requests: int,
        router_rejected: int,
        scale_events: tuple = (),
        gpu_seconds: float = 0.0,
        slo_ttft: float | None = None,
        slo_tpot: float | None = None,
    ) -> "FleetReport":
        lat = _pool([r.latencies for r in results])
        tt = _pool([r.ttfts for r in results])
        tp = _pool([r.tpots for r in results])
        completed = sum(r.completed for r in results)
        rejected = router_rejected + sum(r.rejected for r in results)
        makespan = max((r.makespan for r in results), default=0.0)
        return cls(
            router=router,
            autoscaled=autoscaled,
            n_requests=n_requests,
            completed=completed,
            rejected=rejected,
            makespan=makespan,
            generated_tokens=sum(r.generated_tokens for r in results),
            gpu_seconds=gpu_seconds,
            replica_results=tuple(results),
            scale_events=tuple(scale_events),
            slo_ttft=slo_ttft,
            slo_tpot=slo_tpot,
            latencies=lat,
            ttfts=tt,
            tpots=tp,
        )

    # -- pooled tail statistics ----------------------------------------
    @property
    def throughput(self) -> float:
        """Generated tokens per second of fleet makespan."""
        return self.generated_tokens / self.makespan if self.makespan else 0.0

    @property
    def latency_p50(self) -> float:
        return stats.quantile(self.latencies, 0.50)

    @property
    def latency_p95(self) -> float:
        return stats.quantile(self.latencies, 0.95)

    @property
    def latency_p99(self) -> float:
        return stats.quantile(self.latencies, 0.99)

    @property
    def ttft_mean(self) -> float:
        return stats.mean(self.ttfts, empty=float("inf"))

    @property
    def ttft_p99(self) -> float:
        return stats.quantile(self.ttfts, 0.99)

    @property
    def tpot_p99(self) -> float:
        return stats.quantile(self.tpots, 0.99)

    def _attainment(self, samples: np.ndarray, slo: float | None) -> float | None:
        """Fraction of *all* requests meeting ``slo`` (unserved = miss)."""
        if slo is None or self.n_requests == 0:
            return None
        return float((samples <= slo).sum()) / self.n_requests

    @property
    def ttft_attainment(self) -> float | None:
        return self._attainment(self.ttfts, self.slo_ttft)

    @property
    def tpot_attainment(self) -> float | None:
        return self._attainment(self.tpots, self.slo_tpot)

    @property
    def gpu_hours(self) -> float:
        return self.gpu_seconds / 3600.0

    def summary(self) -> str:
        """One-line human-readable fleet outcome."""
        n_replicas = len(self.replica_results)
        head = (
            f"[fleet x{n_replicas} router={self.router}] "
            f"{self.completed}/{self.n_requests} completed in "
            f"{self.makespan:.1f}s | {self.throughput:.1f} tok/s | "
            f"p99 latency {self.latency_p99:.2f}s, p99 ttft "
            f"{self.ttft_p99:.2f}s | {self.gpu_seconds / 3600.0:.2f} GPU-h"
        )
        if self.rejected:
            head += f" | {self.rejected} rejected"
        att = self.ttft_attainment
        if att is not None:
            head += f" | ttft SLO {att * 100.0:.1f}%"
        att = self.tpot_attainment
        if att is not None:
            head += f" | tpot SLO {att * 100.0:.1f}%"
        if self.autoscaled:
            ups = sum(1 for e in self.scale_events if e.action == "scale-up")
            downs = len(self.scale_events) - ups
            head += f" | {ups} scale-ups, {downs} scale-downs"
        return head

    def to_json(self) -> dict:
        """JSON-serializable dict (benchmark results artifacts)."""
        per_pool: dict[str, dict] = {}
        for e in self.scale_events:
            per_pool.setdefault(e.pool, {"scale_events": []})
            per_pool[e.pool]["scale_events"].append({
                "at": e.at, "action": e.action,
                "replica_id": e.replica_id,
                "active_after": e.active_after,
                "utilization": e.utilization
                if np.isfinite(e.utilization) else None,
                "reason": e.reason,
            })
        return {
            "router": self.router,
            "autoscaled": self.autoscaled,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "makespan": self.makespan,
            "generated_tokens": self.generated_tokens,
            "throughput": self.throughput,
            "gpu_hours": self.gpu_hours,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "ttft_p99": self.ttft_p99,
            "tpot_p99": self.tpot_p99,
            "slo_ttft": self.slo_ttft,
            "slo_tpot": self.slo_tpot,
            "ttft_attainment": self.ttft_attainment,
            "tpot_attainment": self.tpot_attainment,
            "pools": per_pool,
            "replicas": [
                {
                    "replica_id": r.replica_id,
                    "pool": r.pool,
                    "routed": r.routed,
                    "completed": r.completed,
                    "rejected": r.rejected,
                    "generated_tokens": r.generated_tokens,
                    "makespan": r.makespan,
                    "gpu_seconds": r.gpu_seconds,
                }
                for r in self.replica_results
            ],
        }
