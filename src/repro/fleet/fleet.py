"""Fleet orchestration: one routing pass, N independent replica serves.

``serve_fleet`` (simulator replicas) and ``serve_fleet_runtime`` (real
tiny-model replicas) share the same deterministic three-phase shape:

1. **Route** — a single forward pass over the arrival-sorted trace.
   Each request is classified to a pool (prompt-dominated requests to a
   ``prefill`` pool, generation-dominated to ``decode``, when those
   pools exist), the autoscaler closes any utilization windows the
   clock crossed (possibly activating or draining replicas), and the
   router picks a target among the pool's active replicas from the
   approximate load estimates.  Requests that find no active replica
   are rejected — the SLO report counts them as violations.
2. **Serve** — each replica independently serves its assigned
   sub-trace through its own backend (vectorized trace engine or real
   scheduler+runtime).  Arrival times are absolute, so every replica
   shares the fleet's virtual clock; admission control, drift
   detection, and migration run replica-scoped exactly as they do for
   a single pipeline today.
3. **Aggregate** — exact per-request samples pool into a
   :class:`~repro.fleet.report.FleetReport` (tail latencies, SLO
   attainment, GPU-seconds from activation spans, scale events).

A 1-replica fleet degenerates to phase 2 alone on the full trace —
byte-identical to calling the simulator / scheduler directly.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .autoscaler import FleetAutoscaler
from .replica import (
    POOL_DECODE,
    POOL_GENERAL,
    POOL_PREFILL,
    PipelineReplica,
    ReplicaResult,
    RuntimeReplica,
    SimReplica,
)
from .report import FleetReport
from .router import _HASH_MUL, ReplicaLoad, Router

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..runtime.scheduler import ServeRequest

__all__ = ["serve_fleet", "serve_fleet_runtime", "plan_sim_replica"]


def _check_fleet(replicas: "Sequence[PipelineReplica]") -> "list[PipelineReplica]":
    if not replicas:
        raise ValueError("fleet has no replicas")
    reps = sorted(replicas, key=lambda r: r.replica_id)
    ids = [r.replica_id for r in reps]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate replica ids: {ids}")
    return reps


def _pool_map(
    reps: "list[PipelineReplica]",
) -> "dict[str, list[PipelineReplica]]":
    pools: dict[str, list[PipelineReplica]] = {}
    for r in reps:
        pools.setdefault(r.pool, []).append(r)
    return pools


def _classify(pools: "dict[str, list]", s: int, g: int) -> str:
    """Pool for one request: prefill-heavy vs decode-heavy when the
    fleet is disaggregated, the general pool otherwise."""
    if POOL_PREFILL in pools or POOL_DECODE in pools:
        phase = POOL_PREFILL if s >= g else POOL_DECODE
        if phase in pools:
            return phase
    return POOL_GENERAL


def _route(
    arr: np.ndarray,
    spr: np.ndarray,
    sgen: np.ndarray,
    reps: "list[PipelineReplica]",
    router: Router,
    autoscaler: "FleetAutoscaler | None",
    prefix_keys: "np.ndarray | None" = None,
) -> tuple[np.ndarray, int]:
    """Assign each sorted-trace row to a replica id (-1 = rejected)."""
    n = arr.size
    pools = _pool_map(reps)
    assign = np.full(n, -1, dtype=np.int64)

    if autoscaler is None and len(reps) == 1:
        # degenerate fleet: everything to the lone replica (unless draining)
        if not reps[0].draining:
            assign[:] = reps[0].replica_id
        return assign, int((assign < 0).sum())

    if autoscaler is None and router.policy in ("round-robin", "prefix"):
        # stateless policies over a static fleet: vectorized fast path
        for name, members in pools.items():
            live = [r for r in members if not r.draining]
            if name == POOL_GENERAL:
                mask = np.ones(n, dtype=bool)
                for other in (POOL_PREFILL, POOL_DECODE):
                    if other in pools:
                        sel = spr >= sgen if other == POOL_PREFILL else spr < sgen
                        mask &= ~sel
            else:
                # phase pools absorb their phase; general takes the rest
                mask = spr >= sgen if name == POOL_PREFILL else spr < sgen
            if not live:
                continue  # rows stay rejected (-1)
            ids = np.array([r.replica_id for r in live], dtype=np.int64)
            idx = np.flatnonzero(mask)
            if router.policy == "round-robin":
                assign[idx] = ids[np.arange(idx.size) % ids.size]
            else:
                keys = (
                    prefix_keys[idx]
                    if prefix_keys is not None
                    else spr[idx].astype(np.int64)
                )
                assign[idx] = ids[((keys * _HASH_MUL) & 0xFFFFFFFF) % ids.size]
        return assign, int((assign < 0).sum())

    loads = {r.replica_id: ReplicaLoad(r) for r in reps}
    arr_l = arr.tolist()
    spr_l = spr.tolist()
    sgen_l = sgen.tolist()
    for k in range(n):
        t, s, g = arr_l[k], spr_l[k], sgen_l[k]
        if autoscaler is not None:
            autoscaler.advance(t)
        name = _classify(pools, s, g)
        if name not in pools:
            continue  # no pool can take this phase: rejected
        if autoscaler is not None:
            live = autoscaler.active(name)
        else:
            live = [r for r in pools[name] if not r.draining]
        cands = [
            loads.setdefault(r.replica_id, ReplicaLoad(r)) for r in live
        ]  # setdefault: factory-built replicas join the load map lazily
        key = int(prefix_keys[k]) if prefix_keys is not None else None
        choice = router.pick(cands, t, s, g, prefix_key=key)
        if choice is None:
            continue
        svc = choice.assign(t, s, g)
        assign[k] = choice.replica.replica_id
        if autoscaler is not None:
            autoscaler.observe(t, name, s, g, svc)
    return assign, int((assign < 0).sum())


def _gpu_seconds(
    reps: "list[PipelineReplica]",
    results: "dict[int, ReplicaResult]",
    autoscaler: "FleetAutoscaler | None",
    fleet_end: float,
) -> tuple[float, "dict[int, float]"]:
    """Provisioned device-seconds per replica from activation spans.

    Without an autoscaler every replica is provisioned for the whole
    run.  With one, each span runs from activation to drain — the last
    span extends to the replica's own makespan when it finished work
    after its drain began (quiesce-and-drain is not free)."""
    spans_by = autoscaler.activation_spans() if autoscaler is not None else {}
    total = 0.0
    per: dict[int, float] = {}
    for r in reps:
        res = results.get(r.replica_id)
        tail = res.makespan if res is not None else 0.0
        spans = spans_by.get(r.replica_id)
        if spans is None:
            if autoscaler is not None:
                per[r.replica_id] = 0.0  # never activated: idle hardware
                continue
            spans = [[0.0, None]]
        secs = 0.0
        for i, (start, end) in enumerate(spans):
            eff = fleet_end if end is None else end
            if i == len(spans) - 1 and tail > eff:
                eff = tail  # drained replica still finishing its backlog
            secs += max(0.0, eff - start)
        g = secs * r.num_devices
        per[r.replica_id] = g
        total += g
    return total, per


def _bind_autoscaler(
    autoscaler: FleetAutoscaler,
    reps: "list[PipelineReplica]",
    active: "Sequence[int] | None",
) -> None:
    """Attach pools to the autoscaler; ``active`` ids start routable
    (default all), the rest form the idle scale-up reserve."""
    pools = _pool_map(reps)
    if active is None:
        act = {name: list(m) for name, m in pools.items()}
    else:
        chosen = set(active)
        act = {
            name: [r for r in m if r.replica_id in chosen]
            for name, m in pools.items()
        }
    autoscaler.bind(pools, act)


def _empty_result(r: "PipelineReplica") -> ReplicaResult:
    return ReplicaResult(
        replica_id=r.replica_id, pool=r.pool, routed=0, completed=0,
        rejected=0, generated_tokens=0, makespan=0.0,
        latencies=np.empty(0), ttfts=np.empty(0), tpots=np.empty(0),
    )


def serve_fleet(
    replicas: "Sequence[SimReplica]",
    trace,
    *,
    router: "str | Router" = "round-robin",
    autoscaler: "FleetAutoscaler | None" = None,
    active: "Sequence[int] | None" = None,
    slo_ttft: float | None = None,
    slo_tpot: float | None = None,
) -> FleetReport:
    """Serve an arrival trace across simulator replicas.

    ``active`` names the replica ids that start active (default: all);
    the rest are the autoscaler's idle reserve.  With one replica and no
    autoscaler the result is byte-identical to
    :func:`~repro.sim.online.simulate_online` on the full trace.
    """
    from ..sim.trace_engine import trace_columns
    from ..workload.traces import ArrivalTrace

    reps = _check_fleet(replicas)
    rt = router if isinstance(router, Router) else Router(router)
    arr, spr, sgen = trace_columns(trace)
    if arr.size == 0:
        raise ValueError("empty trace")

    if autoscaler is not None:
        _bind_autoscaler(autoscaler, reps, active)

    assign, router_rejected = _route(
        arr, spr, sgen, reps, rt, autoscaler
    )
    if autoscaler is not None:
        reps = autoscaler.all_replicas()  # factory scale-ups join the fleet

    results: dict[int, ReplicaResult] = {}
    out: list[ReplicaResult] = []
    for r in reps:
        mask = assign == r.replica_id
        if not mask.any():
            res = _empty_result(r)
        else:
            sub = ArrivalTrace(
                arrivals=arr[mask], prompt_lens=spr[mask], gen_lens=sgen[mask]
            )
            res = r.serve(sub)
        results[r.replica_id] = res
        out.append(res)

    fleet_end = max(
        [res.makespan for res in out if res.makespan] + [float(arr[-1])]
    )
    gpu_total, gpu_per = _gpu_seconds(reps, results, autoscaler, fleet_end)
    out = [
        dataclasses.replace(res, gpu_seconds=gpu_per.get(res.replica_id, 0.0))
        for res in out
    ]
    return FleetReport.build(
        out,
        router=rt.policy,
        autoscaled=autoscaler is not None,
        n_requests=int(arr.size),
        router_rejected=router_rejected,
        scale_events=tuple(autoscaler.events) if autoscaler is not None else (),
        gpu_seconds=gpu_total,
        slo_ttft=slo_ttft,
        slo_tpot=slo_tpot,
    )


def serve_fleet_runtime(
    replicas: "Sequence[RuntimeReplica]",
    requests: "Sequence[ServeRequest]",
    *,
    router: "str | Router" = "round-robin",
    autoscaler: "FleetAutoscaler | None" = None,
    active: "Sequence[int] | None" = None,
    slo_ttft: float | None = None,
    slo_tpot: float | None = None,
) -> FleetReport:
    """Serve materialized requests across real tiny-model replicas.

    Routing is identical to :func:`serve_fleet` (prompt length, gen
    length, arrival time), with prefix-affinity hashing the first
    prompt tokens.  Each replica then replays its share on its own
    runtime+scheduler, sequentially — real wall-clock execution, shared
    virtual arrival clock.
    """
    reps = _check_fleet(replicas)
    rt = router if isinstance(router, Router) else Router(router)
    reqs = sorted(requests, key=lambda r: r.arrival)
    if not reqs:
        raise ValueError("no requests")
    arr = np.array([r.arrival for r in reqs], dtype=np.float64)
    spr = np.array([len(r.prompt) for r in reqs], dtype=np.int64)
    sgen = np.array([r.gen_len for r in reqs], dtype=np.int64)
    # prefix signature: first 8 prompt tokens, stable across replicas
    keys = np.array(
        [int(np.sum(r.prompt[:8] % 1_000_003)) for r in reqs], dtype=np.int64
    )

    if autoscaler is not None:
        _bind_autoscaler(autoscaler, reps, active)

    assign, router_rejected = _route(
        arr, spr, sgen, reps, rt, autoscaler, prefix_keys=keys
    )
    if autoscaler is not None:
        reps = autoscaler.all_replicas()

    results: dict[int, ReplicaResult] = {}
    out: list[ReplicaResult] = []
    for r in reps:
        idx = np.flatnonzero(assign == r.replica_id)
        if idx.size == 0:
            res = _empty_result(r)
        else:
            res = r.serve([reqs[int(i)] for i in idx])
        results[r.replica_id] = res
        out.append(res)

    fleet_end = max(
        [res.makespan for res in out if res.makespan] + [float(arr[-1])]
    )
    gpu_total, gpu_per = _gpu_seconds(reps, results, autoscaler, fleet_end)
    out = [
        dataclasses.replace(res, gpu_seconds=gpu_per.get(res.replica_id, 0.0))
        for res in out
    ]
    return FleetReport.build(
        out,
        router=rt.policy,
        autoscaled=autoscaler is not None,
        n_requests=len(reqs),
        router_rejected=router_rejected,
        scale_events=tuple(autoscaler.events) if autoscaler is not None else (),
        gpu_seconds=gpu_total,
        slo_ttft=slo_ttft,
        slo_tpot=slo_tpot,
    )


def plan_sim_replica(
    replica_id: int,
    model_name: str,
    idle_cluster,
    workload,
    *,
    pool: str = POOL_GENERAL,
    use_heuristic: bool = True,
    theta: float = 0.1,
    latency_model=None,
    **sim_kw,
) -> SimReplica:
    """Plan a replica for an idle hardware pool via the planner.

    The scale-up path of the fleet: run the existing search engine
    (:func:`~repro.core.api.plan_llmpq`) over the idle pool's devices
    and the autoscaler's current workload estimate, and wrap the
    resulting plan as a routable :class:`SimReplica`.
    """
    from ..core.api import plan_llmpq

    result = plan_llmpq(
        model_name, idle_cluster, workload,
        theta=theta, use_heuristic=use_heuristic,
        latency_model=latency_model,
    )
    return SimReplica(
        replica_id, result.plan, idle_cluster, pool=pool,
        latency_model=latency_model, **sim_kw
    )
