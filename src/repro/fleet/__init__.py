"""Replica-scoped fleet serving: router + coordinated autoscaler.

Public API for serving one arrival trace (or one batch of materialized
requests) across N independently planned pipeline replicas, optionally
disaggregated into prefill/decode pools and autoscaled from windowed
load signals.  A 1-replica fleet is byte-identical to the single
pipeline paths it wraps.
"""

from .autoscaler import AutoscaleConfig, FleetAutoscaler, ScaleEvent
from .fleet import plan_sim_replica, serve_fleet, serve_fleet_runtime
from .replica import (
    POOL_DECODE,
    POOL_GENERAL,
    POOL_PREFILL,
    POOLS,
    PipelineReplica,
    ReplicaResult,
    RuntimeReplica,
    SimReplica,
)
from .report import FleetReport
from .router import ROUTER_POLICIES, ReplicaLoad, Router

__all__ = [
    "POOLS",
    "POOL_GENERAL",
    "POOL_PREFILL",
    "POOL_DECODE",
    "ROUTER_POLICIES",
    "AutoscaleConfig",
    "FleetAutoscaler",
    "FleetReport",
    "PipelineReplica",
    "ReplicaLoad",
    "ReplicaResult",
    "Router",
    "RuntimeReplica",
    "ScaleEvent",
    "SimReplica",
    "plan_sim_replica",
    "serve_fleet",
    "serve_fleet_runtime",
]
