"""Request routing across replicas: pluggable, deterministic policies.

The router runs inside the fleet's single forward pass over the sorted
arrival trace.  For each request it sees the per-replica
:class:`ReplicaLoad` estimates (a single-server queue view maintained
from the replicas' approximate service-time models) and picks a target:

* ``round-robin`` — rotate over the currently active replicas;
* ``least-loaded`` — smallest estimated outstanding KV token-slots
  relative to the replica's token budget, queue depth as tiebreak;
* ``ttft`` — ILP-free greedy: smallest predicted time-to-first-token
  (estimated queue wait plus this prompt's batch-1 prefill time);
* ``prefix`` — prefix-affinity hash: requests with the same prompt
  signature always land on the same active replica (KV prefix reuse in
  a real deployment); falls back to hashing the prompt length when no
  token prefix is available.

Every policy is deterministic, and every tie breaks toward the lowest
replica id — two fleets fed the same trace route identically.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .replica import PipelineReplica

__all__ = ["ROUTER_POLICIES", "ReplicaLoad", "Router"]

ROUTER_POLICIES = ("round-robin", "least-loaded", "ttft", "prefix")

#: Knuth multiplicative hash constant (32-bit golden ratio)
_HASH_MUL = 2654435761


class ReplicaLoad:
    """Routing-time view of one replica's estimated backlog.

    A single-server queue over the replica's approximate service times:
    ``busy_until`` is when the replica would drain everything routed so
    far, the completion heap drains KV token-slot and queue-depth
    estimates as their finish times pass.  Deliberately approximate —
    the replica's own admission control is exact; these numbers only
    steer the router.
    """

    __slots__ = ("replica", "busy_until", "kv_tokens", "queue", "_completions")

    def __init__(self, replica: "PipelineReplica") -> None:
        self.replica = replica
        self.busy_until = 0.0
        self.kv_tokens = 0
        self.queue = 0
        self._completions: list[tuple[float, int]] = []

    def drain(self, now: float) -> None:
        """Retire backlog whose estimated finish time has passed."""
        heap = self._completions
        while heap and heap[0][0] <= now:
            _, toks = heapq.heappop(heap)
            self.kv_tokens -= toks
            self.queue -= 1

    def predicted_wait(self, now: float) -> float:
        """Estimated queueing delay a request arriving now would see."""
        return max(0.0, self.busy_until - now)

    def kv_fraction(self) -> float:
        """Estimated outstanding token-slots over the replica's budget."""
        budget = self.replica.token_budget
        return self.kv_tokens / budget if budget > 0 else float("inf")

    def assign(self, now: float, prompt_len: int, gen_len: int) -> float:
        """Account one routed request; returns its service-time estimate."""
        svc = self.replica.service_seconds(prompt_len, gen_len)
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + svc
        toks = prompt_len + gen_len
        self.kv_tokens += toks
        self.queue += 1
        heapq.heappush(self._completions, (self.busy_until, toks))
        return svc


class Router:
    """Deterministic request->replica assignment over load estimates."""

    def __init__(self, policy: str = "round-robin") -> None:
        if policy not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r} "
                f"(expected one of {ROUTER_POLICIES})"
            )
        self.policy = policy
        self._rr = 0

    def pick(
        self,
        candidates: "list[ReplicaLoad]",
        now: float,
        prompt_len: int,
        gen_len: int,
        prefix_key: int | None = None,
    ) -> "ReplicaLoad | None":
        """Choose among active, non-draining candidates (id order).

        Returns ``None`` when no candidate is available — the fleet
        rejects the request (empty fleet / all replicas draining).
        """
        if not candidates:
            return None
        if self.policy == "round-robin":
            choice = candidates[self._rr % len(candidates)]
            self._rr += 1
            return choice
        if self.policy == "prefix":
            key = prefix_key if prefix_key is not None else prompt_len
            bucket = ((key * _HASH_MUL) & 0xFFFFFFFF) % len(candidates)
            return candidates[bucket]
        best = None
        best_score: tuple | None = None
        for load in candidates:  # id order: first strict win keeps lowest id
            load.drain(now)
            if self.policy == "least-loaded":
                score = (load.kv_fraction(), load.queue)
            else:  # ttft
                score = (
                    load.predicted_wait(now)
                    + load.replica.prefill_seconds(prompt_len),
                )
            if best_score is None or score < best_score:
                best, best_score = load, score
        return best
