"""Prompt-length traces (ShareGPT-like) and workload sampling.

Sec. 2.1 samples 10k ShareGPT conversations and finds prompt lengths vary
substantially, with a heavy short-prompt mode and a long tail.  We model
that with a mixture of a log-normal body and a uniform long tail, which
the workload-characterization example uses to motivate phase-aware
planning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import Workload

__all__ = [
    "PromptTrace",
    "RequestArrival",
    "sample_sharegpt_like",
    "sample_poisson_arrivals",
    "sample_bursty_arrivals",
    "sample_diurnal_arrivals",
    "sample_pareto_arrivals",
    "concat_arrival_phases",
    "workloads_from_trace",
]


@dataclass(frozen=True)
class PromptTrace:
    """Sampled (prompt_len, gen_len) pairs."""

    prompt_lens: np.ndarray
    gen_lens: np.ndarray

    def __post_init__(self) -> None:
        if self.prompt_lens.shape != self.gen_lens.shape:
            raise ValueError("prompt and gen arrays must align")

    @property
    def size(self) -> int:
        """Sampled conversations."""
        return int(self.prompt_lens.size)

    def fraction_short(self, threshold: int = 128) -> float:
        """Share of prompts below ``threshold`` tokens."""
        return float((self.prompt_lens < threshold).mean())


def sample_sharegpt_like(
    n: int = 10_000,
    *,
    seed: int = 0,
    max_prompt: int = 2048,
) -> PromptTrace:
    """Synthetic conversation-length trace shaped like ShareGPT.

    ~45% of prompts are short (<128 tokens); the rest follow a log-normal
    with a fat tail clipped to the context window.
    """
    rng = np.random.default_rng(seed)
    short = rng.integers(4, 128, size=n)
    body = np.exp(rng.normal(5.6, 0.8, size=n)).astype(np.int64)  # ~270 median
    is_short = rng.random(n) < 0.45
    prompts = np.where(is_short, short, np.clip(body, 128, max_prompt))
    gens = np.clip(np.exp(rng.normal(4.6, 0.7, size=n)), 8, 1024).astype(np.int64)
    return PromptTrace(prompt_lens=prompts.astype(np.int64), gen_lens=gens)


@dataclass(frozen=True)
class RequestArrival:
    """One online request: arrival time plus its (s, n) lengths."""

    arrival: float       #: seconds since the trace start
    prompt_len: int      #: prompt tokens
    gen_len: int         #: tokens to generate

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ValueError("prompt_len and gen_len must be positive")


def sample_poisson_arrivals(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[RequestArrival]:
    """Poisson arrival trace with ShareGPT-shaped request lengths.

    Inter-arrival gaps are exponential at ``rate`` req/s over ``duration``
    seconds; each request's prompt and generation lengths follow the same
    log-normal mixture as :func:`sample_sharegpt_like`, clipped to
    ``max_prompt`` / ``max_gen``.  The list is sorted by arrival time —
    the canonical input of both the online simulator and the real
    :class:`~repro.runtime.scheduler.ContinuousScheduler`.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    out: list[RequestArrival] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        is_short = rng.random() < 0.45
        if is_short:
            s = int(rng.integers(4, min(128, max_prompt + 1)))
        else:
            s = int(np.clip(np.exp(rng.normal(5.6, 0.8)), 4, max_prompt))
        n = int(np.clip(np.exp(rng.normal(4.6, 0.7)), 4, max_gen))
        out.append(RequestArrival(arrival=float(t), prompt_len=s, gen_len=n))
    return out


def _sharegpt_lengths(rng, max_prompt: int, max_gen: int) -> tuple[int, int]:
    """One (prompt_len, gen_len) draw from the ShareGPT-shaped mixture."""
    if rng.random() < 0.45:
        s = int(rng.integers(4, min(128, max_prompt + 1)))
    else:
        s = int(np.clip(np.exp(rng.normal(5.6, 0.8)), 4, max_prompt))
    n = int(np.clip(np.exp(rng.normal(4.6, 0.7)), 4, max_gen))
    return s, n


def sample_bursty_arrivals(
    base_rate: float,
    duration: float,
    *,
    burst_rate: float | None = None,
    burst_duration: float = 5.0,
    burst_period: float = 30.0,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[RequestArrival]:
    """Bursty arrival trace: a quiet Poisson baseline punctuated by bursts.

    Every ``burst_period`` seconds the rate jumps to ``burst_rate``
    (default ``8 * base_rate``) for ``burst_duration`` seconds, modelling
    flash crowds.  Request lengths follow the ShareGPT-shaped mixture.
    Deterministic per ``seed`` (thinning over a homogeneous envelope).
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if burst_duration <= 0 or burst_period <= burst_duration:
        raise ValueError("need 0 < burst_duration < burst_period")
    peak = float(burst_rate) if burst_rate is not None else 8.0 * base_rate
    if peak < base_rate:
        raise ValueError("burst_rate must be >= base_rate")

    def rate_at(t: float) -> float:
        return peak if (t % burst_period) < burst_duration else base_rate

    return _thinned_arrivals(
        rate_at, peak, duration, seed=seed, max_prompt=max_prompt, max_gen=max_gen
    )


def sample_diurnal_arrivals(
    mean_rate: float,
    duration: float,
    *,
    amplitude: float = 0.8,
    period: float = 120.0,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[RequestArrival]:
    """Diurnal arrival trace: sinusoidal rate around ``mean_rate``.

    ``rate(t) = mean_rate * (1 + amplitude * sin(2*pi*t/period))`` — a
    compressed day/night cycle (``period`` seconds per "day").  Lengths
    follow the ShareGPT-shaped mixture; deterministic per ``seed``.
    """
    if mean_rate <= 0:
        raise ValueError("mean_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    peak = mean_rate * (1.0 + amplitude)

    def rate_at(t: float) -> float:
        return mean_rate * (1.0 + amplitude * np.sin(2.0 * np.pi * t / period))

    return _thinned_arrivals(
        rate_at, peak, duration, seed=seed, max_prompt=max_prompt, max_gen=max_gen
    )


def sample_pareto_arrivals(
    rate: float,
    duration: float,
    *,
    shape: float = 1.5,
    min_prompt: int = 16,
    min_gen: int = 4,
    seed: int = 0,
    max_prompt: int = 2048,
    max_gen: int = 512,
) -> list[RequestArrival]:
    """Poisson arrivals with heavy-tailed (Pareto) prompt/generation lengths.

    Lengths are ``min * (1 + Pareto(shape))`` clipped to the caps — with
    ``shape <= 2`` the length distribution has infinite variance, the
    worst case for padding-based wave scheduling and a stress test for
    drift detection on the length axis.  Deterministic per ``seed``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if shape <= 0:
        raise ValueError("shape must be positive")
    rng = np.random.default_rng(seed)
    out: list[RequestArrival] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        s = int(np.clip(min_prompt * (1.0 + rng.pareto(shape)), min_prompt, max_prompt))
        n = int(np.clip(min_gen * (1.0 + rng.pareto(shape)), min_gen, max_gen))
        out.append(RequestArrival(arrival=float(t), prompt_len=s, gen_len=n))
    return out


def concat_arrival_phases(
    phases: list[list[RequestArrival]],
) -> list[RequestArrival]:
    """Concatenate arrival traces back-to-back into one drifting trace.

    Each phase's clock restarts at the end of the previous phase's last
    arrival, so ``[steady, bursty]`` yields a trace whose statistics shift
    mid-stream — the canonical input for drift-detection tests.
    """
    out: list[RequestArrival] = []
    offset = 0.0
    for phase in phases:
        last = 0.0
        for r in phase:
            out.append(
                RequestArrival(
                    arrival=offset + r.arrival,
                    prompt_len=r.prompt_len,
                    gen_len=r.gen_len,
                )
            )
            last = r.arrival
        offset += last
    return out


def _thinned_arrivals(
    rate_at,
    peak_rate: float,
    duration: float,
    *,
    seed: int,
    max_prompt: int,
    max_gen: int,
) -> list[RequestArrival]:
    """Non-homogeneous Poisson process by thinning a ``peak_rate`` envelope."""
    rng = np.random.default_rng(seed)
    out: list[RequestArrival] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak_rate)
        if t >= duration:
            break
        if rng.random() * peak_rate > rate_at(t):
            continue  # thinned out
        s, n = _sharegpt_lengths(rng, max_prompt, max_gen)
        out.append(RequestArrival(arrival=float(t), prompt_len=s, gen_len=n))
    return out


def workloads_from_trace(
    trace: PromptTrace,
    *,
    batch: int = 32,
    pad_to: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    gen_quantile: float = 0.9,
) -> list[Workload]:
    """Bucket a trace into padded offline workloads.

    Each prompt is padded up to the smallest bucket that fits (the offline
    task pads to uniform length); the per-bucket generation length is the
    ``gen_quantile`` of the member requests.
    """
    out: list[Workload] = []
    for i, cap in enumerate(pad_to):
        lo = 0 if i == 0 else pad_to[i - 1]
        mask = (trace.prompt_lens > lo) & (trace.prompt_lens <= cap)
        if not mask.any():
            continue
        gen = int(np.quantile(trace.gen_lens[mask], gen_quantile))
        out.append(Workload(prompt_len=cap, gen_len=max(gen, 1), global_batch=batch))
    return out
