"""Prompt-length traces (ShareGPT-like) and workload sampling.

Sec. 2.1 samples 10k ShareGPT conversations and finds prompt lengths vary
substantially, with a heavy short-prompt mode and a long tail.  We model
that with a mixture of a log-normal body and a uniform long tail, which
the workload-characterization example uses to motivate phase-aware
planning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import Workload

__all__ = [
    "PromptTrace",
    "RequestArrival",
    "sample_sharegpt_like",
    "sample_poisson_arrivals",
    "workloads_from_trace",
]


@dataclass(frozen=True)
class PromptTrace:
    """Sampled (prompt_len, gen_len) pairs."""

    prompt_lens: np.ndarray
    gen_lens: np.ndarray

    def __post_init__(self) -> None:
        if self.prompt_lens.shape != self.gen_lens.shape:
            raise ValueError("prompt and gen arrays must align")

    @property
    def size(self) -> int:
        """Sampled conversations."""
        return int(self.prompt_lens.size)

    def fraction_short(self, threshold: int = 128) -> float:
        """Share of prompts below ``threshold`` tokens."""
        return float((self.prompt_lens < threshold).mean())


def sample_sharegpt_like(
    n: int = 10_000,
    *,
    seed: int = 0,
    max_prompt: int = 2048,
) -> PromptTrace:
    """Synthetic conversation-length trace shaped like ShareGPT.

    ~45% of prompts are short (<128 tokens); the rest follow a log-normal
    with a fat tail clipped to the context window.
    """
    rng = np.random.default_rng(seed)
    short = rng.integers(4, 128, size=n)
    body = np.exp(rng.normal(5.6, 0.8, size=n)).astype(np.int64)  # ~270 median
    is_short = rng.random(n) < 0.45
    prompts = np.where(is_short, short, np.clip(body, 128, max_prompt))
    gens = np.clip(np.exp(rng.normal(4.6, 0.7, size=n)), 8, 1024).astype(np.int64)
    return PromptTrace(prompt_lens=prompts.astype(np.int64), gen_lens=gens)


@dataclass(frozen=True)
class RequestArrival:
    """One online request: arrival time plus its (s, n) lengths."""

    arrival: float       #: seconds since the trace start
    prompt_len: int      #: prompt tokens
    gen_len: int         #: tokens to generate

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ValueError("prompt_len and gen_len must be positive")


def sample_poisson_arrivals(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[RequestArrival]:
    """Poisson arrival trace with ShareGPT-shaped request lengths.

    Inter-arrival gaps are exponential at ``rate`` req/s over ``duration``
    seconds; each request's prompt and generation lengths follow the same
    log-normal mixture as :func:`sample_sharegpt_like`, clipped to
    ``max_prompt`` / ``max_gen``.  The list is sorted by arrival time —
    the canonical input of both the online simulator and the real
    :class:`~repro.runtime.scheduler.ContinuousScheduler`.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    out: list[RequestArrival] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        is_short = rng.random() < 0.45
        if is_short:
            s = int(rng.integers(4, min(128, max_prompt + 1)))
        else:
            s = int(np.clip(np.exp(rng.normal(5.6, 0.8)), 4, max_prompt))
        n = int(np.clip(np.exp(rng.normal(4.6, 0.7)), 4, max_gen))
        out.append(RequestArrival(arrival=float(t), prompt_len=s, gen_len=n))
    return out


def workloads_from_trace(
    trace: PromptTrace,
    *,
    batch: int = 32,
    pad_to: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    gen_quantile: float = 0.9,
) -> list[Workload]:
    """Bucket a trace into padded offline workloads.

    Each prompt is padded up to the smallest bucket that fits (the offline
    task pads to uniform length); the per-bucket generation length is the
    ``gen_quantile`` of the member requests.
    """
    out: list[Workload] = []
    for i, cap in enumerate(pad_to):
        lo = 0 if i == 0 else pad_to[i - 1]
        mask = (trace.prompt_lens > lo) & (trace.prompt_lens <= cap)
        if not mask.any():
            continue
        gen = int(np.quantile(trace.gen_lens[mask], gen_quantile))
        out.append(Workload(prompt_len=cap, gen_len=max(gen, 1), global_batch=batch))
    return out
