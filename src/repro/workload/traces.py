"""Prompt-length traces (ShareGPT-like) and workload sampling.

Sec. 2.1 samples 10k ShareGPT conversations and finds prompt lengths vary
substantially, with a heavy short-prompt mode and a long tail.  We model
that with a mixture of a log-normal body and a uniform long tail, which
the workload-characterization example uses to motivate phase-aware
planning.

Arrival traces are array-backed (:class:`ArrivalTrace`): the generators
draw gaps/lengths in vectorized numpy chunks so a million-request
day-long trace samples in well under a second, and the columns feed the
vectorized online simulator without any per-request Python objects.
Iterating a trace still yields :class:`RequestArrival` records, so every
scalar consumer (the real scheduler, the reference simulator, tests)
keeps working unchanged.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .spec import Workload

__all__ = [
    "PromptTrace",
    "RequestArrival",
    "ArrivalTrace",
    "sample_sharegpt_like",
    "sample_poisson_arrivals",
    "sample_bursty_arrivals",
    "sample_diurnal_arrivals",
    "sample_pareto_arrivals",
    "concat_arrival_phases",
    "save_trace",
    "load_trace",
    "workloads_from_trace",
]


@dataclass(frozen=True)
class PromptTrace:
    """Sampled (prompt_len, gen_len) pairs."""

    prompt_lens: np.ndarray
    gen_lens: np.ndarray

    def __post_init__(self) -> None:
        if self.prompt_lens.shape != self.gen_lens.shape:
            raise ValueError("prompt and gen arrays must align")

    @property
    def size(self) -> int:
        """Sampled conversations."""
        return int(self.prompt_lens.size)

    def fraction_short(self, threshold: int = 128) -> float:
        """Share of prompts below ``threshold`` tokens."""
        return float((self.prompt_lens < threshold).mean())


def sample_sharegpt_like(
    n: int = 10_000,
    *,
    seed: int = 0,
    max_prompt: int = 2048,
) -> PromptTrace:
    """Synthetic conversation-length trace shaped like ShareGPT.

    ~45% of prompts are short (<128 tokens); the rest follow a log-normal
    with a fat tail clipped to the context window.
    """
    rng = np.random.default_rng(seed)
    short = rng.integers(4, 128, size=n)
    body = np.exp(rng.normal(5.6, 0.8, size=n)).astype(np.int64)  # ~270 median
    is_short = rng.random(n) < 0.45
    prompts = np.where(is_short, short, np.clip(body, 128, max_prompt))
    gens = np.clip(np.exp(rng.normal(4.6, 0.7, size=n)), 8, 1024).astype(np.int64)
    return PromptTrace(prompt_lens=prompts.astype(np.int64), gen_lens=gens)


@dataclass(frozen=True)
class RequestArrival:
    """One online request: arrival time plus its (s, n) lengths."""

    arrival: float       #: seconds since the trace start
    prompt_len: int      #: prompt tokens
    gen_len: int         #: tokens to generate

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ValueError("prompt_len and gen_len must be positive")


@dataclass(frozen=True)
class ArrivalTrace(Sequence):
    """Array-backed arrival trace: three aligned columns.

    Behaves like a ``Sequence[RequestArrival]`` (len / index / iterate),
    while exposing the raw numpy columns for the vectorized engine.
    """

    arrivals: np.ndarray     #: float64 seconds, one per request
    prompt_lens: np.ndarray  #: int64 prompt tokens
    gen_lens: np.ndarray     #: int64 generation tokens

    def __post_init__(self) -> None:
        a = np.asarray(self.arrivals, dtype=np.float64)
        s = np.asarray(self.prompt_lens, dtype=np.int64)
        g = np.asarray(self.gen_lens, dtype=np.int64)
        if not (a.ndim == s.ndim == g.ndim == 1):
            raise ValueError("trace columns must be 1-D")
        if not (a.shape == s.shape == g.shape):
            raise ValueError("trace columns must align")
        if a.size:
            if not np.all(np.isfinite(a)) or float(a.min()) < 0.0:
                raise ValueError("arrivals must be finite and >= 0")
            if int(s.min()) <= 0 or int(g.min()) <= 0:
                raise ValueError("prompt_len and gen_len must be positive")
        object.__setattr__(self, "arrivals", a)
        object.__setattr__(self, "prompt_lens", s)
        object.__setattr__(self, "gen_lens", g)

    def __len__(self) -> int:
        return int(self.arrivals.size)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return ArrivalTrace(
                arrivals=self.arrivals[i],
                prompt_lens=self.prompt_lens[i],
                gen_lens=self.gen_lens[i],
            )
        return RequestArrival(
            arrival=float(self.arrivals[i]),
            prompt_len=int(self.prompt_lens[i]),
            gen_len=int(self.gen_lens[i]),
        )

    def __iter__(self) -> Iterator[RequestArrival]:
        for a, s, g in zip(
            self.arrivals.tolist(), self.prompt_lens.tolist(), self.gen_lens.tolist()
        ):
            yield RequestArrival(arrival=a, prompt_len=s, gen_len=g)

    def sorted(self) -> "ArrivalTrace":
        """Stable sort by arrival time (matches ``sorted(list, key=arrival)``)."""
        order = np.argsort(self.arrivals, kind="stable")
        return ArrivalTrace(
            arrivals=self.arrivals[order],
            prompt_lens=self.prompt_lens[order],
            gen_lens=self.gen_lens[order],
        )

    @classmethod
    def from_requests(cls, reqs: Iterable[RequestArrival]) -> "ArrivalTrace":
        """Build the array view of any iterable of request records."""
        if isinstance(reqs, cls):
            return reqs
        rows = list(reqs)
        return cls(
            arrivals=np.array([r.arrival for r in rows], dtype=np.float64),
            prompt_lens=np.array([r.prompt_len for r in rows], dtype=np.int64),
            gen_lens=np.array([r.gen_len for r in rows], dtype=np.int64),
        )


def save_trace(trace, path) -> None:
    """Persist an arrival trace as JSON (exact float64 round-trip).

    Accepts an :class:`ArrivalTrace` or any iterable of
    :class:`RequestArrival`; big traces are generated once with
    ``--save-trace`` and replayed with ``--trace-file``.
    """
    tr = ArrivalTrace.from_requests(trace)
    payload = {
        "version": 1,
        "arrivals": tr.arrivals.tolist(),
        "prompt_lens": tr.prompt_lens.tolist(),
        "gen_lens": tr.gen_lens.tolist(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)


def load_trace(path) -> ArrivalTrace:
    """Load a trace saved by :func:`save_trace`."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "arrivals" not in payload:
        raise ValueError(f"{path}: not a saved arrival trace")
    return ArrivalTrace(
        arrivals=np.array(payload["arrivals"], dtype=np.float64),
        prompt_lens=np.array(payload["prompt_lens"], dtype=np.int64),
        gen_lens=np.array(payload["gen_lens"], dtype=np.int64),
    )


def _poisson_times(rng, rate: float, duration: float) -> np.ndarray:
    """Homogeneous Poisson event times in [0, duration), vectorized.

    Draws exponential gaps in chunks sized by the expected count plus a
    generous margin, extending until the horizon is covered.
    """
    chunks: list[np.ndarray] = []
    t = 0.0
    while t < duration:
        expect = rate * (duration - t)
        n = max(int(expect + 10.0 * math.sqrt(expect + 1.0)) + 16, 64)
        block = t + np.cumsum(rng.exponential(1.0 / rate, size=n))
        if block[-1] >= duration:
            chunks.append(block[block < duration])
            break
        chunks.append(block)
        t = float(block[-1])
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)


def _sharegpt_lengths_batch(
    rng, n: int, max_prompt: int, max_gen: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized (prompt_len, gen_len) draws from the ShareGPT-shaped mixture."""
    is_short = rng.random(n) < 0.45
    short = rng.integers(4, min(128, max_prompt + 1), size=n)
    body = np.clip(np.exp(rng.normal(5.6, 0.8, size=n)), 4, max_prompt)
    prompts = np.where(is_short, short, body.astype(np.int64))
    gens = np.clip(np.exp(rng.normal(4.6, 0.7, size=n)), 4, max_gen).astype(np.int64)
    return prompts.astype(np.int64), gens


def sample_poisson_arrivals(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> ArrivalTrace:
    """Poisson arrival trace with ShareGPT-shaped request lengths.

    Inter-arrival gaps are exponential at ``rate`` req/s over ``duration``
    seconds; each request's prompt and generation lengths follow the same
    log-normal mixture as :func:`sample_sharegpt_like`, clipped to
    ``max_prompt`` / ``max_gen``.  The trace is sorted by arrival time —
    the canonical input of both the online simulator and the real
    :class:`~repro.runtime.scheduler.ContinuousScheduler`.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    times = _poisson_times(rng, rate, duration)
    prompts, gens = _sharegpt_lengths_batch(rng, times.size, max_prompt, max_gen)
    return ArrivalTrace(arrivals=times, prompt_lens=prompts, gen_lens=gens)


def sample_bursty_arrivals(
    base_rate: float,
    duration: float,
    *,
    burst_rate: float | None = None,
    burst_duration: float = 5.0,
    burst_period: float = 30.0,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> ArrivalTrace:
    """Bursty arrival trace: a quiet Poisson baseline punctuated by bursts.

    Every ``burst_period`` seconds the rate jumps to ``burst_rate``
    (default ``8 * base_rate``) for ``burst_duration`` seconds, modelling
    flash crowds.  Request lengths follow the ShareGPT-shaped mixture.
    Deterministic per ``seed`` (thinning over a homogeneous envelope).
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if burst_duration <= 0 or burst_period <= burst_duration:
        raise ValueError("need 0 < burst_duration < burst_period")
    peak = float(burst_rate) if burst_rate is not None else 8.0 * base_rate
    if peak < base_rate:
        raise ValueError("burst_rate must be >= base_rate")

    def rate_at(t: np.ndarray) -> np.ndarray:
        return np.where((t % burst_period) < burst_duration, peak, base_rate)

    return _thinned_arrivals(
        rate_at, peak, duration, seed=seed, max_prompt=max_prompt, max_gen=max_gen
    )


def sample_diurnal_arrivals(
    mean_rate: float,
    duration: float,
    *,
    amplitude: float = 0.8,
    period: float = 120.0,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> ArrivalTrace:
    """Diurnal arrival trace: sinusoidal rate around ``mean_rate``.

    ``rate(t) = mean_rate * (1 + amplitude * sin(2*pi*t/period))`` — a
    compressed day/night cycle (``period`` seconds per "day").  Lengths
    follow the ShareGPT-shaped mixture; deterministic per ``seed``.
    """
    if mean_rate <= 0:
        raise ValueError("mean_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    peak = mean_rate * (1.0 + amplitude)

    def rate_at(t: np.ndarray) -> np.ndarray:
        return mean_rate * (1.0 + amplitude * np.sin(2.0 * np.pi * t / period))

    return _thinned_arrivals(
        rate_at, peak, duration, seed=seed, max_prompt=max_prompt, max_gen=max_gen
    )


def sample_pareto_arrivals(
    rate: float,
    duration: float,
    *,
    shape: float = 1.5,
    min_prompt: int = 16,
    min_gen: int = 4,
    seed: int = 0,
    max_prompt: int = 2048,
    max_gen: int = 512,
) -> ArrivalTrace:
    """Poisson arrivals with heavy-tailed (Pareto) prompt/generation lengths.

    Lengths are ``min * (1 + Pareto(shape))`` clipped to the caps — with
    ``shape <= 2`` the length distribution has infinite variance, the
    worst case for padding-based wave scheduling and a stress test for
    drift detection on the length axis.  Deterministic per ``seed``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if shape <= 0:
        raise ValueError("shape must be positive")
    rng = np.random.default_rng(seed)
    times = _poisson_times(rng, rate, duration)
    n = times.size
    prompts = np.clip(
        min_prompt * (1.0 + rng.pareto(shape, size=n)), min_prompt, max_prompt
    ).astype(np.int64)
    gens = np.clip(
        min_gen * (1.0 + rng.pareto(shape, size=n)), min_gen, max_gen
    ).astype(np.int64)
    return ArrivalTrace(arrivals=times, prompt_lens=prompts, gen_lens=gens)


def concat_arrival_phases(phases) -> ArrivalTrace:
    """Concatenate arrival traces back-to-back into one drifting trace.

    Each phase's clock restarts at the end of the previous phase's last
    arrival, so ``[steady, bursty]`` yields a trace whose statistics shift
    mid-stream — the canonical input for drift-detection tests.  Phases
    may be :class:`ArrivalTrace` columns or plain request lists.
    """
    a_chunks: list[np.ndarray] = []
    s_chunks: list[np.ndarray] = []
    g_chunks: list[np.ndarray] = []
    offset = 0.0
    for phase in phases:
        tr = ArrivalTrace.from_requests(phase)
        a_chunks.append(offset + tr.arrivals)
        s_chunks.append(tr.prompt_lens)
        g_chunks.append(tr.gen_lens)
        if len(tr):
            offset += float(tr.arrivals[-1])
    if not a_chunks:
        return ArrivalTrace(
            arrivals=np.empty(0), prompt_lens=np.empty(0, np.int64),
            gen_lens=np.empty(0, np.int64),
        )
    return ArrivalTrace(
        arrivals=np.concatenate(a_chunks),
        prompt_lens=np.concatenate(s_chunks),
        gen_lens=np.concatenate(g_chunks),
    )


def _thinned_arrivals(
    rate_at,
    peak_rate: float,
    duration: float,
    *,
    seed: int,
    max_prompt: int,
    max_gen: int,
) -> ArrivalTrace:
    """Non-homogeneous Poisson process by thinning a ``peak_rate`` envelope."""
    rng = np.random.default_rng(seed)
    cand = _poisson_times(rng, peak_rate, duration)
    keep = rng.random(cand.size) * peak_rate <= rate_at(cand)
    times = cand[keep]
    prompts, gens = _sharegpt_lengths_batch(rng, times.size, max_prompt, max_gen)
    return ArrivalTrace(arrivals=times, prompt_lens=prompts, gen_lens=gens)


def workloads_from_trace(
    trace: PromptTrace,
    *,
    batch: int = 32,
    pad_to: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    gen_quantile: float = 0.9,
) -> list[Workload]:
    """Bucket a trace into padded offline workloads.

    Each prompt is padded up to the smallest bucket that fits (the offline
    task pads to uniform length); the per-bucket generation length is the
    ``gen_quantile`` of the member requests.
    """
    out: list[Workload] = []
    for i, cap in enumerate(pad_to):
        lo = 0 if i == 0 else pad_to[i - 1]
        mask = (trace.prompt_lens > lo) & (trace.prompt_lens <= cap)
        if not mask.any():
            continue
        gen = int(np.quantile(trace.gen_lens[mask], gen_quantile))
        out.append(Workload(prompt_len=cap, gen_len=max(gen, 1), global_batch=batch))
    return out
