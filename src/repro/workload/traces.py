"""Prompt-length traces (ShareGPT-like) and workload sampling.

Sec. 2.1 samples 10k ShareGPT conversations and finds prompt lengths vary
substantially, with a heavy short-prompt mode and a long tail.  We model
that with a mixture of a log-normal body and a uniform long tail, which
the workload-characterization example uses to motivate phase-aware
planning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import Workload

__all__ = ["PromptTrace", "sample_sharegpt_like", "workloads_from_trace"]


@dataclass(frozen=True)
class PromptTrace:
    """Sampled (prompt_len, gen_len) pairs."""

    prompt_lens: np.ndarray
    gen_lens: np.ndarray

    def __post_init__(self) -> None:
        if self.prompt_lens.shape != self.gen_lens.shape:
            raise ValueError("prompt and gen arrays must align")

    @property
    def size(self) -> int:
        """Sampled conversations."""
        return int(self.prompt_lens.size)

    def fraction_short(self, threshold: int = 128) -> float:
        """Share of prompts below ``threshold`` tokens."""
        return float((self.prompt_lens < threshold).mean())


def sample_sharegpt_like(
    n: int = 10_000,
    *,
    seed: int = 0,
    max_prompt: int = 2048,
) -> PromptTrace:
    """Synthetic conversation-length trace shaped like ShareGPT.

    ~45% of prompts are short (<128 tokens); the rest follow a log-normal
    with a fat tail clipped to the context window.
    """
    rng = np.random.default_rng(seed)
    short = rng.integers(4, 128, size=n)
    body = np.exp(rng.normal(5.6, 0.8, size=n)).astype(np.int64)  # ~270 median
    is_short = rng.random(n) < 0.45
    prompts = np.where(is_short, short, np.clip(body, 128, max_prompt))
    gens = np.clip(np.exp(rng.normal(4.6, 0.7, size=n)), 8, 1024).astype(np.int64)
    return PromptTrace(prompt_lens=prompts.astype(np.int64), gen_lens=gens)


def workloads_from_trace(
    trace: PromptTrace,
    *,
    batch: int = 32,
    pad_to: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    gen_quantile: float = 0.9,
) -> list[Workload]:
    """Bucket a trace into padded offline workloads.

    Each prompt is padded up to the smallest bucket that fits (the offline
    task pads to uniform length); the per-bucket generation length is the
    ``gen_quantile`` of the member requests.
    """
    out: list[Workload] = []
    for i, cap in enumerate(pad_to):
        lo = 0 if i == 0 else pad_to[i - 1]
        mask = (trace.prompt_lens > lo) & (trace.prompt_lens <= cap)
        if not mask.any():
            continue
        gen = int(np.quantile(trace.gen_lens[mask], gen_quantile))
        out.append(Workload(prompt_len=cap, gen_len=max(gen, 1), global_batch=batch))
    return out
