"""Workload specs and prompt-length traces."""

from .spec import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD, Workload
from .traces import (
    PromptTrace,
    RequestArrival,
    sample_poisson_arrivals,
    sample_sharegpt_like,
    workloads_from_trace,
)

__all__ = [
    "Workload",
    "DEFAULT_WORKLOAD",
    "SHORT_PROMPT_WORKLOAD",
    "PromptTrace",
    "RequestArrival",
    "sample_poisson_arrivals",
    "sample_sharegpt_like",
    "workloads_from_trace",
]
