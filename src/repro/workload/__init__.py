"""Workload specs and prompt-length traces."""

from .spec import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD, Workload
from .traces import (
    ArrivalTrace,
    PromptTrace,
    RequestArrival,
    concat_arrival_phases,
    load_trace,
    save_trace,
    sample_bursty_arrivals,
    sample_diurnal_arrivals,
    sample_pareto_arrivals,
    sample_poisson_arrivals,
    sample_sharegpt_like,
    workloads_from_trace,
)

__all__ = [
    "Workload",
    "DEFAULT_WORKLOAD",
    "SHORT_PROMPT_WORKLOAD",
    "ArrivalTrace",
    "PromptTrace",
    "RequestArrival",
    "concat_arrival_phases",
    "load_trace",
    "save_trace",
    "sample_bursty_arrivals",
    "sample_diurnal_arrivals",
    "sample_pareto_arrivals",
    "sample_poisson_arrivals",
    "sample_sharegpt_like",
    "workloads_from_trace",
]
