"""Workload specification for the offline serving task.

LLM-PQ targets the *offline* scenario (Sec. 2.3): prompts are padded to a
uniform length ``s``, the number of generated tokens ``n`` is fixed ahead
of time (ORCA protocol — EOS is never emitted early), and the global batch
``b`` is known.  This triple is the entire workload description the
planner needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Workload", "DEFAULT_WORKLOAD", "SHORT_PROMPT_WORKLOAD"]


@dataclass(frozen=True)
class Workload:
    """Offline batch-inference workload.

    Attributes
    ----------
    prompt_len:
        Padded prompt length ``s``.
    gen_len:
        Tokens to generate per request ``n`` (the first comes out of
        prefill, the remaining ``n - 1`` out of decode passes).
    global_batch:
        Requests served together (``b``); micro-batching divides this.
    """

    prompt_len: int
    gen_len: int
    global_batch: int

    def __post_init__(self) -> None:
        if self.prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        if self.gen_len <= 0:
            raise ValueError("gen_len must be positive")
        if self.global_batch <= 0:
            raise ValueError("global_batch must be positive")

    @property
    def max_seq_len(self) -> int:
        """KV slots reserved per request: ``s + n``."""
        return self.prompt_len + self.gen_len

    @property
    def total_generated_tokens(self) -> int:
        """Tokens produced for the whole batch (throughput numerator)."""
        return self.global_batch * self.gen_len

    @property
    def decode_passes(self) -> int:
        """Pipeline passes in the decode phase (prefill yields token 1)."""
        return self.gen_len - 1


#: The paper's default evaluation workload (Sec. 6.1).
DEFAULT_WORKLOAD = Workload(prompt_len=512, gen_len=100, global_batch=32)

#: The Sec. 6.6 short-prompt variant.
SHORT_PROMPT_WORKLOAD = Workload(prompt_len=128, gen_len=200, global_batch=32)
