"""Profiler: collects single-layer latency samples from the (simulated)
devices, the input the latency cost model is fit on.

The paper profiles "each phase on one decoder layer under different
precisions with common prompt lengths and batch sizes" — we sweep the same
grid.  Measurement jitter is modelled as multiplicative log-normal noise
so the regression has something real to smooth over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hardware.gpu import GPUSpec, get_gpu
from ..models.config import ModelConfig
from .latency import LatencyModel, LatencySample

__all__ = ["ProfileGrid", "profile_device", "profile_cluster", "build_latency_model"]

DEFAULT_BITS = (3, 4, 8, 16)


@dataclass(frozen=True)
class ProfileGrid:
    """Sweep ranges for the profiler."""

    batches: Sequence[int] = (1, 2, 4, 8, 16, 32)
    prompt_lens: Sequence[int] = (64, 128, 256, 512, 1024)
    decode_contexts: Sequence[int] = (128, 256, 512, 768, 1024)
    bits: Sequence[int] = DEFAULT_BITS
    noise: float = 0.02


def profile_device(
    gpu: GPUSpec | str,
    cfg: ModelConfig,
    *,
    grid: ProfileGrid | None = None,
    seed: int = 0,
) -> list[LatencySample]:
    """Measure one decoder layer of ``cfg`` across the profile grid."""
    # deferred so importing repro.cost does not pull in the simulators
    from ..sim.kernels import layer_exec_time

    gpu = get_gpu(gpu) if isinstance(gpu, str) else gpu
    grid = grid or ProfileGrid()
    rng = np.random.default_rng(seed)
    samples: list[LatencySample] = []
    for bits in grid.bits:
        for b in grid.batches:
            for s in grid.prompt_lens:
                t = layer_exec_time(
                    gpu, cfg, bits, b, s, s, rng=rng, noise=grid.noise
                )
                samples.append(
                    LatencySample(gpu.name, bits, "prefill", b, s, s, t)
                )
            for c in grid.decode_contexts:
                t = layer_exec_time(
                    gpu, cfg, bits, b, 1, c, rng=rng, noise=grid.noise
                )
                samples.append(
                    LatencySample(gpu.name, bits, "decode", b, 1, c, t)
                )
    return samples


def profile_cluster(
    gpu_types: Sequence[str],
    cfg: ModelConfig,
    *,
    grid: ProfileGrid | None = None,
    seed: int = 0,
) -> list[LatencySample]:
    """Profile one device of each distinct type (others are identical)."""
    samples: list[LatencySample] = []
    for i, name in enumerate(dict.fromkeys(gpu_types)):
        samples.extend(profile_device(name, cfg, grid=grid, seed=seed + i))
    return samples


def build_latency_model(
    gpu_types: Sequence[str],
    cfg: ModelConfig,
    *,
    grid: ProfileGrid | None = None,
    seed: int = 0,
) -> LatencyModel:
    """Profile + fit in one step — the planner's usual entry point."""
    samples = profile_cluster(gpu_types, cfg, grid=grid, seed=seed)
    return LatencyModel(cfg).fit(samples)
