"""Analytical memory cost model (paper Sec. 4.1).

Peak memory of a pipeline stage serving a model shard =

* **weights** of its decoder layers at their assigned bitwidths,
* **KV cache** reserved for the maximum sentence length ``s + n`` for the
  whole global batch (the paper pre-allocates, like FasterTransformer),
* **embedding weights** on the first stage and the LM head on the last
  (for tied embeddings the table is shared but the logit projection's
  output buffer is charged to the last stage),
* **peak temporary memory** — the worst-case operator workspace across
  the prefill and decode phases for the resident layers,
* optionally a **dequantized-weight cache** residency: the runtime's
  hot-path cache of dense ``W_hat`` tensors is ordinary temp memory from
  the planner's point of view, budgeted out of the device's slack via
  :func:`dequant_cache_budget` so serving never exceeds the memory the
  plan was admitted under.

All quantities are bytes.  The model is exact by construction up to the
allocator rounding the simulator applies, which is how the paper's Fig. 7
finds "almost negligible" memory error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..models.config import ModelConfig

__all__ = [
    "StageMemory",
    "weight_bytes",
    "kv_cache_bytes",
    "embedding_bytes",
    "logits_workspace_bytes",
    "temp_bytes_prefill",
    "temp_bytes_decode",
    "dequant_cache_layer_bytes",
    "dequant_cache_bytes",
    "dequant_cache_budget",
    "stage_memory",
    "FRAMEWORK_OVERHEAD_BYTES",
]

#: Bytes per element of a dequantized (dense) weight in the NumPy runtime.
#: Real serving kernels dequantize to FP16; this substrate computes in
#: float64, and the cache budget must bound *actual* resident bytes.
DENSE_WEIGHT_BYTES = 8.0

#: CUDA context + framework baseline carved out of every device.
FRAMEWORK_OVERHEAD_BYTES = 1.0 * 2**30

ACT_BYTES = 2.0  # FP16 activations


def weight_bytes(cfg: ModelConfig, layer_bits: Sequence[int]) -> float:
    """Bytes of decoder-layer weights for a shard at the given bitwidths."""
    return float(sum(cfg.layer_weight_bytes(b) for b in layer_bits))


def kv_cache_bytes(
    cfg: ModelConfig,
    num_layers: int,
    batch: int,
    max_seq_len: int,
    *,
    kv_bits: int = 16,
) -> float:
    """Pre-allocated KV cache for ``num_layers`` resident layers."""
    per_token = cfg.kv_bytes_per_token_per_layer(kv_bits)
    return float(num_layers * batch * max_seq_len * per_token)


def embedding_bytes(cfg: ModelConfig) -> float:
    """Token + position embedding weights (always FP16)."""
    return cfg.embedding_weight_bytes()


def logits_workspace_bytes(cfg: ModelConfig, microbatch: int, q: int) -> float:
    """Output logits buffer ``(mb, q, vocab)`` on the last stage."""
    return microbatch * q * cfg.vocab_size * ACT_BYTES


def temp_bytes_prefill(cfg: ModelConfig, microbatch: int, prompt_len: int) -> float:
    """Worst-case live workspace of one decoder layer during prefill.

    Dominated by the attention score matrix ``(mb, heads, s, s)`` and the
    MLP intermediate ``(mb, s, ffn)``; a handful of hidden-sized tensors
    are live simultaneously.
    """
    h = cfg.hidden_size
    scores = microbatch * cfg.num_heads * prompt_len * prompt_len * ACT_BYTES
    mlp = microbatch * prompt_len * cfg.ffn_dim * ACT_BYTES
    hidden = 4 * microbatch * prompt_len * h * ACT_BYTES
    return float(scores + mlp + hidden)


def temp_bytes_decode(cfg: ModelConfig, microbatch: int, context: int) -> float:
    """Worst-case live workspace of one decoder layer during decode."""
    h = cfg.hidden_size
    scores = microbatch * cfg.num_heads * 1 * context * ACT_BYTES
    mlp = microbatch * 1 * cfg.ffn_dim * ACT_BYTES
    hidden = 4 * microbatch * 1 * h * ACT_BYTES
    return float(scores + mlp + hidden)


def dequant_cache_layer_bytes(
    cfg: ModelConfig, bits: int, *, elem_bytes: float = DENSE_WEIGHT_BYTES
) -> float:
    """Dense bytes one cached (materialized) decoder layer occupies.

    Quantized layers cache the dequantized ``W_hat`` of every dense
    operator plus the fused QKV weight/bias the lean attention path uses;
    16-bit layers keep their float weights resident (already charged as
    ``weight_bytes``) and cache only the fused QKV copy.
    """
    shape = cfg.layer_shape
    h = cfg.hidden_size
    fused = (3 * h * h + 3 * h) * elem_bytes
    if bits >= 16:
        return float(fused)
    return float(shape.linear_params * elem_bytes + fused)


def dequant_cache_bytes(
    cfg: ModelConfig,
    layer_bits: Sequence[int],
    *,
    elem_bytes: float = DENSE_WEIGHT_BYTES,
) -> float:
    """Dense bytes needed to cache *every* resident layer of a shard."""
    return float(
        sum(dequant_cache_layer_bytes(cfg, b, elem_bytes=elem_bytes) for b in layer_bits)
    )


def dequant_cache_budget(
    base: "StageMemory",
    capacity_bytes: float,
    *,
    want_bytes: float | None = None,
) -> float:
    """Byte budget for a stage's dequantized-weight cache.

    The cache is opportunistic temp memory: it may only use the slack the
    planner's own accounting leaves on the device (capacity minus
    framework overhead minus the stage's modeled peak), so serving with
    the cache never exceeds the memory the plan was admitted under.  A
    stage near its cap therefore caches fewer layers — or none.
    ``want_bytes`` (full-cache need, from :func:`dequant_cache_bytes` or
    the loader's measured ledger) caps the budget at what is useful.
    """
    slack = capacity_bytes - FRAMEWORK_OVERHEAD_BYTES - base.total
    budget = max(0.0, float(slack))
    if want_bytes is not None:
        budget = min(budget, float(want_bytes))
    return budget


@dataclass(frozen=True)
class StageMemory:
    """Peak-memory breakdown of one pipeline stage, in bytes."""

    weights: float
    kv_cache: float
    embedding: float
    temp: float
    #: planned dequantized-weight cache residency (0 when not modeled)
    dequant_cache: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components, bytes."""
        return (
            self.weights + self.kv_cache + self.embedding + self.temp
            + self.dequant_cache
        )

    def fits(self, capacity_bytes: float) -> bool:
        """Whether the stage fits a device after framework overhead."""
        return self.total + FRAMEWORK_OVERHEAD_BYTES <= capacity_bytes


def stage_memory(
    cfg: ModelConfig,
    layer_bits: Sequence[int],
    *,
    global_batch: int,
    prompt_len: int,
    gen_len: int,
    prefill_microbatch: int,
    decode_microbatch: int,
    is_first: bool,
    is_last: bool,
    kv_bits: int = 16,
    dequant_cache_budget_bytes: float = 0.0,
) -> StageMemory:
    """Peak memory of a stage holding ``layer_bits`` decoder layers.

    The KV cache is sized for the *global* batch at the maximum sentence
    length ``s + n`` (every request's cache lives on the stage that owns
    the layer).  Temporary memory takes the worst case over both phases,
    evaluated at each phase's own micro-batch size — this is the Sec. 6.3
    effect where smaller prefill micro-batches let an INT8 OPT-13b fit on
    a single V100.
    """
    max_len = prompt_len + gen_len
    w = weight_bytes(cfg, layer_bits)
    kv = kv_cache_bytes(cfg, len(layer_bits), global_batch, max_len, kv_bits=kv_bits)

    emb = 0.0
    if is_first:
        emb += embedding_bytes(cfg)
    if is_last:
        # tied LM head: the matrix is the embedding table; when the stage
        # is not also first it needs its own copy for the projection.
        if not is_first:
            emb += embedding_bytes(cfg)

    temp = 0.0
    if layer_bits:
        temp = max(
            temp_bytes_prefill(cfg, prefill_microbatch, prompt_len),
            temp_bytes_decode(cfg, decode_microbatch, max_len),
        )
    if is_last:
        temp += logits_workspace_bytes(
            cfg, max(prefill_microbatch, decode_microbatch), 1
        )
    return StageMemory(
        weights=w, kv_cache=kv, embedding=emb, temp=temp,
        dequant_cache=float(dequant_cache_budget_bytes),
    )
