"""Latency cost model: linear regression over phase-aware features.

Profiling every (precision, GPU, input-shape) combination for every
candidate partition would be prohibitively slow, so — following Sec. 4.1 —
we fit, per ``(gpu, bitwidth, phase)``, a small linear model

``t ≈ c_flops * FLOPs + c_mem * DRAM-bytes + c_0``

on profiler samples of a *single decoder layer*.  The rationale is the
paper's: GEMMs take >80% of serving latency and scale with FLOPs and
MOPs, the rest scales with MOPs, so the workload is shaped and scaled by
exactly these features.  Coefficients are constrained non-negative
(scipy NNLS) so the model extrapolates sanely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

import numpy as np
from scipy.optimize import nnls

from ..hardware.gpu import GPUSpec
from ..models.config import ModelConfig
from ..ops import ACT_BYTES, layer_memory_traffic

__all__ = ["Phase", "LatencySample", "LatencyModel", "features_for"]

Phase = Literal["prefill", "decode"]


@dataclass(frozen=True)
class LatencySample:
    """One profiled observation of a single decoder layer."""

    gpu_name: str
    bits: int
    phase: Phase
    batch: int
    q: int
    context: int
    seconds: float


def features_for(
    cfg: ModelConfig,
    bits: int,
    batch: int,
    q: int,
    context: int,
    *,
    kv_bits: int = 16,
) -> np.ndarray:
    """Feature vector ``[FLOPs, bytes, 1]`` for one layer invocation.

    ``kv_bits`` shrinks the KV term of the byte feature, so predictions
    made from fp16-profiled coefficients honor a plan's quantized KV
    stream through the fitted ``c_mem`` coefficient.
    """
    flops = cfg.layer_flops(batch, q, context)
    mem = layer_memory_traffic(cfg, bits, batch, q, context, kv_bits=kv_bits)
    return np.array([flops, mem, 1.0])


@dataclass
class LatencyModel:
    """Per-(gpu, bits, phase) NNLS regression of layer execution time.

    Build with :meth:`fit` on profiler samples, then query with
    :meth:`predict_layer` / :meth:`predict_layers`.  ``residual_stats``
    records in-sample relative error per key for diagnostics.
    """

    cfg: ModelConfig
    coef: dict[tuple[str, int, str], np.ndarray] = field(default_factory=dict)
    residual_stats: dict[tuple[str, int, str], float] = field(default_factory=dict)

    def fit(self, samples: Iterable[LatencySample]) -> "LatencyModel":
        """NNLS-fit one coefficient vector per (gpu, bits, phase) group."""
        groups: dict[tuple[str, int, str], list[LatencySample]] = {}
        for s in samples:
            groups.setdefault((s.gpu_name, s.bits, s.phase), []).append(s)
        if not groups:
            raise ValueError("no samples to fit")
        for key, rows in groups.items():
            if len(rows) < 3:
                raise ValueError(f"need >=3 samples per key, got {len(rows)} for {key}")
            X = np.vstack(
                [features_for(self.cfg, s.bits, s.batch, s.q, s.context) for s in rows]
            )
            y = np.array([s.seconds for s in rows])
            # scale columns for conditioning; NNLS keeps coefficients >= 0
            col_scale = X.max(axis=0)
            col_scale[col_scale == 0] = 1.0
            beta_scaled, _ = nnls(X / col_scale, y)
            beta = beta_scaled / col_scale
            self.coef[key] = beta
            pred = X @ beta
            self.residual_stats[key] = float(
                np.mean(np.abs(pred - y) / np.maximum(y, 1e-12))
            )
        return self

    # ------------------------------------------------------------------
    def _key(self, gpu: GPUSpec | str, bits: int, phase: Phase) -> tuple[str, int, str]:
        name = gpu if isinstance(gpu, str) else gpu.name
        key = (name, bits, phase)
        if key not in self.coef:
            known = sorted({k[0] for k in self.coef})
            raise KeyError(f"no coefficients for {key}; profiled GPUs: {known}")
        return key

    def predict_layer(
        self,
        gpu: GPUSpec | str,
        bits: int,
        phase: Phase,
        batch: int,
        q: int,
        context: int,
        *,
        kv_bits: int = 16,
    ) -> float:
        """Predicted seconds for one layer invocation."""
        beta = self.coef[self._key(gpu, bits, phase)]
        return float(
            features_for(self.cfg, bits, batch, q, context, kv_bits=kv_bits) @ beta
        )

    def predict_layers(
        self,
        gpu: GPUSpec | str,
        layer_bits: Iterable[int],
        phase: Phase,
        batch: int,
        q: int,
        context: int,
        *,
        kv_bits: int = 16,
    ) -> float:
        """Predicted seconds for a shard = sum over its layers' bits."""
        return float(
            sum(
                self.predict_layer(gpu, b, phase, batch, q, context, kv_bits=kv_bits)
                for b in layer_bits
            )
        )

    def _decode_feature_matrix(
        self,
        bits: int,
        batch: int | np.ndarray,
        contexts: np.ndarray,
        *,
        kv_bits: int = 16,
    ) -> np.ndarray:
        """``(K, 3)`` decode feature rows, stacked analytically.

        Builds the same rows :func:`features_for` would produce at
        ``q=1`` for each (truncated) context — term for term, in the same
        association order, so every entry is bitwise equal to the
        per-context Python loop it replaces.

        ``batch`` may be a ``(K,)`` vector aligned with ``contexts`` —
        the batched-decode pricing shape: every per-request term (FLOPs,
        activations, scores, KV write/read) scales with that row's
        batch, while the weight stream ``w_bytes`` is charged once per
        iteration regardless of how many requests share it.  Scalar
        ``batch`` stays bitwise identical to the original path.
        """
        cfg = self.cfg
        ctx = np.trunc(np.asarray(contexts, dtype=np.float64))  # int(c) semantics
        batch = np.asarray(batch, dtype=np.float64) if np.ndim(batch) else batch
        h, f = cfg.hidden_size, cfg.ffn_dim
        q = 1
        # layer_flops: proj + attn + mlp, attn is the only context term
        proj = 8.0 * q * h * h
        attn = 4.0 * q * ctx * h
        mlp = 4.0 * q * h * f
        flops = batch * (proj + attn + mlp)
        # scores and kv_read scale with c; the KV stream is priced at the
        # plan's bitwidth via the shared per-token formula
        kv_token = cfg.kv_bytes_per_token_per_layer(kv_bits)
        w_bytes = cfg.layer_weight_bytes(bits)
        act = batch * q * (6 * h + 2 * f) * ACT_BYTES
        scores = batch * cfg.num_heads * q * ctx * ACT_BYTES * 2
        kv_write = batch * q * kv_token
        kv_read = batch * ctx * kv_token
        mem = w_bytes + act + scores + kv_write + kv_read
        return np.stack([flops, mem, np.ones_like(ctx)], axis=1)

    def decode_step_times(
        self,
        gpu: GPUSpec | str,
        bits: int,
        batch: int | np.ndarray,
        contexts: np.ndarray,
        *,
        kv_bits: int = 16,
    ) -> np.ndarray:
        """Vectorized decode predictions across context lengths.

        ``batch`` may be a per-row vector aligned with ``contexts`` (see
        :meth:`_decode_feature_matrix`): one fused iteration per row,
        weight bytes charged once per row, per-request terms scaled by
        that row's in-flight count.
        """
        beta = self.coef[self._key(gpu, bits, "decode")]
        return self._decode_feature_matrix(bits, batch, contexts, kv_bits=kv_bits) @ beta

    def max_relative_residual(self) -> float:
        """Worst in-sample mean relative error across fitted groups."""
        return max(self.residual_stats.values()) if self.residual_stats else float("nan")
