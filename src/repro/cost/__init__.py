"""Cost models: analytical memory and regressed latency (paper Sec. 4.1)."""

from .memory import (
    FRAMEWORK_OVERHEAD_BYTES,
    StageMemory,
    dequant_cache_budget,
    dequant_cache_bytes,
    dequant_cache_layer_bytes,
    embedding_bytes,
    kv_cache_bytes,
    logits_workspace_bytes,
    stage_memory,
    temp_bytes_decode,
    temp_bytes_prefill,
    weight_bytes,
)
from .latency import LatencyModel, LatencySample, Phase, features_for
from .predictions import PredictionCache
from .profiler import ProfileGrid, build_latency_model, profile_cluster, profile_device
from .stagecosts import StageCostModel, planner_time_tables

__all__ = [
    "StageMemory",
    "stage_memory",
    "weight_bytes",
    "kv_cache_bytes",
    "embedding_bytes",
    "logits_workspace_bytes",
    "temp_bytes_prefill",
    "temp_bytes_decode",
    "dequant_cache_layer_bytes",
    "dequant_cache_bytes",
    "dequant_cache_budget",
    "FRAMEWORK_OVERHEAD_BYTES",
    "LatencyModel",
    "LatencySample",
    "Phase",
    "features_for",
    "PredictionCache",
    "StageCostModel",
    "planner_time_tables",
    "ProfileGrid",
    "profile_device",
    "profile_cluster",
    "build_latency_model",
]
