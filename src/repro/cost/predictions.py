"""Memoized, vectorized front-end to the latency cost model.

Algorithm 1 queries :meth:`LatencyModel.predict_layer` with a very small
set of distinct arguments — ``(gpu type, bits, phase, micro-batch,
q, context)`` — yet the legacy planner re-evaluated them from scratch for
every (ordering, micro-batch) candidate: ``O(candidates x devices x
bits)`` scalar feature builds and dot products.  The keys repeat because
candidates only vary the *order* of the same device types and share the
micro-batch menu.

:class:`PredictionCache` memoizes each distinct key once per planner run
and fills whole ``(device, bits)`` coefficient tables with one matrix
product per GPU type instead of per-cell Python calls.  The cached
values are exactly the floats ``predict_layer`` returns (same feature
vector, same dot product), which is what lets the search engine promise
bit-identical plans to the uncached path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..models.config import ModelConfig
from .latency import LatencyModel, Phase, features_for

__all__ = ["PredictionCache"]

#: cache key: (gpu type, bits, phase, micro-batch, q tokens, context, kv bits)
_Key = tuple[str, int, str, int, int, int, int]


@dataclass
class PredictionCache:
    """Shared per-(gpu, bits, phase, shape) layer-time memo.

    One instance is shared across every candidate of a planner run (and
    is cheap to keep around longer — entries are immutable floats).
    ``hits``/``misses`` feed the planner's :class:`PlannerStats`.
    """

    model: LatencyModel
    _times: dict[_Key, float] = field(default_factory=dict)
    _features: dict[tuple[int, int, int, int, int], np.ndarray] = field(
        default_factory=dict
    )
    hits: int = 0
    misses: int = 0

    @property
    def cfg(self) -> ModelConfig:
        """Model architecture the underlying cost model was fitted for."""
        return self.model.cfg

    def _feature(
        self, bits: int, batch: int, q: int, context: int, kv_bits: int = 16
    ) -> np.ndarray:
        key = (bits, batch, q, context, kv_bits)
        feat = self._features.get(key)
        if feat is None:
            feat = features_for(self.cfg, bits, batch, q, context, kv_bits=kv_bits)
            self._features[key] = feat
        return feat

    # ------------------------------------------------------------------
    def layer_time(
        self,
        gpu_name: str,
        bits: int,
        phase: Phase,
        batch: int,
        q: int,
        context: int,
        kv_bits: int = 16,
    ) -> float:
        """Memoized ``predict_layer`` for one key."""
        key = (gpu_name, bits, phase, batch, q, context, kv_bits)
        t = self._times.get(key)
        if t is not None:
            self.hits += 1
            return t
        self.misses += 1
        beta = self.model.coef[self.model._key(gpu_name, bits, phase)]
        t = float(self._feature(bits, batch, q, context, kv_bits) @ beta)
        self._times[key] = t
        return t

    def layer_time_table(
        self,
        gpu_names: Sequence[str],
        bits: Sequence[int],
        phase: Phase,
        batch: int,
        q: int,
        context: int,
        kv_bits: int = 16,
    ) -> np.ndarray:
        """``(len(gpu_names), len(bits))`` layer-time table, one planner
        coefficient block.

        Missing cells for one GPU are filled with a single ``(nB, 3) @
        (3,)`` matrix product — row ``k`` of that product is the same
        3-term dot product ``predict_layer`` computes, so cached and
        uncached paths agree bitwise.
        """
        out = np.empty((len(gpu_names), len(bits)))
        for j, name in enumerate(gpu_names):
            missing = [
                k
                for k, b in enumerate(bits)
                if (name, b, phase, batch, q, context, kv_bits) not in self._times
            ]
            if missing:
                feats = np.stack(
                    [self._feature(bits[k], batch, q, context, kv_bits) for k in missing]
                )
                for row, k in enumerate(missing):
                    beta = self.model.coef[self.model._key(name, bits[k], phase)]
                    self._times[
                        (name, bits[k], phase, batch, q, context, kv_bits)
                    ] = float(feats[row] @ beta)
                self.misses += len(missing)
                self.hits += len(bits) - len(missing)
            else:
                self.hits += len(bits)
            for k, b in enumerate(bits):
                out[j, k] = self._times[(name, b, phase, batch, q, context, kv_bits)]
        return out

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Distinct keys currently memoized."""
        return len(self._times)

    def stats(self) -> dict[str, int]:
        """Hit/miss counters for diagnostics."""
        return {"hits": self.hits, "misses": self.misses, "size": self.size}
