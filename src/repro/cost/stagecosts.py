"""Single source of truth for per-stage serving costs.

The paper's argument (Sec. 4.1 + Fig. 7) only holds if the planner, the
simulators, and the runtime's admission control all price a plan with the
*same* cost model.  Before this module, the per-stage prefill/decode busy
times, boundary comm, and KV/memory charges were re-derived independently
in four places; :class:`StageCostModel` replaces all of them.

Given an :class:`~repro.core.plan.ExecutionPlan` (plus a
:class:`~repro.hardware.cluster.Cluster` when comm times are needed) it
produces every cost view the consumers need:

* ``stage_prefill_times()`` / ``stage_decode_times(contexts)`` — the
  offline pipeline's per-stage busy-time tables (embedding/logit work on
  the head/tail stages and boundary comm folded in), vectorized over the
  full ``s+1 .. s+n`` context sweep;
* ``unit_prefill_times`` / ``unit_decode_times`` — the continuous
  (iteration-level) scheduler's batch-1 prefill unit and fused decode
  group, with a precomputed per-(stage, bits) constant table that turns
  per-iteration pricing into a cheap lookup;
* ``stage_memory_views`` / ``batch_fits`` / ``max_admissible_batch`` /
  ``kv_headroom`` / ``request_kv_bytes`` — the planner's Sec.-4.1 memory
  accounting, shared verbatim by the online simulator and the real
  :class:`~repro.runtime.scheduler.ContinuousScheduler`.

The time source is selectable: ``source="kernels"`` prices with the
ground-truth roofline kernels (the simulated hardware), ``source="model"``
with a fitted :class:`~repro.cost.latency.LatencyModel` — the planner's
view of the world — memoized through the existing
:class:`~repro.cost.predictions.PredictionCache` so planner and evaluator
literally share floats.  Every formula here is kept bit-identical to the
pre-refactor per-consumer copies; ``tests/sim/test_costview_equality.py``
pins that down against committed goldens.

Simulator modules are imported lazily inside methods, so cost- or
workload-only users never pay the ``repro.sim`` import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..models.registry import get_model
from ..ops import ACT_BYTES
from .latency import LatencyModel, Phase
from .memory import (
    FRAMEWORK_OVERHEAD_BYTES,
    StageMemory,
    kv_cache_bytes,
    stage_memory,
)
from .predictions import PredictionCache

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no cycles
    from ..core.plan import ExecutionPlan
    from ..hardware.cluster import Cluster
    from ..models.config import ModelConfig

__all__ = ["StageCostModel", "planner_time_tables"]


class StageCostModel:
    """Vectorized, memoized per-stage cost tables for one plan.

    Parameters
    ----------
    plan:
        The execution plan being priced.
    cluster:
        Required for any view that includes boundary comm times
        (``stage_*_times``, ``unit_*_times``); memory-only consumers may
        omit it.
    source:
        ``"kernels"`` (default) prices layer times with the ground-truth
        roofline kernels; ``"model"`` with the fitted latency model.
        Defaults to ``"model"`` when ``latency_model``/``prediction_cache``
        is given.
    latency_model / prediction_cache:
        The fitted cost model and its shared memo for ``source="model"``.
        Passing only a cache implies its model; passing only a model
        wraps it in a fresh cache.
    cfg:
        Architecture override for plans whose ``model_name`` is not in
        the registry (the runtime's tiny test models).
    cache:
        ``False`` disables every memo — each query recomputes from
        scratch, reproducing the pre-refactor per-call cost.  Used as the
        baseline in ``benchmarks/test_ext_costview.py``.
    decode_batching:
        How decode iterations execute on the runtime being priced.
        ``"fused"`` (default, and the runtime's default) charges the
        stage weight stream once per iteration — the whole in-flight
        batch shares each layer's weight read; ``"per-request"`` prices
        the batch-1 oracle path, where a batch-``b`` iteration is ``b``
        sequential batch-1 messages and therefore costs exactly
        ``b * unit_decode_times(1, ctx)``.
    """

    def __init__(
        self,
        plan: "ExecutionPlan",
        cluster: "Cluster | None" = None,
        *,
        source: str | None = None,
        latency_model: LatencyModel | None = None,
        prediction_cache: PredictionCache | None = None,
        cfg: "ModelConfig | None" = None,
        cache: bool = True,
        decode_batching: str = "fused",
    ) -> None:
        if decode_batching not in ("fused", "per-request"):
            raise ValueError(f"unknown decode_batching {decode_batching!r}")
        if prediction_cache is not None and latency_model is None:
            latency_model = prediction_cache.model
        if source is None:
            source = "model" if latency_model is not None else "kernels"
        if source not in ("kernels", "model"):
            raise ValueError(f"unknown cost source {source!r}")
        if source == "model":
            if latency_model is None:
                raise ValueError(
                    "source='model' needs a latency_model or prediction_cache"
                )
            if prediction_cache is None:
                prediction_cache = PredictionCache(latency_model)
        self.plan = plan
        self.cluster = cluster
        self.cfg = cfg if cfg is not None else get_model(plan.model_name)
        self.source = source
        self.model = latency_model
        self.prediction_cache = prediction_cache
        self.cache_enabled = bool(cache)
        self.decode_batching = decode_batching
        self.kv_bits = int(plan.meta.get("kv_bits", 16))
        # Per-stage KV bitwidths.  ``StagePlan.kv_bits`` is the first-class
        # plan variable and drives both memory and timing; the plan-global
        # ``meta["kv_bits"]`` is the legacy memory-only knob and still
        # applies wherever a stage is left at the fp16 default.
        self._mem_kv = tuple(
            s.kv_bits if s.kv_bits < 16 else self.kv_bits for s in plan.stages
        )
        self._time_kv = tuple(s.kv_bits for s in plan.stages)
        self._gpus = [s.device.spec for s in plan.stages]
        self._links = None
        # shape-keyed memos (shared with per-wave derivatives, see derive())
        self._emb_memo: dict = {}
        self._comm_memo: dict = {}
        self._unit_prefill_memo: dict = {}
        self._charge_memo: dict = {}
        self._mem_memo: dict = {}
        self._pairs = None
        self._decode_extra_memo: dict = {}
        self._batch_consts_memo = None
        # plan-workload-specific memos (never shared)
        self._fits_memo: dict = {}
        self._views = None
        self._headroom_base = None

    # ------------------------------------------------------------------
    # infrastructure
    # ------------------------------------------------------------------
    def _require_links(self):
        if self._links is None:
            if self.cluster is None:
                raise ValueError(
                    "comm times need a Cluster; construct the StageCostModel "
                    "with cluster=..."
                )
            from ..sim.comm import boundary_links

            self._links = boundary_links(
                self.cluster, [s.device for s in self.plan.stages]
            )
        return self._links

    def comm_time(self, j: int, microbatch: int, q: int) -> float:
        """Boundary ``j``'s activation-transfer time for one micro-batch."""
        key = (j, microbatch, q)
        t = self._comm_memo.get(key)
        if t is None:
            from ..sim.comm import stage_comm_time

            t = stage_comm_time(self._require_links()[j], self.cfg, microbatch, q)
            if self.cache_enabled:
                self._comm_memo[key] = t
        return t

    def _emb_time(self, j: int, batch: int, q: int, with_logits: bool) -> float:
        gpu = self._gpus[j]
        key = (gpu.name, batch, q, with_logits)
        t = self._emb_memo.get(key)
        if t is None:
            from ..sim.kernels import embedding_exec_time

            t = embedding_exec_time(gpu, self.cfg, batch, q, with_logits=with_logits)
            if self.cache_enabled:
                self._emb_memo[key] = t
        return t

    def layer_time(
        self,
        j: int,
        bits: int,
        phase: Phase,
        batch: int,
        q: int,
        context: int,
        *,
        kv_bits: int = 16,
    ) -> float:
        """Seconds for one layer of stage ``j`` under the active source."""
        gpu = self._gpus[j]
        if self.source == "model":
            return self.prediction_cache.layer_time(
                gpu.name, bits, phase, batch, q, context, kv_bits
            )
        from ..sim.kernels import layer_exec_time

        return layer_exec_time(gpu, self.cfg, bits, batch, q, context, kv_bits=kv_bits)

    def _stage_layers_prefill(self, j: int, batch: int, s: int) -> float:
        stage = self.plan.stages[j]
        kv = self._time_kv[j]
        if self.source == "model":
            gpu = self._gpus[j]
            return float(
                sum(
                    self.prediction_cache.layer_time(
                        gpu.name, b, "prefill", batch, s, s, kv
                    )
                    for b in stage.layer_bits
                )
            )
        from ..sim.kernels import layer_exec_time

        gpu = self._gpus[j]
        return sum(
            layer_exec_time(gpu, self.cfg, b, batch, s, s, kv_bits=kv)
            for b in stage.layer_bits
        )

    def _decode_sweep(
        self, j: int, bits: int, batch: int, contexts: np.ndarray
    ) -> np.ndarray:
        gpu = self._gpus[j]
        kv = self._time_kv[j]
        if self.source == "model":
            return self.model.decode_step_times(gpu, bits, batch, contexts, kv_bits=kv)
        from ..sim.kernels import layer_exec_times_decode_sweep

        return layer_exec_times_decode_sweep(
            gpu, self.cfg, bits, batch, contexts, kv_bits=kv
        )

    # ------------------------------------------------------------------
    # offline pipeline tables (analytic simulator + DES)
    # ------------------------------------------------------------------
    def stage_prefill_times(self, *, include_comm: bool = True) -> np.ndarray:
        """Per-micro-batch prefill busy time per stage, comm folded into
        the sender for every boundary but the last (the closed form's
        convention)."""
        plan = self.plan
        mb, s = plan.prefill_microbatch, plan.workload.prompt_len
        n = plan.num_stages
        out = np.empty(n)
        for j in range(n):
            t = self._stage_layers_prefill(j, mb, s)
            if j == 0:
                t += self._emb_time(j, mb, s, False)
            if j == n - 1:
                # only the last position's logits are needed out of prefill
                t += self._emb_time(j, mb, 1, True)
            if include_comm and j < n - 1:
                t += self.comm_time(j, mb, s)
            out[j] = t
        return out

    def stage_decode_times(
        self, contexts: np.ndarray, *, include_comm: bool = True
    ) -> np.ndarray:
        """``(num_stages, len(contexts))`` decode busy-time table.

        Row ``j`` prices every context in the sweep on stage ``j`` at the
        plan's decode micro-batch; the tail->head token feedback rides the
        last link, so comm is charged on every boundary.
        """
        contexts = np.asarray(contexts, dtype=np.float64)
        plan = self.plan
        mb = plan.decode_microbatch
        n = plan.num_stages
        out = np.empty((n, contexts.size))
        for j in range(n):
            total = np.zeros_like(contexts, dtype=np.float64)
            for bits, count in plan.stages[j].bit_counts.items():
                total += count * self._decode_sweep(j, bits, mb, contexts)
            extra = 0.0
            if j == 0:
                extra += self._emb_time(j, mb, 1, False)
            if j == n - 1:
                extra += self._emb_time(j, mb, 1, True)
            row = total + extra
            if include_comm:
                row = row + self.comm_time(j, mb, 1)
            out[j] = row
        return out

    def prefill_comm_times(self) -> np.ndarray:
        """Per-boundary prefill transfer times (0 on the last boundary) —
        what the DES peels off the busy time under ``async_comm``."""
        plan = self.plan
        n = plan.num_stages
        out = np.zeros(n)
        for j in range(n - 1):
            out[j] = self.comm_time(j, plan.prefill_microbatch, plan.workload.prompt_len)
        return out

    def decode_comm_times(self) -> np.ndarray:
        """Per-boundary decode transfer times (every link, incl. feedback)."""
        plan = self.plan
        n = plan.num_stages
        out = np.zeros(n)
        for j in range(n):
            out[j] = self.comm_time(j, plan.decode_microbatch, 1)
        return out

    # ------------------------------------------------------------------
    # continuous-batching units (iteration-level scheduling)
    # ------------------------------------------------------------------
    def unit_prefill_times(self, prompt_len: int) -> np.ndarray:
        """Per-stage busy time of one batch-1 prefill unit at its own
        ``s``.  Memoized per prompt length; treat the result as
        read-only."""
        out = self._unit_prefill_memo.get(prompt_len)
        if out is not None:
            return out
        n = self.plan.num_stages
        out = np.zeros(n)
        for j in range(n):
            t = self._stage_layers_prefill(j, 1, prompt_len)
            if j == 0:
                t += self._emb_time(j, 1, prompt_len, False)
            if j == n - 1:
                t += self._emb_time(j, 1, 1, True)
            if j < n - 1:
                t += self.comm_time(j, 1, prompt_len)
            out[j] = t
        if self.cache_enabled:
            self._unit_prefill_memo[prompt_len] = out
        return out

    def _decode_pairs(self):
        """Flattened per-(stage, bits) roofline constants for the fast
        decode-unit path — everything in the kernel formula that does not
        depend on (batch, context)."""
        if self._pairs is None:
            from ..sim.kernels import KERNELS_PER_LAYER

            stage_of: list[int] = []
            counts: list[int] = []
            eff_flops: list[float] = []
            w_term: list[float] = []
            eff_bw: list[float] = []
            launch: list[float] = []
            kv_token: list[float] = []
            for j, stage in enumerate(self.plan.stages):
                gpu = self._gpus[j]
                for bits, count in stage.bit_counts.items():
                    stage_of.append(j)
                    counts.append(count)
                    eff_flops.append(gpu.effective_flops(bits))
                    w_term.append(
                        self.cfg.layer_weight_bytes(bits)
                        / gpu.effective_weight_bandwidth(bits)
                    )
                    eff_bw.append(gpu.effective_bandwidth)
                    launch.append(KERNELS_PER_LAYER * gpu.kernel_launch_overhead)
                    kv_token.append(
                        self.cfg.kv_bytes_per_token_per_layer(self._time_kv[j])
                    )
            self._pairs = (
                stage_of,
                counts,
                np.array(eff_flops),
                np.array(w_term),
                np.array(eff_bw),
                np.array(launch),
                np.array(kv_token),
            )
        return self._pairs

    def unit_decode_times(self, batch: int, context: float) -> np.ndarray:
        """Per-stage busy time of one decode iteration at ``context``.

        Under the default ``decode_batching="fused"`` the whole batch
        shares each layer's weight stream (charged once, in ``w_term``);
        under ``"per-request"`` the iteration is ``batch`` sequential
        batch-1 messages — ``batch`` layer passes, embeddings and token
        feedbacks — priced exactly as ``batch * unit_decode_times(1,
        ctx)``.

        With the kernels source and caching on, this is the shared-table
        fast path: one vectorized roofline evaluation over all
        (stage, bits) pairs using the precomputed constants — bit-identical
        to the scalar per-layer path, which remains the reference for
        ``source="model"`` and ``cache=False``.
        """
        if self.decode_batching == "per-request" and batch != 1:
            return float(batch) * self.unit_decode_times(1, context)
        n = self.plan.num_stages
        if self.source == "model" or not self.cache_enabled:
            ctx = np.array([context], dtype=np.float64)
            out = np.zeros(n)
            for j, stage in enumerate(self.plan.stages):
                t = 0.0
                for bits, count in stage.bit_counts.items():
                    t += count * float(self._decode_sweep(j, bits, batch, ctx)[0])
                if j == 0:
                    t += self._emb_time(j, batch, 1, False)
                if j == n - 1:
                    t += self._emb_time(j, batch, 1, True)
                # the tail->head token feedback rides the last link
                t += self.comm_time(j, batch, 1)
                out[j] = t
            return out
        stage_of, counts, eff_flops, w_term, eff_bw, launch, kv_token = (
            self._decode_pairs()
        )
        cfg = self.cfg
        h = cfg.hidden_size
        context = float(context)
        flops = cfg.layer_flops(batch, 1, 0) + 4.0 * batch * h * context
        compute_t = flops / eff_flops
        # the KV stream is priced at each stage's own bitwidth via the
        # precomputed per-pair per-token byte constant
        fixed = batch * 1 * (6 * h + 2 * cfg.ffn_dim) * ACT_BYTES + batch * kv_token
        per_ctx = (
            batch * cfg.num_heads * context * ACT_BYTES * 2
            + batch * context * kv_token
        )
        mem_t = w_term + (fixed + per_ctx) / eff_bw
        vals = np.maximum(compute_t, mem_t) + launch
        out = np.zeros(n)
        for i, j in enumerate(stage_of):
            out[j] += counts[i] * float(vals[i])
        out[0] += self._emb_time(0, batch, 1, False)
        out[n - 1] += self._emb_time(n - 1, batch, 1, True)
        for j in range(n):
            out[j] += self.comm_time(j, batch, 1)
        return out

    def unit_decode_times_batch(
        self, batches: np.ndarray, contexts: np.ndarray
    ) -> np.ndarray:
        """``(k, num_stages)`` decode-unit table: row ``i`` equals
        ``unit_decode_times(batches[i], contexts[i])`` bit-for-bit.

        The vectorized online engine prices whole decode runs through this
        one call.  With the kernels source and caching on, the roofline is
        evaluated as a ``(k, pairs)`` matrix against the precomputed
        per-(stage, bits) constants; per-batch embedding/comm add-ons come
        from small per-distinct-batch tables.  Every floating-point
        operation mirrors the scalar path's order, so equality is exact,
        not approximate.
        """
        b = np.asarray(batches, dtype=np.int64)
        c = np.asarray(contexts, dtype=np.float64)
        if b.shape != c.shape or b.ndim != 1:
            raise ValueError("batches/contexts must be aligned 1-D arrays")
        n = self.plan.num_stages
        k = b.size
        if self.source == "model" or not self.cache_enabled:
            out = np.zeros((k, n))
            for i in range(k):
                # dispatches per decode_batching through the scalar path
                out[i] = self.unit_decode_times(int(b[i]), float(c[i]))
            return out
        if self.decode_batching == "per-request":
            # b sequential batch-1 iterations: the same float(b) * unit(1)
            # product as the scalar path, evaluated on fused batch-1 rows
            base = self._fused_unit_rows(np.ones_like(b), c)
            return b[:, None].astype(np.float64) * base
        return self._fused_unit_rows(b, c)

    def _fused_unit_rows(self, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Fused-mode ``(k, num_stages)`` decode rows (fast path body)."""
        n = self.plan.num_stages
        counts_f, seg_starts, one_layer_flops, h, ffn, heads = self._batch_consts()
        _, _, eff_flops, w_term, eff_bw, launch, kv_token = self._decode_pairs()
        bc = b[:, None].astype(np.float64)
        cc = c[:, None]
        # layer_flops(b, 1, 0) == b * layer_flops(1, 1, 0) exactly: the
        # scalar path multiplies the int batch into one float constant
        flops = bc * one_layer_flops + 4.0 * bc * h * cc
        compute_t = flops / eff_flops[None, :]
        fixed = bc * 1 * (6 * h + 2 * ffn) * ACT_BYTES + bc * kv_token[None, :]
        per_ctx = bc * heads * cc * ACT_BYTES * 2 + bc * cc * kv_token[None, :]
        mem_t = w_term[None, :] + (fixed + per_ctx) / eff_bw[None, :]
        vals = np.maximum(compute_t, mem_t) + launch[None, :]
        # fold pairs into their stages: reduceat's left fold over each
        # contiguous stage segment matches the scalar ``out[j] +=`` chain
        out = np.add.reduceat(vals * counts_f[None, :], seg_starts, axis=1)
        extras = self._decode_extra_tables(b)
        out[:, 0] += extras[:, 0]
        out[:, n - 1] += extras[:, 1]
        out += extras[:, 2:]
        return out

    def _batch_consts(self):
        """Scalar constants hoisted out of the batched roofline (pair
        counts as floats, reduceat stage offsets, model dims)."""
        consts = self._batch_consts_memo
        if consts is None:
            stage_of, counts, *_ = self._decode_pairs()
            seg = np.flatnonzero(np.r_[1, np.diff(stage_of)])
            consts = (
                np.array(counts, dtype=np.float64),
                seg,
                self.cfg.layer_flops(1, 1, 0),
                self.cfg.hidden_size,
                self.cfg.ffn_dim,
                self.cfg.num_heads,
            )
            self._batch_consts_memo = consts
        return consts

    def _decode_extra_tables(self, batches: np.ndarray) -> np.ndarray:
        """Per-row embedding/comm decode add-ons as a gather from a dense
        per-batch-size memo: columns ``(emb_first, emb_last, comm...)``."""
        n = self.plan.num_stages
        top = int(batches.max()) + 1
        table = self._decode_extra_memo.get("table")
        if table is None or table.shape[0] < top:
            grown = np.full((max(top, 64), n + 2), np.nan)
            if table is not None:
                grown[: table.shape[0]] = table
            table = grown
            if self.cache_enabled:
                self._decode_extra_memo["table"] = table
        rows = table[batches]
        hole = np.isnan(rows[:, 0])
        if hole.any():
            for bval in np.unique(batches[hole]).tolist():
                row = table[bval]
                row[0] = self._emb_time(0, bval, 1, False)
                row[1] = self._emb_time(n - 1, bval, 1, True)
                for j in range(n):
                    row[2 + j] = self.comm_time(j, bval, 1)
            rows = table[batches]
        return rows

    # ------------------------------------------------------------------
    # memory views (planner Sec.-4.1 accounting)
    # ------------------------------------------------------------------
    def stage_memory_at(
        self,
        j: int,
        *,
        global_batch: int,
        prompt_len: int,
        gen_len: int,
        prefill_microbatch: int,
        decode_microbatch: int,
    ) -> StageMemory:
        """Stage ``j``'s modeled peak memory at an arbitrary shape."""
        key = (j, global_batch, prompt_len, gen_len, prefill_microbatch, decode_microbatch)
        m = self._mem_memo.get(key)
        if m is None:
            m = stage_memory(
                self.cfg,
                self.plan.stages[j].layer_bits,
                global_batch=global_batch,
                prompt_len=prompt_len,
                gen_len=gen_len,
                prefill_microbatch=prefill_microbatch,
                decode_microbatch=decode_microbatch,
                is_first=(j == 0),
                is_last=(j == self.plan.num_stages - 1),
                kv_bits=self._mem_kv[j],
            )
            if self.cache_enabled:
                self._mem_memo[key] = m
        return m

    def stage_memory_views(self) -> tuple[StageMemory, ...]:
        """Every stage's peak memory at the plan's own workload/shape."""
        if self._views is not None:
            return self._views
        p = self.plan
        w = p.workload
        views = tuple(
            self.stage_memory_at(
                j,
                global_batch=w.global_batch,
                prompt_len=w.prompt_len,
                gen_len=w.gen_len,
                prefill_microbatch=p.prefill_microbatch,
                decode_microbatch=p.decode_microbatch,
            )
            for j in range(p.num_stages)
        )
        if self.cache_enabled:
            self._views = views
        return views

    def batch_fits(self, global_batch: int, prompt_len: int, gen_len: int) -> bool:
        """Whether a ``global_batch`` at (s, n) fits every stage, with
        micro-batches clamped to the batch (the wave-admission check)."""
        key = (global_batch, prompt_len, gen_len)
        ok = self._fits_memo.get(key)
        if ok is None:
            p = self.plan
            ok = True
            for j, stage in enumerate(p.stages):
                mem = self.stage_memory_at(
                    j,
                    global_batch=global_batch,
                    prompt_len=prompt_len,
                    gen_len=gen_len,
                    prefill_microbatch=min(p.prefill_microbatch, global_batch),
                    decode_microbatch=min(p.decode_microbatch, global_batch),
                )
                if not mem.fits(stage.device.spec.memory_bytes):
                    ok = False
                    break
            if self.cache_enabled:
                self._fits_memo[key] = ok
        return ok

    def max_admissible_batch(
        self, *, prompt_len: int, gen_len: int, cap: int = 256
    ) -> int:
        """Largest concurrent batch the plan's memory headroom admits."""
        best = 0
        for b in range(1, cap + 1):
            if not self.batch_fits(b, prompt_len, gen_len):
                break
            best = b
        return best

    def kv_headroom(
        self, dequant_cache_budgets: "Sequence[float] | None" = None
    ) -> np.ndarray:
        """Per-stage KV byte pool under the planner's accounting.

        Device capacity minus framework overhead minus every non-KV
        component of the stage's batch-1 modeled peak — and, when the
        runtime carries dequant-weight caches, minus their actual byte
        budgets.  The pool the iteration-level admission control hands
        out in :meth:`request_kv_bytes` slices.
        """
        base = self._headroom_base
        if base is None:
            w = self.plan.workload
            base = np.zeros(self.plan.num_stages)
            for j, stage in enumerate(self.plan.stages):
                m = self.stage_memory_at(
                    j,
                    global_batch=1,
                    prompt_len=w.prompt_len,
                    gen_len=w.gen_len,
                    prefill_microbatch=1,
                    decode_microbatch=1,
                )
                non_kv = m.total - m.kv_cache
                cap = stage.device.spec.memory_bytes
                base[j] = cap - FRAMEWORK_OVERHEAD_BYTES - non_kv
            if self.cache_enabled:
                self._headroom_base = base
        out = base
        if dequant_cache_budgets is not None:
            out = out - np.array([float(b) for b in dequant_cache_budgets])
        return np.maximum(out, 0.0)

    def request_kv_bytes(self, prompt_len: int, gen_len: int) -> np.ndarray:
        """Per-stage KV bytes one request reserves for its lifetime
        (``prompt_len + gen_len`` token slots)."""
        tokens = prompt_len + gen_len
        arr = self._charge_memo.get(tokens)
        if arr is None:
            arr = np.array(
                [
                    kv_cache_bytes(
                        self.cfg, stage.num_layers, 1, tokens, kv_bits=kv
                    )
                    for stage, kv in zip(self.plan.stages, self._mem_kv)
                ]
            )
            if self.cache_enabled:
                self._charge_memo[tokens] = arr
        return arr.copy()

    def request_kv_bytes_batch(self, total_tokens: np.ndarray) -> np.ndarray:
        """``(k, num_stages)`` KV-charge table: row ``i`` equals
        ``request_kv_bytes(s, n)`` for any ``s + n == total_tokens[i]``
        (the charge depends only on the token count).

        ``kv_cache_bytes`` is ``float(L * 1 * t * per_token)``: the integer
        product is exact, so the single float rounding lands on the same
        value regardless of evaluation order — the rows are bit-identical
        to the scalar memo.
        """
        t = np.asarray(total_tokens, dtype=np.int64)
        layers = np.array(
            [s.num_layers for s in self.plan.stages], dtype=np.int64
        )
        per_token = np.array(
            [self.cfg.kv_bytes_per_token_per_layer(kv) for kv in self._mem_kv]
        )
        return (t[:, None] * layers[None, :]) * per_token[None, :]

    # ------------------------------------------------------------------
    def derive(self, plan: "ExecutionPlan") -> "StageCostModel":
        """Cost model for a re-shaped variant of the same plan.

        The online wave policy re-batches the plan per wave (same stages
        and bitwidths, different workload/micro-batches); the derivative
        shares every shape-keyed memo with its parent, so repeated wave
        shapes price as lookups.
        """
        if plan.stages != self.plan.stages:
            raise ValueError("derive() requires a plan with identical stages")
        clone = StageCostModel(
            plan,
            self.cluster,
            source=self.source,
            latency_model=self.model,
            prediction_cache=self.prediction_cache,
            cfg=self.cfg,
            cache=self.cache_enabled,
            decode_batching=self.decode_batching,
        )
        clone._links = self._links
        clone._emb_memo = self._emb_memo
        clone._comm_memo = self._comm_memo
        clone._unit_prefill_memo = self._unit_prefill_memo
        clone._charge_memo = self._charge_memo
        clone._mem_memo = self._mem_memo
        clone._pairs = self._pairs
        clone._decode_extra_memo = self._decode_extra_memo
        clone._batch_consts_memo = self._batch_consts_memo
        return clone


def planner_time_tables(
    prediction_cache: PredictionCache,
    type_names: Sequence[str],
    bits: Sequence[int],
    *,
    prefill_microbatch: int,
    decode_microbatch: int,
    prompt_len: int,
    avg_context: int,
    kv_bits: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """The ILP's per-(device type, bits) layer-time coefficient blocks.

    Prefill is priced at ``q = context = s``; decode at one token against
    the workload's average context.  Both tables come out of the shared
    :class:`PredictionCache`, so the assembled objective uses exactly the
    floats a ``source="model"`` :class:`StageCostModel` serves to the
    simulators — the cross-path equality the CI cost-drift guard pins.
    """
    lp = prediction_cache.layer_time_table(
        type_names, bits, "prefill", prefill_microbatch, prompt_len, prompt_len,
        kv_bits,
    )
    ld = prediction_cache.layer_time_table(
        type_names, bits, "decode", decode_microbatch, 1, avg_context, kv_bits
    )
    return lp, ld
