"""Inter-stage communication costs.

Pipeline parallelism moves exactly one hidden-state tensor per micro-batch
across each stage boundary: ``(microbatch, q, hidden)`` FP16 activations
(``q = s`` during prefill, ``q = 1`` during decode).  The final stage also
returns the sampled token ids to the master, which re-embeds them — both
tiny messages charged via the link's alpha term.
"""

from __future__ import annotations

from ..hardware.cluster import Cluster, Device
from ..hardware.interconnect import Link
from ..models.config import ModelConfig

__all__ = ["activation_bytes", "stage_comm_time", "boundary_links"]

ACT_BYTES = 2.0


def activation_bytes(cfg: ModelConfig, microbatch: int, q: int) -> float:
    """Bytes of the hidden-state tensor crossing a stage boundary."""
    return microbatch * q * cfg.hidden_size * ACT_BYTES


def stage_comm_time(link: Link, cfg: ModelConfig, microbatch: int, q: int) -> float:
    """Seconds to ship one micro-batch's activations across ``link``."""
    return link.transfer_time(activation_bytes(cfg, microbatch, q))


def boundary_links(cluster: Cluster, devices: list[Device]) -> list[Link]:
    """Link crossed after each stage ``j`` (j -> j+1); last entry is the
    token feedback path from the tail device back to the head (the master
    loop of Fig. 6)."""
    links = [
        cluster.link_between(devices[j], devices[j + 1])
        for j in range(len(devices) - 1)
    ]
    links.append(cluster.link_between(devices[-1], devices[0]))
    return links
