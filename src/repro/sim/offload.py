"""FlexGen-style offloading baseline (Sheng et al., 2023).

FlexGen maximizes *offline* token-generation throughput on memory-starved
GPUs by spilling weights / KV cache to CPU DRAM (and disk) and streaming
them over PCIe, with a zig-zag block schedule that processes a block of
``g`` micro-batches per layer visit so each weight transfer is amortized
over ``g`` passes.

The model here captures exactly the trade-off that decides the paper's
Table 4/5 comparisons: PCIe (~16 GB/s effective) is 1-2 orders of
magnitude slower than HBM, so offloaded serving wins only when the
alternative is not running at all (or running heavily quantized), and
loses badly once the model fits on-device.

Placement policy (a faithful simplification of FlexGen's linear-program):
for each candidate block size ``g`` we keep as many weights resident as
memory allows after reserving the KV cache and workspace for ``g``
micro-batches, spill the rest to CPU, and pick the ``g`` with the best
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cost.memory import (
    FRAMEWORK_OVERHEAD_BYTES,
    embedding_bytes,
    kv_cache_bytes,
    temp_bytes_decode,
    temp_bytes_prefill,
)
from ..hardware.cluster import Cluster, Device
from ..models.config import ModelConfig
from ..models.registry import get_model
from ..workload.spec import Workload
from .kernels import layer_exec_time, layer_exec_times_decode_sweep

__all__ = ["OffloadResult", "simulate_offload"]

#: Effective host<->device streaming bandwidth (PCIe gen3 x16 minus
#: pinned-memory and scheduling losses).
PCIE_EFFECTIVE = 12.0e9


@dataclass(frozen=True)
class OffloadResult:
    """Outcome of an offloaded serving run."""

    model_name: str
    bits: int
    prefill_latency: float
    decode_latency: float
    block_size: int
    weight_resident_fraction: float
    kv_resident_fraction: float
    workload: Workload

    @property
    def total_latency(self) -> float:
        """End-to-end batch latency, seconds."""
        return self.prefill_latency + self.decode_latency

    @property
    def throughput(self) -> float:
        """Generated tokens per second."""
        return self.workload.total_generated_tokens / self.total_latency

    @property
    def feasible(self) -> bool:
        """Whether any placement fit the devices."""
        return np.isfinite(self.total_latency)


def _device_budget(cfg: ModelConfig, dev: Device, w: Workload, mb: int, is_edge: bool) -> float:
    cap = dev.spec.memory_bytes - FRAMEWORK_OVERHEAD_BYTES
    cap -= max(
        temp_bytes_prefill(cfg, mb, w.prompt_len),
        temp_bytes_decode(cfg, mb, w.max_seq_len),
    )
    if is_edge:
        cap -= embedding_bytes(cfg)
    return cap


def simulate_offload(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    bits: int = 16,
    block_candidates: Sequence[int] = (1, 2, 4, 8),
) -> OffloadResult:
    """Even-partition pipeline with FlexGen offloading on every stage."""
    cfg = get_model(model_name)
    w = workload
    devices = list(cluster.devices)
    n_dev = len(devices)
    mb = max(1, w.global_batch // n_dev)
    m = -(-w.global_batch // mb)

    base, extra = divmod(cfg.num_layers, n_dev)
    layer_counts = [base + (1 if i < extra else 0) for i in range(n_dev)]

    best: OffloadResult | None = None
    for g in block_candidates:
        if g > m:
            continue
        pre_busy = np.zeros(n_dev)
        dec_busy = None
        w_fracs, kv_fracs = [], []
        feasible = True
        contexts = w.prompt_len + np.arange(1, max(w.decode_passes, 1) + 1, dtype=np.float64)
        for j, dev in enumerate(devices):
            L_j = layer_counts[j]
            budget = _device_budget(cfg, dev, w, mb, is_edge=(j in (0, n_dev - 1)))
            if budget <= 0:
                feasible = False
                break
            w_bytes = L_j * cfg.layer_weight_bytes(bits)
            kv_bytes = kv_cache_bytes(cfg, L_j, w.global_batch, w.max_seq_len)
            # activation buffers for a block of g micro-batches
            act = g * mb * w.prompt_len * cfg.hidden_size * 2.0

            budget_after_act = budget - act
            if budget_after_act <= 0:
                feasible = False
                break
            # FlexGen keeps KV on CPU first (largest, stream-friendly),
            # then spills weights if still short.
            kv_frac = min(1.0, max(0.0, (budget_after_act - w_bytes) / max(kv_bytes, 1.0)))
            w_frac = min(1.0, budget_after_act / max(w_bytes, 1.0))
            if kv_frac < 1.0:
                w_frac = min(w_frac, 1.0)  # weights take priority over KV
                remaining = budget_after_act - w_frac * w_bytes
                kv_frac = min(1.0, max(0.0, remaining / max(kv_bytes, 1.0)))
            w_fracs.append(w_frac)
            kv_fracs.append(kv_frac)

            # ---- prefill busy time per micro-batch ----
            t_compute = sum(
                layer_exec_time(dev.spec, cfg, bits, mb, w.prompt_len, w.prompt_len)
                for _ in range(L_j)
            )
            stream = (1.0 - w_frac) * w_bytes / PCIE_EFFECTIVE / g
            # spilled KV written out during prefill
            kv_out = (1.0 - kv_frac) * kv_cache_bytes(cfg, L_j, mb, w.prompt_len) / PCIE_EFFECTIVE
            pre_busy[j] = t_compute + stream + kv_out

            # ---- decode busy time per micro-batch per step ----
            t_dec = L_j * layer_exec_times_decode_sweep(dev.spec, cfg, bits, mb, contexts)
            stream_dec = (1.0 - w_frac) * w_bytes / PCIE_EFFECTIVE / g
            # spilled KV must round-trip every step: read ctx, write 1
            kv_per_tok = cfg.kv_bytes_per_token_per_layer() * L_j * mb
            kv_stream = (1.0 - kv_frac) * kv_per_tok * (contexts + 1) / PCIE_EFFECTIVE
            t_dec = t_dec + stream_dec + kv_stream
            dec_busy = t_dec if dec_busy is None else np.vstack([dec_busy, t_dec])
        if not feasible:
            continue

        prefill_latency = float(pre_busy.sum() + (m - 1) * pre_busy.max())
        if w.decode_passes > 0:
            db = np.atleast_2d(dec_busy)
            cycle = db.sum(axis=0) + (m - 1) * db.max(axis=0)
            decode_latency = float(cycle[: w.decode_passes].sum())
        else:
            decode_latency = 0.0
        cand = OffloadResult(
            model_name=model_name,
            bits=bits,
            prefill_latency=prefill_latency,
            decode_latency=decode_latency,
            block_size=g,
            weight_resident_fraction=float(np.mean(w_fracs)),
            kv_resident_fraction=float(np.mean(kv_fracs)),
            workload=w,
        )
        if best is None or cand.total_latency < best.total_latency:
            best = cand
    if best is None:
        return OffloadResult(
            model_name=model_name, bits=bits,
            prefill_latency=float("inf"), decode_latency=float("inf"),
            block_size=0, weight_resident_fraction=0.0,
            kv_resident_fraction=0.0, workload=w,
        )
    return best
