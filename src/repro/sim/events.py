"""Discrete-event task-graph scheduler.

The analytic pipeline formulas in :mod:`repro.sim.pipeline` model
micro-batch pipelining with closed forms (GPipe fill/drain, per-token
barriers).  This module provides the exact counterpart: a dependency
graph of tasks bound to exclusive resources (devices, links), executed
by an event-driven scheduler.  :mod:`repro.sim.pipeline_des` builds the
serving task graph from a plan and the validation tests check the closed
forms against the event-driven makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

__all__ = ["Task", "ScheduleResult", "simulate_task_graph"]

TaskId = Hashable


@dataclass(frozen=True)
class Task:
    """One unit of work.

    Attributes
    ----------
    task_id:
        Unique hashable id.
    duration:
        Seconds of exclusive use of ``resource``.
    resource:
        The device/link this task occupies; tasks sharing a resource
        serialize.
    deps:
        Task ids that must finish before this one may start.
    priority:
        Tie-breaker when several ready tasks contend for one resource
        (lower runs first) — pipeline schedules use (token, microbatch).
    """

    task_id: TaskId
    duration: float
    resource: Hashable
    deps: tuple[TaskId, ...] = ()
    priority: tuple = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of an event-driven execution."""

    finish_times: Mapping[TaskId, float]
    makespan: float
    resource_busy: Mapping[Hashable, float]

    def utilization(self, resource: Hashable) -> float:
        """Busy fraction of ``resource`` over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.resource_busy.get(resource, 0.0) / self.makespan


def simulate_task_graph(tasks: Iterable[Task]) -> ScheduleResult:
    """Event-driven execution of a task DAG over exclusive resources.

    Greedy non-idling policy: whenever a resource is free and has ready
    tasks, it runs the one with the smallest ``priority`` (then id order
    for determinism).  Raises on unknown dependencies or cycles.
    """
    tasks = list(tasks)
    by_id: dict[TaskId, Task] = {}
    for t in tasks:
        if t.task_id in by_id:
            raise ValueError(f"duplicate task id {t.task_id!r}")
        by_id[t.task_id] = t
    indeg: dict[TaskId, int] = {}
    dependents: dict[TaskId, list[TaskId]] = {}
    for t in tasks:
        indeg[t.task_id] = len(t.deps)
        for d in t.deps:
            if d not in by_id:
                raise ValueError(f"task {t.task_id!r} depends on unknown {d!r}")
            dependents.setdefault(d, []).append(t.task_id)

    # per-resource ready queues (priority, seq, task_id)
    ready: dict[Hashable, list] = {}
    seq = 0

    def push_ready(tid: TaskId, _seq: list[int] = [0]) -> None:
        t = by_id[tid]
        _seq[0] += 1
        heapq.heappush(
            ready.setdefault(t.resource, []), (t.priority, _seq[0], tid)
        )

    for t in tasks:
        if indeg[t.task_id] == 0:
            push_ready(t.task_id)

    resource_free_at: dict[Hashable, float] = {}
    resource_busy: dict[Hashable, float] = {}
    finish: dict[TaskId, float] = {}
    dep_ready_at: dict[TaskId, float] = {t.task_id: 0.0 for t in tasks}

    # event loop: (time, kind, resource) — kind 0 = resource free
    events: list[tuple[float, int]] = []
    now = 0.0
    completed = 0
    # process until all tasks done: at each step, start every startable
    # task; then advance time to the next completion
    running: list[tuple[float, TaskId]] = []  # (finish_time, task)
    while completed < len(tasks):
        started_any = True
        while started_any:
            started_any = False
            for res, queue_ in list(ready.items()):
                if not queue_:
                    continue
                free_at = resource_free_at.get(res, 0.0)
                if free_at > now:
                    continue
                # among ready tasks, the scheduler may only start those
                # whose dependencies finished by `now`
                startable = [
                    entry for entry in queue_ if dep_ready_at[entry[2]] <= now
                ]
                if not startable:
                    continue
                entry = min(startable)
                queue_.remove(entry)
                heapq.heapify(queue_)
                tid = entry[2]
                t = by_id[tid]
                end = now + t.duration
                resource_free_at[res] = end
                resource_busy[res] = resource_busy.get(res, 0.0) + t.duration
                heapq.heappush(running, (end, tid))
                started_any = True
        if completed + len(running) < len(tasks) and not running:
            raise ValueError("dependency cycle detected")
        if not running:
            break
        end, tid = heapq.heappop(running)
        now = max(now, end)
        finish[tid] = end
        completed += 1
        for dep_id in dependents.get(tid, ()):  # release dependents
            indeg[dep_id] -= 1
            dep_ready_at[dep_id] = max(dep_ready_at[dep_id], end)
            if indeg[dep_id] == 0:
                push_ready(dep_id)

    if completed < len(tasks):
        raise ValueError("dependency cycle detected")
    makespan = max(finish.values(), default=0.0)
    return ScheduleResult(
        finish_times=finish, makespan=makespan, resource_busy=resource_busy
    )
