"""Ground-truth kernel timing on the simulated devices.

This module plays the role of *the hardware*: every latency "measurement"
in the reproduction — profiler samples, pipeline stage times, runtime
sleeps — comes from :func:`layer_exec_time` and friends.  The model is a
roofline with per-precision effectiveness factors:

``t = max(FLOPs / effective_flops(bits),  bytes / effective_bandwidth)
    + kernel launch overheads``

which reproduces the paper's two-phase asymmetry by construction:

* prefill processes ``s`` tokens per pass — arithmetic intensity in the
  thousands, far above every GPU's ridge point, hence compute-bound;
* decode processes 1 token per pass but must stream all layer weights and
  the KV cache — intensity ~tens, memory-bound, so weight-only
  quantization speeds it up by shrinking the bytes.

Optional multiplicative log-normal noise stands in for real measurement
jitter when the profiler collects samples.
"""

from __future__ import annotations

import numpy as np

from ..hardware.gpu import GPUSpec
from ..models.config import ModelConfig

from ..ops import ACT_BYTES, layer_memory_traffic

__all__ = [
    "layer_exec_time",
    "layer_exec_times_decode_sweep",
    "embedding_exec_time",
    "layer_memory_traffic",
    "KERNELS_PER_LAYER",
]

#: Distinct kernel launches in one decoder layer (4 linears + 2 LN +
#: 2 attention matmuls + softmax + GELU + 2 residual adds).
KERNELS_PER_LAYER = 12


def layer_exec_time(
    gpu: GPUSpec,
    cfg: ModelConfig,
    bits: int,
    batch: int,
    q: int,
    context: int,
    *,
    kv_bits: int = 16,
    rng: np.random.Generator | None = None,
    noise: float = 0.0,
) -> float:
    """Seconds for one decoder layer to process ``batch`` x ``q`` tokens
    against ``context`` total positions, at weight precision ``bits``."""
    if batch <= 0 or q <= 0:
        raise ValueError("batch and q must be positive")
    flops = cfg.layer_flops(batch, q, context)
    compute_t = flops / gpu.effective_flops(bits)

    w_bytes = cfg.layer_weight_bytes(bits)
    other_bytes = layer_memory_traffic(cfg, bits, batch, q, context, kv_bits=kv_bits) - w_bytes
    mem_t = w_bytes / gpu.effective_weight_bandwidth(bits) + other_bytes / gpu.effective_bandwidth

    t = max(compute_t, mem_t) + KERNELS_PER_LAYER * gpu.kernel_launch_overhead
    if noise > 0.0:
        if rng is None:
            raise ValueError("noise requires an rng")
        t *= float(np.exp(rng.normal(0.0, noise)))
    return t


def layer_exec_times_decode_sweep(
    gpu: GPUSpec,
    cfg: ModelConfig,
    bits: int,
    batch: int,
    contexts: np.ndarray,
    *,
    kv_bits: int = 16,
) -> np.ndarray:
    """Vectorized decode-step times for every context length in
    ``contexts`` — used by the pipeline simulator to cost all ``n`` decode
    steps without a Python loop."""
    contexts = np.asarray(contexts, dtype=np.float64)
    h = cfg.hidden_size
    flops = cfg.layer_flops(batch, 1, 0) + 4.0 * batch * h * contexts
    compute_t = flops / gpu.effective_flops(bits)

    w_bytes = cfg.layer_weight_bytes(bits)
    kv_token = cfg.kv_bytes_per_token_per_layer(kv_bits)
    fixed = batch * 1 * (6 * h + 2 * cfg.ffn_dim) * ACT_BYTES + batch * kv_token
    per_ctx = (
        batch * cfg.num_heads * contexts * ACT_BYTES * 2
        + batch * contexts * kv_token
    )
    mem_t = w_bytes / gpu.effective_weight_bandwidth(bits) + (fixed + per_ctx) / gpu.effective_bandwidth
    return (
        np.maximum(compute_t, mem_t)
        + KERNELS_PER_LAYER * gpu.kernel_launch_overhead
    )


def embedding_exec_time(
    gpu: GPUSpec,
    cfg: ModelConfig,
    batch: int,
    q: int,
    *,
    with_logits: bool,
) -> float:
    """Pre/post-processing time: embedding lookup (pure traffic) and, when
    ``with_logits``, the hidden->vocab projection (a real matmul)."""
    h = cfg.hidden_size
    lookup_bytes = batch * q * h * ACT_BYTES * 2
    t = lookup_bytes / gpu.effective_bandwidth + gpu.kernel_launch_overhead
    if with_logits:
        flops = cfg.embedding_flops(batch, q)
        head_bytes = cfg.vocab_size * h * ACT_BYTES + batch * q * cfg.vocab_size * ACT_BYTES
        t += max(flops / gpu.effective_flops(16), head_bytes / gpu.effective_bandwidth)
        t += gpu.kernel_launch_overhead
    return t
